//! End-to-end pipeline tests: simulate → assemble datasets → run all three
//! of the paper's decision analyses, asserting the structural invariants
//! every run must satisfy (regardless of seed).

use std::sync::OnceLock;

use rainshine::analysis::dataset::{rack_day_table, FaultFilter};
use rainshine::analysis::q1::{provision_components, provision_servers, ProvisionParams};
use rainshine::analysis::q2::{mf_comparison, sf_comparison};
use rainshine::analysis::q3::{dc_subset, env_analysis};
use rainshine::analysis::tco::TcoModel;
use rainshine::dcsim::{FleetConfig, Simulation, SimulationOutput};
use rainshine::telemetry::ids::{Sku, Workload};
use rainshine::telemetry::rma::HardwareFault;
use rainshine::telemetry::schema::columns;
use rainshine::telemetry::time::TimeGranularity;
use rainshine_conformance::{Claim, Scenario};

fn sim() -> &'static SimulationOutput {
    static SIM: OnceLock<SimulationOutput> = OnceLock::new();
    SIM.get_or_init(|| Simulation::new(FleetConfig::medium(), 2024).run())
}

/// Tolerance envelopes live in `scenarios/full.json` (calibrated from
/// 20-seed power sweeps; see each claim's `derivation`), not as constants
/// in this file.
fn full_claim(name: &str) -> &'static Claim {
    static SCENARIO: OnceLock<Scenario> = OnceLock::new();
    let scenario = SCENARIO.get_or_init(|| {
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/full.json"))
                .expect("read scenarios/full.json");
        Scenario::from_json(&text).expect("parse full scenario")
    });
    &scenario
        .claims
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("claim `{name}` missing from scenarios/full.json"))
        .claim
}

#[test]
fn q1_lb_mf_sf_ordering_holds_for_all_settings() {
    for workload in [Workload::W1, Workload::W6] {
        for granularity in [TimeGranularity::Daily, TimeGranularity::Hourly] {
            for sla in [0.90, 1.00] {
                let params = ProvisionParams::new(sla, granularity);
                let r = provision_servers(sim(), workload, &params).unwrap();
                assert!(
                    r.lb.spares <= r.mf.spares + 1e-9,
                    "{workload} {granularity:?} {sla}: LB {} > MF {}",
                    r.lb.spares,
                    r.mf.spares
                );
                assert!(
                    r.mf.spares <= r.sf.spares + 1e-9,
                    "{workload} {granularity:?} {sla}: MF {} > SF {}",
                    r.mf.spares,
                    r.sf.spares
                );
                assert!(r.sf.overprovision_pct <= 100.0);
            }
        }
    }
}

#[test]
fn q1_mf_clusters_partition_the_racks() {
    let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
    let r = provision_servers(sim(), Workload::W6, &params).unwrap();
    let mut all_racks: Vec<_> = r.clusters.iter().flat_map(|c| c.racks.clone()).collect();
    let total = all_racks.len();
    all_racks.sort();
    all_racks.dedup();
    assert_eq!(all_racks.len(), total, "clusters must not overlap");
    // Every studied rack is in exactly one cluster.
    let studied = sim()
        .fleet
        .racks_hosting(Workload::W6)
        .filter(|rk| rk.commissioned_day < sim().config.end.days() as i64)
        .count();
    assert_eq!(total, studied);
    // Cluster spare fractions are sorted and within [0, 1].
    for w in r.clusters.windows(2) {
        assert!(w[0].spare_fraction <= w[1].spare_fraction + 1e-12);
    }
    assert!(r.clusters.iter().all(|c| (0.0..=1.0).contains(&c.spare_fraction)));
}

#[test]
fn q1_mf_beats_sf_substantially_at_strict_sla() {
    let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
    for workload in [Workload::W1, Workload::W6] {
        let r = provision_servers(sim(), workload, &params).unwrap();
        assert!(
            r.mf.spares < 0.7 * r.sf.spares,
            "{workload}: MF {} should be well below SF {}",
            r.mf.spares,
            r.sf.spares
        );
        let savings = rainshine::analysis::q1::tco_savings(&r, &TcoModel::default());
        assert!(savings > 0.01, "{workload}: TCO savings {savings}");
    }
}

#[test]
fn q1_component_level_cheaper_under_mf() {
    let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
    for workload in [Workload::W1, Workload::W6] {
        let r = provision_components(sim(), workload, &params).unwrap();
        assert!(
            r.component_level.mf < r.server_level.mf,
            "{workload}: component {} vs server {}",
            r.component_level.mf,
            r.server_level.mf
        );
        assert!(r.component_level.lb <= r.component_level.sf + 1e-9);
    }
}

#[test]
fn q2_sf_exaggerates_and_mf_corrects() {
    let out = sim();
    let sf = sf_comparison(out, &[Sku::S2, Sku::S4]).unwrap();
    let s2 = sf.iter().find(|r| r.sku == "S2").unwrap();
    let s4 = sf.iter().find(|r| r.sku == "S4").unwrap();
    let raw_ratio = s2.avg_rate / s4.avg_rate;
    assert!(raw_ratio > 5.0, "confounded raw ratio {raw_ratio}");

    let Claim::MfSkuRatio { cart, table_stride, sku_hi, sku_lo, lo, hi } =
        full_claim("mf_sku_ratio")
    else {
        panic!("mf_sku_ratio claim has unexpected shape");
    };
    let table = rack_day_table(out, FaultFilter::AllHardware, *table_stride).unwrap();
    let mf = mf_comparison(out, &table, &cart.params()).unwrap();
    let mf_ratio = mf.avg_ratio(sku_hi, sku_lo).unwrap();
    // Ground truth is 4x; the MF estimate must be much closer to it than
    // the raw ratio is.
    assert!(
        (mf_ratio - 4.0).abs() < (raw_ratio - 4.0).abs(),
        "MF {mf_ratio} should beat SF {raw_ratio}"
    );
    assert!((*lo..*hi).contains(&mf_ratio), "MF ratio {mf_ratio} outside [{lo}, {hi}]");
}

#[test]
fn q3_dc1_threshold_discovered_dc2_flat() {
    let out = sim();
    let Claim::TempThreshold { cart, table_stride, dc, lo_f, hi_f, min_hot_over_cool } =
        full_claim("temp_threshold")
    else {
        panic!("temp_threshold claim has unexpected shape");
    };
    let disk =
        rack_day_table(out, FaultFilter::Component(HardwareFault::Disk), *table_stride).unwrap();

    let dc1 = env_analysis(dc, &dc_subset(&disk, dc).unwrap(), &cart.params()).unwrap();
    assert!(
        dc1.discovered
            .iter()
            .any(|r| r.feature == columns::TEMPERATURE_F && (*lo_f..=*hi_f).contains(&r.threshold)),
        "planted 78F, discovered {:?}",
        dc1.discovered
    );
    assert!(
        dc1.hot.mean > min_hot_over_cool * dc1.cool.mean,
        "hot step missing: hot {} vs cool {}",
        dc1.hot.mean,
        dc1.cool.mean
    );

    let dc2 = env_analysis("DC2", &dc_subset(&disk, "DC2").unwrap(), &cart.params()).unwrap();
    if dc2.hot.n > 100 {
        let ratio = dc2.hot.mean / dc2.cool.mean.max(1e-12);
        assert!(ratio < 1.35, "DC2 should be flat, got {ratio}");
    }
}

#[test]
fn table_ii_mix_tracks_the_paper() {
    let out = sim();
    let tp = out.true_positives();
    let total = tp.len() as f64;
    let share = |pred: &dyn Fn(&rainshine::telemetry::rma::FaultKind) -> bool| {
        tp.iter().filter(|t| pred(&t.fault)).count() as f64 / total
    };
    let software = share(&|f| matches!(f, rainshine::telemetry::rma::FaultKind::Software(_)));
    let hardware = share(&|f| f.is_hardware());
    let boot = share(&|f| matches!(f, rainshine::telemetry::rma::FaultKind::Boot(_)));
    // Paper: software 45-55%, hardware 20-30%, boot 12-14%.
    assert!((0.40..0.60).contains(&software), "software share {software}");
    assert!((0.15..0.35).contains(&hardware), "hardware share {hardware}");
    assert!((0.08..0.18).contains(&boot), "boot share {boot}");
}
