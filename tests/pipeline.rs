//! End-to-end pipeline tests: simulate → assemble datasets → run all three
//! of the paper's decision analyses, asserting the structural invariants
//! every run must satisfy (regardless of seed).

use std::sync::OnceLock;

use rainshine::analysis::dataset::{rack_day_table, FaultFilter};
use rainshine::analysis::q1::{provision_components, provision_servers, ProvisionParams};
use rainshine::analysis::q2::{mf_comparison, sf_comparison};
use rainshine::analysis::q3::{dc_subset, env_analysis};
use rainshine::analysis::tco::TcoModel;
use rainshine::cart::params::CartParams;
use rainshine::dcsim::{FleetConfig, Simulation, SimulationOutput};
use rainshine::telemetry::ids::{Sku, Workload};
use rainshine::telemetry::rma::HardwareFault;
use rainshine::telemetry::time::TimeGranularity;

fn sim() -> &'static SimulationOutput {
    static SIM: OnceLock<SimulationOutput> = OnceLock::new();
    SIM.get_or_init(|| Simulation::new(FleetConfig::medium(), 2024).run())
}

#[test]
fn q1_lb_mf_sf_ordering_holds_for_all_settings() {
    for workload in [Workload::W1, Workload::W6] {
        for granularity in [TimeGranularity::Daily, TimeGranularity::Hourly] {
            for sla in [0.90, 1.00] {
                let params = ProvisionParams::new(sla, granularity);
                let r = provision_servers(sim(), workload, &params).unwrap();
                assert!(
                    r.lb.spares <= r.mf.spares + 1e-9,
                    "{workload} {granularity:?} {sla}: LB {} > MF {}",
                    r.lb.spares,
                    r.mf.spares
                );
                assert!(
                    r.mf.spares <= r.sf.spares + 1e-9,
                    "{workload} {granularity:?} {sla}: MF {} > SF {}",
                    r.mf.spares,
                    r.sf.spares
                );
                assert!(r.sf.overprovision_pct <= 100.0);
            }
        }
    }
}

#[test]
fn q1_mf_clusters_partition_the_racks() {
    let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
    let r = provision_servers(sim(), Workload::W6, &params).unwrap();
    let mut all_racks: Vec<_> = r.clusters.iter().flat_map(|c| c.racks.clone()).collect();
    let total = all_racks.len();
    all_racks.sort();
    all_racks.dedup();
    assert_eq!(all_racks.len(), total, "clusters must not overlap");
    // Every studied rack is in exactly one cluster.
    let studied = sim()
        .fleet
        .racks_hosting(Workload::W6)
        .filter(|rk| rk.commissioned_day < sim().config.end.days() as i64)
        .count();
    assert_eq!(total, studied);
    // Cluster spare fractions are sorted and within [0, 1].
    for w in r.clusters.windows(2) {
        assert!(w[0].spare_fraction <= w[1].spare_fraction + 1e-12);
    }
    assert!(r.clusters.iter().all(|c| (0.0..=1.0).contains(&c.spare_fraction)));
}

#[test]
fn q1_mf_beats_sf_substantially_at_strict_sla() {
    let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
    for workload in [Workload::W1, Workload::W6] {
        let r = provision_servers(sim(), workload, &params).unwrap();
        assert!(
            r.mf.spares < 0.7 * r.sf.spares,
            "{workload}: MF {} should be well below SF {}",
            r.mf.spares,
            r.sf.spares
        );
        let savings = rainshine::analysis::q1::tco_savings(&r, &TcoModel::default());
        assert!(savings > 0.01, "{workload}: TCO savings {savings}");
    }
}

#[test]
fn q1_component_level_cheaper_under_mf() {
    let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
    for workload in [Workload::W1, Workload::W6] {
        let r = provision_components(sim(), workload, &params).unwrap();
        assert!(
            r.component_level.mf < r.server_level.mf,
            "{workload}: component {} vs server {}",
            r.component_level.mf,
            r.server_level.mf
        );
        assert!(r.component_level.lb <= r.component_level.sf + 1e-9);
    }
}

#[test]
fn q2_sf_exaggerates_and_mf_corrects() {
    let out = sim();
    let sf = sf_comparison(out, &[Sku::S2, Sku::S4]).unwrap();
    let s2 = sf.iter().find(|r| r.sku == "S2").unwrap();
    let s4 = sf.iter().find(|r| r.sku == "S4").unwrap();
    let raw_ratio = s2.avg_rate / s4.avg_rate;
    assert!(raw_ratio > 5.0, "confounded raw ratio {raw_ratio}");

    let table = rack_day_table(out, FaultFilter::AllHardware, 2).unwrap();
    let cart = CartParams::default().with_min_sizes(100, 50).with_cp(0.001);
    let mf = mf_comparison(out, &table, &cart).unwrap();
    let mf_ratio = mf.avg_ratio("S2", "S4").unwrap();
    // Ground truth is 4x; the MF estimate must be much closer to it than
    // the raw ratio is.
    assert!(
        (mf_ratio - 4.0).abs() < (raw_ratio - 4.0).abs(),
        "MF {mf_ratio} should beat SF {raw_ratio}"
    );
    assert!((2.5..6.5).contains(&mf_ratio), "MF ratio {mf_ratio}");
}

#[test]
fn q3_dc1_threshold_discovered_dc2_flat() {
    let out = sim();
    let disk = rack_day_table(out, FaultFilter::Component(HardwareFault::Disk), 1).unwrap();
    // cp below the planted effect's improvement with margin: at 0.002 a
    // weak draw of the disk stream can prune the (real) 78 °F split away.
    let cart = CartParams::default().with_min_sizes(400, 200).with_cp(0.0015);

    let dc1 = env_analysis("DC1", &dc_subset(&disk, "DC1").unwrap(), &cart).unwrap();
    assert!(
        (74.0..=82.0).contains(&dc1.temp_threshold),
        "planted 78F, discovered {}",
        dc1.temp_threshold
    );
    assert!(dc1.hot.mean > 1.3 * dc1.cool.mean, "hot step missing");
    assert!(!dc1.discovered.is_empty());

    let dc2 = env_analysis("DC2", &dc_subset(&disk, "DC2").unwrap(), &cart).unwrap();
    if dc2.hot.n > 100 {
        let ratio = dc2.hot.mean / dc2.cool.mean.max(1e-12);
        assert!(ratio < 1.35, "DC2 should be flat, got {ratio}");
    }
}

#[test]
fn table_ii_mix_tracks_the_paper() {
    let out = sim();
    let tp = out.true_positives();
    let total = tp.len() as f64;
    let share = |pred: &dyn Fn(&rainshine::telemetry::rma::FaultKind) -> bool| {
        tp.iter().filter(|t| pred(&t.fault)).count() as f64 / total
    };
    let software = share(&|f| matches!(f, rainshine::telemetry::rma::FaultKind::Software(_)));
    let hardware = share(&|f| f.is_hardware());
    let boot = share(&|f| matches!(f, rainshine::telemetry::rma::FaultKind::Boot(_)));
    // Paper: software 45-55%, hardware 20-30%, boot 12-14%.
    assert!((0.40..0.60).contains(&software), "software share {software}");
    assert!((0.15..0.35).contains(&hardware), "hardware share {hardware}");
    assert!((0.08..0.18).contains(&boot), "boot share {boot}");
}
