//! Determinism suite: runs the full pipeline — dcsim → cart (forest + PDP)
//! → q1/q2/q3 → bootstrap — once per thread-count policy and diffs the
//! *serialized* results. Every parallel stage derives per-item RNG streams
//! from the stage seed and merges in item order, so the byte-for-byte
//! output must not depend on how many worker threads ran it.

use rainshine::analysis::dataset::{rack_day_table, FaultFilter};
use rainshine::analysis::q1::{provision_components, provision_servers, ProvisionParams};
use rainshine::analysis::q2::{mf_comparison, sf_comparison};
use rainshine::analysis::q3::{dc_subset, env_analysis};
use rainshine::cart::dataset::CartDataset;
use rainshine::cart::forest::{Forest, ForestParams};
use rainshine::cart::params::CartParams;
use rainshine::cart::pdp::{grid_over_column, partial_dependence_continuous_with, PdpParams};
use rainshine::cart::tree::Tree;
use rainshine::dcsim::{FleetConfig, Simulation};
use rainshine::parallel::Parallelism;
use rainshine::stats::bootstrap::bootstrap_ci_seeded;
use rainshine::telemetry::ids::{Sku, Workload};
use rainshine::telemetry::schema::columns;
use rainshine::telemetry::time::TimeGranularity;

/// Runs the whole pipeline under one thread policy and serializes every
/// stage's result. JSON (or `Debug` for the few non-`Serialize` types)
/// captures each float exactly, so comparing strings is a bit-level diff.
fn pipeline(parallelism: Parallelism) -> Vec<(&'static str, String)> {
    let mut stages = Vec::new();
    let json = |v: &dyn erased::Json| v.to_json();

    // dcsim: ticket generation fans out per rack / per DC.
    let mut config = FleetConfig::small();
    config.parallelism = parallelism;
    let output = Simulation::new(config, 2024).run();
    stages.push(("dcsim/tickets", json(&output.tickets)));

    // cart: forest fitting fans out per tree, PDP per grid point.
    let table = rack_day_table(&output, FaultFilter::AllHardware, 1)
        .expect("small fleet produces rack-days");
    let ds = CartDataset::regression(
        &table,
        columns::FAILURE_RATE,
        &[columns::AGE_MONTHS, columns::SKU, columns::WORKLOAD, columns::TEMPERATURE_F],
    )
    .expect("analysis schema has these columns");
    let tree_params = CartParams::default().with_min_sizes(100, 50).with_cp(0.001);
    let forest_params =
        ForestParams { trees: 8, parallelism, tree_params, ..ForestParams::default() };
    let forest = Forest::fit(&ds, &forest_params).expect("forest fits");
    stages.push(("cart/forest", json(&forest)));

    let tree = Tree::fit(&ds, &tree_params).expect("tree fits");
    let grid = grid_over_column(&table, columns::TEMPERATURE_F, 9).expect("grid");
    let pdp = partial_dependence_continuous_with(
        &tree,
        &table,
        columns::TEMPERATURE_F,
        &grid,
        &PdpParams { parallelism },
    )
    .expect("pdp evaluates");
    stages.push(("cart/pdp", json(&pdp)));

    // q1: spare provisioning (not Serialize; Debug prints full floats).
    let q1 = provision_servers(
        &output,
        Workload::W6,
        &ProvisionParams::new(1.0, TimeGranularity::Daily),
    )
    .expect("q1 runs");
    stages.push(("q1/provision", format!("{q1:?}")));

    // q2: single-factor and multi-factor SKU comparisons.
    let sf = sf_comparison(&output, &[Sku::S2, Sku::S4]).expect("q2 sf runs");
    stages.push(("q2/sf", json(&sf)));
    let mf = mf_comparison(&output, &table, &tree_params).expect("q2 mf runs");
    stages.push(("q2/mf", json(&mf)));

    // q3: environmental analysis on the DC1 subset.
    let dc1 = dc_subset(&table, "DC1").expect("DC1 rows exist");
    let q3 = env_analysis("DC1", &dc1, &tree_params).expect("q3 runs");
    stages.push(("q3/dc1", json(&q3)));

    // stats: seeded bootstrap fans out per replicate.
    let rates: Vec<f64> =
        table.continuous(columns::FAILURE_RATE).expect("response column").to_vec();
    let ci = bootstrap_ci_seeded(&rates, 200, 0.95, 7, parallelism, |xs| {
        xs.iter().sum::<f64>() / xs.len() as f64
    })
    .expect("bootstrap runs");
    stages.push(("stats/bootstrap", format!("{ci:?}")));

    stages
}

/// Tiny helper so `pipeline` can serialize heterogeneous stage results
/// through one call site.
mod erased {
    pub trait Json {
        fn to_json(&self) -> String;
    }
    impl<T: serde::Serialize> Json for T {
        fn to_json(&self) -> String {
            serde_json::to_string(self).expect("stage result serializes")
        }
    }
}

/// The `--report` contract: the deterministic section of the run report —
/// counters, histograms, stage call/item counts, quality payload — must be
/// byte-identical for a fixed (scale, seed, corruption) at every thread
/// count. Only wall times (excluded from the serialized section) may vary.
#[test]
fn run_report_bytes_do_not_depend_on_thread_count() {
    use rainshine::dcsim::CorruptionConfig;
    use rainshine::obs::Obs;
    use rainshine_bench::{run_experiment, run_report, ExperimentContext, Scale};

    let report_for = |parallelism: Parallelism| {
        let obs = Obs::enabled();
        let mut ctx = ExperimentContext::new_with_obs(
            Scale::Small,
            7,
            parallelism,
            CorruptionConfig::dirty_default(),
            obs.clone(),
        );
        let dir = std::env::temp_dir().join("rainshine-report-det");
        for id in ["t1", "f2", "f15"] {
            run_experiment(id, &mut ctx, &dir).expect("experiment runs");
        }
        run_report(&obs, &ctx.output, Scale::Small, 7).deterministic_json()
    };

    let baseline = report_for(Parallelism::Sequential);
    assert!(baseline.contains("dcsim.run"), "simulation stages recorded");
    assert!(baseline.contains("experiment.f15"), "experiment stages recorded");
    assert!(baseline.contains("quality"), "quality payload attached");
    for parallelism in [Parallelism::Threads(2), Parallelism::Threads(8)] {
        assert_eq!(
            baseline,
            report_for(parallelism),
            "deterministic report diverged between Sequential and {parallelism:?}"
        );
    }
}

/// Pin for the q1 cluster aggregation: its per-cluster maps are `BTreeMap`s
/// keyed by leaf id, so the float sums and cluster listings accumulate in
/// sorted-key order. With `HashMap` iteration the order would follow each
/// map instance's random hash seed and repeated in-process runs could
/// disagree in the last bits of the MF spare counts.
#[test]
fn q1_cluster_aggregation_is_repeatable() {
    let output = Simulation::new(FleetConfig::small(), 2024).run();
    let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
    let servers_a = provision_servers(&output, Workload::W6, &params).expect("q1 runs");
    let servers_b = provision_servers(&output, Workload::W6, &params).expect("q1 runs");
    assert_eq!(format!("{servers_a:?}"), format!("{servers_b:?}"));
    let components_a = provision_components(&output, Workload::W6, &params).expect("q1-b runs");
    let components_b = provision_components(&output, Workload::W6, &params).expect("q1-b runs");
    assert_eq!(format!("{components_a:?}"), format!("{components_b:?}"));
}

#[test]
fn pipeline_results_do_not_depend_on_thread_count() {
    let baseline = pipeline(Parallelism::Sequential);
    for parallelism in [Parallelism::Threads(2), Parallelism::Threads(5), Parallelism::Auto] {
        let other = pipeline(parallelism);
        assert_eq!(baseline.len(), other.len());
        for ((name, a), (_, b)) in baseline.iter().zip(&other) {
            assert_eq!(a, b, "stage `{name}` diverged between Sequential and {parallelism:?}");
        }
    }
}
