//! Fixed-seed regression for the sort-once/partition-many CART fitter.
//!
//! The presort fitter keeps one stably-sorted index permutation per ordered
//! feature and partitions it down the tree; the reference fitter re-sorts
//! every node. Stable sort + stable partition means the two must agree on
//! every node — prediction, risk, split rule, and improvement — bit for
//! bit, on a real (medium-fleet) dataset with nominal features, duplicated
//! response values, and NaN environment cells from sensor blackouts.

use rainshine::analysis::dataset::{rack_day_table, FaultFilter};
use rainshine::cart::dataset::CartDataset;
use rainshine::cart::params::CartParams;
use rainshine::cart::tree::Tree;
use rainshine::dcsim::{CorruptionConfig, FleetConfig, Simulation};
use rainshine::telemetry::schema::columns;

const FEATURES: &[&str] = &[
    columns::AGE_MONTHS,
    columns::SKU,
    columns::WORKLOAD,
    columns::TEMPERATURE_F,
    columns::RELATIVE_HUMIDITY,
    columns::DATACENTER,
    columns::DAY_OF_WEEK,
];

#[test]
fn presort_fitter_matches_per_node_sort_on_medium_fleet() {
    // Dirty corruption keeps blackout NaN cells in the environment columns,
    // exercising the missing-value bookkeeping of both fitters.
    let mut config = FleetConfig::medium();
    config.corruption = CorruptionConfig::dirty_default();
    let output = Simulation::new(config, 20_17).run();
    let table = rack_day_table(&output, FaultFilter::AllHardware, 4).expect("medium rack-days");
    let ds = CartDataset::regression(&table, columns::FAILURE_RATE, FEATURES)
        .expect("analysis schema has the requested features");
    let params = CartParams::default().with_min_sizes(60, 30).with_cp(0.0008);

    let presort = Tree::fit(&ds, &params).expect("presort fit");
    let rows: Vec<usize> = (0..ds.len()).collect();
    let reference = Tree::fit_on_rows_per_node_sort(&ds, &params, &rows).expect("reference fit");

    assert!(presort.leaves().len() > 1, "fit found structure worth comparing");
    assert_eq!(presort, reference);
    // Byte-level check on top of PartialEq: serialized JSON captures every
    // float exactly, so identical strings mean identical trees to the bit.
    let a = serde_json::to_string(&presort).expect("tree serializes");
    let b = serde_json::to_string(&reference).expect("tree serializes");
    assert_eq!(a, b);
}
