//! Dirty-data end-to-end tests: inject the documented defect profile
//! ([`CorruptionConfig::dirty_default`]) into a medium fleet, let the
//! ingestion pipeline sanitize it, and check that
//!
//! * the multi-factor conclusions (SKU ranking, DC1 temperature threshold,
//!   spare counts) match a clean run of the same seed,
//! * the data-quality report accounts for every injected defect exactly,
//! * the dirty pipeline stays bit-identical across thread counts and
//!   repeated runs.

use std::sync::OnceLock;

use rainshine::analysis::dataset::{rack_day_table, FaultFilter};
use rainshine::analysis::evidence;
use rainshine::analysis::q1::{provision_servers, ProvisionParams};
use rainshine::analysis::q3::{dc_subset, env_analysis};
use rainshine::cart::params::CartParams;
use rainshine::dcsim::{CorruptionConfig, FleetConfig, Simulation, SimulationOutput};
use rainshine::parallel::Parallelism;
use rainshine::telemetry::ids::Workload;
use rainshine::telemetry::quality::{DataQualityReport, DefectClass};
use rainshine::telemetry::rma::{self, HardwareFault};
use rainshine::telemetry::time::TimeGranularity;

/// Medium fleet, one year, seed 31 — the same run the Q3 unit tests use, so
/// the clean baseline is known-good.
const SEED: u64 = 31;

static CLEAN: OnceLock<SimulationOutput> = OnceLock::new();
static DIRTY: OnceLock<SimulationOutput> = OnceLock::new();

fn clean() -> &'static SimulationOutput {
    CLEAN.get_or_init(|| Simulation::new(FleetConfig::medium(), SEED).run())
}

fn dirty() -> &'static SimulationOutput {
    DIRTY.get_or_init(|| {
        let mut config = FleetConfig::medium();
        config.corruption = CorruptionConfig::dirty_default();
        Simulation::new(config, SEED).run()
    })
}

/// SKU labels ordered by descending mean failure rate (Fig. 7's ranking).
fn sku_rank(out: &SimulationOutput) -> Vec<String> {
    let t = rack_day_table(out, FaultFilter::AllHardware, 1).unwrap();
    let mut rows = evidence::by_sku(&t).unwrap();
    rows.sort_by(|a, b| b.mean.partial_cmp(&a.mean).unwrap());
    rows.into_iter().map(|r| r.label).collect()
}

fn dc1_temp_threshold(out: &SimulationOutput) -> f64 {
    let t = rack_day_table(out, FaultFilter::Component(HardwareFault::Disk), 1).unwrap();
    let dc1 = dc_subset(&t, "DC1").unwrap();
    let cart = CartParams::default().with_min_sizes(400, 200).with_cp(0.002);
    env_analysis("DC1", &dc1, &cart).unwrap().temp_threshold
}

#[test]
fn sku_ranking_survives_dirty_data() {
    assert_eq!(sku_rank(clean()), sku_rank(dirty()));
}

#[test]
fn dc1_temperature_threshold_survives_dirty_data() {
    let ct = dc1_temp_threshold(clean());
    let dt = dc1_temp_threshold(dirty());
    // The planted threshold is 78 °F; both runs must land nearby, and the
    // dirty run must stay close to the clean one.
    assert!((73.0..=83.0).contains(&ct), "clean threshold {ct}");
    assert!((73.0..=83.0).contains(&dt), "dirty threshold {dt}");
    assert!((ct - dt).abs() <= 5.0, "clean {ct} vs dirty {dt}");
}

#[test]
fn spare_counts_survive_dirty_data() {
    let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
    let pc = provision_servers(clean(), Workload::W1, &params).unwrap();
    let pd = provision_servers(dirty(), Workload::W1, &params).unwrap();
    for (name, a, b) in [
        ("lb", pc.lb.spares, pd.lb.spares),
        ("sf", pc.sf.spares, pd.sf.spares),
        ("mf", pc.mf.spares, pd.mf.spares),
    ] {
        let rel = (a - b).abs() / a.max(1.0);
        assert!(rel <= 0.10, "{name} spares: clean {a} dirty {b} (rel {rel:.3})");
    }
}

#[test]
fn quality_report_accounts_for_every_injected_defect() {
    let out = dirty();
    let q = &out.quality;
    let inj = &out.injection;

    // The clean stream can contain *natural* duplicates — two genuine
    // repeat failures of one device logged with identical timestamps. The
    // sanitizer rightly folds those too, so the dirty-run count is
    // injected + clean baseline. Every other class is impossible on clean
    // data by construction (its baseline must be zero).
    let natural_dupes = clean().quality.counts(DefectClass::DuplicateTicket).quarantined;
    for class in DefectClass::ALL {
        if class != DefectClass::DuplicateTicket {
            assert_eq!(clean().quality.counts(class).detected, 0, "clean baseline {class}");
        }
    }

    // Exact per-class accounting against the injection log.
    assert_eq!(q.counts(DefectClass::DuplicateTicket).quarantined, inj.duplicates + natural_dupes);
    assert_eq!(q.counts(DefectClass::InvertedInterval).repaired, inj.inverted);
    assert_eq!(q.counts(DefectClass::ClockSkew).quarantined, inj.clock_skewed);
    assert_eq!(q.counts(DefectClass::MislabeledLocation).repaired, inj.mislabeled);
    assert_eq!(q.counts(DefectClass::CensoredResolution).repaired, inj.censored);
    assert_eq!(q.counts(DefectClass::SensorSpike).repaired, inj.spiked_cells);
    assert_eq!(q.counts(DefectClass::SensorBlackout).quarantined, inj.blackout_cells);
    for class in DefectClass::ALL {
        let c = q.counts(class);
        assert_eq!(c.detected, c.repaired + c.quarantined, "{class}");
    }

    // Quarantined tickets (duplicates + clock skew) are the only removals.
    assert_eq!(
        q.tickets_kept,
        q.tickets_seen - inj.duplicates - natural_dupes - inj.clock_skewed,
        "kept = seen - quarantined tickets"
    );
    // The documented defaults hit at least 5% of the stream.
    let rate = inj.total_ticket_defects() as f64 / q.tickets_seen as f64;
    assert!(rate >= 0.04, "injected defect rate {rate:.3}");

    // Every env cell was audited; at least one blackout window per DC.
    let span = out.config.span_days();
    let cells: u64 =
        out.env.datacenters().iter().map(|d| d.region_temp_offsets.len() as u64 * span).sum();
    assert_eq!(q.env_cells_seen, cells);
    for dc in [1u8, 2] {
        assert!(
            out.sensor_faults.blackouts.iter().any(|w| w.dc.0 == dc),
            "DC{dc} has no blackout window"
        );
    }
    assert!(inj.blackout_cells > 0 && inj.spiked_cells > 0);
}

#[test]
fn sanitized_stream_is_fully_valid() {
    let out = dirty();
    let mut report = DataQualityReport::default();
    let tp = rma::true_positives_audited(&out.tickets, &mut report);
    assert_eq!(report.invalid_dropped, 0, "sanitizer let an invalid ticket through");
    assert_eq!(tp.len() + report.false_positives_excluded as usize, out.tickets.len());
    // Locations are manifest-consistent after mislabel repair.
    for t in tp {
        let rack = out.fleet.rack(t.location.rack).expect("known rack");
        assert_eq!(rack.dc, t.location.dc);
        assert_eq!(rack.region, t.location.region);
    }
}

#[test]
fn full_experiment_suite_never_panics_on_dirty_data() {
    use rainshine_bench::{run_experiment, ExperimentContext, Scale, ALL_EXPERIMENTS};
    let dir = std::env::temp_dir().join("rainshine-dirty-suite");
    let mut ctx = ExperimentContext::new_with_corruption(
        Scale::Small,
        SEED,
        Parallelism::Auto,
        CorruptionConfig::dirty_default(),
    );
    assert!(ctx.output.quality.tickets_seen > ctx.output.quality.tickets_kept, "defects injected");
    for id in ALL_EXPERIMENTS {
        let preview = run_experiment(id, &mut ctx, &dir)
            .unwrap_or_else(|e| panic!("experiment {id} failed on dirty data: {e}"));
        assert!(!preview.is_empty(), "{id} produced empty preview");
    }
}

#[test]
fn dirty_pipeline_is_bit_identical_across_parallelism_and_repeats() {
    let run = |p: Parallelism| {
        let mut config = FleetConfig::small();
        config.corruption = CorruptionConfig::dirty_default();
        config.parallelism = p;
        Simulation::new(config, 17).run()
    };
    let a = run(Parallelism::Sequential);
    let b = run(Parallelism::Threads(3));
    let c = run(Parallelism::Auto);
    let d = run(Parallelism::Sequential);
    for other in [&b, &c, &d] {
        assert_eq!(a.tickets, other.tickets);
        assert_eq!(a.quality, other.quality);
        assert_eq!(a.injection, other.injection);
        assert_eq!(a.sensor_faults, other.sensor_faults);
    }
}
