//! Determinism and failure-injection tests: malformed tickets, empty
//! populations, degenerate features, all-false-positive streams.

use rainshine::analysis::dataset::{rack_day_table, rack_table, FaultFilter};
use rainshine::analysis::q1::{provision_servers, ProvisionParams};
use rainshine::cart::dataset::CartDataset;
use rainshine::cart::params::CartParams;
use rainshine::cart::tree::Tree;
use rainshine::dcsim::{FleetConfig, Simulation};
use rainshine::telemetry::ids::Workload;
use rainshine::telemetry::rma::{self, FaultKind, HardwareFault, RmaTicket};
use rainshine::telemetry::schema::columns;
use rainshine::telemetry::time::{SimTime, TimeGranularity};

#[test]
fn same_seed_same_everything() {
    let a = Simulation::new(FleetConfig::small(), 5).run();
    let b = Simulation::new(FleetConfig::small(), 5).run();
    assert_eq!(a.tickets, b.tickets);
    assert_eq!(a.fleet, b.fleet);
    // Analyses are deterministic functions of the output.
    let pa =
        provision_servers(&a, Workload::W1, &ProvisionParams::new(1.0, TimeGranularity::Daily))
            .unwrap();
    let pb =
        provision_servers(&b, Workload::W1, &ProvisionParams::new(1.0, TimeGranularity::Daily))
            .unwrap();
    assert_eq!(pa.mf.spares, pb.mf.spares);
    assert_eq!(pa.clusters.len(), pb.clusters.len());
}

#[test]
fn different_seeds_differ_but_structure_holds() {
    let a = Simulation::new(FleetConfig::small(), 1).run();
    let b = Simulation::new(FleetConfig::small(), 2).run();
    assert_ne!(a.tickets, b.tickets);
    // Fleet layout is seed-independent (layout_seed fixed in config).
    assert_eq!(a.fleet, b.fleet);
}

#[test]
fn malformed_tickets_are_filtered_not_fatal() {
    let mut out = Simulation::new(FleetConfig::small(), 9).run();
    let template = out.tickets[0].clone();
    // Inject an inverted-interval ticket and an FP-flagged clone.
    let mut inverted = template.clone();
    inverted.opened = SimTime(100);
    inverted.resolved = SimTime(50);
    let mut fp = template.clone();
    fp.false_positive = true;
    let true_before = out.true_positives().len();
    out.tickets.push(inverted);
    out.tickets.push(fp);
    assert_eq!(out.true_positives().len(), true_before, "both injected tickets filtered");
    // Analyses still run.
    assert!(rack_day_table(&out, FaultFilter::AllHardware, 4).is_ok());
}

#[test]
fn all_false_positive_stream_yields_no_hardware_population() {
    let mut out = Simulation::new(FleetConfig::small(), 9).run();
    for t in &mut out.tickets {
        t.false_positive = true;
    }
    assert!(out.hardware_tickets().is_empty());
    // Provisioning still works: every rack simply needs zero spares.
    let r =
        provision_servers(&out, Workload::W1, &ProvisionParams::new(1.0, TimeGranularity::Daily))
            .unwrap();
    assert_eq!(r.lb.spares, 0.0);
    assert_eq!(r.sf.spares, 0.0);
    assert_eq!(r.mf.spares, 0.0);
}

#[test]
fn degenerate_single_value_features_do_not_break_cart() {
    let out = Simulation::new(FleetConfig::small(), 9).run();
    // Rack table with constant response: tree must be a single leaf.
    let constant: std::collections::HashMap<_, _> =
        out.fleet.racks.iter().map(|r| (r.id, 1.0)).collect();
    let table = rack_table(&out, &constant).unwrap();
    let ds = CartDataset::regression(
        &table,
        columns::FAILURE_RATE,
        &[columns::SKU, columns::AGE_MONTHS, columns::DATACENTER],
    )
    .unwrap();
    let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
    assert_eq!(tree.leaf_count(), 1);
    assert_eq!(tree.root().prediction, 1.0);
}

#[test]
fn empty_rack_population_is_an_error_not_a_panic() {
    let out = Simulation::new(FleetConfig::small(), 9).run();
    // W3 racks exist only on S7 in DC1; find a workload with no racks by
    // trying all and asserting errors are clean for missing ones.
    for workload in rainshine::telemetry::ids::Workload::ALL {
        let res =
            provision_servers(&out, workload, &ProvisionParams::new(1.0, TimeGranularity::Daily));
        match res {
            Ok(r) => assert!(r.servers > 0.0),
            Err(e) => assert!(
                matches!(e, rainshine::analysis::AnalysisError::NoData { .. }),
                "unexpected error: {e}"
            ),
        }
    }
}

#[test]
fn category_breakdown_of_empty_stream_is_empty() {
    let empty: Vec<&RmaTicket> = Vec::new();
    assert!(rma::category_breakdown(&empty).is_empty());
}

#[test]
fn ticket_devices_are_consistent_with_fleet() {
    let out = Simulation::new(FleetConfig::small(), 13).run();
    for t in out.true_positives() {
        let rack = out.fleet.rack(t.location.rack).expect("ticket references known rack");
        assert_eq!(rack.dc, t.location.dc);
        assert_eq!(rack.region, t.location.region);
        let server = t.location.server.0;
        assert!(
            server >= rack.server_id_base && server < rack.server_id_base + rack.servers,
            "server {server} outside rack range"
        );
        if let FaultKind::Hardware(HardwareFault::Disk) = t.fault {
            assert!(rack.sku_spec().disks_per_server > 0);
        }
    }
}

#[test]
fn provisioning_with_coverage_zero_is_free() {
    let out = Simulation::new(FleetConfig::small(), 9).run();
    let mut params = ProvisionParams::new(1.0, TimeGranularity::Daily);
    params.coverage = 0.0;
    let r = provision_servers(&out, Workload::W1, &params).unwrap();
    assert_eq!(r.lb.spares, 0.0);
    assert_eq!(r.sf.spares, 0.0);
}
