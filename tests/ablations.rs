//! Negative-control ablations: the simulator plants known effects; when one
//! is switched off, the analysis must stop reporting it. These are the
//! strongest available checks that the framework's discoveries are driven
//! by the data and not by the analysis code's own structure.

use rainshine::analysis::dataset::{rack_day_table, FaultFilter};
use rainshine::analysis::q1::{provision_servers, ProvisionParams};
use rainshine::analysis::q3::{dc_subset, env_analysis};
use rainshine::analysis::{evidence, q3};
use rainshine::cart::params::CartParams;
use rainshine::dcsim::Simulation;
use rainshine::telemetry::ids::Workload;
use rainshine::telemetry::rma::HardwareFault;
use rainshine::telemetry::time::TimeGranularity;
use rainshine_bench::{ablated_config, AblationKind};

#[test]
fn env_off_removes_q3_discovery() {
    let output = Simulation::new(ablated_config(AblationKind::EnvironmentOff), 42).run();
    let disk = rack_day_table(&output, FaultFilter::Component(HardwareFault::Disk), 1).unwrap();
    let cart = CartParams::default().with_min_sizes(400, 200).with_cp(0.002);
    let dc1 = dc_subset(&disk, "DC1").unwrap();
    let r = env_analysis("DC1", &dc1, &cart).unwrap();
    assert!(
        r.discovered.is_empty(),
        "no environmental rules should survive the ablation: {:?}",
        r.discovered
    );
    // Note: the *single-factor* Fig. 17 trend does NOT fully vanish — hot
    // bins over-sample DC1's compute-placed hot regions, so composition
    // confounding alone produces a residual slope. That is precisely the
    // paper's thesis (SF views mislead); the MF discovery above is the
    // honest negative control. We still require the SF ratio to shrink
    // substantially relative to the with-effects run.
    let baseline = Simulation::new(rainshine::dcsim::FleetConfig::medium(), 42).run();
    let ratio_of = |out: &rainshine::dcsim::SimulationOutput| {
        let rows = q3::disk_rate_by_temperature(out, 1).unwrap();
        let hot = rows.last().unwrap().mean;
        let mild = rows.iter().find(|r| r.label == "60-65").unwrap().mean;
        hot / mild
    };
    let ablated_ratio = ratio_of(&output);
    let baseline_ratio = ratio_of(&baseline);
    assert!(
        ablated_ratio < 0.75 * baseline_ratio,
        "SF hot/mild ratio should shrink: {ablated_ratio:.2} vs baseline {baseline_ratio:.2}"
    );
}

#[test]
fn bursts_off_collapses_sf_overprovisioning() {
    let with = Simulation::new(rainshine::dcsim::FleetConfig::medium(), 42).run();
    let without = Simulation::new(ablated_config(AblationKind::BurstsOff), 42).run();
    let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
    let r_with = provision_servers(&with, Workload::W6, &params).unwrap();
    let r_without = provision_servers(&without, Workload::W6, &params).unwrap();
    assert!(
        r_without.sf.overprovision_pct < 0.4 * r_with.sf.overprovision_pct,
        "SF {} -> {} should collapse without bursts",
        r_with.sf.overprovision_pct,
        r_without.sf.overprovision_pct
    );
    // And the MF/SF gap narrows: clustering had less to exploit.
    let gap_with = r_with.sf.overprovision_pct - r_with.mf.overprovision_pct;
    let gap_without = r_without.sf.overprovision_pct - r_without.mf.overprovision_pct;
    assert!(gap_without < gap_with, "gap {gap_with} -> {gap_without}");
}

#[test]
fn calendar_off_flattens_weekday_and_season() {
    let output = Simulation::new(ablated_config(AblationKind::CalendarOff), 42).run();
    let table = rack_day_table(&output, FaultFilter::AllHardware, 1).unwrap();
    let dow = evidence::by_day_of_week(&table, 0).unwrap();
    let max = dow.iter().map(|r| r.mean).fold(0.0f64, f64::max);
    let min = dow.iter().map(|r| r.mean).fold(f64::INFINITY, f64::min);
    // Noise floor, not zero: correlated bursts land on arbitrary weekdays
    // and inflate single bins (measured 1.11–1.30 across seeds with the
    // effect off, vs 1.45+ with the planted weekday factor on).
    assert!(max / min < 1.35, "weekday spread {:.3} should be noise-level", max / min);

    // Compare against the non-ablated run: spread must shrink.
    let baseline = Simulation::new(rainshine::dcsim::FleetConfig::medium(), 42).run();
    let btable = rack_day_table(&baseline, FaultFilter::AllHardware, 1).unwrap();
    let bdow = evidence::by_day_of_week(&btable, 0).unwrap();
    let bmax = bdow.iter().map(|r| r.mean).fold(0.0f64, f64::max);
    let bmin = bdow.iter().map(|r| r.mean).fold(f64::INFINITY, f64::min);
    assert!(max / min < bmax / bmin, "ablation should reduce the spread");
}
