//! Negative-control ablations: the simulator plants known effects; when one
//! is switched off, the analysis must stop reporting it. These are the
//! strongest available checks that the framework's discoveries are driven
//! by the data and not by the analysis code's own structure.
//!
//! Each ablation is a declarative scenario under `scenarios/` pairing
//! `Absent` claims (the switched-off effect must vanish) with `Present`
//! claims (everything else must survive). Envelopes were calibrated from
//! 20-seed power sweeps — each claim's `derivation` field records the
//! measured ablated vs planted quartiles — replacing the hand-tuned
//! single-seed constants this file used to carry (e.g. the fixed 1.35
//! weekday-spread cap).

use rainshine_conformance::{run_scenario, Obs, Parallelism, Scenario};

/// Every gated claim in the ablation scenarios recovers in 20/20
/// calibration seeds except `threshold_shift.temp_threshold` (18/20, with
/// both misses outside the first three seeds), so a 3-seed prefix is
/// deterministic-green and keeps the debug-profile tests fast.
const SEEDS: usize = 3;

#[track_caller]
fn assert_scenario(name: &str) {
    let path = format!("{}/scenarios/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let scenario = Scenario::from_json(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"));
    let seeds = scenario.seeds(SEEDS);
    let outcome =
        run_scenario(&scenario, &seeds, Parallelism::Auto, &Obs::disabled()).expect("sweep");
    assert!(outcome.pass, "scenario `{name}` failed claims: {:?}", outcome.failed_claims());
}

#[test]
fn age_off_flattens_the_bathtub() {
    assert_scenario("age_off");
}

#[test]
fn env_off_removes_q3_discovery() {
    assert_scenario("env_off");
}

#[test]
fn calendar_off_flattens_weekday_and_season() {
    assert_scenario("calendar_off");
}

#[test]
fn bursts_off_collapses_sf_overprovisioning() {
    assert_scenario("bursts_off");
}

#[test]
fn sku_flat_collapses_mf_sku_ratio() {
    assert_scenario("sku_flat");
}

#[test]
fn threshold_shift_moves_the_discovered_rule() {
    assert_scenario("threshold_shift");
}

#[test]
fn dirty_stream_still_recovers_core_effects() {
    assert_scenario("dirty");
}
