//! Ground-truth recovery: the simulator plants known multi-factor effects
//! (DESIGN.md §3); these tests assert the *analysis stack* recovers them —
//! something the paper could not check on production data, and the main
//! scientific payoff of reproducing a measurement study on a synthetic
//! substrate.

use std::sync::OnceLock;

use rainshine::analysis::dataset::{rack_day_table, FaultFilter};
use rainshine::analysis::evidence;
use rainshine::cart::dataset::CartDataset;
use rainshine::cart::params::CartParams;
use rainshine::cart::tree::Tree;
use rainshine::dcsim::{FleetConfig, Simulation, SimulationOutput};
use rainshine::telemetry::schema::columns;
use rainshine::telemetry::table::Table;

fn sim() -> &'static SimulationOutput {
    static SIM: OnceLock<SimulationOutput> = OnceLock::new();
    SIM.get_or_init(|| Simulation::new(FleetConfig::medium(), 777).run())
}

fn hw_table() -> &'static Table {
    static TABLE: OnceLock<Table> = OnceLock::new();
    TABLE.get_or_init(|| rack_day_table(sim(), FaultFilter::AllHardware, 1).unwrap())
}

#[test]
fn fig2_dc1_regions_fail_more_than_dc2() {
    let rows = evidence::by_region(hw_table()).unwrap();
    let dc1_min = rows
        .iter()
        .filter(|r| r.label.starts_with("DC1"))
        .map(|r| r.mean)
        .fold(f64::INFINITY, f64::min);
    let dc2_max =
        rows.iter().filter(|r| r.label.starts_with("DC2")).map(|r| r.mean).fold(0.0f64, f64::max);
    // The planted region factors are 0.95-1.25 (DC1) vs 0.7-0.8 (DC2), and
    // DC1 additionally runs hotter.
    assert!(dc1_min > dc2_max, "DC1 min {dc1_min} vs DC2 max {dc2_max}");
}

#[test]
fn fig3_weekday_effect_recovered() {
    let rows = evidence::by_day_of_week(hw_table(), 0).unwrap();
    let mean_of = |label: &str| rows.iter().find(|r| r.label == label).unwrap().mean;
    for weekday in ["Mon", "Tue", "Wed", "Thu", "Fri"] {
        for weekend in ["Sun", "Sat"] {
            assert!(
                mean_of(weekday) > mean_of(weekend),
                "{weekday} {} should exceed {weekend} {}",
                mean_of(weekday),
                mean_of(weekend)
            );
        }
    }
}

#[test]
fn fig4_second_half_of_year_elevated() {
    let rows = evidence::by_month(hw_table(), 0).unwrap();
    let half = |months: &[&str]| {
        let vals: Vec<f64> =
            rows.iter().filter(|r| months.contains(&r.label.as_str())).map(|r| r.mean).collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let h1 = half(&["Jan", "Feb", "Mar", "Apr", "May", "Jun"]);
    let h2 = half(&["Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]);
    assert!(h2 > h1, "H2 {h2} should exceed H1 {h1}");
}

#[test]
fn fig5_low_humidity_elevated() {
    let rows = evidence::by_rh_bin(hw_table()).unwrap();
    let dry = rows.iter().find(|r| r.label == "20-30").map(|r| r.mean);
    let mid = rows.iter().find(|r| r.label == "40-50").map(|r| r.mean);
    if let (Some(dry), Some(mid)) = (dry, mid) {
        assert!(dry > mid, "dry bin {dry} should exceed mid bin {mid}");
    } else {
        panic!("expected both RH bins populated: {rows:?}");
    }
}

#[test]
fn fig6_workload_ordering_w2_highest_w3_lowest() {
    let rows = evidence::by_workload(hw_table()).unwrap();
    let mean_of = |label: &str| rows.iter().find(|r| r.label == label).map(|r| r.mean);
    let w2 = mean_of("W2").expect("W2 present");
    let w3 = mean_of("W3").expect("W3 present");
    for r in &rows {
        if r.label != "W2" {
            assert!(w2 >= r.mean, "W2 should be the highest, {} beats it", r.label);
        }
        if r.label != "W3" {
            assert!(w3 <= r.mean, "W3 should be the lowest, {} is below", r.label);
        }
    }
}

#[test]
fn fig9_infant_mortality_visible() {
    let rows = evidence::by_age(hw_table()).unwrap();
    let young = rows.iter().find(|r| r.label == "<5").unwrap().mean;
    let mid = rows.iter().find(|r| r.label == "25-30").unwrap().mean;
    assert!(young > 1.2 * mid, "young {young} vs mid-life {mid}");
}

#[test]
fn cart_importance_ranks_planted_drivers_over_noise() {
    // Day-of-week ordinal carries a real planted effect; week-of-year is
    // nearly noise once month is present. SKU and workload must rank high.
    let ds = CartDataset::regression(
        hw_table(),
        columns::FAILURE_RATE,
        &[
            columns::SKU,
            columns::WORKLOAD,
            columns::DATACENTER,
            columns::AGE_MONTHS,
            columns::TEMPERATURE_F,
            columns::RATED_POWER_KW,
            columns::WEEK,
        ],
    )
    .unwrap();
    let tree =
        Tree::fit(&ds, &CartParams::default().with_min_sizes(400, 200).with_cp(0.001)).unwrap();
    let importance = tree.variable_importance();
    let score =
        |name: &str| importance.iter().find(|(n, _)| n == name).map(|(_, s)| *s).unwrap_or(0.0);
    assert!(
        score(columns::SKU) + score(columns::WORKLOAD) + score(columns::DATACENTER) > 50.0,
        "planted drivers should dominate: {importance:?}"
    );
    assert!(score(columns::WEEK) < 10.0, "week-of-year should be weak: {importance:?}");
}

#[test]
fn burst_prone_cohorts_have_heavier_mu_tails() {
    use rainshine::telemetry::metrics::{self, SpatialGranularity};
    use rainshine::telemetry::time::TimeGranularity;
    let out = sim();
    let hw = out.hardware_tickets();
    let mu = metrics::mu(
        &hw,
        SpatialGranularity::Rack,
        TimeGranularity::Daily,
        out.config.start,
        out.config.end,
    );
    let windows = out.config.hazard.burst_bad_lot_windows.clone();
    let in_lot = |day: i64| windows.iter().any(|&(lo, hi)| (lo..=hi).contains(&day));
    let mut lot_peaks = Vec::new();
    let mut quiet_peaks = Vec::new();
    for rack in &out.fleet.racks {
        let key = SpatialGranularity::Rack.key(&rack.server_location(0));
        let peak = mu.get(&key).map(|s| s.max() as f64).unwrap_or(0.0) / rack.servers as f64;
        if in_lot(rack.commissioned_day) {
            lot_peaks.push(peak);
        } else {
            quiet_peaks.push(peak);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&lot_peaks) > 1.5 * mean(&quiet_peaks),
        "bad-lot cohorts {} vs quiet {}",
        mean(&lot_peaks),
        mean(&quiet_peaks)
    );
}
