//! Ground-truth recovery: the simulator plants known multi-factor effects
//! (DESIGN.md §3); these tests assert the *analysis stack* recovers them —
//! something the paper could not check on production data, and the main
//! scientific payoff of reproducing a measurement study on a synthetic
//! substrate.
//!
//! The claims and their tolerance envelopes live in `scenarios/full.json`,
//! calibrated from 20-seed power sweeps (each claim's `derivation` field
//! records the measured quartiles). The tests here run a 3-seed prefix of
//! the same sweep, so a regression that narrows an effect below its
//! power-derived envelope fails with the per-seed detail attached.

use std::sync::OnceLock;

use rainshine_conformance::{run_scenario, Obs, Parallelism, Scenario, ScenarioOutcome};

/// Seeds per claim sweep. Every gated claim in `full.json` recovers in
/// 20/20 calibration seeds, so any prefix is deterministic-green; 3 keeps
/// the debug-profile test fast.
const SEEDS: usize = 3;

fn outcome() -> &'static ScenarioOutcome {
    static OUTCOME: OnceLock<ScenarioOutcome> = OnceLock::new();
    OUTCOME.get_or_init(|| {
        let text =
            std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios/full.json"))
                .expect("read scenarios/full.json");
        let scenario = Scenario::from_json(&text).expect("parse full scenario");
        let seeds = scenario.seeds(SEEDS);
        run_scenario(&scenario, &seeds, Parallelism::Auto, &Obs::disabled()).expect("sweep")
    })
}

#[track_caller]
fn assert_claim(name: &str) {
    let outcome = outcome();
    let claim = outcome
        .claims
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("claim `{name}` missing from scenarios/full.json"));
    assert!(
        claim.pass,
        "claim `{name}` recovered {}/{} seeds (need {:.0}%): {:?}",
        claim.recovered,
        claim.seeds,
        claim.min_recovery * 100.0,
        claim.failures
    );
}

#[test]
fn fig2_dc1_regions_fail_more_than_dc2() {
    assert_claim("region_gap");
}

#[test]
fn fig3_weekday_effect_recovered() {
    assert_claim("weekday_spread");
}

#[test]
fn fig4_second_half_of_year_elevated() {
    assert_claim("seasonal_lift");
}

#[test]
fn fig5_low_humidity_elevated() {
    assert_claim("low_humidity_lift");
}

#[test]
fn fig6_workload_ordering_w2_highest_w3_lowest() {
    assert_claim("workload_extremes");
}

#[test]
fn fig9_infant_mortality_visible() {
    assert_claim("age_bathtub");
}

#[test]
fn fig18_temperature_threshold_discovered() {
    assert_claim("temp_threshold");
}

#[test]
fn cart_importance_ranks_planted_drivers_over_noise() {
    assert_claim("driver_importance");
}

#[test]
fn burst_prone_cohorts_have_heavier_mu_tails() {
    assert_claim("burst_lot_tails");
}

#[test]
fn mf_sku_ratio_within_power_envelope() {
    assert_claim("mf_sku_ratio");
}

#[test]
fn every_full_scenario_claim_recovers() {
    let outcome = outcome();
    assert!(outcome.pass, "scenario `full` failed claims: {:?}", outcome.failed_claims());
}
