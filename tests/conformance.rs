//! Conformance harness integration: the deterministic report section must
//! be byte-identical across thread counts, the differential oracle suite
//! must hold on a real scenario, and every checked-in scenario spec must
//! round-trip through serde.

use rainshine_conformance::oracle::standard_oracles;
use rainshine_conformance::report::ConformanceReport;
use rainshine_conformance::{run_scenario, Obs, Parallelism, Scenario};

fn load(name: &str) -> Scenario {
    let path = format!("{}/scenarios/{name}.json", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    Scenario::from_json(&text).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

/// Builds the full report (sweep + oracle suite) for `smoke` at the given
/// thread count.
fn smoke_report(threads: Parallelism) -> ConformanceReport {
    let scenario = load("smoke");
    let seeds = scenario.seeds(3);
    let obs = Obs::enabled();
    let outcome = run_scenario(&scenario, &seeds, threads, &obs).expect("sweep");
    let oracles = standard_oracles(&scenario, scenario.seed_base).expect("oracles");
    ConformanceReport::new(vec![outcome], oracles, &obs.snapshot())
}

#[test]
fn smoke_report_is_byte_identical_across_thread_counts() {
    let sequential = smoke_report(Parallelism::Sequential);
    let threaded = smoke_report(Parallelism::Threads(4));
    assert_eq!(
        sequential.deterministic_json(),
        threaded.deterministic_json(),
        "deterministic report section must not depend on the thread count"
    );
}

#[test]
fn smoke_scenario_recovers_with_zero_oracle_violations() {
    let report = smoke_report(Parallelism::Auto);
    assert!(report.violations().is_empty(), "violations: {:?}", report.violations());
    // The oracle suite really ran: all four differential pairs, each
    // comparing a non-trivial number of cells.
    assert_eq!(report.deterministic.oracles.len(), 4);
    for oracle in &report.deterministic.oracles {
        assert!(oracle.cells > 0, "oracle `{}` compared nothing", oracle.name);
    }
}

#[test]
fn every_checked_in_scenario_round_trips() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/scenarios");
    let mut count = 0;
    for entry in std::fs::read_dir(dir).expect("scenarios dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        count += 1;
        let text = std::fs::read_to_string(&path).expect("read scenario");
        let scenario =
            Scenario::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        scenario.validate().unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let reparsed = Scenario::from_json(&scenario.to_json())
            .unwrap_or_else(|e| panic!("{} re-parse: {e}", path.display()));
        assert_eq!(reparsed, scenario, "{} does not round-trip", path.display());
        // The file name matches the scenario's own name.
        assert_eq!(
            path.file_stem().and_then(|s| s.to_str()),
            Some(scenario.name.as_str()),
            "scenario file name should match its `name` field"
        );
    }
    assert!(count >= 9, "expected the full scenario catalog, found {count} files");
}
