//! Zero-copy columnar frames.
//!
//! [`Frame`] is the workspace's columnar storage primitive: each column is
//! one contiguous typed buffer (`Vec<f64>` / `Vec<i64>` / `Vec<u32>` codes),
//! nominal columns share their category labels through a reference-counted
//! [`Dictionary`], and row subsets are either *borrowed* ([`FrameView`] — no
//! copying at all) or *materialized* ([`Frame::subset`] — values gathered,
//! dictionaries and schema shared, never cloned).
//!
//! [`crate::table::Table`] is a thin wrapper over `Frame` that keeps the
//! original row-oriented convenience API; hot paths (the simulator's
//! rack-day emission, CART fitting) go straight to the columns via
//! [`FrameBuilder::columns_mut`] and the typed accessors, so no per-row
//! `Vec<Value>` or label `String` is ever allocated there.
//!
//! # Ownership and borrowing rules
//!
//! * `Frame` is immutable once built; cloning a frame clones the value
//!   buffers but *shares* schema and dictionaries (`Arc`).
//! * `FrameView` borrows both the frame and the row-index slice; it never
//!   allocates. Use it to thread a row subset through analysis code.
//! * `Frame::subset` gathers values into fresh buffers but shares the
//!   schema and every nominal dictionary, so codes remain comparable
//!   across a frame and all its subsets.

use std::collections::HashMap;
use std::sync::Arc;

use crate::table::{FeatureKind, Schema, Value};
use crate::{Result, TelemetryError};

/// An immutable, shareable set of interned category labels.
///
/// Codes are indices into the label list, assigned in first-seen order by
/// the builder that interned them. Cloning a dictionary is an `Arc` bump;
/// a frame and every subset derived from it share one allocation.
#[derive(Debug, Clone)]
pub struct Dictionary {
    labels: Arc<Vec<String>>,
}

impl Dictionary {
    /// Wraps a label list. Codes are the indices into `labels`.
    pub fn new(labels: Vec<String>) -> Self {
        Dictionary { labels: Arc::new(labels) }
    }

    /// The labels, indexed by code.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dictionary has no labels.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label of `code`, if in range.
    pub fn label(&self, code: u32) -> Option<&str> {
        self.labels.get(code as usize).map(String::as_str)
    }

    /// The code of `label`, if interned.
    pub fn code_of(&self, label: &str) -> Option<u32> {
        self.labels.iter().position(|l| l == label).map(|i| i as u32)
    }

    /// Whether two dictionaries share the same allocation (O(1)).
    pub fn same_allocation(&self, other: &Dictionary) -> bool {
        Arc::ptr_eq(&self.labels, &other.labels)
    }
}

impl PartialEq for Dictionary {
    fn eq(&self, other: &Self) -> bool {
        self.same_allocation(other) || self.labels == other.labels
    }
}

impl serde::Serialize for Dictionary {
    fn to_value(&self) -> serde::Value {
        self.labels.as_slice().to_value()
    }
}

impl serde::Deserialize for Dictionary {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Vec::<String>::from_value(v).map(Dictionary::new)
    }
}

/// One contiguous typed column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Real-valued observations.
    Continuous(Vec<f64>),
    /// Interned category codes plus their shared label dictionary.
    Nominal {
        /// Per-row codes, indices into `dict`.
        codes: Vec<u32>,
        /// Shared label dictionary.
        dict: Dictionary,
    },
    /// Ordered categorical levels.
    Ordinal(Vec<i64>),
}

impl Column {
    /// The column's feature kind.
    pub fn kind(&self) -> FeatureKind {
        match self {
            Column::Continuous(_) => FeatureKind::Continuous,
            Column::Nominal { .. } => FeatureKind::Nominal,
            Column::Ordinal(_) => FeatureKind::Ordinal,
        }
    }

    /// Number of values in the column.
    pub fn len(&self) -> usize {
        match self {
            Column::Continuous(data) => data.len(),
            Column::Nominal { codes, .. } => codes.len(),
            Column::Ordinal(data) => data.len(),
        }
    }

    /// Whether the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Gathers `rows` into a fresh column; nominal dictionaries are shared.
    fn gather(&self, rows: &[usize]) -> Column {
        match self {
            Column::Continuous(data) => Column::Continuous(rows.iter().map(|&r| data[r]).collect()),
            Column::Ordinal(data) => Column::Ordinal(rows.iter().map(|&r| data[r]).collect()),
            Column::Nominal { codes, dict } => Column::Nominal {
                codes: rows.iter().map(|&r| codes[r]).collect(),
                dict: dict.clone(),
            },
        }
    }
}

// Serialized exactly like the pre-frame derived column enum, so `Table`
// JSON (and every results file) keeps its shape: the dictionary appears
// under the `categories` key as a plain label array.
impl serde::Serialize for Column {
    fn to_value(&self) -> serde::Value {
        let (tag, inner) = match self {
            Column::Continuous(data) => ("Continuous", data.to_value()),
            Column::Ordinal(data) => ("Ordinal", data.to_value()),
            Column::Nominal { codes, dict } => (
                "Nominal",
                serde::Value::Object(vec![
                    ("codes".to_string(), codes.to_value()),
                    ("categories".to_string(), dict.to_value()),
                ]),
            ),
        };
        serde::Value::Object(vec![(tag.to_string(), inner)])
    }
}

impl serde::Deserialize for Column {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let pairs = v.as_object().ok_or_else(|| serde::Error::expected("column object", v))?;
        let [(tag, inner)] = pairs else {
            return Err(serde::Error::custom("expected single-variant column object"));
        };
        match tag.as_str() {
            "Continuous" => Vec::<f64>::from_value(inner).map(Column::Continuous),
            "Ordinal" => Vec::<i64>::from_value(inner).map(Column::Ordinal),
            "Nominal" => Ok(Column::Nominal {
                codes: Vec::<u32>::from_value(inner.field("codes"))?,
                dict: Dictionary::from_value(inner.field("categories"))?,
            }),
            other => Err(serde::Error::custom(format!("unknown column variant `{other}`"))),
        }
    }
}

/// An immutable typed columnar frame.
///
/// Construct one with [`FrameBuilder`] (columnar, zero per-row overhead)
/// or through [`crate::table::TableBuilder`] (row-oriented convenience).
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    schema: Arc<Schema>,
    columns: Vec<Column>,
    rows: usize,
}

impl Frame {
    /// Assembles a frame from pre-built columns.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::ValueKind`] if a column's kind does not
    /// match its field, and [`TelemetryError::RowArity`] if the column
    /// count or any column length disagrees with the rest.
    pub fn new(schema: Arc<Schema>, columns: Vec<Column>) -> Result<Frame> {
        if columns.len() != schema.len() {
            return Err(TelemetryError::RowArity { expected: schema.len(), got: columns.len() });
        }
        let rows = columns.first().map_or(0, Column::len);
        for (i, (field, col)) in schema.fields().iter().zip(&columns).enumerate() {
            if field.kind != col.kind() {
                return Err(TelemetryError::ValueKind { column: i });
            }
            if col.len() != rows {
                return Err(TelemetryError::RowArity { expected: rows, got: col.len() });
            }
        }
        Ok(Frame { schema, columns, rows })
    }

    /// The frame's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The shared schema handle (an `Arc` bump, not a deep clone).
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the frame has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// All columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Looks up a column by name.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::UnknownColumn`] if `name` is not in the
    /// schema.
    pub fn column_by_name(&self, name: &str) -> Result<(usize, &Column)> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| TelemetryError::UnknownColumn { name: name.to_owned() })?;
        Ok((idx, &self.columns[idx]))
    }

    /// The values of a continuous column.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not continuous.
    pub fn continuous(&self, name: &str) -> Result<&[f64]> {
        match self.column_by_name(name)? {
            (_, Column::Continuous(data)) => Ok(data),
            (_, other) => Err(kind_mismatch(name, "continuous", other)),
        }
    }

    /// The codes of a nominal column (indices into its dictionary).
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not nominal.
    pub fn nominal_codes(&self, name: &str) -> Result<&[u32]> {
        match self.column_by_name(name)? {
            (_, Column::Nominal { codes, .. }) => Ok(codes),
            (_, other) => Err(kind_mismatch(name, "nominal", other)),
        }
    }

    /// The shared label dictionary of a nominal column.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not nominal.
    pub fn dictionary(&self, name: &str) -> Result<&Dictionary> {
        match self.column_by_name(name)? {
            (_, Column::Nominal { dict, .. }) => Ok(dict),
            (_, other) => Err(kind_mismatch(name, "nominal", other)),
        }
    }

    /// The values of an ordinal column.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not ordinal.
    pub fn ordinal(&self, name: &str) -> Result<&[i64]> {
        match self.column_by_name(name)? {
            (_, Column::Ordinal(data)) => Ok(data),
            (_, other) => Err(kind_mismatch(name, "ordinal", other)),
        }
    }

    /// Materializes a new frame containing only `rows` (in the given
    /// order). Schema and dictionaries are shared, not cloned.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, rows: &[usize]) -> Frame {
        Frame {
            schema: Arc::clone(&self.schema),
            columns: self.columns.iter().map(|c| c.gather(rows)).collect(),
            rows: rows.len(),
        }
    }

    /// A borrowed view of `rows` — no gathering, no allocation.
    pub fn view<'a>(&'a self, rows: &'a [usize]) -> FrameView<'a> {
        FrameView { frame: self, rows }
    }
}

// Serialized as `{ schema, columns, rows }`, byte-compatible with the
// pre-frame derived `Table` representation.
impl serde::Serialize for Frame {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("schema".to_string(), self.schema.to_value()),
            ("columns".to_string(), self.columns.to_value()),
            ("rows".to_string(), self.rows.to_value()),
        ])
    }
}

impl serde::Deserialize for Frame {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        if v.as_object().is_none() {
            return Err(serde::Error::expected("frame object", v));
        }
        let schema = Schema::from_value(v.field("schema"))?;
        let columns = Vec::<Column>::from_value(v.field("columns"))?;
        let rows = usize::from_value(v.field("rows"))?;
        let frame = Frame::new(Arc::new(schema), columns)
            .map_err(|e| serde::Error::custom(format!("invalid frame: {e}")))?;
        if frame.rows != rows {
            return Err(serde::Error::custom(format!(
                "frame row count {} disagrees with columns ({})",
                rows, frame.rows
            )));
        }
        Ok(frame)
    }
}

fn kind_mismatch(name: &str, requested: &'static str, actual: &Column) -> TelemetryError {
    let actual = match actual {
        Column::Continuous(_) => "continuous",
        Column::Nominal { .. } => "nominal",
        Column::Ordinal(_) => "ordinal",
    };
    TelemetryError::KindMismatch { name: name.to_owned(), requested, actual }
}

/// A borrowed row subset of a [`Frame`]: the frame and the index slice
/// are both borrowed, so constructing a view allocates nothing.
#[derive(Debug, Clone, Copy)]
pub struct FrameView<'a> {
    frame: &'a Frame,
    rows: &'a [usize],
}

impl<'a> FrameView<'a> {
    /// The underlying frame.
    pub fn frame(&self) -> &'a Frame {
        self.frame
    }

    /// The row indices this view selects, in order.
    pub fn rows(&self) -> &'a [usize] {
        self.rows
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Gathers the selected values of a continuous column.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not continuous.
    pub fn gather_continuous(&self, name: &str) -> Result<Vec<f64>> {
        let data = self.frame.continuous(name)?;
        Ok(self.rows.iter().map(|&r| data[r]).collect())
    }

    /// Gathers the selected codes of a nominal column.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not nominal.
    pub fn gather_codes(&self, name: &str) -> Result<Vec<u32>> {
        let codes = self.frame.nominal_codes(name)?;
        Ok(self.rows.iter().map(|&r| codes[r]).collect())
    }

    /// Gathers the selected values of an ordinal column.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not ordinal.
    pub fn gather_ordinal(&self, name: &str) -> Result<Vec<i64>> {
        let data = self.frame.ordinal(name)?;
        Ok(self.rows.iter().map(|&r| data[r]).collect())
    }

    /// Materializes the view into an owned frame (see [`Frame::subset`]).
    pub fn materialize(&self) -> Frame {
        self.frame.subset(self.rows)
    }
}

/// Mutable storage for one column while a frame is being assembled.
///
/// The typed `push_*` methods let hot loops write a value per column
/// without constructing row vectors; nominal columns can intern a label
/// once and then push the returned code per row, so repeated labels cost
/// one `Vec<u32>` push instead of a `String` allocation plus a hash.
#[derive(Debug, Clone)]
pub enum ColumnBuilder {
    /// Builds a continuous column.
    Continuous(Vec<f64>),
    /// Builds a nominal column: codes plus the interner growing its
    /// dictionary in first-seen order.
    Nominal {
        /// Per-row codes pushed so far.
        codes: Vec<u32>,
        /// Labels in first-seen (code) order.
        labels: Vec<String>,
        /// Label → code lookup.
        interner: HashMap<String, u32>,
    },
    /// Builds an ordinal column.
    Ordinal(Vec<i64>),
}

impl ColumnBuilder {
    /// A fresh builder for `kind`.
    pub fn new(kind: FeatureKind) -> Self {
        match kind {
            FeatureKind::Continuous => ColumnBuilder::Continuous(Vec::new()),
            FeatureKind::Nominal => ColumnBuilder::Nominal {
                codes: Vec::new(),
                labels: Vec::new(),
                interner: HashMap::new(),
            },
            FeatureKind::Ordinal => ColumnBuilder::Ordinal(Vec::new()),
        }
    }

    /// The kind this builder produces.
    pub fn kind(&self) -> FeatureKind {
        match self {
            ColumnBuilder::Continuous(_) => FeatureKind::Continuous,
            ColumnBuilder::Nominal { .. } => FeatureKind::Nominal,
            ColumnBuilder::Ordinal(_) => FeatureKind::Ordinal,
        }
    }

    /// Number of values pushed so far.
    pub fn len(&self) -> usize {
        match self {
            ColumnBuilder::Continuous(data) => data.len(),
            ColumnBuilder::Nominal { codes, .. } => codes.len(),
            ColumnBuilder::Ordinal(data) => data.len(),
        }
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Reserves capacity for `additional` more values.
    pub fn reserve(&mut self, additional: usize) {
        match self {
            ColumnBuilder::Continuous(data) => data.reserve(additional),
            ColumnBuilder::Nominal { codes, .. } => codes.reserve(additional),
            ColumnBuilder::Ordinal(data) => data.reserve(additional),
        }
    }

    /// Appends a continuous value.
    ///
    /// # Panics
    ///
    /// Panics if this is not a continuous builder.
    pub fn push_f64(&mut self, v: f64) {
        match self {
            ColumnBuilder::Continuous(data) => data.push(v),
            other => panic!("push_f64 on {} column builder", other.kind()),
        }
    }

    /// Appends an ordinal value.
    ///
    /// # Panics
    ///
    /// Panics if this is not an ordinal builder.
    pub fn push_i64(&mut self, v: i64) {
        match self {
            ColumnBuilder::Ordinal(data) => data.push(v),
            other => panic!("push_i64 on {} column builder", other.kind()),
        }
    }

    /// Interns `label` (first-seen order) and returns its code without
    /// pushing a row. Emission loops intern each label once, then call
    /// [`ColumnBuilder::push_code`] per row.
    ///
    /// # Panics
    ///
    /// Panics if this is not a nominal builder.
    pub fn intern(&mut self, label: &str) -> u32 {
        match self {
            ColumnBuilder::Nominal { labels, interner, .. } => {
                if let Some(&code) = interner.get(label) {
                    return code;
                }
                let code = labels.len() as u32;
                labels.push(label.to_owned());
                interner.insert(label.to_owned(), code);
                code
            }
            other => panic!("intern on {} column builder", other.kind()),
        }
    }

    /// Appends a previously interned code.
    ///
    /// # Panics
    ///
    /// Panics if this is not a nominal builder or `code` was never
    /// returned by [`ColumnBuilder::intern`].
    pub fn push_code(&mut self, code: u32) {
        match self {
            ColumnBuilder::Nominal { codes, labels, .. } => {
                assert!((code as usize) < labels.len(), "code {code} has no interned label");
                codes.push(code);
            }
            other => panic!("push_code on {} column builder", other.kind()),
        }
    }

    /// Interns `label` and appends its code in one step.
    ///
    /// # Panics
    ///
    /// Panics if this is not a nominal builder.
    pub fn push_label(&mut self, label: &str) {
        let code = self.intern(label);
        match self {
            ColumnBuilder::Nominal { codes, .. } => codes.push(code),
            _ => unreachable!("intern already checked the kind"),
        }
    }

    fn finish(self) -> Column {
        match self {
            ColumnBuilder::Continuous(data) => Column::Continuous(data),
            ColumnBuilder::Ordinal(data) => Column::Ordinal(data),
            ColumnBuilder::Nominal { codes, labels, .. } => {
                Column::Nominal { codes, dict: Dictionary::new(labels) }
            }
        }
    }
}

/// Builds a [`Frame`] column-wise.
///
/// # Example
///
/// ```
/// use rainshine_telemetry::frame::FrameBuilder;
/// use rainshine_telemetry::table::{Field, FeatureKind, Schema};
///
/// let schema = Schema::new(vec![
///     Field::new("temp", FeatureKind::Continuous),
///     Field::new("sku", FeatureKind::Nominal),
/// ]);
/// let mut b = FrameBuilder::new(schema);
/// let [temp, sku] = b.columns_mut() else { unreachable!() };
/// let s1 = sku.intern("S1");
/// for day in 0..3 {
///     temp.push_f64(65.0 + day as f64);
///     sku.push_code(s1);
/// }
/// let frame = b.build()?;
/// assert_eq!(frame.rows(), 3);
/// assert_eq!(frame.nominal_codes("sku")?, &[0, 0, 0]);
/// # Ok::<(), rainshine_telemetry::TelemetryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FrameBuilder {
    schema: Arc<Schema>,
    columns: Vec<ColumnBuilder>,
}

impl FrameBuilder {
    /// Creates a builder with one [`ColumnBuilder`] per schema field.
    pub fn new(schema: Schema) -> Self {
        FrameBuilder::with_schema_arc(Arc::new(schema))
    }

    /// Like [`FrameBuilder::new`] but sharing an existing schema handle.
    pub fn with_schema_arc(schema: Arc<Schema>) -> Self {
        let columns = schema.fields().iter().map(|f| ColumnBuilder::new(f.kind)).collect();
        FrameBuilder { schema, columns }
    }

    /// The target schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// All column builders, for split borrows in emission loops.
    pub fn columns_mut(&mut self) -> &mut [ColumnBuilder] {
        &mut self.columns
    }

    /// The builder for the column at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn column_mut(&mut self, idx: usize) -> &mut ColumnBuilder {
        &mut self.columns[idx]
    }

    /// Reserves capacity for `additional` rows in every column.
    pub fn reserve(&mut self, additional: usize) {
        for col in &mut self.columns {
            col.reserve(additional);
        }
    }

    /// Appends one row from cell values (the row-oriented compatibility
    /// path used by [`crate::table::TableBuilder`]).
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::RowArity`] for a wrong-length row and
    /// [`TelemetryError::ValueKind`] if a value does not match its
    /// column's kind. A failed push leaves the builder intact.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<&mut Self> {
        if row.len() != self.schema.len() {
            return Err(TelemetryError::RowArity { expected: self.schema.len(), got: row.len() });
        }
        // Validate before mutating so a failed push leaves the builder intact.
        for (i, v) in row.iter().enumerate() {
            let ok = matches!(
                (&self.columns[i], v),
                (ColumnBuilder::Continuous(_), Value::Continuous(_))
                    | (ColumnBuilder::Nominal { .. }, Value::Nominal(_))
                    | (ColumnBuilder::Ordinal(_), Value::Ordinal(_))
            );
            if !ok {
                return Err(TelemetryError::ValueKind { column: i });
            }
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            match v {
                Value::Continuous(x) => col.push_f64(x),
                Value::Ordinal(x) => col.push_i64(x),
                Value::Nominal(label) => col.push_label(&label),
            }
        }
        Ok(self)
    }

    /// Finalizes the frame.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::RowArity`] if the columns were left at
    /// different lengths.
    pub fn build(self) -> Result<Frame> {
        let rows = self.columns.first().map_or(0, ColumnBuilder::len);
        for col in &self.columns {
            if col.len() != rows {
                return Err(TelemetryError::RowArity { expected: rows, got: col.len() });
            }
        }
        let columns = self.columns.into_iter().map(ColumnBuilder::finish).collect();
        Ok(Frame { schema: self.schema, columns, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Field;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("k", FeatureKind::Nominal),
            Field::new("o", FeatureKind::Ordinal),
        ])
    }

    fn sample_frame() -> Frame {
        let mut b = FrameBuilder::new(sample_schema());
        let [x, k, o] = b.columns_mut() else { unreachable!() };
        for (xv, kv, ov) in [(1.0, "a", 0i64), (2.0, "b", 1), (3.0, "a", 2), (4.0, "c", 0)] {
            x.push_f64(xv);
            k.push_label(kv);
            o.push_i64(ov);
        }
        b.build().unwrap()
    }

    #[test]
    fn columnar_assembly_matches_row_assembly() {
        let f = sample_frame();
        assert_eq!(f.rows(), 4);
        assert_eq!(f.continuous("x").unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(f.nominal_codes("k").unwrap(), &[0, 1, 0, 2]);
        assert_eq!(f.dictionary("k").unwrap().labels(), &["a", "b", "c"]);
        assert_eq!(f.ordinal("o").unwrap(), &[0, 1, 2, 0]);
    }

    #[test]
    fn intern_then_push_code_skips_reinterning() {
        let mut b = FrameBuilder::new(Schema::new(vec![Field::new("k", FeatureKind::Nominal)]));
        let k = b.column_mut(0);
        let a = k.intern("a");
        let b2 = k.intern("b");
        assert_eq!(k.intern("a"), a);
        k.push_code(b2);
        k.push_code(a);
        let f = b.build().unwrap();
        assert_eq!(f.nominal_codes("k").unwrap(), &[1, 0]);
    }

    #[test]
    fn build_rejects_ragged_columns() {
        let mut b = FrameBuilder::new(sample_schema());
        b.column_mut(0).push_f64(1.0);
        assert!(matches!(b.build(), Err(TelemetryError::RowArity { .. })));
    }

    #[test]
    fn subset_shares_schema_and_dictionaries() {
        let f = sample_frame();
        let s = f.subset(&[3, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.continuous("x").unwrap(), &[4.0, 1.0]);
        assert_eq!(s.nominal_codes("k").unwrap(), &[2, 0]);
        assert!(s.dictionary("k").unwrap().same_allocation(f.dictionary("k").unwrap()));
        assert!(Arc::ptr_eq(&s.schema, &f.schema));
    }

    #[test]
    fn view_borrows_without_gathering() {
        let f = sample_frame();
        let rows = [1, 3];
        let v = f.view(&rows);
        assert_eq!(v.len(), 2);
        assert_eq!(v.gather_continuous("x").unwrap(), vec![2.0, 4.0]);
        assert_eq!(v.gather_codes("k").unwrap(), vec![1, 2]);
        assert_eq!(v.gather_ordinal("o").unwrap(), vec![1, 0]);
        assert_eq!(v.materialize(), f.subset(&rows));
    }

    #[test]
    fn frame_new_validates_shape() {
        let schema = Arc::new(sample_schema());
        // Wrong column count.
        assert!(matches!(
            Frame::new(Arc::clone(&schema), vec![Column::Continuous(vec![1.0])]),
            Err(TelemetryError::RowArity { .. })
        ));
        // Kind mismatch.
        let cols = vec![
            Column::Ordinal(vec![1]),
            Column::Nominal { codes: vec![0], dict: Dictionary::new(vec!["a".into()]) },
            Column::Ordinal(vec![1]),
        ];
        assert!(matches!(
            Frame::new(Arc::clone(&schema), cols),
            Err(TelemetryError::ValueKind { column: 0 })
        ));
        // Ragged lengths.
        let cols = vec![
            Column::Continuous(vec![1.0, 2.0]),
            Column::Nominal { codes: vec![0], dict: Dictionary::new(vec!["a".into()]) },
            Column::Ordinal(vec![1, 2]),
        ];
        assert!(matches!(Frame::new(schema, cols), Err(TelemetryError::RowArity { .. })));
    }

    #[test]
    fn frame_serde_round_trips() {
        let f = sample_frame();
        let v = serde::Serialize::to_value(&f);
        let back: Frame = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn dictionary_equality_and_sharing() {
        let d1 = Dictionary::new(vec!["a".into(), "b".into()]);
        let d2 = d1.clone();
        let d3 = Dictionary::new(vec!["a".into(), "b".into()]);
        assert!(d1.same_allocation(&d2));
        assert!(!d1.same_allocation(&d3));
        assert_eq!(d1, d3);
        assert_eq!(d1.code_of("b"), Some(1));
        assert_eq!(d1.label(0), Some("a"));
        assert_eq!(d1.label(9), None);
    }
}
