//! A typed columnar table.
//!
//! CART (and the analysis framework generally) consumes datasets whose
//! columns are **continuous**, **nominal** (categorical without order, e.g.
//! SKU or DC), or **ordinal** (categorical with order, e.g. day-of-week) —
//! exactly the three feature types of the paper's Table III. [`Table`]
//! stores each column natively (f64 / interned category codes / i64) and
//! offers the row-subset and group-by operations tree building needs.
//!
//! Since the columnar refactor, `Table` is a thin wrapper around
//! [`crate::frame::Frame`]: the row-oriented [`TableBuilder::push_row`] API
//! and every accessor are unchanged, but storage, subsetting (which now
//! shares schema and category dictionaries instead of cloning them), and
//! serialization live in the frame layer. Hot paths assemble frames
//! column-wise with [`crate::frame::FrameBuilder`] and wrap the result via
//! [`Table::from_frame`].

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::frame::{Column, Frame, FrameBuilder, FrameView};
use crate::Result;

/// The type of a feature column (Table III's C / N / O).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Real-valued (temperature, age, rated power).
    Continuous,
    /// Categorical without implicit order (SKU, workload, DC, rack).
    Nominal,
    /// Categorical with order (day, week, month, year).
    Ordinal,
}

impl FeatureKind {
    fn name(&self) -> &'static str {
        match self {
            FeatureKind::Continuous => "continuous",
            FeatureKind::Nominal => "nominal",
            FeatureKind::Ordinal => "ordinal",
        }
    }
}

impl fmt::Display for FeatureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, typed column declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Column type.
    pub kind: FeatureKind,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, kind: FeatureKind) -> Self {
        Field { name: name.into(), kind }
    }
}

/// An ordered set of fields.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    ///
    /// # Panics
    ///
    /// Panics if two fields share a name.
    pub fn new(fields: Vec<Field>) -> Self {
        for (i, f) in fields.iter().enumerate() {
            assert!(
                !fields[..i].iter().any(|g| g.name == f.name),
                "duplicate field name `{}`",
                f.name
            );
        }
        Schema { fields }
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }
}

/// A single cell value, used when assembling rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A continuous observation.
    Continuous(f64),
    /// A nominal category label (interned on insert).
    Nominal(String),
    /// An ordinal level.
    Ordinal(i64),
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Continuous(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Nominal(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Nominal(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Ordinal(v)
    }
}

/// Builds a [`Table`] row by row.
#[derive(Debug, Clone)]
pub struct TableBuilder {
    inner: FrameBuilder,
}

impl TableBuilder {
    /// Creates a builder for `schema`.
    pub fn new(schema: Schema) -> Self {
        TableBuilder { inner: FrameBuilder::new(schema) }
    }

    /// Appends one row.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TelemetryError::RowArity`] for a wrong-length row
    /// and [`crate::TelemetryError::ValueKind`] if a value does not match
    /// its column's kind.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<&mut Self> {
        self.inner.push_row(row)?;
        Ok(self)
    }

    /// Finalizes the table.
    pub fn build(self) -> Table {
        let frame = self.inner.build().expect("push_row keeps all columns at the same length");
        Table { frame }
    }
}

/// An immutable typed columnar table.
///
/// # Example
///
/// ```
/// use rainshine_telemetry::table::{Field, FeatureKind, Schema, TableBuilder, Value};
///
/// let schema = Schema::new(vec![
///     Field::new("temp", FeatureKind::Continuous),
///     Field::new("sku", FeatureKind::Nominal),
/// ]);
/// let mut b = TableBuilder::new(schema);
/// b.push_row(vec![Value::Continuous(72.0), Value::Nominal("S1".into())])?;
/// b.push_row(vec![Value::Continuous(80.5), Value::Nominal("S2".into())])?;
/// let table = b.build();
/// assert_eq!(table.rows(), 2);
/// assert_eq!(table.continuous("temp")?[1], 80.5);
/// # Ok::<(), rainshine_telemetry::TelemetryError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    frame: Frame,
}

impl Table {
    /// Wraps a column-assembled frame as a table.
    pub fn from_frame(frame: Frame) -> Table {
        Table { frame }
    }

    /// The underlying columnar frame.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// Unwraps into the underlying frame.
    pub fn into_frame(self) -> Frame {
        self.frame
    }

    /// A borrowed view of `rows` over the underlying frame — no copying.
    pub fn view<'a>(&'a self, rows: &'a [usize]) -> FrameView<'a> {
        self.frame.view(rows)
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        self.frame.schema()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.frame.rows()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.frame.is_empty()
    }

    /// The values of a continuous column.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not continuous.
    pub fn continuous(&self, name: &str) -> Result<&[f64]> {
        self.frame.continuous(name)
    }

    /// The codes of a nominal column (indices into [`Table::categories`]).
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not nominal.
    pub fn nominal_codes(&self, name: &str) -> Result<&[u32]> {
        self.frame.nominal_codes(name)
    }

    /// The category labels of a nominal column, indexed by code.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not nominal.
    pub fn categories(&self, name: &str) -> Result<&[String]> {
        Ok(self.frame.dictionary(name)?.labels())
    }

    /// The values of an ordinal column.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not ordinal.
    pub fn ordinal(&self, name: &str) -> Result<&[i64]> {
        self.frame.ordinal(name)
    }

    /// A column's values coerced to `f64`, regardless of kind. Nominal
    /// columns yield their codes — useful for generic iteration, **not** for
    /// arithmetic on nominal features.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing.
    pub fn as_f64(&self, name: &str) -> Result<Vec<f64>> {
        Ok(match self.frame.column_by_name(name)? {
            (_, Column::Continuous(data)) => data.clone(),
            (_, Column::Nominal { codes, .. }) => codes.iter().map(|&c| c as f64).collect(),
            (_, Column::Ordinal(data)) => data.iter().map(|&v| v as f64).collect(),
        })
    }

    /// Row indices satisfying `predicate` on a continuous column.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not continuous.
    pub fn filter_continuous<F: Fn(f64) -> bool>(
        &self,
        name: &str,
        predicate: F,
    ) -> Result<Vec<usize>> {
        Ok(self
            .continuous(name)?
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| predicate(v).then_some(i))
            .collect())
    }

    /// Row indices whose nominal column equals `label`.
    ///
    /// Returns an empty vector if the label never occurs.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not nominal.
    pub fn filter_nominal(&self, name: &str, label: &str) -> Result<Vec<usize>> {
        let Some(code) = self.frame.dictionary(name)?.code_of(label) else {
            return Ok(Vec::new());
        };
        Ok(self
            .nominal_codes(name)?
            .iter()
            .enumerate()
            .filter_map(|(i, &c)| (c == code).then_some(i))
            .collect())
    }

    /// Groups row indices by the code of a nominal column.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not nominal.
    pub fn group_by_nominal(&self, name: &str) -> Result<BTreeMap<u32, Vec<usize>>> {
        let codes = self.nominal_codes(name)?;
        let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (i, &c) in codes.iter().enumerate() {
            groups.entry(c).or_default().push(i);
        }
        Ok(groups)
    }

    /// Materializes a new table containing only `rows` (in the given order).
    /// The schema and all category dictionaries are shared, not cloned.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, rows: &[usize]) -> Table {
        Table { frame: self.frame.subset(rows) }
    }

    /// The nominal label of `row` in column `name`.
    ///
    /// # Errors
    ///
    /// Returns an error if the column is missing or not nominal.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn nominal_label(&self, name: &str, row: usize) -> Result<&str> {
        let codes = self.nominal_codes(name)?;
        let cats = self.categories(name)?;
        Ok(&cats[codes[row] as usize])
    }
}

// `Table` keeps the exact pre-frame serialized shape by delegating to
// `Frame`, which writes `{ schema, columns, rows }`.
impl Serialize for Table {
    fn to_value(&self) -> serde::Value {
        self.frame.to_value()
    }
}

impl Deserialize for Table {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Frame::from_value(v).map(|frame| Table { frame })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TelemetryError;

    fn sample_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("k", FeatureKind::Nominal),
            Field::new("o", FeatureKind::Ordinal),
        ]);
        let mut b = TableBuilder::new(schema);
        for (x, k, o) in [(1.0, "a", 0i64), (2.0, "b", 1), (3.0, "a", 2), (4.0, "c", 0)] {
            b.push_row(vec![x.into(), k.into(), o.into()]).unwrap();
        }
        b.build()
    }

    #[test]
    fn builds_and_reads_columns() {
        let t = sample_table();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.continuous("x").unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.ordinal("o").unwrap(), &[0, 1, 2, 0]);
        assert_eq!(t.categories("k").unwrap(), &["a", "b", "c"]);
        assert_eq!(t.nominal_codes("k").unwrap(), &[0, 1, 0, 2]);
        assert_eq!(t.nominal_label("k", 3).unwrap(), "c");
    }

    #[test]
    fn interning_reuses_codes() {
        let t = sample_table();
        // "a" appears twice with the same code.
        let codes = t.nominal_codes("k").unwrap();
        assert_eq!(codes[0], codes[2]);
    }

    #[test]
    fn kind_mismatch_errors() {
        let t = sample_table();
        assert!(matches!(t.continuous("k"), Err(TelemetryError::KindMismatch { .. })));
        assert!(matches!(t.nominal_codes("x"), Err(TelemetryError::KindMismatch { .. })));
        assert!(matches!(t.ordinal("k"), Err(TelemetryError::KindMismatch { .. })));
        assert!(matches!(t.continuous("nope"), Err(TelemetryError::UnknownColumn { .. })));
    }

    #[test]
    fn push_row_validates_arity_and_kind() {
        let schema = Schema::new(vec![Field::new("x", FeatureKind::Continuous)]);
        let mut b = TableBuilder::new(schema);
        assert!(matches!(
            b.push_row(vec![]),
            Err(TelemetryError::RowArity { expected: 1, got: 0 })
        ));
        assert!(matches!(
            b.push_row(vec![Value::Nominal("a".into())]),
            Err(TelemetryError::ValueKind { column: 0 })
        ));
        // Failed pushes leave the builder usable.
        b.push_row(vec![Value::Continuous(1.0)]).unwrap();
        assert_eq!(b.build().rows(), 1);
    }

    #[test]
    fn filter_and_group() {
        let t = sample_table();
        assert_eq!(t.filter_continuous("x", |v| v > 2.5).unwrap(), vec![2, 3]);
        assert_eq!(t.filter_nominal("k", "a").unwrap(), vec![0, 2]);
        assert_eq!(t.filter_nominal("k", "zzz").unwrap(), Vec::<usize>::new());
        let groups = t.group_by_nominal("k").unwrap();
        assert_eq!(groups[&0], vec![0, 2]);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn subset_preserves_categories() {
        let t = sample_table();
        let s = t.subset(&[3, 0]);
        assert_eq!(s.rows(), 2);
        assert_eq!(s.continuous("x").unwrap(), &[4.0, 1.0]);
        assert_eq!(s.nominal_label("k", 0).unwrap(), "c");
        assert_eq!(s.categories("k").unwrap(), t.categories("k").unwrap());
        // The refactor made this sharing, not copying.
        assert!(s
            .frame()
            .dictionary("k")
            .unwrap()
            .same_allocation(t.frame().dictionary("k").unwrap()));
    }

    #[test]
    fn as_f64_coerces_all_kinds() {
        let t = sample_table();
        assert_eq!(t.as_f64("x").unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.as_f64("k").unwrap(), vec![0.0, 1.0, 0.0, 2.0]);
        assert_eq!(t.as_f64("o").unwrap(), vec![0.0, 1.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate field name")]
    fn schema_rejects_duplicates() {
        Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("x", FeatureKind::Nominal),
        ]);
    }

    #[test]
    fn view_selects_rows_without_copying() {
        let t = sample_table();
        let rows = [0, 2];
        let v = t.view(&rows);
        assert_eq!(v.gather_continuous("x").unwrap(), vec![1.0, 3.0]);
        assert_eq!(Table::from_frame(v.materialize()), t.subset(&rows));
    }
}
