//! Robust ingestion: sanitizing dirty RMA/telemetry streams.
//!
//! Real cloud reliability data is never clean — the paper's premise is that
//! useful conclusions must survive duplicated tickets, inverted or skewed
//! intervals, mislabeled locations, censored resolution times, and flaky
//! environmental sensors. This module is the ingestion side of that story:
//! a [`Sanitizer`] that repairs what it can, quarantines what it cannot,
//! and accounts for every row in a structured [`DataQualityReport`] instead
//! of silently dropping data.
//!
//! The sanitizer is deliberately conservative: every repair is either exact
//! (location restored from the fleet manifest, inverted interval swapped
//! back) or clearly marked as an imputation (censored resolution times get
//! the per-fault median outage). On a clean stream it is a bit-identical
//! no-op.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{DcId, RackId, RegionId, RowId};
use crate::rma::{FaultKind, RmaTicket};
use crate::time::SimTime;

/// The defect taxonomy the ingestion layer detects and accounts for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DefectClass {
    /// Same fault reported more than once for one device (pipeline retry).
    DuplicateTicket,
    /// `resolved < opened` — timestamps swapped at ingestion.
    InvertedInterval,
    /// Ticket opened outside the observation span (clock skew).
    ClockSkew,
    /// Location fields inconsistent with the fleet inventory.
    MislabeledLocation,
    /// `resolved == opened` — resolution time lost (censored).
    CensoredResolution,
    /// Environmental sensor reading far outside physical bounds.
    SensorSpike,
    /// Environmental sensor cell missing entirely (blackout window).
    SensorBlackout,
}

impl DefectClass {
    /// All defect classes, in report order.
    pub const ALL: [DefectClass; 7] = [
        DefectClass::DuplicateTicket,
        DefectClass::InvertedInterval,
        DefectClass::ClockSkew,
        DefectClass::MislabeledLocation,
        DefectClass::CensoredResolution,
        DefectClass::SensorSpike,
        DefectClass::SensorBlackout,
    ];

    /// Stable machine-readable name (used as the serialized map key).
    pub fn name(&self) -> &'static str {
        match self {
            DefectClass::DuplicateTicket => "duplicate_ticket",
            DefectClass::InvertedInterval => "inverted_interval",
            DefectClass::ClockSkew => "clock_skew",
            DefectClass::MislabeledLocation => "mislabeled_location",
            DefectClass::CensoredResolution => "censored_resolution",
            DefectClass::SensorSpike => "sensor_spike",
            DefectClass::SensorBlackout => "sensor_blackout",
        }
    }
}

impl fmt::Display for DefectClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl serde::MapKey for DefectClass {
    fn to_key(&self) -> String {
        self.name().to_string()
    }

    fn from_key(s: &str) -> std::result::Result<Self, serde::Error> {
        DefectClass::ALL
            .into_iter()
            .find(|c| c.name() == s)
            .ok_or_else(|| serde::Error::custom(format!("unknown defect class `{s}`")))
    }
}

/// Per-class defect accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefectCounts {
    /// Defective rows (or env cells) detected.
    pub detected: u64,
    /// Rows fixed in place and kept.
    pub repaired: u64,
    /// Rows removed from the sanitized stream.
    pub quarantined: u64,
}

/// Structured account of everything the ingestion layer saw and did.
///
/// Every row of the raw stream ends up in exactly one bucket: kept
/// unchanged, repaired, or quarantined — there are no silent drops.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DataQualityReport {
    /// Rows in the raw ticket stream.
    pub tickets_seen: u64,
    /// Rows in the sanitized stream (flagged false positives included).
    pub tickets_kept: u64,
    /// Rows flagged `false_positive` and passed through untouched (the
    /// analysis layer, not the sanitizer, decides what to do with them).
    pub false_positives_flagged: u64,
    /// Per-class defect counts.
    pub classes: BTreeMap<DefectClass, DefectCounts>,
    /// Environmental sensor cells audited (DC-region × day).
    pub env_cells_seen: u64,
    /// False positives excluded downstream by `rma::true_positives_audited`.
    pub false_positives_excluded: u64,
    /// Invalid tickets dropped downstream by `rma::true_positives_audited`
    /// (zero after sanitization — the sanitizer repairs or quarantines them).
    pub invalid_dropped: u64,
}

impl DataQualityReport {
    /// Counts for one defect class (zero if never recorded).
    pub fn counts(&self, class: DefectClass) -> DefectCounts {
        self.classes.get(&class).copied().unwrap_or_default()
    }

    /// Records one detected defect, repaired (`true`) or quarantined.
    pub fn record(&mut self, class: DefectClass, repaired: bool) {
        let c = self.classes.entry(class).or_default();
        c.detected += 1;
        if repaired {
            c.repaired += 1;
        } else {
            c.quarantined += 1;
        }
    }

    /// Total defects detected across all classes.
    pub fn total_detected(&self) -> u64 {
        self.classes.values().map(|c| c.detected).sum()
    }

    /// Total rows/cells quarantined across all classes.
    pub fn total_quarantined(&self) -> u64 {
        self.classes.values().map(|c| c.quarantined).sum()
    }
}

impl fmt::Display for DataQualityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "data quality: {} tickets seen, {} kept ({} false positives flagged), {} env cells",
            self.tickets_seen, self.tickets_kept, self.false_positives_flagged, self.env_cells_seen
        )?;
        for class in DefectClass::ALL {
            let c = self.counts(class);
            if c.detected > 0 {
                writeln!(
                    f,
                    "  {:<20} detected {:>6}  repaired {:>6}  quarantined {:>6}",
                    class.name(),
                    c.detected,
                    c.repaired,
                    c.quarantined
                )?;
            }
        }
        if self.total_detected() == 0 {
            writeln!(f, "  no defects detected")?;
        }
        Ok(())
    }
}

/// Inventory record for one rack: the ground truth the sanitizer checks
/// ticket locations against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackRecord {
    /// Datacenter hosting the rack.
    pub dc: DcId,
    /// Cooling region within the DC.
    pub region: RegionId,
    /// Row within the region.
    pub row: RowId,
    /// First server id in the rack.
    pub server_id_base: u32,
    /// Servers in the rack.
    pub servers: u32,
}

/// Fleet inventory keyed by rack id — rack ids are globally unique, so a
/// ticket's rack id pins down every other location field.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetManifest {
    racks: BTreeMap<u32, RackRecord>,
}

impl FleetManifest {
    /// Empty manifest (every rack unknown).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a rack.
    pub fn insert(&mut self, rack: RackId, record: RackRecord) {
        self.racks.insert(rack.0, record);
    }

    /// Looks up a rack.
    pub fn get(&self, rack: RackId) -> Option<&RackRecord> {
        self.racks.get(&rack.0)
    }

    /// Registered racks.
    pub fn len(&self) -> usize {
        self.racks.len()
    }

    /// Whether no racks are registered.
    pub fn is_empty(&self) -> bool {
        self.racks.is_empty()
    }
}

/// Physical plausibility bounds for environmental sensor readings.
///
/// The bounds bracket everything the simulated cooling plants can produce
/// (inlet temperature is clamped to 56–90 °F, RH to roughly 5–87 %), so
/// winsorizing never touches a genuine reading — only sensor spikes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorBounds {
    /// Lowest plausible inlet temperature (°F).
    pub temp_min_f: f64,
    /// Highest plausible inlet temperature (°F).
    pub temp_max_f: f64,
    /// Lowest plausible relative humidity (%).
    pub rh_min: f64,
    /// Highest plausible relative humidity (%).
    pub rh_max: f64,
}

impl Default for SensorBounds {
    fn default() -> Self {
        Self { temp_min_f: 50.0, temp_max_f: 95.0, rh_min: 3.0, rh_max: 90.0 }
    }
}

impl SensorBounds {
    /// Winsorizes a temperature reading; returns the clamped value and
    /// whether clamping fired. NaN (blackout) passes through unchanged.
    pub fn winsorize_temp(&self, t: f64) -> (f64, bool) {
        if !t.is_finite() {
            return (t, false);
        }
        let clamped = t.clamp(self.temp_min_f, self.temp_max_f);
        (clamped, clamped != t)
    }

    /// Winsorizes a relative-humidity reading; same contract as
    /// [`winsorize_temp`](Self::winsorize_temp).
    pub fn winsorize_rh(&self, rh: f64) -> (f64, bool) {
        if !rh.is_finite() {
            return (rh, false);
        }
        let clamped = rh.clamp(self.rh_min, self.rh_max);
        (clamped, clamped != rh)
    }
}

/// Sanitizer settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SanitizerConfig {
    /// Observation span start (tickets must open at or after this).
    pub span_start: SimTime,
    /// Observation span end (tickets must open strictly before this).
    pub span_end: SimTime,
    /// Two reports of the same (device, fault, resolution) whose open
    /// times are within this window are one event.
    pub dedup_window_hours: u64,
    /// Plausibility bounds for sensor readings.
    pub bounds: SensorBounds,
}

impl SanitizerConfig {
    /// Default settings for an observation span.
    pub fn for_span(start: SimTime, end: SimTime) -> Self {
        Self {
            span_start: start,
            span_end: end,
            dedup_window_hours: 6,
            bounds: SensorBounds::default(),
        }
    }
}

/// Fallback imputed outage (hours) when a fault class has no clean
/// exemplars to take a median from.
const FALLBACK_OUTAGE_HOURS: u64 = 4;

/// Repairs-or-quarantines a raw ticket stream against a fleet manifest.
#[derive(Debug, Clone)]
pub struct Sanitizer {
    manifest: FleetManifest,
    config: SanitizerConfig,
}

impl Sanitizer {
    /// Builds a sanitizer for one fleet and observation span.
    pub fn new(manifest: FleetManifest, config: SanitizerConfig) -> Self {
        Self { manifest, config }
    }

    /// The active settings.
    pub fn config(&self) -> &SanitizerConfig {
        &self.config
    }

    /// Sanitizes a ticket stream.
    ///
    /// Passes, in order:
    /// 1. flagged false positives pass through untouched (counted);
    /// 2. locations are checked against the manifest and repaired from the
    ///    rack record (rack ids are globally unique);
    /// 3. tickets opened outside the span are quarantined (clock skew);
    /// 4. inverted intervals are swapped back;
    /// 5. censored resolutions (`resolved == opened`) get the per-fault
    ///    median outage imputed from the clean part of the stream;
    /// 6. repeated reports of one (device, fault, resolution, location)
    ///    within the dedup window collapse to the earliest;
    /// 7. the stream is re-sorted by `(opened, rack, device)`.
    ///
    /// The returned report accounts for every input row. On a stream with
    /// no defects the output is bit-identical to the input.
    pub fn sanitize(&self, tickets: &[RmaTicket]) -> (Vec<RmaTicket>, DataQualityReport) {
        let mut report =
            DataQualityReport { tickets_seen: tickets.len() as u64, ..Default::default() };

        // Passes 1–4: pass-through, location repair, span check, un-invert.
        let mut kept: Vec<RmaTicket> = Vec::with_capacity(tickets.len());
        let mut censored: Vec<usize> = Vec::new();
        for t in tickets {
            if t.false_positive {
                report.false_positives_flagged += 1;
                kept.push(t.clone());
                continue;
            }
            let mut t = t.clone();
            match self.manifest.get(t.location.rack) {
                Some(rec) => {
                    if t.location.dc != rec.dc
                        || t.location.region != rec.region
                        || t.location.row != rec.row
                    {
                        t.location.dc = rec.dc;
                        t.location.region = rec.region;
                        t.location.row = rec.row;
                        report.record(DefectClass::MislabeledLocation, true);
                    }
                }
                None => {
                    if !self.manifest.is_empty() {
                        // Unknown rack: nothing to repair against.
                        report.record(DefectClass::MislabeledLocation, false);
                        continue;
                    }
                }
            }
            if t.opened < self.config.span_start || t.opened >= self.config.span_end {
                report.record(DefectClass::ClockSkew, false);
                continue;
            }
            if t.resolved < t.opened {
                std::mem::swap(&mut t.opened, &mut t.resolved);
                report.record(DefectClass::InvertedInterval, true);
            }
            if t.resolved == t.opened {
                censored.push(kept.len());
            }
            kept.push(t);
        }

        // Pass 5: impute censored resolutions from the clean population.
        if !censored.is_empty() {
            let medians = median_outage_by_fault(&kept);
            for &i in &censored {
                let t = &mut kept[i];
                let hours = medians.get(&t.fault).copied().unwrap_or(FALLBACK_OUTAGE_HOURS);
                t.resolved = SimTime(t.opened.hours().saturating_add(hours.max(1)));
                report.record(DefectClass::CensoredResolution, true);
            }
        }

        // Pass 6: dedup. Two non-FP tickets are duplicates when every field
        // except `opened` matches and the open times are within the window;
        // the earliest report is the event, the rest are pipeline retries.
        let mut earliest: BTreeMap<DedupKey, SimTime> = BTreeMap::new();
        for t in &kept {
            if t.false_positive {
                continue;
            }
            let key = DedupKey::of(t);
            earliest
                .entry(key)
                .and_modify(|first| {
                    if t.opened < *first {
                        *first = t.opened;
                    }
                })
                .or_insert(t.opened);
        }
        let window = self.config.dedup_window_hours;
        let mut seen: BTreeMap<DedupKey, u64> = BTreeMap::new();
        let mut out: Vec<RmaTicket> = Vec::with_capacity(kept.len());
        for t in kept {
            if t.false_positive {
                out.push(t);
                continue;
            }
            let key = DedupKey::of(&t);
            let first = earliest[&key];
            let within = t.opened.hours().saturating_sub(first.hours()) <= window;
            let repeats = seen.entry(key).or_insert(0);
            if within && *repeats > 0 {
                report.record(DefectClass::DuplicateTicket, false);
                continue;
            }
            *repeats += 1;
            out.push(t);
        }

        // Pass 7: restore canonical stream order. Stable sort on the same
        // key the simulator uses, so an already-clean stream is untouched.
        out.sort_by(|a, b| {
            (a.opened, a.location.rack, a.device).cmp(&(b.opened, b.location.rack, b.device))
        });

        report.tickets_kept = out.len() as u64;
        (out, report)
    }
}

/// Identity of a failure event for dedup: everything but the open time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct DedupKey {
    device: u64,
    fault: FaultKind,
    resolved: SimTime,
    rack: u32,
    server: u32,
    repeat_count: u32,
}

impl DedupKey {
    fn of(t: &RmaTicket) -> Self {
        Self {
            device: t.device.0,
            fault: t.fault,
            resolved: t.resolved,
            rack: t.location.rack.0,
            server: t.location.server.0,
            repeat_count: t.repeat_count,
        }
    }
}

/// Median outage hours per fault kind over valid, uncensored tickets.
fn median_outage_by_fault(tickets: &[RmaTicket]) -> BTreeMap<FaultKind, u64> {
    let mut samples: BTreeMap<FaultKind, Vec<u64>> = BTreeMap::new();
    for t in tickets {
        if t.false_positive || t.resolved <= t.opened {
            continue;
        }
        samples.entry(t.fault).or_default().push(t.outage_hours());
    }
    samples
        .into_iter()
        .map(|(fault, mut hours)| {
            hours.sort_unstable();
            (fault, hours[hours.len() / 2])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{DeviceId, ServerId, ServerLocation};

    fn manifest() -> FleetManifest {
        let mut m = FleetManifest::new();
        for rack in 1..=4u32 {
            m.insert(
                RackId(rack),
                RackRecord {
                    dc: DcId(if rack <= 2 { 1 } else { 2 }),
                    region: RegionId(1),
                    row: RowId(1),
                    server_id_base: (rack - 1) * 40 + 1,
                    servers: 40,
                },
            );
        }
        m
    }

    fn ticket(rack: u32, device: u64, opened: u64, resolved: u64) -> RmaTicket {
        RmaTicket {
            device: DeviceId(device),
            location: ServerLocation {
                dc: DcId(if rack <= 2 { 1 } else { 2 }),
                region: RegionId(1),
                row: RowId(1),
                rack: RackId(rack),
                server: ServerId((rack - 1) * 40 + 1),
            },
            fault: FaultKind::Other,
            opened: SimTime(opened),
            resolved: SimTime(resolved),
            repeat_count: 0,
            false_positive: false,
        }
    }

    fn sanitizer() -> Sanitizer {
        Sanitizer::new(manifest(), SanitizerConfig::for_span(SimTime(0), SimTime(1000)))
    }

    #[test]
    fn clean_stream_is_untouched() {
        let tickets = vec![ticket(1, 10, 5, 9), ticket(2, 11, 7, 20), ticket(3, 12, 7, 30)];
        let (out, report) = sanitizer().sanitize(&tickets);
        assert_eq!(out, tickets);
        assert_eq!(report.tickets_seen, 3);
        assert_eq!(report.tickets_kept, 3);
        assert_eq!(report.total_detected(), 0);
    }

    #[test]
    fn inverted_interval_is_swapped_back() {
        let mut t = ticket(1, 10, 5, 9);
        std::mem::swap(&mut t.opened, &mut t.resolved);
        let (out, report) = sanitizer().sanitize(&[t]);
        assert_eq!(out[0].opened, SimTime(5));
        assert_eq!(out[0].resolved, SimTime(9));
        assert_eq!(report.counts(DefectClass::InvertedInterval).repaired, 1);
    }

    #[test]
    fn out_of_span_ticket_is_quarantined() {
        let t = ticket(1, 10, 5000, 5004);
        let (out, report) = sanitizer().sanitize(&[t]);
        assert!(out.is_empty());
        assert_eq!(report.counts(DefectClass::ClockSkew).quarantined, 1);
        assert_eq!(report.tickets_kept, 0);
    }

    #[test]
    fn mislabeled_location_is_repaired_from_manifest() {
        let mut t = ticket(1, 10, 5, 9);
        t.location.dc = DcId(2); // rack 1 lives in DC1
        let (out, report) = sanitizer().sanitize(&[t]);
        assert_eq!(out[0].location.dc, DcId(1));
        assert_eq!(report.counts(DefectClass::MislabeledLocation).repaired, 1);
    }

    #[test]
    fn censored_resolution_gets_median_imputed() {
        let clean: Vec<RmaTicket> =
            [4u64, 6, 8].iter().map(|&h| ticket(1, h, 10, 10 + h)).collect();
        let mut tickets = clean;
        tickets.push(ticket(2, 99, 50, 50)); // censored
        let (out, report) = sanitizer().sanitize(&tickets);
        let imputed = out.iter().find(|t| t.device.0 == 99).unwrap();
        assert_eq!(imputed.resolved, SimTime(56)); // median outage = 6h
        assert_eq!(report.counts(DefectClass::CensoredResolution).repaired, 1);
    }

    #[test]
    fn duplicates_within_window_collapse_to_earliest() {
        let original = ticket(1, 10, 5, 20);
        let mut dup = original.clone();
        dup.opened = SimTime(7); // same resolution, +2h open
        let distinct = ticket(1, 10, 100, 120); // same device+fault, far later
        let (out, report) = sanitizer().sanitize(&[original.clone(), dup, distinct.clone()]);
        assert_eq!(out, vec![original, distinct]);
        assert_eq!(report.counts(DefectClass::DuplicateTicket).quarantined, 1);
    }

    #[test]
    fn false_positives_pass_through_untouched() {
        let mut fp = ticket(1, 10, 5, 9);
        fp.false_positive = true;
        let dup_fp = fp.clone();
        let (out, report) = sanitizer().sanitize(&[fp, dup_fp]);
        assert_eq!(out.len(), 2, "flagged FPs are never deduped or repaired");
        assert_eq!(report.false_positives_flagged, 2);
    }

    #[test]
    fn report_accounts_for_every_row() {
        let tickets = vec![
            ticket(1, 1, 5, 9),
            ticket(1, 2, 5000, 5004), // clock skew
            ticket(2, 3, 9, 5),       // inverted
        ];
        let (out, report) = sanitizer().sanitize(&tickets);
        assert_eq!(report.tickets_seen, 3);
        assert_eq!(report.tickets_kept as usize, out.len());
        assert_eq!(report.tickets_seen, report.tickets_kept + report.total_quarantined());
    }

    #[test]
    fn report_serde_roundtrip() {
        let mut report = DataQualityReport { tickets_seen: 7, ..Default::default() };
        report.record(DefectClass::DuplicateTicket, false);
        report.record(DefectClass::SensorSpike, true);
        let v = serde::Serialize::to_value(&report);
        let back: DataQualityReport = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn sensor_bounds_clamp_only_outliers() {
        let b = SensorBounds::default();
        assert_eq!(b.winsorize_temp(72.0), (72.0, false));
        assert_eq!(b.winsorize_temp(140.0), (95.0, true));
        assert_eq!(b.winsorize_temp(10.0), (50.0, true));
        assert_eq!(b.winsorize_rh(96.5), (90.0, true));
        let (nan, fired) = b.winsorize_temp(f64::NAN);
        assert!(nan.is_nan() && !fired);
    }
}
