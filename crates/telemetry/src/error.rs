use std::error::Error;
use std::fmt;

/// Error type for telemetry data-model operations.
#[derive(Debug, Clone, PartialEq)]
pub enum TelemetryError {
    /// A column name was not found in a table.
    UnknownColumn {
        /// The requested column name.
        name: String,
    },
    /// A column was accessed with the wrong feature kind.
    KindMismatch {
        /// Column name.
        name: String,
        /// The kind that was requested.
        requested: &'static str,
        /// The column's actual kind.
        actual: &'static str,
    },
    /// A row had the wrong number of values for the schema.
    RowArity {
        /// Expected number of columns.
        expected: usize,
        /// Provided number of values.
        got: usize,
    },
    /// A row value's type did not match its column's kind.
    ValueKind {
        /// Column index of the offending value.
        column: usize,
    },
    /// A ticket interval was inverted (resolved before opened).
    InvertedInterval,
    /// An operation needed a non-empty input.
    Empty {
        /// What was empty.
        what: &'static str,
    },
    /// An underlying statistics error.
    Stats(rainshine_stats::StatsError),
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            TelemetryError::KindMismatch { name, requested, actual } => {
                write!(f, "column `{name}` is {actual}, not {requested}")
            }
            TelemetryError::RowArity { expected, got } => {
                write!(f, "row has {got} values, schema has {expected} columns")
            }
            TelemetryError::ValueKind { column } => {
                write!(f, "value kind mismatch at column {column}")
            }
            TelemetryError::InvertedInterval => {
                write!(f, "ticket resolved before it was opened")
            }
            TelemetryError::Empty { what } => write!(f, "empty input: {what}"),
            TelemetryError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for TelemetryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TelemetryError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rainshine_stats::StatsError> for TelemetryError {
    fn from(e: rainshine_stats::StatsError) -> Self {
        TelemetryError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TelemetryError::UnknownColumn { name: "temp".into() };
        assert!(e.to_string().contains("temp"));
        let e = TelemetryError::KindMismatch {
            name: "sku".into(),
            requested: "continuous",
            actual: "nominal",
        };
        assert!(e.to_string().contains("nominal"));
    }

    #[test]
    fn stats_error_converts() {
        let e: TelemetryError = rainshine_stats::StatsError::EmptyInput.into();
        assert!(matches!(e, TelemetryError::Stats(_)));
        assert!(Error::source(&e).is_some());
    }
}
