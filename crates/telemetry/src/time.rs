//! Simulation calendar.
//!
//! The paper's data spans 2.5 years starting in 2012 (Figs. 3 and 4 show
//! 2012 and 2013 series). We anchor the simulation epoch at
//! **2012-01-01 00:00**, which was a Sunday, and measure time in whole hours.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Days in each month of a non-leap year.
const MONTH_DAYS: [u16; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// A point in simulated time: whole hours since 2012-01-01 00:00 (a Sunday).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// Day of week, `Sun` through `Sat` (the paper's Fig. 3 x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DayOfWeek {
    /// Sunday.
    Sun,
    /// Monday.
    Mon,
    /// Tuesday.
    Tue,
    /// Wednesday.
    Wed,
    /// Thursday.
    Thu,
    /// Friday.
    Fri,
    /// Saturday.
    Sat,
}

impl DayOfWeek {
    /// All days, Sunday first (epoch alignment).
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Sun,
        DayOfWeek::Mon,
        DayOfWeek::Tue,
        DayOfWeek::Wed,
        DayOfWeek::Thu,
        DayOfWeek::Fri,
        DayOfWeek::Sat,
    ];

    /// Whether this is a weekday (Mon–Fri).
    pub fn is_weekday(&self) -> bool {
        !matches!(self, DayOfWeek::Sun | DayOfWeek::Sat)
    }

    /// 0-based index, Sunday = 0.
    pub fn index(&self) -> usize {
        Self::ALL.iter().position(|d| d == self).expect("all variants listed")
    }
}

impl fmt::Display for DayOfWeek {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DayOfWeek::Sun => "Sun",
            DayOfWeek::Mon => "Mon",
            DayOfWeek::Tue => "Tue",
            DayOfWeek::Wed => "Wed",
            DayOfWeek::Thu => "Thu",
            DayOfWeek::Fri => "Fri",
            DayOfWeek::Sat => "Sat",
        };
        f.write_str(s)
    }
}

fn is_leap(year: u16) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

fn days_in_year(year: u16) -> u64 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

fn days_in_month(year: u16, month0: usize) -> u64 {
    if month0 == 1 && is_leap(year) {
        29
    } else {
        MONTH_DAYS[month0] as u64
    }
}

/// A calendar date decomposed from a [`SimTime`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CalendarDate {
    /// Calendar year, e.g. 2012.
    pub year: u16,
    /// Month 1–12.
    pub month: u8,
    /// Day of month 1–31.
    pub day: u8,
}

impl fmt::Display for CalendarDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

impl SimTime {
    /// The simulation epoch, 2012-01-01 00:00.
    pub const EPOCH: SimTime = SimTime(0);

    /// Constructs from whole days since the epoch.
    pub fn from_days(days: u64) -> Self {
        SimTime(days * 24)
    }

    /// Constructs from `(years_offset, month 1-12, day 1-31, hour 0-23)`
    /// relative to 2012.
    ///
    /// # Panics
    ///
    /// Panics if the date components are out of range.
    pub fn from_date(year: u16, month: u8, day: u8, hour: u8) -> Self {
        assert!(year >= 2012, "calendar starts at 2012");
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(hour < 24, "hour {hour} out of range");
        let mut days: u64 = 0;
        for y in 2012..year {
            days += days_in_year(y);
        }
        for m in 0..(month - 1) as usize {
            days += days_in_month(year, m);
        }
        let dim = days_in_month(year, (month - 1) as usize);
        assert!(day >= 1 && (day as u64) <= dim, "day {day} out of range");
        days += (day - 1) as u64;
        SimTime(days * 24 + hour as u64)
    }

    /// Hours since the epoch.
    pub fn hours(&self) -> u64 {
        self.0
    }

    /// Whole days since the epoch.
    pub fn days(&self) -> u64 {
        self.0 / 24
    }

    /// Hour of day, 0–23.
    pub fn hour_of_day(&self) -> u8 {
        (self.0 % 24) as u8
    }

    /// Day of week (epoch was a Sunday).
    pub fn day_of_week(&self) -> DayOfWeek {
        DayOfWeek::ALL[(self.days() % 7) as usize]
    }

    /// Decomposes into a calendar date.
    pub fn date(&self) -> CalendarDate {
        let mut remaining = self.days();
        let mut year = 2012u16;
        while remaining >= days_in_year(year) {
            remaining -= days_in_year(year);
            year += 1;
        }
        let mut month0 = 0usize;
        while remaining >= days_in_month(year, month0) {
            remaining -= days_in_month(year, month0);
            month0 += 1;
        }
        CalendarDate { year, month: month0 as u8 + 1, day: remaining as u8 + 1 }
    }

    /// Month of year, 1–12.
    pub fn month(&self) -> u8 {
        self.date().month
    }

    /// Calendar year.
    pub fn year(&self) -> u16 {
        self.date().year
    }

    /// Year offset from 2012 (the paper's "Year 0-2" ordinal feature).
    pub fn year_offset(&self) -> u16 {
        self.year() - 2012
    }

    /// ISO-less week of year: `1 + day_of_year / 7`, range 1–53 (the paper's
    /// "Week 1-52" ordinal feature).
    pub fn week_of_year(&self) -> u8 {
        let date = self.date();
        let mut doy: u64 = 0;
        for m in 0..(date.month - 1) as usize {
            doy += days_in_month(date.year, m);
        }
        doy += (date.day - 1) as u64;
        (doy / 7 + 1) as u8
    }

    /// Fraction of the year elapsed, in `[0, 1)` — used by seasonal models.
    pub fn year_fraction(&self) -> f64 {
        let date = self.date();
        let mut doy: u64 = 0;
        for m in 0..(date.month - 1) as usize {
            doy += days_in_month(date.year, m);
        }
        doy += (date.day - 1) as u64;
        (doy as f64 + self.hour_of_day() as f64 / 24.0) / days_in_year(date.year) as f64
    }

    /// Adds whole hours.
    pub fn plus_hours(&self, hours: u64) -> SimTime {
        SimTime(self.0 + hours)
    }

    /// Adds whole days.
    pub fn plus_days(&self, days: u64) -> SimTime {
        SimTime(self.0 + days * 24)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:02}:00", self.date(), self.hour_of_day())
    }
}

/// Temporal aggregation windows for failure metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TimeGranularity {
    /// One-hour windows.
    Hourly,
    /// One-day windows.
    Daily,
    /// Seven-day windows.
    Weekly,
    /// Calendar-month windows.
    Monthly,
}

impl TimeGranularity {
    /// Index of the window containing `t` (windows count from the epoch).
    pub fn window_of(&self, t: SimTime) -> u64 {
        match self {
            TimeGranularity::Hourly => t.hours(),
            TimeGranularity::Daily => t.days(),
            TimeGranularity::Weekly => t.days() / 7,
            TimeGranularity::Monthly => {
                let d = t.date();
                (d.year as u64 - 2012) * 12 + (d.month as u64 - 1)
            }
        }
    }

    /// Start time of window `w`.
    pub fn window_start(&self, w: u64) -> SimTime {
        match self {
            TimeGranularity::Hourly => SimTime(w),
            TimeGranularity::Daily => SimTime::from_days(w),
            TimeGranularity::Weekly => SimTime::from_days(w * 7),
            TimeGranularity::Monthly => {
                let year = 2012 + (w / 12) as u16;
                let month = (w % 12) as u8 + 1;
                SimTime::from_date(year, month, 1, 0)
            }
        }
    }

    /// Number of windows fully or partially covering `[start, end)`.
    pub fn window_count(&self, start: SimTime, end: SimTime) -> u64 {
        if end.0 <= start.0 {
            return 0;
        }
        self.window_of(SimTime(end.0 - 1)) - self.window_of(start) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_sunday_2012() {
        let t = SimTime::EPOCH;
        assert_eq!(t.day_of_week(), DayOfWeek::Sun);
        assert_eq!(t.date(), CalendarDate { year: 2012, month: 1, day: 1 });
    }

    #[test]
    fn leap_year_2012_handled() {
        let feb29 = SimTime::from_date(2012, 2, 29, 0);
        assert_eq!(feb29.date(), CalendarDate { year: 2012, month: 2, day: 29 });
        let mar1 = feb29.plus_days(1);
        assert_eq!(mar1.date(), CalendarDate { year: 2012, month: 3, day: 1 });
    }

    #[test]
    fn known_weekday_2013() {
        // 2013-01-01 was a Tuesday.
        let t = SimTime::from_date(2013, 1, 1, 0);
        assert_eq!(t.day_of_week(), DayOfWeek::Tue);
        assert_eq!(t.year_offset(), 1);
    }

    #[test]
    fn from_date_roundtrips() {
        for &(y, m, d, h) in
            &[(2012u16, 1u8, 1u8, 0u8), (2012, 12, 31, 23), (2013, 6, 15, 12), (2014, 7, 1, 6)]
        {
            let t = SimTime::from_date(y, m, d, h);
            let date = t.date();
            assert_eq!((date.year, date.month, date.day, t.hour_of_day()), (y, m, d, h));
        }
    }

    #[test]
    fn week_of_year_ranges() {
        assert_eq!(SimTime::from_date(2012, 1, 1, 0).week_of_year(), 1);
        assert_eq!(SimTime::from_date(2012, 1, 8, 0).week_of_year(), 2);
        assert!(SimTime::from_date(2012, 12, 31, 0).week_of_year() <= 53);
    }

    #[test]
    fn year_fraction_monotone_within_year() {
        let a = SimTime::from_date(2013, 2, 1, 0).year_fraction();
        let b = SimTime::from_date(2013, 8, 1, 0).year_fraction();
        assert!(a < b);
        assert!((0.0..1.0).contains(&a));
        assert!((0.0..1.0).contains(&b));
    }

    #[test]
    fn windows_nest_correctly() {
        let t = SimTime::from_date(2013, 3, 15, 7);
        assert_eq!(TimeGranularity::Hourly.window_of(t), t.hours());
        assert_eq!(TimeGranularity::Daily.window_of(t), t.days());
        assert_eq!(TimeGranularity::Monthly.window_of(t), 14); // Jan 2012 = 0
        let start = TimeGranularity::Monthly.window_start(14);
        assert_eq!(start.date(), CalendarDate { year: 2013, month: 3, day: 1 });
    }

    #[test]
    fn window_count_boundaries() {
        let g = TimeGranularity::Daily;
        assert_eq!(g.window_count(SimTime(0), SimTime(0)), 0);
        assert_eq!(g.window_count(SimTime(0), SimTime(24)), 1);
        assert_eq!(g.window_count(SimTime(0), SimTime(25)), 2);
        assert_eq!(g.window_count(SimTime(12), SimTime(36)), 2);
    }

    #[test]
    fn weekday_predicate() {
        assert!(!DayOfWeek::Sun.is_weekday());
        assert!(DayOfWeek::Mon.is_weekday());
        assert!(DayOfWeek::Fri.is_weekday());
        assert!(!DayOfWeek::Sat.is_weekday());
    }

    #[test]
    #[should_panic(expected = "month")]
    fn from_date_rejects_bad_month() {
        SimTime::from_date(2012, 13, 1, 0);
    }

    #[test]
    #[should_panic(expected = "day")]
    fn from_date_rejects_bad_day() {
        SimTime::from_date(2013, 2, 29, 0);
    }
}
