//! The canonical candidate-feature schema (the paper's Table III).
//!
//! The analysis dataset assembled by `rainshine-core` uses these column
//! names; keeping them here makes the simulator, the dataset builder, and
//! the CART feature lists agree by construction.

use crate::table::{FeatureKind, Field, Schema};

/// Canonical column names for the analysis dataset.
pub mod columns {
    /// Nominal: SKU (S1–S7).
    pub const SKU: &str = "sku";
    /// Continuous: equipment age in months at observation time.
    pub const AGE_MONTHS: &str = "age_months";
    /// Continuous: rack rated power in kW (4–15).
    pub const RATED_POWER_KW: &str = "rated_power_kw";
    /// Nominal: workload (W1–W7).
    pub const WORKLOAD: &str = "workload";
    /// Continuous: rack inlet temperature, °F (56–90).
    pub const TEMPERATURE_F: &str = "temperature_f";
    /// Continuous: relative humidity, % (5–87).
    pub const RELATIVE_HUMIDITY: &str = "relative_humidity";
    /// Nominal: datacenter (DC1, DC2).
    pub const DATACENTER: &str = "datacenter";
    /// Nominal: region within the datacenter.
    pub const REGION: &str = "region";
    /// Nominal: row of racks.
    pub const ROW: &str = "row";
    /// Nominal: rack id.
    pub const RACK: &str = "rack";
    /// Ordinal: day of week, Sunday = 0.
    pub const DAY_OF_WEEK: &str = "day_of_week";
    /// Ordinal: week of year, 1–53.
    pub const WEEK: &str = "week";
    /// Ordinal: month of year, 1–12.
    pub const MONTH: &str = "month";
    /// Ordinal: year offset from 2012, 0–2.
    pub const YEAR: &str = "year";
    /// Continuous response: failure count / rate for the observation window.
    pub const FAILURE_RATE: &str = "failure_rate";
}

/// One row of the printable Table III.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureDescription {
    /// Category grouping in Table III (Hardware / Workload / Env. / Space / Time).
    pub category: &'static str,
    /// Feature (column) name.
    pub name: &'static str,
    /// Feature kind.
    pub kind: FeatureKind,
    /// Human-readable value range.
    pub range: &'static str,
}

/// The full candidate-feature list of Table III, in paper order.
pub fn candidate_features() -> Vec<FeatureDescription> {
    use columns as c;
    use FeatureKind::{Continuous, Nominal, Ordinal};
    vec![
        FeatureDescription {
            category: "Hardware",
            name: c::SKU,
            kind: Nominal,
            range: "S1&3 storage, S2&4 compute, S5&6 mix, S7 HPC",
        },
        FeatureDescription {
            category: "Hardware",
            name: c::AGE_MONTHS,
            kind: Continuous,
            range: "0-5 years",
        },
        FeatureDescription {
            category: "Hardware",
            name: c::RATED_POWER_KW,
            kind: Continuous,
            range: "4-15 kW per rack",
        },
        FeatureDescription {
            category: "Workload",
            name: c::WORKLOAD,
            kind: Nominal,
            range: "W1&2 compute, W3 HPC, W4&7 storage-compute, W5&6 storage-data",
        },
        FeatureDescription {
            category: "Env.",
            name: c::TEMPERATURE_F,
            kind: Continuous,
            range: "56-90 F",
        },
        FeatureDescription {
            category: "Env.",
            name: c::RELATIVE_HUMIDITY,
            kind: Continuous,
            range: "5-87 %",
        },
        FeatureDescription {
            category: "Space",
            name: c::DATACENTER,
            kind: Nominal,
            range: "DC1, DC2",
        },
        FeatureDescription {
            category: "Space",
            name: c::REGION,
            kind: Nominal,
            range: "DC1:1-4, DC2:1-3",
        },
        FeatureDescription {
            category: "Space",
            name: c::ROW,
            kind: Nominal,
            range: "DC1:1-18, DC2:1-32",
        },
        FeatureDescription {
            category: "Space",
            name: c::RACK,
            kind: Nominal,
            range: "DC1:R1-331, DC2:R1-290",
        },
        FeatureDescription {
            category: "Time",
            name: c::DAY_OF_WEEK,
            kind: Ordinal,
            range: "Sun-Sat",
        },
        FeatureDescription { category: "Time", name: c::WEEK, kind: Ordinal, range: "1-52" },
        FeatureDescription { category: "Time", name: c::MONTH, kind: Ordinal, range: "Jan-Dec" },
        FeatureDescription { category: "Time", name: c::YEAR, kind: Ordinal, range: "0-2" },
    ]
}

/// The default analysis-dataset schema: every candidate feature plus the
/// continuous response column [`columns::FAILURE_RATE`].
pub fn analysis_schema() -> Schema {
    let mut fields: Vec<Field> =
        candidate_features().into_iter().map(|d| Field::new(d.name, d.kind)).collect();
    fields.push(Field::new(columns::FAILURE_RATE, FeatureKind::Continuous));
    Schema::new(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_has_fourteen_features() {
        assert_eq!(candidate_features().len(), 14);
    }

    #[test]
    fn analysis_schema_includes_response() {
        let s = analysis_schema();
        assert_eq!(s.len(), 15);
        assert!(s.index_of(columns::FAILURE_RATE).is_some());
        assert!(s.index_of(columns::SKU).is_some());
    }

    #[test]
    fn kinds_match_table_iii() {
        let feats = candidate_features();
        let kind_of = |n: &str| feats.iter().find(|f| f.name == n).unwrap().kind;
        assert_eq!(kind_of(columns::SKU), FeatureKind::Nominal);
        assert_eq!(kind_of(columns::AGE_MONTHS), FeatureKind::Continuous);
        assert_eq!(kind_of(columns::DAY_OF_WEEK), FeatureKind::Ordinal);
        assert_eq!(kind_of(columns::TEMPERATURE_F), FeatureKind::Continuous);
    }
}
