//! The paper's two failure metrics (Section V):
//!
//! * **λ (failure generation rate)** — how many failure tickets a spatial
//!   unit generates per time window;
//! * **μ (concurrent failures)** — how many devices of a spatial unit are
//!   *simultaneously* unavailable during a time window. μ captures temporal
//!   correlation: two failures that overlap in time need two spares, two
//!   that don't can share one.
//!
//! Both metrics are computed at arbitrary spatial ([`SpatialGranularity`])
//! and temporal ([`TimeGranularity`]) resolution. Distributions are stored
//! sparsely: most windows see zero failures, so we keep only non-zero
//! windows plus the total window count.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ids::ServerLocation;
use crate::rma::RmaTicket;
use crate::time::{SimTime, TimeGranularity};

/// Spatial aggregation level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SpatialGranularity {
    /// Whole datacenter.
    Datacenter,
    /// Region within a datacenter.
    Region,
    /// Row of racks.
    Row,
    /// Rack (the paper's provisioning granularity).
    Rack,
    /// Individual server.
    Server,
}

/// Key identifying one spatial unit at some granularity. Fields below the
/// granularity are zeroed so keys compare equal within a unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpatialKey {
    /// Datacenter number.
    pub dc: u8,
    /// Region number (0 below Region granularity).
    pub region: u8,
    /// Row number (0 below Row granularity).
    pub row: u16,
    /// Rack number (0 below Rack granularity).
    pub rack: u32,
    /// Server number (0 below Server granularity).
    pub server: u32,
}

impl SpatialGranularity {
    /// Projects a server location onto a key at this granularity.
    pub fn key(&self, loc: &ServerLocation) -> SpatialKey {
        let mut key = SpatialKey { dc: loc.dc.0, region: 0, row: 0, rack: 0, server: 0 };
        if *self >= SpatialGranularity::Region {
            key.region = loc.region.0;
        }
        if *self >= SpatialGranularity::Row {
            key.row = loc.row.0;
        }
        if *self >= SpatialGranularity::Rack {
            key.rack = loc.rack.0;
        }
        if *self >= SpatialGranularity::Server {
            key.server = loc.server.0;
        }
        key
    }
}

/// A sparse per-window count distribution (λ) or max-concurrency
/// distribution (μ) over a fixed number of windows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedSeries {
    /// Total number of windows in the observation span.
    pub windows: u64,
    /// Non-zero windows: window index → value.
    pub nonzero: BTreeMap<u64, u64>,
}

impl WindowedSeries {
    /// Creates an all-zero series over `windows` windows.
    pub fn zeros(windows: u64) -> Self {
        WindowedSeries { windows, nonzero: BTreeMap::new() }
    }

    /// Sum of values over all windows.
    pub fn total(&self) -> u64 {
        self.nonzero.values().sum()
    }

    /// Mean value per window (zero-inclusive).
    pub fn mean(&self) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        self.total() as f64 / self.windows as f64
    }

    /// Adds `delta` at window `w`. Out-of-range windows clamp to the last
    /// window, so a stray ticket can never create more non-zero entries
    /// than the span has windows (the underflow `quantile`/`stddev` used
    /// to hit). No-op on a zero-window span.
    pub fn add(&mut self, w: u64, delta: u64) {
        if self.windows == 0 || delta == 0 {
            return;
        }
        let w = w.min(self.windows - 1);
        *self.nonzero.entry(w).or_insert(0) += delta;
    }

    /// Raises window `w` to at least `value`, clamping like [`Self::add`].
    pub fn record_max(&mut self, w: u64, value: u64) {
        if self.windows == 0 || value == 0 {
            return;
        }
        let w = w.min(self.windows - 1);
        let slot = self.nonzero.entry(w).or_insert(0);
        *slot = (*slot).max(value);
    }

    /// Sample standard deviation per window (zero-inclusive). Zero for
    /// degenerate spans (`windows < 2`); a malformed series with more
    /// non-zero entries than windows saturates its zero count at zero
    /// instead of underflowing.
    pub fn stddev(&self) -> f64 {
        if self.windows < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let nonzero_ss: f64 = self.nonzero.values().map(|&v| (v as f64 - mean).powi(2)).sum();
        let zero_count = self.windows.saturating_sub(self.nonzero.len() as u64);
        let ss = nonzero_ss + zero_count as f64 * mean * mean;
        (ss / (self.windows - 1) as f64).sqrt()
    }

    /// Maximum value over all windows (zero if no non-zero window).
    pub fn max(&self) -> u64 {
        self.nonzero.values().copied().max().unwrap_or(0)
    }

    /// The `q`-quantile (inverse-CDF definition, zero-inclusive).
    ///
    /// `q` is clamped to `[0, 1]`. With `Z` zero windows and sorted non-zero
    /// values, the quantile is 0 while the rank falls inside the zero mass.
    /// Delegates to the shared zero-mass-aware helper in `rainshine-stats`.
    pub fn quantile(&self, q: f64) -> u64 {
        let mut values: Vec<u64> = self.nonzero.values().copied().collect();
        values.sort_unstable();
        rainshine_stats::ecdf::quantile_with_zeros(&values, self.windows, q)
    }

    /// All per-window values including zeros, as `f64` — for feeding ECDFs
    /// and plots. `O(windows)` memory; prefer the sparse accessors for large
    /// spans.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.windows as usize];
        for (&w, &v) in &self.nonzero {
            if (w as usize) < out.len() {
                out[w as usize] = v as f64;
            }
        }
        out
    }
}

/// λ: tickets opened per (spatial unit, time window).
///
/// Only tickets within `[start, end)` are counted. Units absent from the
/// ticket stream are absent from the map — use [`ensure_units`] to add
/// all-zero series for known-quiet units.
pub fn lambda(
    tickets: &[&RmaTicket],
    spatial: SpatialGranularity,
    temporal: TimeGranularity,
    start: SimTime,
    end: SimTime,
) -> BTreeMap<SpatialKey, WindowedSeries> {
    let windows = temporal.window_count(start, end);
    let base = temporal.window_of(start);
    let mut out: BTreeMap<SpatialKey, WindowedSeries> = BTreeMap::new();
    for t in tickets {
        if t.opened < start || t.opened >= end {
            continue;
        }
        let key = spatial.key(&t.location);
        let w = temporal.window_of(t.opened) - base;
        let series = out.entry(key).or_insert_with(|| WindowedSeries::zeros(windows));
        series.add(w, 1);
    }
    out
}

/// μ: number of **distinct devices** unavailable during each (spatial unit,
/// time window) — the paper's "number of devices with failures over a
/// duration".
///
/// A device contributes to every window its outage `[opened, resolved)`
/// overlaps. This is the provisioning-relevant count: a spare allocated for
/// a window must cover every device that fails within it, so two
/// *non-overlapping* failures in the same day still need two spares at
/// daily granularity but only one at hourly granularity — the temporal
/// multiplexing the paper exploits in Fig. 12. Tickets still open at `end`
/// are clamped; a ticket with `resolved == opened` still occupies its
/// opening window.
///
/// See [`peak_concurrency`] for the instantaneous-overlap variant.
pub fn mu(
    tickets: &[&RmaTicket],
    spatial: SpatialGranularity,
    temporal: TimeGranularity,
    start: SimTime,
    end: SimTime,
) -> BTreeMap<SpatialKey, WindowedSeries> {
    let windows = temporal.window_count(start, end);
    let base = temporal.window_of(start);
    // (unit, window) -> distinct devices.
    let mut per_unit: BTreeMap<SpatialKey, BTreeMap<u64, std::collections::BTreeSet<u64>>> =
        BTreeMap::new();
    for t in tickets {
        if t.resolved < start || t.opened >= end {
            continue;
        }
        let open = t.opened.hours().max(start.hours());
        let close = t.resolved.hours().clamp(open + 1, end.hours().max(open + 1));
        let w_from = temporal.window_of(SimTime(open)).saturating_sub(base);
        let w_to = temporal
            .window_of(SimTime(close - 1))
            .saturating_sub(base)
            .min(windows.saturating_sub(1));
        let unit = per_unit.entry(spatial.key(&t.location)).or_default();
        for w in w_from..=w_to {
            unit.entry(w).or_default().insert(t.device.0);
        }
    }
    per_unit
        .into_iter()
        .map(|(key, by_window)| {
            let mut series = WindowedSeries::zeros(windows);
            for (w, devices) in by_window {
                series.add(w, devices.len() as u64);
            }
            (key, series)
        })
        .collect()
}

/// Peak instantaneous concurrency of open tickets per (spatial unit, time
/// window): within a window the value is the *maximum* number of
/// simultaneously open tickets. Unlike [`mu`], non-overlapping outages in
/// the same window do not stack.
pub fn peak_concurrency(
    tickets: &[&RmaTicket],
    spatial: SpatialGranularity,
    temporal: TimeGranularity,
    start: SimTime,
    end: SimTime,
) -> BTreeMap<SpatialKey, WindowedSeries> {
    let windows = temporal.window_count(start, end);
    let base = temporal.window_of(start);
    // Group intervals per unit.
    let mut per_unit: BTreeMap<SpatialKey, Vec<(u64, u64)>> = BTreeMap::new();
    for t in tickets {
        if t.resolved < start || t.opened >= end {
            continue;
        }
        let open = t.opened.hours().max(start.hours());
        // Half-open [open, close), minimum one hour of occupancy.
        let close = t.resolved.hours().clamp(open + 1, end.hours().max(open + 1));
        per_unit.entry(spatial.key(&t.location)).or_default().push((open, close));
    }
    let mut out = BTreeMap::new();
    for (key, intervals) in per_unit {
        let mut series = WindowedSeries::zeros(windows);
        // Event sweep: +1 at open, −1 at close.
        let mut events: Vec<(u64, i64)> = Vec::with_capacity(intervals.len() * 2);
        for (open, close) in &intervals {
            events.push((*open, 1));
            events.push((*close, -1));
        }
        events.sort_unstable();
        let mut concurrency: i64 = 0;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            // Apply all events at this instant.
            while i < events.len() && events[i].0 == t {
                concurrency += events[i].1;
                i += 1;
            }
            if concurrency <= 0 {
                continue;
            }
            // Concurrency holds on [t, next_event_or_end).
            let span_end = if i < events.len() { events[i].0 } else { end.hours() };
            let w_from = temporal.window_of(SimTime(t)).saturating_sub(base);
            let w_to = temporal
                .window_of(SimTime(span_end.max(t + 1) - 1))
                .saturating_sub(base)
                .min(windows.saturating_sub(1));
            for w in w_from..=w_to {
                series.record_max(w, concurrency as u64);
            }
        }
        out.insert(key, series);
    }
    out
}

/// Adds all-zero series for every unit in `units` missing from `map`, so
/// quiet racks participate in distributions (critical for provisioning:
/// a rack with no failures still needs its zero counted).
pub fn ensure_units<I: IntoIterator<Item = SpatialKey>>(
    map: &mut BTreeMap<SpatialKey, WindowedSeries>,
    units: I,
    windows: u64,
) {
    for key in units {
        map.entry(key).or_insert_with(|| WindowedSeries::zeros(windows));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{DcId, DeviceId, RackId, RegionId, RowId, ServerId};
    use crate::rma::{FaultKind, HardwareFault, RmaTicket};

    fn ticket(rack: u32, server: u32, opened: u64, resolved: u64) -> RmaTicket {
        RmaTicket {
            device: DeviceId(server as u64),
            location: ServerLocation {
                dc: DcId(1),
                region: RegionId(1),
                row: RowId(1),
                rack: RackId(rack),
                server: ServerId(server),
            },
            fault: FaultKind::Hardware(HardwareFault::Disk),
            opened: SimTime(opened),
            resolved: SimTime(resolved),
            repeat_count: 0,
            false_positive: false,
        }
    }

    #[test]
    fn lambda_counts_per_window() {
        let tickets = [ticket(1, 1, 2, 5), ticket(1, 2, 30, 31), ticket(2, 3, 2, 3)];
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let map = lambda(
            &refs,
            SpatialGranularity::Rack,
            TimeGranularity::Daily,
            SimTime(0),
            SimTime(48),
        );
        let rack1 = SpatialGranularity::Rack.key(&tickets[0].location);
        let s = &map[&rack1];
        assert_eq!(s.windows, 2);
        assert_eq!(s.nonzero[&0], 1);
        assert_eq!(s.nonzero[&1], 1);
        assert_eq!(s.total(), 2);
        assert_eq!(s.mean(), 1.0);
    }

    #[test]
    fn lambda_ignores_out_of_span() {
        let tickets = [ticket(1, 1, 100, 101)];
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let map = lambda(
            &refs,
            SpatialGranularity::Rack,
            TimeGranularity::Daily,
            SimTime(0),
            SimTime(48),
        );
        assert!(map.is_empty());
    }

    #[test]
    fn mu_counts_devices_per_window() {
        // Two devices down during day 0; one still down on day 1.
        let tickets = [ticket(1, 1, 5, 20), ticket(1, 2, 10, 30)];
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let map =
            mu(&refs, SpatialGranularity::Rack, TimeGranularity::Daily, SimTime(0), SimTime(72));
        let key = SpatialGranularity::Rack.key(&tickets[0].location);
        let s = &map[&key];
        assert_eq!(s.nonzero[&0], 2);
        assert_eq!(s.nonzero[&1], 1);
        assert_eq!(s.max(), 2);
    }

    #[test]
    fn mu_daily_stacks_but_hourly_multiplexes() {
        // Non-overlapping outages in one day: both devices count at daily
        // granularity (2 spares needed for the day) but hourly windows see
        // at most one at a time (Fig. 12's multiplexing).
        let tickets = [ticket(1, 1, 1, 3), ticket(1, 2, 10, 12)];
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let daily =
            mu(&refs, SpatialGranularity::Rack, TimeGranularity::Daily, SimTime(0), SimTime(24));
        let hourly =
            mu(&refs, SpatialGranularity::Rack, TimeGranularity::Hourly, SimTime(0), SimTime(24));
        let key = SpatialGranularity::Rack.key(&tickets[0].location);
        assert_eq!(daily[&key].max(), 2);
        assert_eq!(hourly[&key].max(), 1);
        assert_eq!(hourly[&key].nonzero.len(), 4);
    }

    #[test]
    fn mu_dedupes_same_device_within_window() {
        // The same device failing twice in one day needs one spare.
        let tickets = [ticket(1, 1, 1, 3), ticket(1, 1, 10, 12)];
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let daily =
            mu(&refs, SpatialGranularity::Rack, TimeGranularity::Daily, SimTime(0), SimTime(24));
        let key = SpatialGranularity::Rack.key(&tickets[0].location);
        assert_eq!(daily[&key].max(), 1);
    }

    #[test]
    fn peak_concurrency_ignores_non_overlap() {
        let tickets = [ticket(1, 1, 1, 3), ticket(1, 2, 10, 12)];
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let daily = peak_concurrency(
            &refs,
            SpatialGranularity::Rack,
            TimeGranularity::Daily,
            SimTime(0),
            SimTime(24),
        );
        let key = SpatialGranularity::Rack.key(&tickets[0].location);
        assert_eq!(daily[&key].max(), 1, "never simultaneously open");
    }

    #[test]
    fn mu_instant_ticket_occupies_opening_window() {
        let tickets = [ticket(1, 1, 5, 5)];
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let map =
            mu(&refs, SpatialGranularity::Rack, TimeGranularity::Hourly, SimTime(0), SimTime(24));
        let key = SpatialGranularity::Rack.key(&tickets[0].location);
        assert_eq!(map[&key].nonzero[&5], 1);
    }

    #[test]
    fn spatial_keys_zero_below_granularity() {
        let loc = ServerLocation {
            dc: DcId(2),
            region: RegionId(3),
            row: RowId(4),
            rack: RackId(5),
            server: ServerId(6),
        };
        let dc_key = SpatialGranularity::Datacenter.key(&loc);
        assert_eq!(dc_key, SpatialKey { dc: 2, region: 0, row: 0, rack: 0, server: 0 });
        let server_key = SpatialGranularity::Server.key(&loc);
        assert_eq!(server_key.server, 6);
        assert_eq!(server_key.rack, 5);
    }

    #[test]
    fn windowed_series_stats() {
        let mut s = WindowedSeries::zeros(10);
        s.nonzero.insert(3, 2);
        s.nonzero.insert(7, 4);
        assert_eq!(s.total(), 6);
        assert!((s.mean() - 0.6).abs() < 1e-12);
        assert_eq!(s.max(), 4);
        // Dense check of stddev.
        let dense = s.to_dense();
        let batch = rainshine_stats::describe::Summary::from_slice(&dense).unwrap();
        assert!((s.stddev() - batch.sample_stddev()).abs() < 1e-12);
    }

    #[test]
    fn windowed_series_quantiles_with_zero_mass() {
        let mut s = WindowedSeries::zeros(10);
        s.nonzero.insert(0, 1);
        s.nonzero.insert(1, 5);
        // 80% of windows are zero.
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(0.8), 0);
        assert_eq!(s.quantile(0.9), 1);
        assert_eq!(s.quantile(1.0), 5);
        assert_eq!(s.quantile(0.0), 0);
    }

    #[test]
    fn overfull_series_does_not_underflow() {
        // Hand-built series with more non-zero entries than windows — the
        // shape `to_dense` already guards against. Pre-PR, `quantile` and
        // `stddev` computed `windows - nonzero.len()` and underflowed
        // (debug panic, release garbage); now the zero mass saturates.
        let mut s = WindowedSeries::zeros(3);
        s.nonzero.insert(0, 1);
        s.nonzero.insert(1, 2);
        s.nonzero.insert(5, 4);
        s.nonzero.insert(6, 8);
        assert_eq!(s.quantile(0.0), 1);
        // Ranks cap at `windows`, so the top quantile is the 3rd sorted
        // value, not the spurious 4th.
        assert_eq!(s.quantile(1.0), 4);
        assert!(s.stddev().is_finite());
        assert!(s.stddev() >= 0.0);
    }

    #[test]
    fn degenerate_span_stddev_is_zero_not_nan() {
        let mut s = WindowedSeries::zeros(1);
        s.add(0, 7);
        assert_eq!(s.stddev(), 0.0);
        let empty = WindowedSeries::zeros(0);
        assert_eq!(empty.stddev(), 0.0);
        assert_eq!(empty.quantile(0.5), 0);
    }

    #[test]
    fn add_clamps_out_of_range_windows() {
        let mut s = WindowedSeries::zeros(4);
        s.add(99, 2);
        s.record_max(1_000_000, 5);
        assert_eq!(s.nonzero.len(), 1);
        assert_eq!(s.nonzero[&3], 5);
        assert_eq!(s.max(), 5);
        // Zero-window spans swallow writes instead of panicking.
        let mut empty = WindowedSeries::zeros(0);
        empty.add(0, 1);
        empty.record_max(0, 1);
        assert!(empty.nonzero.is_empty());
    }

    #[test]
    fn ensure_units_adds_zeros() {
        let mut map = BTreeMap::new();
        let key = SpatialKey { dc: 1, region: 0, row: 0, rack: 9, server: 0 };
        ensure_units(&mut map, [key], 5);
        assert_eq!(map[&key].windows, 5);
        assert_eq!(map[&key].total(), 0);
    }
}
