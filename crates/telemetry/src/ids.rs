//! Strongly-typed identifiers for the datacenter spatial hierarchy and the
//! SKU / workload catalogs.
//!
//! The paper's fleet is organized as datacenter → region → row of racks →
//! rack → server chassis → components (Table III). Newtypes keep these from
//! being confused in analysis code.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Datacenter identifier. The paper studies `DC1` and `DC2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DcId(pub u8);

impl fmt::Display for DcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DC{}", self.0)
    }
}

/// Region within a datacenter (e.g. `DC1-1` … `DC1-4` in Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegionId(pub u8);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region {}", self.0)
    }
}

/// Row of racks within a datacenter (DC1: 1–18, DC2: 1–32 per Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RowId(pub u16);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row {}", self.0)
    }
}

/// Rack identifier, unique within the whole fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RackId(pub u32);

impl fmt::Display for RackId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Server identifier, unique within the whole fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Device identifier for RMA tracking (`C1-Cxxxxx` in Table III): a server
/// or one of its components.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u64);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Server hardware configuration ("SKU" — stock keeping unit, a proxy for a
/// vendor + model combination).
///
/// Per Table III: S1 & S3 are storage-intensive, S2 & S4 compute-intensive,
/// S5 & S6 mixed, S7 HPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Sku {
    /// Storage-intensive configuration, vendor A.
    S1,
    /// Compute-intensive configuration, vendor A.
    S2,
    /// Storage-intensive configuration, vendor B.
    S3,
    /// Compute-intensive configuration, vendor B.
    S4,
    /// Mixed configuration, vendor A.
    S5,
    /// Mixed configuration, vendor B.
    S6,
    /// HPC configuration.
    S7,
}

/// Broad class of a SKU's resource balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SkuClass {
    /// Few servers per rack, many disks per server.
    StorageIntensive,
    /// Many servers per rack, few disks per server.
    ComputeIntensive,
    /// Balanced.
    Mixed,
    /// High-performance computing.
    Hpc,
}

impl Sku {
    /// All SKUs in catalog order.
    pub const ALL: [Sku; 7] = [Sku::S1, Sku::S2, Sku::S3, Sku::S4, Sku::S5, Sku::S6, Sku::S7];

    /// The SKU's class per Table III.
    pub fn class(&self) -> SkuClass {
        match self {
            Sku::S1 | Sku::S3 => SkuClass::StorageIntensive,
            Sku::S2 | Sku::S4 => SkuClass::ComputeIntensive,
            Sku::S5 | Sku::S6 => SkuClass::Mixed,
            Sku::S7 => SkuClass::Hpc,
        }
    }

    /// Stable 0-based index in [`Sku::ALL`].
    pub fn index(&self) -> usize {
        Sku::ALL.iter().position(|s| s == self).expect("all variants listed")
    }
}

impl fmt::Display for Sku {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.index() + 1)
    }
}

/// Workload category hosted on a rack (provisioning is rack-granular in the
/// paper's datacenters).
///
/// Per Table III: W1 & W2 compute, W3 HPC, W4 & W7 storage-compute,
/// W5 & W6 storage-data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// Compute-intensive, interactive.
    W1,
    /// Compute-intensive, batch (highest observed failure rate, Fig. 6).
    W2,
    /// HPC (lowest observed failure rate, Fig. 6).
    W3,
    /// Storage-compute.
    W4,
    /// Storage-data.
    W5,
    /// Storage-data.
    W6,
    /// Storage-compute.
    W7,
}

/// Broad class of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Compute-dominant.
    Compute,
    /// High-performance computing.
    Hpc,
    /// Mixed storage + compute.
    StorageCompute,
    /// Storage-dominant (data serving).
    StorageData,
}

impl Workload {
    /// All workloads in catalog order.
    pub const ALL: [Workload; 7] = [
        Workload::W1,
        Workload::W2,
        Workload::W3,
        Workload::W4,
        Workload::W5,
        Workload::W6,
        Workload::W7,
    ];

    /// The workload's class per Table III.
    pub fn class(&self) -> WorkloadClass {
        match self {
            Workload::W1 | Workload::W2 => WorkloadClass::Compute,
            Workload::W3 => WorkloadClass::Hpc,
            Workload::W4 | Workload::W7 => WorkloadClass::StorageCompute,
            Workload::W5 | Workload::W6 => WorkloadClass::StorageData,
        }
    }

    /// Stable 0-based index in [`Workload::ALL`].
    pub fn index(&self) -> usize {
        Workload::ALL.iter().position(|w| w == self).expect("all variants listed")
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.index() + 1)
    }
}

/// Full spatial address of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerLocation {
    /// Datacenter.
    pub dc: DcId,
    /// Region within the datacenter.
    pub region: RegionId,
    /// Row within the datacenter.
    pub row: RowId,
    /// Rack.
    pub rack: RackId,
    /// Server.
    pub server: ServerId,
}

impl fmt::Display for ServerLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}/{}/{}", self.dc, self.region, self.row, self.rack, self.server)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(DcId(1).to_string(), "DC1");
        assert_eq!(RackId(331).to_string(), "R331");
        assert_eq!(Sku::S4.to_string(), "S4");
        assert_eq!(Workload::W6.to_string(), "W6");
    }

    #[test]
    fn sku_classes_match_table_iii() {
        assert_eq!(Sku::S1.class(), SkuClass::StorageIntensive);
        assert_eq!(Sku::S3.class(), SkuClass::StorageIntensive);
        assert_eq!(Sku::S2.class(), SkuClass::ComputeIntensive);
        assert_eq!(Sku::S4.class(), SkuClass::ComputeIntensive);
        assert_eq!(Sku::S5.class(), SkuClass::Mixed);
        assert_eq!(Sku::S7.class(), SkuClass::Hpc);
    }

    #[test]
    fn workload_classes_match_table_iii() {
        assert_eq!(Workload::W1.class(), WorkloadClass::Compute);
        assert_eq!(Workload::W3.class(), WorkloadClass::Hpc);
        assert_eq!(Workload::W4.class(), WorkloadClass::StorageCompute);
        assert_eq!(Workload::W7.class(), WorkloadClass::StorageCompute);
        assert_eq!(Workload::W5.class(), WorkloadClass::StorageData);
    }

    #[test]
    fn indices_are_stable() {
        for (i, s) in Sku::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        for (i, w) in Workload::ALL.iter().enumerate() {
            assert_eq!(w.index(), i);
        }
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let set: BTreeSet<RackId> = [RackId(3), RackId(1), RackId(2)].into_iter().collect();
        assert_eq!(set.iter().next(), Some(&RackId(1)));
    }
}
