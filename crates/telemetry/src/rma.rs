//! RMA (Return Merchandise Authorization) failure tickets.
//!
//! Mirrors the paper's Section IV: a ticket records the onset of a failure
//! detected by the DC management framework, the fault taxonomy of Table II,
//! the affected device and its location, and the resolution time. Tickets
//! may be false positives; the paper's analysis (and ours) uses only true
//! positives.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{DeviceId, ServerLocation};
use crate::time::SimTime;
use crate::{Result, TelemetryError};

/// Hardware fault types from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HardwareFault {
    /// Hard-disk failure (leading hardware cause in both DCs).
    Disk,
    /// Memory (DIMM) failure.
    Memory,
    /// Power-delivery failure (PSU, power strip).
    Power,
    /// Other server hardware (motherboard, CPU, fans).
    Server,
    /// NIC or top-of-rack connectivity.
    Network,
}

impl HardwareFault {
    /// All hardware fault types.
    pub const ALL: [HardwareFault; 5] = [
        HardwareFault::Disk,
        HardwareFault::Memory,
        HardwareFault::Power,
        HardwareFault::Server,
        HardwareFault::Network,
    ];
}

impl fmt::Display for HardwareFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HardwareFault::Disk => "Disk failure",
            HardwareFault::Memory => "Memory failure",
            HardwareFault::Power => "Power failure",
            HardwareFault::Server => "Server failure",
            HardwareFault::Network => "Network failure",
        };
        f.write_str(s)
    }
}

/// Software fault types from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SoftwareFault {
    /// Service timeout (the leading cause overall).
    Timeout,
    /// Deployment failure.
    Deployment,
    /// Node or agent crash.
    Crash,
}

impl fmt::Display for SoftwareFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SoftwareFault::Timeout => "Timeout failure",
            SoftwareFault::Deployment => "Deployment failure",
            SoftwareFault::Crash => "Node/Agent crash",
        };
        f.write_str(s)
    }
}

/// Boot fault types from Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BootFault {
    /// PXE network-boot failure.
    Pxe,
    /// Failed reboot.
    Reboot,
}

impl fmt::Display for BootFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BootFault::Pxe => "PXE boot failure",
            BootFault::Reboot => "Reboot failure",
        };
        f.write_str(s)
    }
}

/// The full fault taxonomy of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Physical hardware fault, resolved by repair or replacement.
    Hardware(HardwareFault),
    /// OS/application/service fault, resolved by software fixes.
    Software(SoftwareFault),
    /// Boot failure.
    Boot(BootFault),
    /// Ticket lacking enough information to classify.
    Other,
}

impl FaultKind {
    /// Top-level category name ("Hardware", "Software", "Boot", "Others").
    pub fn category(&self) -> &'static str {
        match self {
            FaultKind::Hardware(_) => "Hardware",
            FaultKind::Software(_) => "Software",
            FaultKind::Boot(_) => "Boot",
            FaultKind::Other => "Others",
        }
    }

    /// Whether this is a physical hardware fault (the class the paper's
    /// three questions are answered on).
    pub fn is_hardware(&self) -> bool {
        matches!(self, FaultKind::Hardware(_))
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Hardware(h) => h.fmt(f),
            FaultKind::Software(s) => s.fmt(f),
            FaultKind::Boot(b) => b.fmt(f),
            FaultKind::Other => f.write_str("Others"),
        }
    }
}

/// One RMA ticket.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RmaTicket {
    /// Device the ticket was filed against.
    pub device: DeviceId,
    /// Location of the affected server.
    pub location: ServerLocation,
    /// Fault classification (description field of the ticket).
    pub fault: FaultKind,
    /// When the failure was detected.
    pub opened: SimTime,
    /// When the ticket was resolved (device back in service).
    pub resolved: SimTime,
    /// How many times this fault recurred on the same device.
    pub repeat_count: u32,
    /// Whether the operating engineer found no actual fault.
    pub false_positive: bool,
}

impl RmaTicket {
    /// Validates the ticket's interval.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::InvertedInterval`] if `resolved < opened`.
    pub fn validate(&self) -> Result<()> {
        if self.resolved < self.opened {
            return Err(TelemetryError::InvertedInterval);
        }
        Ok(())
    }

    /// Outage duration in hours.
    pub fn outage_hours(&self) -> u64 {
        self.resolved.hours().saturating_sub(self.opened.hours())
    }
}

/// Filters a ticket stream down to validated true positives, the population
/// the paper analyzes. Invalid (inverted-interval) tickets are dropped too.
pub fn true_positives(tickets: &[RmaTicket]) -> Vec<&RmaTicket> {
    tickets.iter().filter(|t| !t.false_positive && t.validate().is_ok()).collect()
}

/// Like [`true_positives`], but accounts for every excluded row in the
/// quality report instead of dropping it silently: flagged false positives
/// bump `false_positives_excluded`, invalid intervals bump `invalid_dropped`
/// (the latter stays zero on a sanitized stream).
pub fn true_positives_audited<'a>(
    tickets: &'a [RmaTicket],
    report: &mut crate::quality::DataQualityReport,
) -> Vec<&'a RmaTicket> {
    let mut out = Vec::with_capacity(tickets.len());
    for t in tickets {
        if t.false_positive {
            report.false_positives_excluded += 1;
        } else if t.validate().is_err() {
            report.invalid_dropped += 1;
        } else {
            out.push(t);
        }
    }
    out
}

/// Per-category ticket share, reproducing the shape of Table II.
///
/// Returns `(fault kind, count, percent)` rows sorted by descending percent.
/// Percentages are over all true-positive tickets passed in.
pub fn category_breakdown(tickets: &[&RmaTicket]) -> Vec<(FaultKind, usize, f64)> {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<FaultKind, usize> = BTreeMap::new();
    for t in tickets {
        *counts.entry(t.fault).or_insert(0) += 1;
    }
    let total = tickets.len().max(1) as f64;
    let mut rows: Vec<(FaultKind, usize, f64)> =
        counts.into_iter().map(|(k, c)| (k, c, 100.0 * c as f64 / total)).collect();
    rows.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("percentages are finite"));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{DcId, RackId, RegionId, RowId, ServerId};

    fn loc() -> ServerLocation {
        ServerLocation {
            dc: DcId(1),
            region: RegionId(1),
            row: RowId(1),
            rack: RackId(1),
            server: ServerId(1),
        }
    }

    fn ticket(fault: FaultKind, opened: u64, resolved: u64, fp: bool) -> RmaTicket {
        RmaTicket {
            device: DeviceId(1),
            location: loc(),
            fault,
            opened: SimTime(opened),
            resolved: SimTime(resolved),
            repeat_count: 0,
            false_positive: fp,
        }
    }

    #[test]
    fn validate_rejects_inverted() {
        let t = ticket(FaultKind::Other, 10, 5, false);
        assert_eq!(t.validate(), Err(TelemetryError::InvertedInterval));
        assert!(ticket(FaultKind::Other, 5, 5, false).validate().is_ok());
    }

    #[test]
    fn outage_hours() {
        assert_eq!(ticket(FaultKind::Other, 10, 34, false).outage_hours(), 24);
    }

    #[test]
    fn true_positives_filters() {
        let tickets = vec![
            ticket(FaultKind::Hardware(HardwareFault::Disk), 0, 4, false),
            ticket(FaultKind::Hardware(HardwareFault::Disk), 0, 4, true),
            ticket(FaultKind::Other, 9, 3, false), // inverted
        ];
        let tp = true_positives(&tickets);
        assert_eq!(tp.len(), 1);
    }

    #[test]
    fn true_positives_audited_counts_every_drop() {
        let tickets = vec![
            ticket(FaultKind::Hardware(HardwareFault::Disk), 0, 4, false),
            ticket(FaultKind::Hardware(HardwareFault::Disk), 0, 4, true),
            ticket(FaultKind::Other, 9, 3, false), // inverted
        ];
        let mut report = crate::quality::DataQualityReport::default();
        let tp = true_positives_audited(&tickets, &mut report);
        assert_eq!(tp, true_positives(&tickets));
        assert_eq!(report.false_positives_excluded, 1);
        assert_eq!(report.invalid_dropped, 1);
    }

    #[test]
    fn category_breakdown_percentages() {
        let tickets = [
            ticket(FaultKind::Hardware(HardwareFault::Disk), 0, 1, false),
            ticket(FaultKind::Hardware(HardwareFault::Disk), 0, 1, false),
            ticket(FaultKind::Software(SoftwareFault::Timeout), 0, 1, false),
            ticket(FaultKind::Boot(BootFault::Pxe), 0, 1, false),
        ];
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let rows = category_breakdown(&refs);
        assert_eq!(rows[0].0, FaultKind::Hardware(HardwareFault::Disk));
        assert_eq!(rows[0].1, 2);
        assert!((rows[0].2 - 50.0).abs() < 1e-12);
        let total: f64 = rows.iter().map(|r| r.2).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fault_kind_display_and_category() {
        assert_eq!(FaultKind::Hardware(HardwareFault::Disk).to_string(), "Disk failure");
        assert_eq!(FaultKind::Software(SoftwareFault::Crash).category(), "Software");
        assert!(FaultKind::Hardware(HardwareFault::Memory).is_hardware());
        assert!(!FaultKind::Boot(BootFault::Reboot).is_hardware());
    }
}
