//! Telemetry data model for the `rainshine` workspace.
//!
//! This crate defines the vocabulary shared by the simulator
//! (`rainshine-dcsim`) and the analysis framework (`rainshine-core`):
//!
//! * [`ids`] — strongly-typed identifiers for the spatial hierarchy
//!   (datacenter → region → row → rack → server → component) plus the SKU
//!   (S1–S7) and workload (W1–W7) catalogs from Table III of the paper;
//! * [`time`] — a simulation calendar ([`time::SimTime`], hours since
//!   2012-01-01) with day-of-week / month / year decomposition and
//!   aggregation windows ([`time::TimeGranularity`]);
//! * [`rma`] — RMA failure tickets with the paper's Table II taxonomy
//!   (software / boot / hardware / other, with per-category fault types);
//! * [`frame`] — zero-copy columnar frames: contiguous typed column
//!   buffers, shared category dictionaries, borrowed row views;
//! * [`table`] — a typed columnar table (continuous / nominal / ordinal
//!   columns) used as the dataset representation for CART, a thin wrapper
//!   over [`frame::Frame`];
//! * [`schema`] — the canonical candidate-feature schema (Table III);
//! * [`metrics`] — the paper's two failure metrics: generation rate λ and
//!   concurrent-failure count μ, at arbitrary spatial × temporal
//!   granularity;
//! * [`quality`] — robust ingestion for dirty streams: a sanitizer that
//!   dedups, repairs, or quarantines defective tickets and accounts for
//!   every row in a [`quality::DataQualityReport`].

pub mod frame;
pub mod ids;
pub mod metrics;
pub mod quality;
pub mod rma;
pub mod schema;
pub mod table;
pub mod time;

mod error;

pub use error::TelemetryError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TelemetryError>;
