//! Serde round-trips: the analysis artifacts (tables, tickets, metrics)
//! must survive JSON serialization unchanged, since the experiment harness
//! persists them.

use rainshine_telemetry::ids::{DcId, DeviceId, RackId, RegionId, RowId, ServerId, ServerLocation};
use rainshine_telemetry::metrics::WindowedSeries;
use rainshine_telemetry::rma::{FaultKind, HardwareFault, RmaTicket};
use rainshine_telemetry::table::{FeatureKind, Field, Schema, Table, TableBuilder, Value};
use rainshine_telemetry::time::SimTime;

#[test]
fn ticket_roundtrips_through_json() {
    let ticket = RmaTicket {
        device: DeviceId(42),
        location: ServerLocation {
            dc: DcId(1),
            region: RegionId(2),
            row: RowId(3),
            rack: RackId(4),
            server: ServerId(5),
        },
        fault: FaultKind::Hardware(HardwareFault::Disk),
        opened: SimTime(100),
        resolved: SimTime(110),
        repeat_count: 1,
        false_positive: false,
    };
    let json = serde_json::to_string(&ticket).unwrap();
    let back: RmaTicket = serde_json::from_str(&json).unwrap();
    assert_eq!(ticket, back);
}

#[test]
fn table_roundtrips_through_json() {
    let schema = Schema::new(vec![
        Field::new("x", FeatureKind::Continuous),
        Field::new("k", FeatureKind::Nominal),
        Field::new("o", FeatureKind::Ordinal),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..5 {
        b.push_row(vec![
            Value::Continuous(i as f64),
            Value::Nominal(format!("c{}", i % 2)),
            Value::Ordinal(i),
        ])
        .unwrap();
    }
    let table = b.build();
    let json = serde_json::to_string(&table).unwrap();
    let back: Table = serde_json::from_str(&json).unwrap();
    assert_eq!(table, back);
    assert_eq!(back.nominal_label("k", 3).unwrap(), "c1");
}

#[test]
fn windowed_series_roundtrips() {
    let mut s = WindowedSeries::zeros(10);
    s.nonzero.insert(3, 7);
    let json = serde_json::to_string(&s).unwrap();
    let back: WindowedSeries = serde_json::from_str(&json).unwrap();
    assert_eq!(s, back);
    assert_eq!(back.quantile(1.0), 7);
}
