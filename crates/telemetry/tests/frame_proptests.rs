//! Property tests for the `Table` ↔ `Frame` round-trip: converting a table
//! into its backing frame and wrapping the frame back must preserve every
//! value (including NaN cells), the column kinds, and the category
//! dictionaries — and the dictionaries must round-trip without copying.

use proptest::prelude::*;
use rainshine_telemetry::frame::Frame;
use rainshine_telemetry::table::{FeatureKind, Field, Schema, Table, TableBuilder, Value};

/// Label pool for nominal cells.
const LABELS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

/// Float pool for continuous cells; deliberately includes NaN, signed
/// zeros, and an extreme magnitude.
const FLOATS: [f64; 6] = [0.0, -0.0, -1.5, 3.25, 1e300, f64::NAN];

/// One generic generated cell, interpreted per the column's kind.
type CellSeed = (u8, u8, i64);

fn kind_of(code: u8) -> FeatureKind {
    match code % 3 {
        0 => FeatureKind::Continuous,
        1 => FeatureKind::Nominal,
        _ => FeatureKind::Ordinal,
    }
}

fn cell(kind: FeatureKind, (f_idx, l_idx, ord): CellSeed) -> Value {
    match kind {
        FeatureKind::Continuous => Value::Continuous(FLOATS[f_idx as usize % FLOATS.len()]),
        FeatureKind::Nominal => Value::Nominal(LABELS[l_idx as usize % LABELS.len()].to_owned()),
        FeatureKind::Ordinal => Value::Ordinal(ord),
    }
}

/// Assembles a table through the row-oriented builder from generic seeds.
fn build_table(kinds: &[u8], rows: &[Vec<CellSeed>]) -> Table {
    let fields =
        kinds.iter().enumerate().map(|(i, &k)| Field::new(format!("c{i}"), kind_of(k))).collect();
    let mut builder = TableBuilder::new(Schema::new(fields));
    for row in rows {
        let values = kinds.iter().zip(row).map(|(&k, &seed)| cell(kind_of(k), seed)).collect();
        builder.push_row(values).expect("generated row matches schema");
    }
    builder.build()
}

/// Bit-level float slice equality: NaN == NaN, +0.0 != -0.0.
fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #[test]
    fn table_frame_roundtrip_preserves_everything(
        kinds in prop::collection::vec(0u8..3, 1..5),
        rows in prop::collection::vec(prop::collection::vec((0u8..8, 0u8..7, -3i64..7), 4), 0..25),
    ) {
        let table = build_table(&kinds, &rows);
        let frame: Frame = table.frame().clone();
        let rebuilt = Table::from_frame(frame);

        prop_assert_eq!(table.schema(), rebuilt.schema());
        prop_assert_eq!(table.rows(), rebuilt.rows());

        for (i, &k) in kinds.iter().enumerate() {
            let name = format!("c{i}");
            match kind_of(k) {
                FeatureKind::Continuous => {
                    let a = table.continuous(&name).expect("continuous column");
                    let b = rebuilt.continuous(&name).expect("continuous column");
                    prop_assert!(bits_equal(a, b), "column {} diverged", name);
                }
                FeatureKind::Nominal => {
                    prop_assert_eq!(
                        table.nominal_codes(&name).expect("codes"),
                        rebuilt.nominal_codes(&name).expect("codes")
                    );
                    prop_assert_eq!(
                        table.categories(&name).expect("categories"),
                        rebuilt.categories(&name).expect("categories")
                    );
                    // Zero-copy: the rebuilt table shares the original
                    // dictionary allocation instead of cloning labels.
                    let a = table.frame().dictionary(&name).expect("dictionary");
                    let b = rebuilt.frame().dictionary(&name).expect("dictionary");
                    prop_assert!(a.same_allocation(b), "dictionary {} copied", name);
                }
                FeatureKind::Ordinal => {
                    prop_assert_eq!(
                        table.ordinal(&name).expect("ordinal column"),
                        rebuilt.ordinal(&name).expect("ordinal column")
                    );
                }
            }
        }
    }

    #[test]
    fn roundtrip_survives_serialization(
        kinds in prop::collection::vec(0u8..3, 1..4),
        rows in prop::collection::vec(prop::collection::vec((1u8..5, 0u8..7, -3i64..7), 3), 1..15),
    ) {
        // Seeds start at 1 for the float index: serialized NaN is exercised
        // by the dedicated serde round-trip suite; here every cell must
        // compare equal after a serialize/deserialize cycle.
        let table = build_table(&kinds, &rows);
        let json = serde_json::to_string(&table).expect("table serializes");
        let back: Table = serde_json::from_str(&json).expect("table deserializes");
        prop_assert_eq!(table.schema(), back.schema());
        prop_assert_eq!(table.rows(), back.rows());
        // A table and its backing frame serialize identically — the wrapper
        // adds no bytes.
        let frame_json = serde_json::to_string(table.frame()).expect("frame serializes");
        prop_assert_eq!(&json, &frame_json);
        let frame_back: Frame = serde_json::from_str(&frame_json).expect("frame deserializes");
        prop_assert_eq!(back.frame(), &frame_back);
    }
}
