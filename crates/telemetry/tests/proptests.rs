//! Property-based tests for the telemetry data model.

use proptest::prelude::*;
use rainshine_telemetry::ids::{DcId, DeviceId, RackId, RegionId, RowId, ServerId, ServerLocation};
use rainshine_telemetry::metrics::{ensure_units, lambda, mu, SpatialGranularity};
use rainshine_telemetry::rma::{FaultKind, HardwareFault, RmaTicket};
use rainshine_telemetry::time::{SimTime, TimeGranularity};

fn ticket_strategy() -> impl Strategy<Value = RmaTicket> {
    (1u8..=2, 1u8..=3, 1u16..=6, 1u32..=8, 1u32..=40, 0u64..2000, 1u64..200).prop_map(
        |(dc, region, row, rack, server, opened, duration)| RmaTicket {
            device: DeviceId(server as u64 | (rack as u64) << 32),
            location: ServerLocation {
                dc: DcId(dc),
                region: RegionId(region),
                row: RowId(row),
                rack: RackId(rack),
                server: ServerId(server),
            },
            fault: FaultKind::Hardware(HardwareFault::Disk),
            opened: SimTime(opened),
            resolved: SimTime(opened + duration),
            repeat_count: 0,
            false_positive: false,
        },
    )
}

proptest! {
    #[test]
    fn calendar_roundtrip(days in 0u64..2000, hour in 0u8..24) {
        let t = SimTime::from_days(days).plus_hours(hour as u64);
        let d = t.date();
        let rebuilt = SimTime::from_date(d.year, d.month, d.day, t.hour_of_day());
        prop_assert_eq!(rebuilt, t);
        prop_assert!((1..=12).contains(&d.month));
        prop_assert!((1..=31).contains(&d.day));
        prop_assert!((1..=53).contains(&t.week_of_year()));
    }

    #[test]
    fn windows_are_consistent(hours in 0u64..50_000) {
        let t = SimTime(hours);
        for g in [
            TimeGranularity::Hourly,
            TimeGranularity::Daily,
            TimeGranularity::Weekly,
            TimeGranularity::Monthly,
        ] {
            let w = g.window_of(t);
            let start = g.window_start(w);
            // The window's start is at or before t, and t falls inside the
            // window that starts there.
            prop_assert!(start <= t, "{g:?}");
            prop_assert_eq!(g.window_of(start), w);
        }
    }

    #[test]
    fn lambda_total_equals_in_span_tickets(
        tickets in prop::collection::vec(ticket_strategy(), 1..60),
        span_days in 10u64..120,
    ) {
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let start = SimTime(0);
        let end = SimTime::from_days(span_days);
        let map = lambda(&refs, SpatialGranularity::Datacenter, TimeGranularity::Daily, start, end);
        let total: u64 = map.values().map(|s| s.total()).sum();
        let expected =
            tickets.iter().filter(|t| t.opened >= start && t.opened < end).count() as u64;
        prop_assert_eq!(total, expected);
    }

    #[test]
    fn mu_hourly_never_exceeds_daily(
        tickets in prop::collection::vec(ticket_strategy(), 1..60),
    ) {
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let start = SimTime(0);
        let end = SimTime::from_days(100);
        let daily = mu(&refs, SpatialGranularity::Rack, TimeGranularity::Daily, start, end);
        let hourly = mu(&refs, SpatialGranularity::Rack, TimeGranularity::Hourly, start, end);
        for (key, hourly_series) in &hourly {
            let daily_max = daily.get(key).map(|s| s.max()).unwrap_or(0);
            // Any hour's device set is a subset of its day's device set.
            prop_assert!(
                hourly_series.max() <= daily_max,
                "hourly {} > daily {}",
                hourly_series.max(),
                daily_max
            );
        }
    }

    #[test]
    fn mu_bounded_by_distinct_devices(
        tickets in prop::collection::vec(ticket_strategy(), 1..60),
    ) {
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let start = SimTime(0);
        let end = SimTime::from_days(100);
        let map = mu(&refs, SpatialGranularity::Datacenter, TimeGranularity::Daily, start, end);
        use std::collections::BTreeSet;
        for (key, series) in &map {
            let devices: BTreeSet<u64> = tickets
                .iter()
                .filter(|t| SpatialGranularity::Datacenter.key(&t.location) == *key)
                .map(|t| t.device.0)
                .collect();
            prop_assert!(series.max() <= devices.len() as u64);
        }
    }

    #[test]
    fn windowed_series_quantile_monotone(
        tickets in prop::collection::vec(ticket_strategy(), 1..40),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let map = lambda(
            &refs,
            SpatialGranularity::Rack,
            TimeGranularity::Daily,
            SimTime(0),
            SimTime::from_days(100),
        );
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        for series in map.values() {
            prop_assert!(series.quantile(lo) <= series.quantile(hi));
            prop_assert!(series.quantile(1.0) == series.max());
            prop_assert!(series.mean() <= series.max() as f64 + 1e-12);
        }
    }

    #[test]
    fn ensure_units_is_idempotent(
        tickets in prop::collection::vec(ticket_strategy(), 1..20),
    ) {
        let refs: Vec<&RmaTicket> = tickets.iter().collect();
        let mut map = lambda(
            &refs,
            SpatialGranularity::Rack,
            TimeGranularity::Daily,
            SimTime(0),
            SimTime::from_days(50),
        );
        let units: Vec<_> = tickets
            .iter()
            .map(|t| SpatialGranularity::Rack.key(&t.location))
            .collect();
        let before = map.clone();
        ensure_units(&mut map, units.clone(), 50);
        // Pre-existing entries are untouched; any newly added unit (e.g. a
        // rack whose only ticket fell outside the span) is all-zero.
        for (key, series) in &before {
            prop_assert_eq!(&map[key], series, "existing units untouched");
        }
        for (key, series) in &map {
            if !before.contains_key(key) {
                prop_assert_eq!(series.total(), 0);
                prop_assert_eq!(series.windows, 50);
            }
        }
        // Idempotence: a second application changes nothing.
        let after_once = map.clone();
        ensure_units(&mut map, units, 50);
        prop_assert_eq!(&map, &after_once);
    }
}
