//! Property-based tests for the ingestion sanitizer: whatever garbage the
//! stream contains, sanitized output is valid; sanitization is idempotent;
//! and dedup never folds genuinely distinct true positives.

use proptest::prelude::*;
use rainshine_telemetry::ids::{DcId, DeviceId, RackId, RegionId, RowId, ServerId, ServerLocation};
use rainshine_telemetry::quality::{FleetManifest, Sanitizer, SanitizerConfig};
use rainshine_telemetry::rma::{FaultKind, HardwareFault, RmaTicket};
use rainshine_telemetry::time::SimTime;

fn location(dc: u8, region: u8, row: u16, rack: u32, server: u32) -> ServerLocation {
    ServerLocation {
        dc: DcId(dc),
        region: RegionId(region),
        row: RowId(row),
        rack: RackId(rack),
        server: ServerId(server),
    }
}

/// Tickets with every defect the sanitizer handles: inverted or censored
/// intervals, out-of-span timestamps, false-positive flags, repeats.
fn dirty_ticket_strategy() -> impl Strategy<Value = RmaTicket> {
    (1u8..=2, 1u8..=3, 1u16..=6, 1u32..=8, 1u32..=40, 0u64..2000, -150i64..200, 0u8..2, 0u32..3)
        .prop_map(|(dc, region, row, rack, server, opened, dur, fp, repeat)| {
            let resolved = (opened as i64 + dur).max(0) as u64;
            RmaTicket {
                device: DeviceId(server as u64 | (rack as u64) << 32),
                location: location(dc, region, row, rack, server),
                fault: FaultKind::Hardware(HardwareFault::Disk),
                opened: SimTime(opened),
                resolved: SimTime(resolved),
                repeat_count: repeat,
                false_positive: fp == 1,
            }
        })
}

fn sanitizer() -> Sanitizer {
    // Empty manifest: location repair is skipped, all other passes run.
    Sanitizer::new(
        FleetManifest::new(),
        SanitizerConfig::for_span(SimTime(0), SimTime::from_days(60)),
    )
}

proptest! {
    #[test]
    fn sanitized_output_always_validates(
        tickets in prop::collection::vec(dirty_ticket_strategy(), 0..80),
    ) {
        let (kept, report) = sanitizer().sanitize(&tickets);
        // Every non-FP survivor is valid and in-span. False positives pass
        // through untouched whatever their shape — they are flagged, not
        // analyzed, so repairing them would only mask the flag.
        for t in kept.iter().filter(|t| !t.false_positive) {
            prop_assert!(t.validate().is_ok(), "invalid ticket survived: {t:?}");
            prop_assert!(t.opened >= SimTime(0) && t.opened < SimTime::from_days(60));
        }
        // False positives pass through untouched, in equal number.
        let fp_in = tickets.iter().filter(|t| t.false_positive).count();
        let fp_out = kept.iter().filter(|t| t.false_positive).count();
        prop_assert_eq!(fp_in, fp_out);
        prop_assert_eq!(fp_out as u64, report.false_positives_flagged);
        // Nothing vanishes unaccounted: seen = kept + quarantined.
        prop_assert_eq!(
            report.tickets_seen,
            report.tickets_kept + report.total_quarantined()
        );
        prop_assert_eq!(report.tickets_seen as usize, tickets.len());
        prop_assert_eq!(report.tickets_kept as usize, kept.len());
    }

    #[test]
    fn sanitization_is_idempotent(
        tickets in prop::collection::vec(dirty_ticket_strategy(), 0..80),
    ) {
        let (once, _) = sanitizer().sanitize(&tickets);
        let (twice, report) = sanitizer().sanitize(&once);
        prop_assert_eq!(&twice, &once, "second pass changed the stream");
        prop_assert_eq!(report.total_detected(), 0, "second pass found defects: {report}");
        prop_assert_eq!(report.tickets_kept, report.tickets_seen);
    }

    #[test]
    fn dedup_never_removes_distinct_true_positives(
        spans in prop::collection::vec((0u64..1440, 1u64..200), 1..60),
    ) {
        // Distinct by construction: every ticket gets its own device id, so
        // no pair can be a duplicate no matter how close the timestamps are.
        let tickets: Vec<RmaTicket> = spans
            .iter()
            .enumerate()
            .map(|(i, &(opened, dur))| RmaTicket {
                device: DeviceId(i as u64),
                location: location(1, 1, 1, 1, i as u32),
                fault: FaultKind::Hardware(HardwareFault::Disk),
                opened: SimTime(opened),
                resolved: SimTime(opened + dur),
                repeat_count: 0,
                false_positive: false,
            })
            .collect();
        let (kept, report) = sanitizer().sanitize(&tickets);
        prop_assert_eq!(kept.len(), tickets.len(), "a distinct ticket was dropped");
        prop_assert_eq!(report.total_detected(), 0);
        let mut ids: Vec<u64> = kept.iter().map(|t| t.device.0).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..tickets.len() as u64).collect::<Vec<_>>());
    }
}
