//! Time-series diagnostics: autocorrelation and the Ljung–Box portmanteau
//! test.
//!
//! The paper's Cat. 1 discussion notes that "aggregate behaviors on
//! predictability (say patterns in error occurrences) could … be used to
//! optimize dynamic mitigation techniques". These tools quantify such
//! patterns: significant positive autocorrelation in a rack's daily
//! failure counts means failures cluster in time (and a spare freed today
//! is likelier to be needed again tomorrow).

use crate::error::ensure_sample;
use crate::htest::TestResult;
use crate::special::chi_square_cdf;
use crate::{Result, StatsError};

/// Sample autocorrelation function up to `max_lag` (inclusive).
///
/// `acf[0]` is always `1.0`. Uses the biased (1/n) covariance normalizer,
/// the standard choice that keeps the sequence positive semi-definite.
///
/// # Errors
///
/// Returns an error for empty/non-finite input, a constant series, or
/// `max_lag >= len`.
pub fn acf(data: &[f64], max_lag: usize) -> Result<Vec<f64>> {
    ensure_sample(data)?;
    if max_lag >= data.len() {
        return Err(StatsError::InvalidParameter { name: "max_lag", value: max_lag as f64 });
    }
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var: f64 = data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    if var == 0.0 {
        return Err(StatsError::DegenerateDimension { what: "constant series has no acf" });
    }
    let mut out = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let cov: f64 =
            data.iter().zip(&data[lag..]).map(|(a, b)| (a - mean) * (b - mean)).sum::<f64>() / n;
        out.push(cov / var);
    }
    Ok(out)
}

/// Ljung–Box test for autocorrelation up to `lags`.
///
/// Null hypothesis: the series is white noise (no autocorrelation at lags
/// 1..=`lags`). The statistic is asymptotically chi-square with `lags`
/// degrees of freedom.
///
/// # Errors
///
/// Same conditions as [`acf`], plus `lags >= 1`.
pub fn ljung_box(data: &[f64], lags: usize) -> Result<TestResult> {
    if lags == 0 {
        return Err(StatsError::InvalidParameter { name: "lags", value: 0.0 });
    }
    let rho = acf(data, lags)?;
    let n = data.len() as f64;
    let statistic = n
        * (n + 2.0)
        * rho[1..].iter().enumerate().map(|(k, r)| r * r / (n - (k + 1) as f64)).sum::<f64>();
    let df = lags as f64;
    let p_value = 1.0 - chi_square_cdf(statistic.max(0.0), df);
    Ok(TestResult { statistic, p_value, df })
}

/// Index of dispersion (variance-to-mean ratio) of event counts: `1.0` for
/// Poisson arrivals, `> 1` for burst-clustered (over-dispersed) arrivals —
/// a one-number summary of temporal failure correlation.
///
/// # Errors
///
/// Returns an error for empty/non-finite input or a zero-mean series.
pub fn dispersion_index(counts: &[f64]) -> Result<f64> {
    ensure_sample(counts)?;
    let summary = crate::describe::Summary::from_slice(counts)?;
    if summary.mean() == 0.0 {
        return Err(StatsError::DegenerateDimension { what: "zero-mean count series" });
    }
    Ok(summary.sample_variance() / summary.mean())
}

/// Weighted isotonic regression (pool-adjacent-violators): the closest
/// non-decreasing sequence to `values` in weighted least squares.
///
/// Used to impose monotonicity on noisy dose-response curves (e.g. failure
/// rate vs temperature, where physics says hotter cannot mean fewer
/// temperature-driven failures).
///
/// # Errors
///
/// Returns an error for empty/mismatched inputs, non-finite values, or a
/// non-positive weight.
pub fn isotonic_regression(values: &[f64], weights: &[f64]) -> Result<Vec<f64>> {
    ensure_sample(values)?;
    if values.len() != weights.len() {
        return Err(StatsError::LengthMismatch { left: values.len(), right: weights.len() });
    }
    for (index, &w) in weights.iter().enumerate() {
        if !w.is_finite() || w <= 0.0 {
            return Err(StatsError::NonFiniteInput { index });
        }
    }
    // Blocks of pooled (mean, weight, extent).
    let mut means: Vec<f64> = Vec::with_capacity(values.len());
    let mut block_w: Vec<f64> = Vec::with_capacity(values.len());
    let mut extent: Vec<usize> = Vec::with_capacity(values.len());
    for (&v, &w) in values.iter().zip(weights) {
        means.push(v);
        block_w.push(w);
        extent.push(1);
        // Pool while the ordering is violated.
        while means.len() > 1 {
            let n = means.len();
            if means[n - 2] <= means[n - 1] {
                break;
            }
            let w_total = block_w[n - 2] + block_w[n - 1];
            let pooled = (means[n - 2] * block_w[n - 2] + means[n - 1] * block_w[n - 1]) / w_total;
            means[n - 2] = pooled;
            block_w[n - 2] = w_total;
            extent[n - 2] += extent[n - 1];
            means.pop();
            block_w.pop();
            extent.pop();
        }
    }
    let mut out = Vec::with_capacity(values.len());
    for (m, e) in means.iter().zip(&extent) {
        out.extend(std::iter::repeat_n(*m, *e));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn white_noise(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>() - 0.5).collect()
    }

    #[test]
    fn acf_lag_zero_is_one() {
        let data = white_noise(500, 1);
        let rho = acf(&data, 10).unwrap();
        assert_eq!(rho[0], 1.0);
        assert_eq!(rho.len(), 11);
        for r in &rho[1..] {
            assert!(r.abs() < 0.15, "white-noise acf {r}");
        }
    }

    #[test]
    fn acf_detects_persistence() {
        // AR(1)-ish: x_t = 0.8 x_{t-1} + noise.
        let noise = white_noise(2000, 2);
        let mut x = vec![0.0f64];
        for e in &noise {
            let prev = *x.last().expect("non-empty");
            x.push(0.8 * prev + e);
        }
        let rho = acf(&x, 3).unwrap();
        assert!(rho[1] > 0.6, "lag-1 acf {}", rho[1]);
        assert!(rho[2] > rho[3], "acf should decay");
    }

    #[test]
    fn ljung_box_rejects_ar_accepts_noise() {
        let noise = white_noise(500, 3);
        let lb = ljung_box(&noise, 10).unwrap();
        assert!(lb.p_value > 0.01, "white noise p {}", lb.p_value);

        let mut x = vec![0.0f64];
        for e in &noise {
            let prev = *x.last().expect("non-empty");
            x.push(0.7 * prev + e);
        }
        let lb = ljung_box(&x, 10).unwrap();
        assert!(lb.significant_at(1e-6), "AR p {}", lb.p_value);
    }

    #[test]
    fn dispersion_of_poisson_counts_near_one() {
        use crate::dist::{DiscreteDistribution, Poisson};
        let d = Poisson::new(3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let counts: Vec<f64> = (0..5000).map(|_| d.sample(&mut rng) as f64).collect();
        let di = dispersion_index(&counts).unwrap();
        assert!((di - 1.0).abs() < 0.1, "dispersion {di}");
    }

    #[test]
    fn dispersion_detects_bursts() {
        // Mixture: mostly 0, occasionally 20 — heavily over-dispersed.
        let counts: Vec<f64> = (0..1000).map(|i| if i % 50 == 0 { 20.0 } else { 0.0 }).collect();
        let di = dispersion_index(&counts).unwrap();
        assert!(di > 5.0, "dispersion {di}");
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(acf(&[1.0, 1.0, 1.0], 1).is_err());
        assert!(acf(&[1.0, 2.0], 5).is_err());
        assert!(ljung_box(&[1.0, 2.0, 3.0], 0).is_err());
        assert!(dispersion_index(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn isotonic_leaves_monotone_input_unchanged() {
        let v = vec![1.0, 2.0, 2.0, 5.0];
        let w = vec![1.0; 4];
        assert_eq!(isotonic_regression(&v, &w).unwrap(), v);
    }

    #[test]
    fn isotonic_pools_violators_by_weight() {
        // Heavy first point dominates the pooled block.
        let fit = isotonic_regression(&[3.0, 1.0], &[3.0, 1.0]).unwrap();
        assert_eq!(fit.len(), 2);
        assert_eq!(fit[0], fit[1]);
        assert!((fit[0] - 2.5).abs() < 1e-12, "weighted mean (3*3+1)/4");
        // A noisy low-weight spike cannot poison the tail.
        let v = [10.0, 1.0, 2.0, 3.0];
        let w = [0.01, 10.0, 10.0, 10.0];
        let fit = isotonic_regression(&v, &w).unwrap();
        assert!(fit[3] <= 3.01 && fit[3] >= 2.9, "{fit:?}");
        for pair in fit.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12);
        }
    }

    #[test]
    fn isotonic_preserves_weighted_mean() {
        let v = [5.0, 4.0, 6.0, 2.0, 7.0];
        let w = [1.0, 2.0, 1.0, 3.0, 1.0];
        let fit = isotonic_regression(&v, &w).unwrap();
        let before: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
        let after: f64 = fit.iter().zip(&w).map(|(a, b)| a * b).sum();
        assert!((before - after).abs() < 1e-9, "PAVA conserves the weighted sum");
    }

    #[test]
    fn isotonic_rejects_bad_inputs() {
        assert!(isotonic_regression(&[], &[]).is_err());
        assert!(isotonic_regression(&[1.0], &[]).is_err());
        assert!(isotonic_regression(&[1.0], &[0.0]).is_err());
        assert!(isotonic_regression(&[1.0], &[-1.0]).is_err());
    }
}
