//! Descriptive statistics over finite `f64` samples.

use crate::error::ensure_sample;
use crate::Result;

/// A one-pass summary of a sample: count, mean, variance, extrema.
///
/// Built with [`Summary::from_slice`] or incrementally via
/// [`crate::running::Welford`].
///
/// # Example
///
/// ```
/// use rainshine_stats::describe::Summary;
///
/// let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])?;
/// assert_eq!(s.mean(), 5.0);
/// assert_eq!(s.population_stddev(), 2.0);
/// # Ok::<(), rainshine_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Computes a summary of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StatsError::EmptyInput`] for an empty sample and
    /// [`crate::StatsError::NonFiniteInput`] if any value is NaN or infinite.
    pub fn from_slice(data: &[f64]) -> Result<Self> {
        ensure_sample(data)?;
        let mut w = crate::running::Welford::new();
        for &v in data {
            w.push(v);
        }
        Ok(w.summary().expect("non-empty by construction"))
    }

    pub(crate) fn from_parts(count: usize, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Summary { count, mean, m2, min, max }
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased (n−1) sample variance; `0.0` for a single observation.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population (n) variance.
    pub fn population_variance(&self) -> f64 {
        self.m2 / self.count as f64
    }

    /// Unbiased sample standard deviation.
    pub fn sample_stddev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Population standard deviation.
    pub fn population_stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Coefficient of variation (sample stddev / mean); `None` if the mean
    /// is zero.
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.sample_stddev() / self.mean.abs())
        }
    }
}

/// Arithmetic mean of `data`.
///
/// # Errors
///
/// See [`Summary::from_slice`].
pub fn mean(data: &[f64]) -> Result<f64> {
    Ok(Summary::from_slice(data)?.mean())
}

/// Unbiased sample variance of `data`.
///
/// # Errors
///
/// See [`Summary::from_slice`].
pub fn sample_variance(data: &[f64]) -> Result<f64> {
    Ok(Summary::from_slice(data)?.sample_variance())
}

/// Unbiased sample standard deviation of `data`.
///
/// # Errors
///
/// See [`Summary::from_slice`].
pub fn sample_stddev(data: &[f64]) -> Result<f64> {
    Ok(Summary::from_slice(data)?.sample_stddev())
}

/// Median of `data` (average of the two central order statistics for even
/// sample sizes).
///
/// # Errors
///
/// See [`Summary::from_slice`].
pub fn median(data: &[f64]) -> Result<f64> {
    ensure_sample(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite by validation"));
    let n = sorted.len();
    if n % 2 == 1 {
        Ok(sorted[n / 2])
    } else {
        Ok((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0)
    }
}

/// Sample skewness (adjusted Fisher–Pearson, g1 with bias correction).
///
/// Returns `0.0` when the standard deviation is zero.
///
/// # Errors
///
/// Returns an error for samples with fewer than 3 observations, or empty /
/// non-finite input.
pub fn skewness(data: &[f64]) -> Result<f64> {
    ensure_sample(data)?;
    let n = data.len();
    if n < 3 {
        return Err(crate::StatsError::DegenerateDimension {
            what: "skewness needs at least 3 observations",
        });
    }
    let m = mean(data)?;
    let sd = Summary::from_slice(data)?.population_stddev();
    if sd == 0.0 {
        return Ok(0.0);
    }
    let nf = n as f64;
    let m3 = data.iter().map(|&v| ((v - m) / sd).powi(3)).sum::<f64>() / nf;
    Ok((nf * (nf - 1.0)).sqrt() / (nf - 2.0) * m3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn single_observation_has_zero_variance() {
        let s = Summary::from_slice(&[42.0]).unwrap();
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]).unwrap(), 2.5);
    }

    #[test]
    fn skewness_of_symmetric_sample_is_zero() {
        let sk = skewness(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert!(sk.abs() < 1e-12);
    }

    #[test]
    fn skewness_sign_for_right_tail() {
        let sk = skewness(&[1.0, 1.0, 1.0, 1.0, 10.0]).unwrap();
        assert!(sk > 0.0);
    }

    #[test]
    fn cv_none_for_zero_mean() {
        let s = Summary::from_slice(&[-1.0, 1.0]).unwrap();
        assert_eq!(s.coefficient_of_variation(), None);
    }

    #[test]
    fn rejects_nan() {
        assert!(mean(&[f64::NAN]).is_err());
        assert!(median(&[1.0, f64::INFINITY]).is_err());
    }
}
