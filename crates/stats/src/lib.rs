//! Statistics substrate for the `rainshine` workspace.
//!
//! The paper this workspace reproduces (*"Rain or Shine? — Making Sense of
//! Cloudy Reliability Data"*, ICDCS 2017) leans on R's statistics stack for
//! its analysis. The Rust ecosystem offers no comparably complete offline
//! substitute, so this crate implements the required statistical machinery
//! from scratch:
//!
//! * descriptive statistics ([`describe`], [`running`]),
//! * empirical CDFs and quantiles ([`ecdf`]),
//! * histograms and binning ([`hist`]),
//! * correlation measures ([`corr`]),
//! * bootstrap confidence intervals ([`bootstrap`]),
//! * hypothesis tests — chi-square, Kolmogorov–Smirnov, Welch t ([`htest`]),
//! * random-variate distributions — Poisson, exponential, Weibull,
//!   log-normal, normal, Bernoulli, categorical ([`dist`]),
//! * impurity measures used by CART — Gini, entropy, variance ([`impurity`]),
//! * survival analysis — Kaplan–Meier, life-table hazards, Weibull MLE
//!   ([`survival`]),
//! * time-series diagnostics — ACF, Ljung–Box, dispersion ([`timeseries`]),
//! * special functions backing the above ([`special`]).
//!
//! # Example
//!
//! ```
//! use rainshine_stats::ecdf::Ecdf;
//!
//! let ecdf = Ecdf::new(vec![3.0, 1.0, 4.0, 1.0, 5.0])?;
//! assert_eq!(ecdf.quantile(0.5), 3.0);
//! assert!((ecdf.eval(4.0) - 0.8).abs() < 1e-12);
//! # Ok::<(), rainshine_stats::StatsError>(())
//! ```

pub mod bootstrap;
pub mod corr;
pub mod describe;
pub mod dist;
pub mod ecdf;
pub mod hist;
pub mod htest;
pub mod impurity;
pub mod running;
pub mod special;
pub mod survival;
pub mod timeseries;

mod error;

pub use error::StatsError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StatsError>;
