//! Hypothesis tests: chi-square independence, two-sample Kolmogorov–Smirnov,
//! and Welch's t-test.
//!
//! The multi-factor framework uses these to check that a factor's apparent
//! influence on failure rates is statistically significant after
//! normalization ("we quantify the confidence in the model", Section V-C).

use crate::describe::Summary;
use crate::error::ensure_sample;
use crate::special::{chi_square_cdf, student_t_cdf};
use crate::{Result, StatsError};

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Two-sided (or test-appropriate) p-value.
    pub p_value: f64,
    /// Degrees of freedom where applicable; `0.0` for the KS test.
    pub df: f64,
}

impl TestResult {
    /// Whether the null hypothesis is rejected at significance `alpha`.
    pub fn significant_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Pearson chi-square test of independence on a contingency table.
///
/// `table[i][j]` is the observed count in row category `i`, column
/// category `j`.
///
/// # Errors
///
/// Returns an error if the table is empty, ragged, smaller than 2×2, or has
/// a zero row/column total.
pub fn chi_square_independence(table: &[Vec<f64>]) -> Result<TestResult> {
    if table.len() < 2 {
        return Err(StatsError::DegenerateDimension { what: "need at least 2 rows" });
    }
    let cols = table[0].len();
    if cols < 2 {
        return Err(StatsError::DegenerateDimension { what: "need at least 2 columns" });
    }
    if table.iter().any(|r| r.len() != cols) {
        return Err(StatsError::DegenerateDimension { what: "ragged contingency table" });
    }
    let row_totals: Vec<f64> = table.iter().map(|r| r.iter().sum()).collect();
    let col_totals: Vec<f64> = (0..cols).map(|j| table.iter().map(|r| r[j]).sum()).collect();
    let grand: f64 = row_totals.iter().sum();
    if grand <= 0.0 || row_totals.iter().any(|&t| t <= 0.0) || col_totals.iter().any(|&t| t <= 0.0)
    {
        return Err(StatsError::DegenerateDimension { what: "zero marginal total" });
    }
    let mut stat = 0.0;
    for (i, row) in table.iter().enumerate() {
        for (j, &obs) in row.iter().enumerate() {
            if obs < 0.0 || !obs.is_finite() {
                return Err(StatsError::InvalidParameter { name: "count", value: obs });
            }
            let expected = row_totals[i] * col_totals[j] / grand;
            stat += (obs - expected).powi(2) / expected;
        }
    }
    let df = ((table.len() - 1) * (cols - 1)) as f64;
    let p_value = 1.0 - chi_square_cdf(stat, df);
    Ok(TestResult { statistic: stat, p_value, df })
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Uses the asymptotic Kolmogorov distribution for the p-value, adequate for
/// the sample sizes produced by the simulator (hundreds+).
///
/// # Errors
///
/// Returns an error for empty or non-finite samples.
pub fn ks_two_sample(x: &[f64], y: &[f64]) -> Result<TestResult> {
    ensure_sample(x)?;
    ensure_sample(y)?;
    let mut xs = x.to_vec();
    let mut ys = y.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite by validation"));
    ys.sort_by(|a, b| a.partial_cmp(b).expect("finite by validation"));
    let (n, m) = (xs.len(), ys.len());
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let v = xs[i].min(ys[j]);
        while i < n && xs[i] <= v {
            i += 1;
        }
        while j < m && ys[j] <= v {
            j += 1;
        }
        let fx = i as f64 / n as f64;
        let fy = j as f64 / m as f64;
        d = d.max((fx - fy).abs());
    }
    let en = ((n * m) as f64 / (n + m) as f64).sqrt();
    let lambda = (en + 0.12 + 0.11 / en) * d;
    let p_value = kolmogorov_q(lambda);
    Ok(TestResult { statistic: d, p_value, df: 0.0 })
}

/// Kolmogorov distribution survival function `Q(λ) = 2 Σ (−1)^{k−1} e^{−2k²λ²}`.
fn kolmogorov_q(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64).powi(2) * lambda * lambda).exp();
        sum += term;
        if term.abs() < 1e-12 {
            break;
        }
        sign = -sign;
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Welch's unequal-variance t-test (two-sided).
///
/// # Errors
///
/// Returns an error if either sample has fewer than 2 observations or
/// contains non-finite values, or if both samples have zero variance.
pub fn welch_t_test(x: &[f64], y: &[f64]) -> Result<TestResult> {
    ensure_sample(x)?;
    ensure_sample(y)?;
    if x.len() < 2 || y.len() < 2 {
        return Err(StatsError::DegenerateDimension { what: "welch test needs n >= 2 per group" });
    }
    let sx = Summary::from_slice(x)?;
    let sy = Summary::from_slice(y)?;
    let vx = sx.sample_variance() / x.len() as f64;
    let vy = sy.sample_variance() / y.len() as f64;
    let se2 = vx + vy;
    if se2 == 0.0 {
        return Err(StatsError::DegenerateDimension { what: "zero variance in both samples" });
    }
    let t = (sx.mean() - sy.mean()) / se2.sqrt();
    // Welch–Satterthwaite df.
    let df = se2 * se2 / (vx * vx / (x.len() as f64 - 1.0) + vy * vy / (y.len() as f64 - 1.0));
    let p_value = 2.0 * (1.0 - student_t_cdf(t.abs(), df));
    Ok(TestResult { statistic: t, p_value, df })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chi_square_independent_table_not_significant() {
        // Perfectly proportional rows -> statistic 0.
        let table = vec![vec![10.0, 20.0], vec![30.0, 60.0]];
        let r = chi_square_independence(&table).unwrap();
        assert!(r.statistic.abs() < 1e-9);
        assert!((r.p_value - 1.0).abs() < 1e-9);
        assert_eq!(r.df, 1.0);
    }

    #[test]
    fn chi_square_dependent_table_significant() {
        let table = vec![vec![50.0, 10.0], vec![10.0, 50.0]];
        let r = chi_square_independence(&table).unwrap();
        assert!(r.significant_at(0.001), "p = {}", r.p_value);
    }

    #[test]
    fn chi_square_rejects_degenerate() {
        assert!(chi_square_independence(&[vec![1.0, 2.0]]).is_err());
        assert!(chi_square_independence(&[vec![1.0], vec![2.0]]).is_err());
        assert!(chi_square_independence(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        assert!(chi_square_independence(&[vec![0.0, 0.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn ks_same_distribution_high_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let x: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
        let r = ks_two_sample(&x, &y).unwrap();
        assert!(r.p_value > 0.01, "p = {}", r.p_value);
    }

    #[test]
    fn ks_shifted_distribution_low_p() {
        let mut rng = StdRng::seed_from_u64(13);
        let x: Vec<f64> = (0..500).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = (0..500).map(|_| rng.gen::<f64>() + 0.3).collect();
        let r = ks_two_sample(&x, &y).unwrap();
        assert!(r.significant_at(1e-6), "p = {}", r.p_value);
        assert!(r.statistic > 0.2);
    }

    #[test]
    fn welch_detects_mean_shift() {
        let x: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = (0..100).map(|i| (i % 7) as f64 + 2.0).collect();
        let r = welch_t_test(&x, &y).unwrap();
        assert!(r.significant_at(1e-9), "p = {}", r.p_value);
        assert!(r.statistic < 0.0);
    }

    #[test]
    fn welch_no_shift_high_p() {
        let x: Vec<f64> = (0..100).map(|i| (i % 7) as f64).collect();
        let y = x.clone();
        let r = welch_t_test(&x, &y).unwrap();
        assert!((r.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn welch_rejects_tiny_or_constant() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_err());
        assert!(welch_t_test(&[1.0, 1.0], &[2.0, 2.0]).is_err());
    }
}
