//! Impurity measures used by CART split selection.
//!
//! The paper uses Gini impurity for classification splits and (implicitly,
//! via `rpart`'s `anova` method) within-node variance for regression splits.

/// Gini impurity of a discrete distribution given class counts.
///
/// `1 − Σ p_i²`; zero for a pure node, maximal for a uniform distribution.
/// An empty or all-zero count vector has impurity `0.0`.
///
/// # Example
///
/// ```
/// use rainshine_stats::impurity::gini;
///
/// assert_eq!(gini(&[10.0, 0.0]), 0.0);
/// assert_eq!(gini(&[5.0, 5.0]), 0.5);
/// ```
pub fn gini(class_counts: &[f64]) -> f64 {
    let total: f64 = class_counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    1.0 - class_counts.iter().map(|&c| (c / total).powi(2)).sum::<f64>()
}

/// Shannon entropy (nats) of a discrete distribution given class counts.
///
/// An empty or all-zero count vector has entropy `0.0`.
pub fn entropy(class_counts: &[f64]) -> f64 {
    let total: f64 = class_counts.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    -class_counts
        .iter()
        .filter(|&&c| c > 0.0)
        .map(|&c| {
            let p = c / total;
            p * p.ln()
        })
        .sum::<f64>()
}

/// Sum of squared deviations from the mean ("node deviance" in rpart's
/// anova method). Zero for empty or constant nodes.
pub fn sum_squared_deviation(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.iter().map(|&v| (v - mean).powi(2)).sum()
}

/// Weighted impurity decrease of a binary split.
///
/// `parent_impurity − (n_l/n)·left − (n_r/n)·right`, the quantity CART
/// maximizes over candidate splits. Weights are observation counts.
pub fn impurity_decrease(
    parent_impurity: f64,
    left_impurity: f64,
    left_n: f64,
    right_impurity: f64,
    right_n: f64,
) -> f64 {
    let n = left_n + right_n;
    if n <= 0.0 {
        return 0.0;
    }
    parent_impurity - (left_n / n) * left_impurity - (right_n / n) * right_impurity
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
        assert_eq!(gini(&[7.0]), 0.0);
        // Uniform over k classes: 1 - 1/k.
        assert!((gini(&[1.0, 1.0, 1.0, 1.0]) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn entropy_bounds() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[5.0]), 0.0);
        assert!((entropy(&[1.0, 1.0]) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn ssd_hand_check() {
        assert_eq!(sum_squared_deviation(&[]), 0.0);
        assert_eq!(sum_squared_deviation(&[3.0, 3.0]), 0.0);
        assert_eq!(sum_squared_deviation(&[1.0, 3.0]), 2.0);
    }

    #[test]
    fn perfect_split_decrease_equals_parent() {
        // Parent 50/50, split into two pure halves.
        let parent = gini(&[5.0, 5.0]);
        let d = impurity_decrease(parent, 0.0, 5.0, 0.0, 5.0);
        assert!((d - parent).abs() < 1e-12);
    }

    #[test]
    fn useless_split_zero_decrease() {
        let parent = gini(&[5.0, 5.0]);
        let half = gini(&[2.5, 2.5]);
        let d = impurity_decrease(parent, half, 5.0, half, 5.0);
        assert!(d.abs() < 1e-12);
        assert_eq!(impurity_decrease(0.5, 0.0, 0.0, 0.0, 0.0), 0.0);
    }
}
