//! Histograms and value binning.
//!
//! Most of the paper's single-factor figures (Figs. 2–9, 16, 17) are
//! "bin a factor, average the failure rate per bin" plots; [`Binner`] and
//! [`GroupedMeans`] are the machinery behind them.

use std::collections::BTreeMap;

use crate::describe::Summary;
use crate::error::ensure_finite;
use crate::running::Welford;
use crate::{Result, StatsError};

/// Maps continuous values to bin indices.
///
/// Supports uniform bins over a range and explicit (possibly open-ended)
/// edge lists, mirroring the paper's bin conventions, e.g. RH bins
/// `<20, 20-30, …, >70` in Fig. 5.
#[derive(Debug, Clone, PartialEq)]
pub struct Binner {
    /// Interior edges, ascending. A value `v` lands in bin
    /// `partition_point(edges, e <= v)`, so there are `edges.len() + 1` bins
    /// with the first and last open-ended.
    edges: Vec<f64>,
}

impl Binner {
    /// Creates a binner from ascending interior edges.
    ///
    /// With edges `[a, b]` the bins are `(-inf, a)`, `[a, b)`, `[b, +inf)`.
    ///
    /// # Errors
    ///
    /// Returns an error if `edges` is empty, non-finite, or not strictly
    /// ascending.
    pub fn from_edges(edges: Vec<f64>) -> Result<Self> {
        if edges.is_empty() {
            return Err(StatsError::DegenerateDimension { what: "binner needs at least one edge" });
        }
        ensure_finite(&edges)?;
        if edges.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StatsError::DegenerateDimension {
                what: "binner edges must be strictly ascending",
            });
        }
        Ok(Binner { edges })
    }

    /// Creates `count` uniform bins over `[lo, hi)` plus the two open-ended
    /// outer bins.
    ///
    /// # Errors
    ///
    /// Returns an error if `count == 0` or `lo >= hi` or bounds are not
    /// finite.
    pub fn uniform(lo: f64, hi: f64, count: usize) -> Result<Self> {
        if count == 0 {
            return Err(StatsError::DegenerateDimension { what: "zero bins" });
        }
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(StatsError::InvalidParameter { name: "range", value: hi - lo });
        }
        let width = (hi - lo) / count as f64;
        let edges = (0..=count).map(|i| lo + i as f64 * width).collect();
        Self::from_edges(edges)
    }

    /// Number of bins (`edges + 1`).
    pub fn bin_count(&self) -> usize {
        self.edges.len() + 1
    }

    /// Bin index of `value`.
    pub fn bin_of(&self, value: f64) -> usize {
        self.edges.partition_point(|&e| e <= value)
    }

    /// The interior edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Human-readable label for bin `i`, e.g. `"<20"`, `"20-30"`, `">=70"`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bin_count()`.
    pub fn label(&self, i: usize) -> String {
        assert!(i < self.bin_count(), "bin index {i} out of range");
        if i == 0 {
            format!("<{}", fmt_edge(self.edges[0]))
        } else if i == self.edges.len() {
            format!(">={}", fmt_edge(self.edges[i - 1]))
        } else {
            format!("{}-{}", fmt_edge(self.edges[i - 1]), fmt_edge(self.edges[i]))
        }
    }
}

fn fmt_edge(e: f64) -> String {
    if e == e.trunc() {
        format!("{}", e as i64)
    } else {
        format!("{e}")
    }
}

/// A histogram of counts per bin.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    binner: Binner,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram of `data` under `binner`.
    ///
    /// # Errors
    ///
    /// Returns an error if `data` contains non-finite values.
    pub fn new(binner: Binner, data: &[f64]) -> Result<Self> {
        ensure_finite(data)?;
        let mut counts = vec![0u64; binner.bin_count()];
        for &v in data {
            counts[binner.bin_of(v)] += 1;
        }
        let total = counts.iter().sum();
        Ok(Histogram { binner, counts, total })
    }

    /// Counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Relative frequency per bin (empty histogram yields all zeros).
    pub fn frequencies(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// The binner used.
    pub fn binner(&self) -> &Binner {
        &self.binner
    }
}

/// Per-bin summaries of a response variable grouped by a binned factor —
/// the "mean (and sd) failure rate per factor bin" shape used throughout the
/// paper's Section V-B evidence figures.
#[derive(Debug, Clone)]
pub struct GroupedMeans {
    binner: Binner,
    groups: Vec<Welford>,
}

impl GroupedMeans {
    /// Accumulates `(factor, response)` pairs into bins of `binner`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::LengthMismatch`] if the slices differ in length
    /// or an error for non-finite factor values. Non-finite responses are
    /// skipped.
    pub fn new(binner: Binner, factor: &[f64], response: &[f64]) -> Result<Self> {
        if factor.len() != response.len() {
            return Err(StatsError::LengthMismatch { left: factor.len(), right: response.len() });
        }
        ensure_finite(factor)?;
        let mut groups = vec![Welford::new(); binner.bin_count()];
        for (&f, &r) in factor.iter().zip(response) {
            groups[binner.bin_of(f)].push(r);
        }
        Ok(GroupedMeans { binner, groups })
    }

    /// Summary for bin `i`, or `None` if the bin is empty.
    pub fn summary(&self, i: usize) -> Option<Summary> {
        self.groups.get(i).and_then(Welford::summary)
    }

    /// `(label, mean, sample stddev, count)` rows for non-empty bins, in bin
    /// order — directly printable as a paper figure's data series.
    pub fn rows(&self) -> Vec<(String, f64, f64, usize)> {
        self.groups
            .iter()
            .enumerate()
            .filter_map(|(i, w)| {
                w.summary().map(|s| (self.binner.label(i), s.mean(), s.sample_stddev(), s.count()))
            })
            .collect()
    }
}

/// Counts of occurrences per discrete category key.
///
/// # Example
///
/// ```
/// use rainshine_stats::hist::category_counts;
///
/// let counts = category_counts(["a", "b", "a"].iter());
/// assert_eq!(counts[&"a"], 2);
/// ```
pub fn category_counts<K: Ord, I: IntoIterator<Item = K>>(items: I) -> BTreeMap<K, u64> {
    let mut map = BTreeMap::new();
    for k in items {
        *map.entry(k).or_insert(0) += 1;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binner_open_ended_bins() {
        let b = Binner::from_edges(vec![20.0, 30.0, 40.0]).unwrap();
        assert_eq!(b.bin_count(), 4);
        assert_eq!(b.bin_of(5.0), 0);
        assert_eq!(b.bin_of(20.0), 1);
        assert_eq!(b.bin_of(29.9), 1);
        assert_eq!(b.bin_of(40.0), 3);
        assert_eq!(b.bin_of(400.0), 3);
    }

    #[test]
    fn binner_labels() {
        let b = Binner::from_edges(vec![20.0, 30.0]).unwrap();
        assert_eq!(b.label(0), "<20");
        assert_eq!(b.label(1), "20-30");
        assert_eq!(b.label(2), ">=30");
    }

    #[test]
    fn uniform_binner_covers_range() {
        let b = Binner::uniform(0.0, 10.0, 5).unwrap();
        assert_eq!(b.bin_count(), 7); // 5 interior + 2 open-ended
        assert_eq!(b.bin_of(-0.1), 0);
        assert_eq!(b.bin_of(0.0), 1);
        assert_eq!(b.bin_of(9.99), 5);
        assert_eq!(b.bin_of(10.0), 6);
    }

    #[test]
    fn binner_rejects_unsorted_edges() {
        assert!(Binner::from_edges(vec![3.0, 1.0]).is_err());
        assert!(Binner::from_edges(vec![1.0, 1.0]).is_err());
        assert!(Binner::from_edges(vec![]).is_err());
    }

    #[test]
    fn histogram_counts_and_frequencies() {
        let b = Binner::from_edges(vec![1.0, 2.0]).unwrap();
        let h = Histogram::new(b, &[0.5, 1.5, 1.7, 2.5]).unwrap();
        assert_eq!(h.counts(), &[1, 2, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.frequencies(), vec![0.25, 0.5, 0.25]);
    }

    #[test]
    fn grouped_means_per_bin() {
        let b = Binner::from_edges(vec![10.0]).unwrap();
        let g = GroupedMeans::new(b, &[5.0, 15.0, 20.0], &[1.0, 3.0, 5.0]).unwrap();
        assert_eq!(g.summary(0).unwrap().mean(), 1.0);
        assert_eq!(g.summary(1).unwrap().mean(), 4.0);
        let rows = g.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].0, ">=10");
    }

    #[test]
    fn grouped_means_length_mismatch() {
        let b = Binner::from_edges(vec![10.0]).unwrap();
        assert!(GroupedMeans::new(b, &[1.0], &[]).is_err());
    }

    #[test]
    fn category_counts_orders_keys() {
        let c = category_counts(vec![3, 1, 3, 2, 3]);
        assert_eq!(c.keys().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(c[&3], 3);
    }
}
