//! Random-variate distributions built on top of a [`rand::Rng`].
//!
//! The `rand` crate alone provides only uniform sampling; everything the
//! simulator needs (Poisson event counts, Weibull lifetimes, log-normal
//! repair times, categorical ticket categories, …) is implemented here.

use rand::Rng;

use crate::special::ln_gamma;
use crate::{Result, StatsError};

/// A distribution over `f64` that can be sampled with any RNG.
///
/// All continuous distributions in this module implement this trait.
pub trait ContinuousDistribution {
    /// Draws one variate.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;

    /// The distribution mean.
    fn mean(&self) -> f64;
}

/// A distribution over `u64` counts.
pub trait DiscreteDistribution {
    /// Draws one variate.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64;

    /// The distribution mean.
    fn mean(&self) -> f64;
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `lambda` is finite and positive.
    pub fn new(lambda: f64) -> Result<Self> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "lambda", value: lambda });
        }
        Ok(Exponential { lambda })
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl ContinuousDistribution for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1-u avoids ln(0).
        let u: f64 = rng.gen::<f64>();
        -(1.0 - u).ln() / self.lambda
    }

    fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// Shape `k < 1` models infant mortality (decreasing hazard), `k = 1` is
/// exponential, `k > 1` models wear-out — the components of the bathtub
/// curve the paper observes in equipment age (Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless both parameters are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !shape.is_finite() || shape <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "shape", value: shape });
        }
        if !scale.is_finite() || scale <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "scale", value: scale });
        }
        Ok(Weibull { shape, scale })
    }

    /// Hazard function `h(t) = (k/λ)(t/λ)^{k−1}` for `t >= 0`.
    pub fn hazard(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        if t == 0.0 {
            // h(0) is 0 for k>1, k/λ for k==1, +inf for k<1; cap for k<1.
            return if self.shape >= 1.0 {
                if self.shape == 1.0 {
                    1.0 / self.scale
                } else {
                    0.0
                }
            } else {
                f64::INFINITY
            };
        }
        (self.shape / self.scale) * (t / self.scale).powf(self.shape - 1.0)
    }
}

impl ContinuousDistribution for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen::<f64>();
        self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * (ln_gamma(1.0 + 1.0 / self.shape)).exp()
    }
}

/// Normal distribution via the Box–Muller transform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and stddev `sigma`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `sigma` is finite and non-negative and `mu`
    /// is finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(StatsError::InvalidParameter { name: "mu", value: mu });
        }
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(StatsError::InvalidParameter { name: "sigma", value: sigma });
        }
        Ok(Normal { mu, sigma })
    }
}

impl ContinuousDistribution for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller; discard the second variate for simplicity.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mu + self.sigma * z
    }

    fn mean(&self) -> f64 {
        self.mu
    }
}

/// Log-normal distribution: `exp(Normal(mu, sigma))`.
///
/// Used for repair-time (time-to-resolution) modelling, which is heavily
/// right-skewed in practice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal with log-space mean `mu` and stddev `sigma`.
    ///
    /// # Errors
    ///
    /// See [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        Ok(LogNormal { normal: Normal::new(mu, sigma)? })
    }

    /// Constructs from a target median and a multiplicative spread factor
    /// (the ratio of the 84th percentile to the median).
    ///
    /// # Errors
    ///
    /// Returns an error unless `median > 0` and `spread >= 1`.
    pub fn from_median_spread(median: f64, spread: f64) -> Result<Self> {
        if !median.is_finite() || median <= 0.0 {
            return Err(StatsError::InvalidParameter { name: "median", value: median });
        }
        if !spread.is_finite() || spread < 1.0 {
            return Err(StatsError::InvalidParameter { name: "spread", value: spread });
        }
        Self::new(median.ln(), spread.ln())
    }
}

impl ContinuousDistribution for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }

    fn mean(&self) -> f64 {
        (self.normal.mu + 0.5 * self.normal.sigma * self.normal.sigma).exp()
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Uses Knuth's product method for small `lambda` and a normal approximation
/// with continuity correction for large `lambda` (> 30), which is accurate
/// enough for event-count simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    ///
    /// Returns an error unless `lambda` is finite and non-negative.
    pub fn new(lambda: f64) -> Result<Self> {
        if !lambda.is_finite() || lambda < 0.0 {
            return Err(StatsError::InvalidParameter { name: "lambda", value: lambda });
        }
        Ok(Poisson { lambda })
    }

    /// Probability mass function `P(X = k)`.
    pub fn pmf(&self, k: u64) -> f64 {
        if self.lambda == 0.0 {
            return if k == 0 { 1.0 } else { 0.0 };
        }
        (k as f64 * self.lambda.ln() - self.lambda - ln_gamma(k as f64 + 1.0)).exp()
    }
}

impl DiscreteDistribution for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.lambda == 0.0 {
            return 0;
        }
        if self.lambda > 30.0 {
            // Normal approximation with continuity correction.
            let n = Normal::new(self.lambda, self.lambda.sqrt()).expect("valid params");
            let v = n.sample(rng) + 0.5;
            return v.max(0.0) as u64;
        }
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    fn mean(&self) -> f64 {
        self.lambda
    }
}

/// Bernoulli distribution over `bool`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidProbability`] unless `p` in `[0, 1]`.
    pub fn new(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidProbability { value: p });
        }
        Ok(Bernoulli { p })
    }

    /// Draws one trial.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen::<f64>() < self.p
    }

    /// The success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

/// Categorical distribution over indices `0..weights.len()`.
///
/// Sampling is `O(log n)` via a cumulative-weight table.
///
/// # Example
///
/// ```
/// use rainshine_stats::dist::Categorical;
/// use rand::SeedableRng;
///
/// let cat = Categorical::new(&[1.0, 0.0, 3.0])?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let idx = cat.sample(&mut rng);
/// assert!(idx == 0 || idx == 2); // index 1 has zero weight
/// # Ok::<(), rainshine_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights
    /// (not necessarily normalized).
    ///
    /// # Errors
    ///
    /// Returns an error for an empty weight list, negative/non-finite
    /// weights, or an all-zero total.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(StatsError::InvalidParameter { name: "weight", value: w });
            }
            acc += w;
            cumulative.push(acc);
        }
        if acc <= 0.0 {
            return Err(StatsError::DegenerateDimension { what: "all categorical weights zero" });
        }
        Ok(Categorical { cumulative })
    }

    /// Draws one index.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty by construction");
        let u = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c <= u).min(self.cumulative.len() - 1)
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether there are no categories (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDEC0DE)
    }

    fn sample_mean<D: ContinuousDistribution>(d: &D, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = Exponential::new(2.0).unwrap();
        let m = sample_mean(&d, 50_000);
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn exponential_rejects_bad_lambda() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0).unwrap();
        assert!((w.mean() - 2.0).abs() < 1e-9);
        let m = sample_mean(&w, 50_000);
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn weibull_hazard_shapes() {
        let infant = Weibull::new(0.5, 10.0).unwrap();
        assert!(infant.hazard(1.0) > infant.hazard(5.0), "decreasing hazard");
        let wearout = Weibull::new(3.0, 10.0).unwrap();
        assert!(wearout.hazard(5.0) < wearout.hazard(15.0), "increasing hazard");
        assert_eq!(wearout.hazard(-1.0), 0.0);
    }

    #[test]
    fn normal_mean_and_sd_converge() {
        let d = Normal::new(5.0, 2.0).unwrap();
        let mut r = rng();
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        let s = crate::describe::Summary::from_slice(&xs).unwrap();
        assert!((s.mean() - 5.0).abs() < 0.05);
        assert!((s.sample_stddev() - 2.0).abs() < 0.05);
    }

    #[test]
    fn lognormal_median_spread() {
        let d = LogNormal::from_median_spread(4.0, 2.0).unwrap();
        let mut r = rng();
        let mut xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut r)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 4.0).abs() < 0.15, "median {median}");
        assert!(xs.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn poisson_small_lambda_mean() {
        let d = Poisson::new(3.0).unwrap();
        let mut r = rng();
        let m: f64 = (0..50_000).map(|_| d.sample(&mut r) as f64).sum::<f64>() / 50_000.0;
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
    }

    #[test]
    fn poisson_large_lambda_mean() {
        let d = Poisson::new(100.0).unwrap();
        let mut r = rng();
        let m: f64 = (0..20_000).map(|_| d.sample(&mut r) as f64).sum::<f64>() / 20_000.0;
        assert!((m - 100.0).abs() < 0.5, "mean {m}");
    }

    #[test]
    fn poisson_zero_lambda() {
        let d = Poisson::new(0.0).unwrap();
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 0);
        assert_eq!(d.pmf(0), 1.0);
        assert_eq!(d.pmf(3), 0.0);
    }

    #[test]
    fn poisson_pmf_sums_to_one() {
        let d = Poisson::new(4.5).unwrap();
        let total: f64 = (0..100).map(|k| d.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bernoulli_frequency() {
        let d = Bernoulli::new(0.3).unwrap();
        let mut r = rng();
        let hits = (0..50_000).filter(|_| d.sample(&mut r)).count();
        let freq = hits as f64 / 50_000.0;
        assert!((freq - 0.3).abs() < 0.01, "freq {freq}");
        assert!(Bernoulli::new(1.1).is_err());
        assert!(Bernoulli::new(-0.1).is_err());
    }

    #[test]
    fn categorical_respects_weights() {
        let d = Categorical::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut r = rng();
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[d.sample(&mut r)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn categorical_rejects_degenerate() {
        assert!(Categorical::new(&[]).is_err());
        assert!(Categorical::new(&[0.0, 0.0]).is_err());
        assert!(Categorical::new(&[-1.0, 2.0]).is_err());
    }
}
