use std::error::Error;
use std::fmt;

/// Error type for statistical computations.
///
/// Every fallible public function in this crate returns [`StatsError`] via
/// the crate-level [`Result`](crate::Result) alias.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// The input sample was empty where at least one observation is needed.
    EmptyInput,
    /// The input contained a NaN where only finite values are valid.
    NonFiniteInput {
        /// Index of the first offending observation.
        index: usize,
    },
    /// A probability-like argument fell outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A distribution parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name, e.g. `"lambda"`.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Two paired samples had different lengths.
    LengthMismatch {
        /// Length of the first sample.
        left: usize,
        /// Length of the second sample.
        right: usize,
    },
    /// A histogram or contingency dimension was degenerate (zero bins/rows).
    DegenerateDimension {
        /// Human-readable description of the degenerate dimension.
        what: &'static str,
    },
    /// A user-supplied statistic produced no usable finite value — on the
    /// original sample, or on (nearly) every bootstrap replicate.
    NonFiniteStatistic {
        /// Where the statistic degenerated, e.g. `"the original sample"`.
        what: &'static str,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input sample was empty"),
            StatsError::NonFiniteInput { index } => {
                write!(f, "non-finite value at index {index}")
            }
            StatsError::InvalidProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            StatsError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
            StatsError::LengthMismatch { left, right } => {
                write!(f, "paired samples have mismatched lengths {left} and {right}")
            }
            StatsError::DegenerateDimension { what } => {
                write!(f, "degenerate dimension: {what}")
            }
            StatsError::NonFiniteStatistic { what } => {
                write!(f, "statistic was non-finite on {what}")
            }
        }
    }
}

impl Error for StatsError {}

/// Validates that every value in `data` is finite.
pub(crate) fn ensure_finite(data: &[f64]) -> crate::Result<()> {
    for (index, v) in data.iter().enumerate() {
        if !v.is_finite() {
            return Err(StatsError::NonFiniteInput { index });
        }
    }
    Ok(())
}

/// Validates that `data` is non-empty and finite.
pub(crate) fn ensure_sample(data: &[f64]) -> crate::Result<()> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    ensure_finite(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msgs = [
            StatsError::EmptyInput.to_string(),
            StatsError::NonFiniteInput { index: 3 }.to_string(),
            StatsError::InvalidProbability { value: 1.5 }.to_string(),
            StatsError::InvalidParameter { name: "lambda", value: -1.0 }.to_string(),
            StatsError::LengthMismatch { left: 2, right: 3 }.to_string(),
            StatsError::DegenerateDimension { what: "zero bins" }.to_string(),
            StatsError::NonFiniteStatistic { what: "the original sample" }.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn ensure_sample_rejects_empty_and_nan() {
        assert_eq!(ensure_sample(&[]), Err(StatsError::EmptyInput));
        assert_eq!(ensure_sample(&[1.0, f64::NAN]), Err(StatsError::NonFiniteInput { index: 1 }));
        assert!(ensure_sample(&[1.0, 2.0]).is_ok());
    }
}
