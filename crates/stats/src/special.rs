//! Special functions backing distribution CDFs and hypothesis tests.
//!
//! Implementations follow the classical Lanczos / continued-fraction
//! formulations (Numerical Recipes style) and are accurate to roughly
//! 1e-10 over the domains exercised by this workspace.

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9 coefficients).
///
/// # Panics
///
/// Panics if `x <= 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// `P(a, x) = γ(a, x) / Γ(a)`; this is the CDF of a Gamma(a, 1) variable,
/// and `P(k/2, x/2)` is the chi-square CDF with `k` degrees of freedom.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x >= 0.0, "gamma_p requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    1.0 - gamma_p(a, x)
}

/// Series expansion for P(a, x), converges fast for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for Q(a, x), converges fast for x >= a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// This is the CDF of a Beta(a, b) variable and underlies the Student-t CDF.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0`, or `x` outside `[0, 1]`.
pub fn beta_inc(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "beta_inc requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "beta_inc requires x in [0, 1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Error function `erf(x)` via the incomplete gamma relation.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = gamma_p(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Standard normal CDF `Φ(x)`.
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Chi-square CDF with `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df <= 0` or `x < 0`.
pub fn chi_square_cdf(x: f64, df: f64) -> f64 {
    gamma_p(df / 2.0, x / 2.0)
}

/// Student-t CDF with `df` degrees of freedom.
///
/// # Panics
///
/// Panics if `df <= 0`.
pub fn student_t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "student_t_cdf requires df > 0, got {df}");
    let x = df / (df + t * t);
    let p = 0.5 * beta_inc(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), 24f64.ln(), 1e-10);
        close(ln_gamma(11.0), 3_628_800f64.ln(), 1e-9);
        // Γ(0.5) = sqrt(pi)
        close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x}
        close(gamma_p(1.0, 2.0), 1.0 - (-2.0f64).exp(), 1e-10);
        close(gamma_p(1.0, 0.0), 0.0, 1e-15);
        // Complementarity
        close(gamma_p(3.0, 2.5) + gamma_q(3.0, 2.5), 1.0, 1e-12);
        // Large x limit
        close(gamma_p(2.0, 100.0), 1.0, 1e-10);
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_715, 1e-9);
        close(erf(-1.0), -0.842_700_792_949_715, 1e-9);
        close(erf(3.0), 0.999_977_909_503_001, 1e-9);
    }

    #[test]
    fn normal_cdf_symmetry() {
        close(std_normal_cdf(0.0), 0.5, 1e-12);
        close(std_normal_cdf(1.959_963_985), 0.975, 1e-6);
        close(std_normal_cdf(-1.0) + std_normal_cdf(1.0), 1.0, 1e-12);
    }

    #[test]
    fn chi_square_cdf_known_values() {
        // df=2 is Exponential(1/2): CDF = 1 - e^{-x/2}
        close(chi_square_cdf(2.0, 2.0), 1.0 - (-1.0f64).exp(), 1e-10);
        // 95th percentile of chi2(1) is about 3.841
        close(chi_square_cdf(3.841_458_8, 1.0), 0.95, 1e-6);
    }

    #[test]
    fn student_t_cdf_known_values() {
        close(student_t_cdf(0.0, 5.0), 0.5, 1e-12);
        // t(1) is Cauchy: CDF(1) = 3/4
        close(student_t_cdf(1.0, 1.0), 0.75, 1e-9);
        // Large df approaches normal
        close(student_t_cdf(1.96, 1e6), std_normal_cdf(1.96), 1e-4);
    }

    #[test]
    fn beta_inc_boundaries_and_symmetry() {
        close(beta_inc(2.0, 3.0, 0.0), 0.0, 1e-15);
        close(beta_inc(2.0, 3.0, 1.0), 1.0, 1e-15);
        // I_x(a,b) = 1 - I_{1-x}(b,a)
        let x = 0.3;
        close(beta_inc(2.5, 1.5, x), 1.0 - beta_inc(1.5, 2.5, 1.0 - x), 1e-10);
        // I_x(1,1) = x (uniform)
        close(beta_inc(1.0, 1.0, 0.42), 0.42, 1e-10);
    }
}
