//! Streaming (online) statistics.

use crate::describe::Summary;

/// Welford's online algorithm for mean and variance, plus extrema.
///
/// Numerically stable for long streams; used by the simulator's metric
/// aggregation where samples arrive hour by hour.
///
/// # Example
///
/// ```
/// use rainshine_stats::running::Welford;
///
/// let mut w = Welford::new();
/// for v in [1.0, 2.0, 3.0] {
///     w.push(v);
/// }
/// let s = w.summary().unwrap();
/// assert_eq!(s.mean(), 2.0);
/// assert_eq!(s.sample_variance(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Welford {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    ///
    /// Non-finite values are ignored (the caller is expected to have
    /// validated inputs; this keeps the accumulator total-function safe).
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Current mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Finalizes into a [`Summary`], or `None` if empty.
    pub fn summary(&self) -> Option<Summary> {
        (self.count > 0)
            .then(|| Summary::from_parts(self.count, self.mean, self.m2, self.min, self.max))
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::Summary;

    #[test]
    fn matches_batch_summary() {
        let data = [0.5, 1.5, -2.0, 7.25, 3.0, 3.0];
        let w: Welford = data.iter().copied().collect();
        let online = w.summary().unwrap();
        let batch = Summary::from_slice(&data).unwrap();
        assert!((online.mean() - batch.mean()).abs() < 1e-12);
        assert!((online.sample_variance() - batch.sample_variance()).abs() < 1e-12);
        assert_eq!(online.min(), batch.min());
        assert_eq!(online.max(), batch.max());
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_data = [1.0, 2.0, 3.0];
        let b_data = [10.0, 20.0];
        let mut a: Welford = a_data.iter().copied().collect();
        let b: Welford = b_data.iter().copied().collect();
        a.merge(&b);
        let all: Vec<f64> = a_data.iter().chain(b_data.iter()).copied().collect();
        let batch = Summary::from_slice(&all).unwrap();
        let merged = a.summary().unwrap();
        assert!((merged.mean() - batch.mean()).abs() < 1e-12);
        assert!((merged.sample_variance() - batch.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Welford = [1.0, 2.0].iter().copied().collect();
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a, before);

        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn ignores_non_finite() {
        let mut w = Welford::new();
        w.push(f64::NAN);
        w.push(f64::INFINITY);
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), None);
        assert!(w.summary().is_none());
    }
}
