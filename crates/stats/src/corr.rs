//! Correlation measures for paired samples.

use crate::describe::Summary;
use crate::error::ensure_sample;
use crate::{Result, StatsError};

fn ensure_paired(x: &[f64], y: &[f64]) -> Result<()> {
    if x.len() != y.len() {
        return Err(StatsError::LengthMismatch { left: x.len(), right: y.len() });
    }
    ensure_sample(x)?;
    ensure_sample(y)
}

/// Sample covariance (n−1 denominator) of paired samples.
///
/// # Errors
///
/// Returns an error for mismatched lengths, empty, or non-finite input.
pub fn covariance(x: &[f64], y: &[f64]) -> Result<f64> {
    ensure_paired(x, y)?;
    let mx = Summary::from_slice(x)?.mean();
    let my = Summary::from_slice(y)?.mean();
    let n = x.len();
    if n < 2 {
        return Ok(0.0);
    }
    let s: f64 = x.iter().zip(y).map(|(&a, &b)| (a - mx) * (b - my)).sum();
    Ok(s / (n - 1) as f64)
}

/// Pearson product-moment correlation coefficient.
///
/// Returns `0.0` if either sample has zero variance.
///
/// # Errors
///
/// Returns an error for mismatched lengths, empty, or non-finite input.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64> {
    ensure_paired(x, y)?;
    let sx = Summary::from_slice(x)?;
    let sy = Summary::from_slice(y)?;
    let denom = sx.sample_stddev() * sy.sample_stddev();
    if denom == 0.0 {
        return Ok(0.0);
    }
    Ok(covariance(x, y)? / denom)
}

/// Mid-ranks of a sample (ties receive their average rank, 1-based).
pub fn ranks(data: &[f64]) -> Result<Vec<f64>> {
    ensure_sample(data)?;
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("finite by validation"));
    let mut out = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && data[idx[j + 1]] == data[idx[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    Ok(out)
}

/// Spearman rank correlation coefficient (Pearson on mid-ranks, so ties are
/// handled correctly).
///
/// # Errors
///
/// Returns an error for mismatched lengths, empty, or non-finite input.
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64> {
    ensure_paired(x, y)?;
    pearson(&ranks(x)?, &ranks(y)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_perfect_linear() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn covariance_hand_check() {
        let c = covariance(&[1.0, 2.0, 3.0], &[4.0, 6.0, 8.0]).unwrap();
        assert!((c - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]).unwrap();
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson is below 1 for this convex relationship.
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn mismatched_lengths_error() {
        assert!(pearson(&[1.0], &[1.0, 2.0]).is_err());
        assert!(spearman(&[], &[]).is_err());
    }
}
