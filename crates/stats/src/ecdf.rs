//! Empirical cumulative distribution functions and quantiles.
//!
//! Spare provisioning in the paper (Q1, Figs. 1, 10–13) is driven entirely by
//! CDFs of the concurrent-failure metric μ; this module is the foundation.

use crate::error::ensure_sample;
use crate::Result;

/// An empirical CDF over a finite sample.
///
/// Stores the sorted sample; evaluation is `O(log n)`.
///
/// # Example
///
/// ```
/// use rainshine_stats::ecdf::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0])?;
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.eval(10.0), 1.0);
/// # Ok::<(), rainshine_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample, taking ownership and sorting it.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StatsError::EmptyInput`] for an empty sample and
    /// [`crate::StatsError::NonFiniteInput`] for NaN/infinite values.
    pub fn new(mut sample: Vec<f64>) -> Result<Self> {
        ensure_sample(&sample)?;
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite by validation"));
        Ok(Ecdf { sorted: sample })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample underlying this ECDF.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates `F(x) = P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile using the inverse-CDF (type 1) definition: the
    /// smallest sample value `v` with `F(v) >= q`.
    ///
    /// `q` is clamped to `[0, 1]`; `quantile(0.0)` is the minimum and
    /// `quantile(1.0)` the maximum. Delegates to [`quantile_with_zeros`]
    /// with no implicit zero mass.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_with_zeros(&self.sorted, self.sorted.len() as u64, q)
    }

    /// Convenience: the `p`-th percentile, `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// Minimum of the sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum of the sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// Returns the step-function support points `(x_i, F(x_i))`, deduplicated
    /// on x — ready for plotting a CDF curve like the paper's Fig. 11.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.sorted.iter().enumerate() {
            let f = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = f,
                _ => out.push((v, f)),
            }
        }
        out
    }
}

/// Inverse-CDF (type 1) quantile of a sparse distribution: `total`
/// observations of which only `sorted_nonzero` are explicit; the
/// remaining `total − sorted_nonzero.len()` are an implicit mass of
/// zeros sorting below every explicit value.
///
/// This is the single rank definition shared by [`Ecdf::quantile`] (no
/// zero mass), the telemetry `WindowedSeries` λ/μ distributions, and the
/// Q1 rack-deficit quantiles: with `q` clamped to `[0, 1]`, the 1-based
/// rank is `ceil(q · total)` floored at 1, the result is the default
/// value (zero) while the rank falls inside the zero mass, and the
/// explicit values are indexed by `rank − zeros` beyond it.
///
/// `sorted_nonzero` must be sorted ascending (debug-asserted). If it has
/// more entries than `total` — a malformed sparse series — the zero mass
/// saturates at zero instead of underflowing, and ranks past the end
/// clamp to the maximum.
pub fn quantile_with_zeros<T>(sorted_nonzero: &[T], total: u64, q: f64) -> T
where
    T: Copy + Default + PartialOrd,
{
    debug_assert!(
        sorted_nonzero.windows(2).all(|w| w[0] <= w[1]),
        "quantile_with_zeros requires sorted values"
    );
    if total == 0 {
        return T::default();
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * total as f64).ceil().max(1.0) as u64;
    let zeros = total - (sorted_nonzero.len() as u64).min(total);
    if rank <= zeros || sorted_nonzero.is_empty() {
        return T::default();
    }
    let idx = (rank - zeros - 1) as usize;
    sorted_nonzero[idx.min(sorted_nonzero.len() - 1)]
}

/// Interpolated quantile (R type-7, the R/NumPy default) of a sample.
///
/// Unlike [`Ecdf::quantile`] this interpolates between order statistics.
///
/// # Errors
///
/// Returns an error for empty or non-finite samples, or `q` outside `[0, 1]`.
pub fn quantile_interpolated(data: &[f64], q: f64) -> Result<f64> {
    ensure_sample(data)?;
    if !(0.0..=1.0).contains(&q) {
        return Err(crate::StatsError::InvalidProbability { value: q });
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite by validation"));
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let h = (n - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let frac = h - lo as f64;
    Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_monotone_and_bounded() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0, 3.0, 9.0]).unwrap();
        let mut prev = 0.0;
        for i in 0..100 {
            let x = -2.0 + i as f64 * 0.15;
            let f = e.eval(x);
            assert!((0.0..=1.0).contains(&f));
            assert!(f >= prev);
            prev = f;
        }
        assert_eq!(e.eval(f64::MIN), 0.0);
        assert_eq!(e.eval(9.0), 1.0);
    }

    #[test]
    fn quantile_inverts_eval_on_sample_points() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(e.quantile(0.25), 10.0);
        assert_eq!(e.quantile(0.26), 20.0);
        assert_eq!(e.quantile(0.75), 30.0);
        assert_eq!(e.quantile(1.0), 40.0);
        assert_eq!(e.quantile(0.0), 10.0);
    }

    #[test]
    fn percentile_matches_quantile() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(e.percentile(95.0), e.quantile(0.95));
    }

    #[test]
    fn steps_dedupe_ties() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]).unwrap();
        let steps = e.steps();
        assert_eq!(steps, vec![(1.0, 0.25), (2.0, 0.75), (3.0, 1.0)]);
    }

    #[test]
    fn interpolated_quantile_median() {
        let q = quantile_interpolated(&[1.0, 2.0, 3.0, 4.0], 0.5).unwrap();
        assert_eq!(q, 2.5);
        let q = quantile_interpolated(&[7.0], 0.99).unwrap();
        assert_eq!(q, 7.0);
    }

    #[test]
    fn interpolated_quantile_rejects_bad_q() {
        assert!(quantile_interpolated(&[1.0], 1.5).is_err());
        assert!(quantile_interpolated(&[], 0.5).is_err());
    }

    #[test]
    fn clamps_out_of_range_quantiles() {
        let e = Ecdf::new(vec![1.0, 2.0]).unwrap();
        assert_eq!(e.quantile(-1.0), 1.0);
        assert_eq!(e.quantile(2.0), 2.0);
    }

    #[test]
    fn zero_mass_quantile_rank_semantics() {
        // 7 zeros + [1, 5, 9]: ranks 1..=7 are zero, 8 → 1, 9 → 5, 10 → 9.
        let nonzero = [1u64, 5, 9];
        assert_eq!(quantile_with_zeros(&nonzero, 10, 0.0), 0);
        assert_eq!(quantile_with_zeros(&nonzero, 10, 0.7), 0); // rank 7
        assert_eq!(quantile_with_zeros(&nonzero, 10, 0.71), 1); // rank 8
        assert_eq!(quantile_with_zeros(&nonzero, 10, 0.8), 1);
        assert_eq!(quantile_with_zeros(&nonzero, 10, 0.9), 5);
        assert_eq!(quantile_with_zeros(&nonzero, 10, 1.0), 9);
    }

    #[test]
    fn zero_mass_quantile_degenerate_inputs() {
        // Empty distribution.
        assert_eq!(quantile_with_zeros::<u64>(&[], 0, 0.5), 0);
        // All-zero distribution.
        assert_eq!(quantile_with_zeros::<u64>(&[], 4, 1.0), 0);
        // Malformed: more explicit values than total observations must
        // saturate the zero mass rather than underflow.
        assert_eq!(quantile_with_zeros(&[2u64, 3], 1, 1.0), 2);
        // Works for floats with no zero mass (the Ecdf case).
        assert_eq!(quantile_with_zeros(&[1.5f64, 2.5], 2, 0.5), 1.5);
    }
}
