//! Survival analysis for component lifetimes.
//!
//! Reliability studies of the paper's kind routinely discuss lifetimes,
//! MTTF, and bathtub hazards (its refs. \[41\], \[46\]). This module provides
//! the standard right-censored machinery:
//!
//! * the Kaplan–Meier product-limit estimator of the survival function,
//! * a life-table hazard-rate estimate over age bins,
//! * maximum-likelihood Weibull fitting (shape < 1 ⇒ infant mortality,
//!   shape > 1 ⇒ wear-out), used by the integration tests to check that the
//!   simulator's planted lifetime structure is recoverable.

use crate::error::ensure_finite;
use crate::{Result, StatsError};

/// One observed lifetime: a duration and whether the failure was observed
/// (`false` means the observation was right-censored — still alive when the
/// study ended).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lifetime {
    /// Time on test.
    pub time: f64,
    /// `true` if the unit failed at `time`; `false` if censored.
    pub failed: bool,
}

impl Lifetime {
    /// An observed failure at `time`.
    pub fn failure(time: f64) -> Self {
        Lifetime { time, failed: true }
    }

    /// A right-censored observation at `time`.
    pub fn censored(time: f64) -> Self {
        Lifetime { time, failed: false }
    }
}

fn validate_lifetimes(data: &[Lifetime]) -> Result<()> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    for (index, l) in data.iter().enumerate() {
        if !l.time.is_finite() || l.time < 0.0 {
            return Err(StatsError::NonFiniteInput { index });
        }
    }
    Ok(())
}

/// One step of a Kaplan–Meier curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmStep {
    /// Failure time.
    pub time: f64,
    /// Units at risk just before `time`.
    pub at_risk: usize,
    /// Failures at `time`.
    pub failures: usize,
    /// Survival estimate S(t) just after `time`.
    pub survival: f64,
}

/// The Kaplan–Meier product-limit estimator.
#[derive(Debug, Clone, PartialEq)]
pub struct KaplanMeier {
    steps: Vec<KmStep>,
}

impl KaplanMeier {
    /// Fits the estimator to right-censored lifetimes.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty sample or non-finite/negative times.
    pub fn fit(data: &[Lifetime]) -> Result<Self> {
        validate_lifetimes(data)?;
        let mut sorted: Vec<Lifetime> = data.to_vec();
        sorted.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite by validation"));
        let mut steps = Vec::new();
        let mut survival = 1.0;
        let n = sorted.len();
        let mut i = 0;
        while i < n {
            let t = sorted[i].time;
            let at_risk = n - i;
            let mut failures = 0;
            while i < n && sorted[i].time == t {
                if sorted[i].failed {
                    failures += 1;
                }
                i += 1;
            }
            if failures > 0 {
                survival *= 1.0 - failures as f64 / at_risk as f64;
                steps.push(KmStep { time: t, at_risk, failures, survival });
            }
        }
        Ok(KaplanMeier { steps })
    }

    /// The survival steps (only failure times appear).
    pub fn steps(&self) -> &[KmStep] {
        &self.steps
    }

    /// `S(t)`: estimated probability of surviving beyond `t`.
    pub fn survival_at(&self, t: f64) -> f64 {
        let idx = self.steps.partition_point(|s| s.time <= t);
        if idx == 0 {
            1.0
        } else {
            self.steps[idx - 1].survival
        }
    }

    /// Median lifetime, or `None` if the curve never drops to 0.5
    /// (heavy censoring).
    pub fn median(&self) -> Option<f64> {
        self.steps.iter().find(|s| s.survival <= 0.5).map(|s| s.time)
    }
}

/// A life-table hazard estimate: failures per unit-time-at-risk within each
/// age bin.
///
/// # Errors
///
/// Returns an error for empty data, non-finite times, or non-increasing
/// bin edges.
pub fn hazard_by_age(data: &[Lifetime], edges: &[f64]) -> Result<Vec<(String, f64)>> {
    validate_lifetimes(data)?;
    ensure_finite(edges)?;
    if edges.is_empty() || edges.windows(2).any(|w| w[0] >= w[1]) {
        return Err(StatsError::DegenerateDimension { what: "hazard bins need ascending edges" });
    }
    let binner = crate::hist::Binner::from_edges(edges.to_vec())?;
    let bins = binner.bin_count();
    let mut failures = vec![0.0; bins];
    let mut exposure = vec![0.0; bins];
    // Each unit contributes exposure to every bin it lives through.
    let mut bounds = Vec::with_capacity(bins + 1);
    bounds.push(0.0);
    bounds.extend_from_slice(edges);
    bounds.push(f64::INFINITY);
    for l in data {
        for b in 0..bins {
            let lo = bounds[b];
            let hi = bounds[b + 1];
            if l.time <= lo {
                break;
            }
            exposure[b] += l.time.min(hi) - lo;
            if l.failed && l.time <= hi {
                failures[b] += 1.0;
                break;
            }
        }
    }
    Ok((0..bins)
        .map(|b| {
            let h = if exposure[b] > 0.0 { failures[b] / exposure[b] } else { 0.0 };
            (binner.label(b), h)
        })
        .collect())
}

/// A fitted Weibull model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeibullFit {
    /// Shape parameter k (< 1: infant mortality, > 1: wear-out).
    pub shape: f64,
    /// Scale parameter λ.
    pub scale: f64,
    /// Newton iterations used.
    pub iterations: usize,
}

/// Maximum-likelihood Weibull fit for right-censored lifetimes.
///
/// Solves the profile-likelihood shape equation by bisection + Newton
/// polishing; the scale then has a closed form.
///
/// # Errors
///
/// Returns an error for empty input, non-finite times, or a sample without
/// at least two distinct observed failure times (the MLE is undefined).
pub fn weibull_mle(data: &[Lifetime]) -> Result<WeibullFit> {
    validate_lifetimes(data)?;
    let failures: Vec<f64> =
        data.iter().filter(|l| l.failed && l.time > 0.0).map(|l| l.time).collect();
    {
        let mut distinct = failures.clone();
        distinct.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        distinct.dedup();
        if distinct.len() < 2 {
            return Err(StatsError::DegenerateDimension {
                what: "weibull mle needs >= 2 distinct failure times",
            });
        }
    }
    let times: Vec<f64> = data.iter().map(|l| l.time.max(1e-12)).collect();
    let r = failures.len() as f64;
    let sum_log_fail: f64 = failures.iter().map(|t| t.ln()).sum();
    // Profile equation g(k) = Σ t^k ln t / Σ t^k − 1/k − (Σ ln t_f)/r = 0,
    // monotone increasing in k.
    let g = |k: f64| {
        let mut num = 0.0;
        let mut den = 0.0;
        for &t in &times {
            let tk = t.powf(k);
            num += tk * t.ln();
            den += tk;
        }
        num / den - 1.0 / k - sum_log_fail / r
    };
    let mut lo = 1e-3;
    let mut hi = 50.0;
    if g(lo) > 0.0 || g(hi) < 0.0 {
        return Err(StatsError::DegenerateDimension { what: "weibull shape outside [0.001, 50]" });
    }
    let mut iterations = 0;
    for _ in 0..200 {
        iterations += 1;
        let mid = 0.5 * (lo + hi);
        if g(mid) > 0.0 {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-10 {
            break;
        }
    }
    let shape = 0.5 * (lo + hi);
    let sum_tk: f64 = times.iter().map(|t| t.powf(shape)).sum();
    let scale = (sum_tk / r).powf(1.0 / shape);
    Ok(WeibullFit { shape, scale, iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{ContinuousDistribution, Weibull};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn km_no_censoring_matches_empirical() {
        // 4 failures at distinct times: S drops by 1/4 at each.
        let data: Vec<Lifetime> =
            [1.0, 2.0, 3.0, 4.0].iter().map(|&t| Lifetime::failure(t)).collect();
        let km = KaplanMeier::fit(&data).unwrap();
        assert_eq!(km.survival_at(0.5), 1.0);
        assert!((km.survival_at(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(2.5) - 0.50).abs() < 1e-12);
        assert!((km.survival_at(10.0) - 0.0).abs() < 1e-12);
        assert_eq!(km.median(), Some(2.0));
    }

    #[test]
    fn km_censoring_reduces_risk_set_not_survival() {
        let data = vec![
            Lifetime::failure(1.0),
            Lifetime::censored(1.5),
            Lifetime::failure(2.0),
            Lifetime::censored(3.0),
        ];
        let km = KaplanMeier::fit(&data).unwrap();
        // After t=1: S = 3/4. After t=2 (2 at risk): S = 3/4 * 1/2 = 3/8.
        assert!((km.survival_at(1.0) - 0.75).abs() < 1e-12);
        assert!((km.survival_at(2.0) - 0.375).abs() < 1e-12);
        // Fully-censored tail never reaches zero.
        assert!(km.survival_at(100.0) > 0.0);
    }

    #[test]
    fn km_median_none_under_heavy_censoring() {
        let data = vec![Lifetime::failure(1.0), Lifetime::censored(9.0), Lifetime::censored(9.0)];
        let km = KaplanMeier::fit(&data).unwrap();
        assert_eq!(km.median(), None);
    }

    #[test]
    fn hazard_by_age_recovers_decreasing_hazard() {
        let w = Weibull::new(0.6, 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<Lifetime> =
            (0..20_000).map(|_| Lifetime::failure(w.sample(&mut rng))).collect();
        let rows = hazard_by_age(&data, &[2.0, 5.0, 10.0, 20.0]).unwrap();
        // Infant mortality: hazard declines across bins.
        assert!(rows[0].1 > rows[1].1, "{rows:?}");
        assert!(rows[1].1 > rows[2].1, "{rows:?}");
    }

    #[test]
    fn weibull_mle_recovers_parameters() {
        let truth = Weibull::new(1.8, 24.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<Lifetime> =
            (0..5_000).map(|_| Lifetime::failure(truth.sample(&mut rng))).collect();
        let fit = weibull_mle(&data).unwrap();
        assert!((fit.shape - 1.8).abs() < 0.1, "shape {}", fit.shape);
        assert!((fit.scale - 24.0).abs() < 1.0, "scale {}", fit.scale);
    }

    #[test]
    fn weibull_mle_with_censoring() {
        let truth = Weibull::new(0.7, 12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let horizon = 15.0;
        let data: Vec<Lifetime> = (0..8_000)
            .map(|_| {
                let t = truth.sample(&mut rng);
                if t > horizon {
                    Lifetime::censored(horizon)
                } else {
                    Lifetime::failure(t)
                }
            })
            .collect();
        let fit = weibull_mle(&data).unwrap();
        assert!((fit.shape - 0.7).abs() < 0.08, "shape {}", fit.shape);
        assert!((fit.scale - 12.0).abs() < 1.5, "scale {}", fit.scale);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(KaplanMeier::fit(&[]).is_err());
        assert!(weibull_mle(&[Lifetime::failure(1.0)]).is_err());
        assert!(weibull_mle(&[Lifetime::failure(2.0), Lifetime::failure(2.0)]).is_err());
        assert!(KaplanMeier::fit(&[Lifetime::failure(-1.0)]).is_err());
        assert!(hazard_by_age(&[Lifetime::failure(1.0)], &[]).is_err());
    }
}
