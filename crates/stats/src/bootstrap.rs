//! Percentile bootstrap confidence intervals.
//!
//! Used to attach uncertainty to the normalized failure-rate estimates in the
//! SKU comparison (Q2) and environmental analysis (Q3), where the paper shows
//! error bars.

use rainshine_obs::Obs;
use rainshine_parallel::{derive_seed, par_map_range, Parallelism};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::error::ensure_sample;
use crate::{Result, StatsError};

/// Stream tag for per-replicate bootstrap seeds (see
/// [`rainshine_parallel::derive_seed`]).
const STREAM_BOOTSTRAP: u64 = 0xb007;

/// A two-sided confidence interval with its point estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Statistic evaluated on the original sample.
    pub estimate: f64,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
    /// Confidence level, e.g. `0.95`.
    pub level: f64,
    /// Replicates whose statistic came out non-finite and were dropped
    /// from the bootstrap distribution before taking percentiles. A large
    /// value means the interval rests on few effective replicates.
    pub non_finite_replicates: usize,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        (self.lower..=self.upper).contains(&value)
    }
}

/// Percentile bootstrap CI for an arbitrary statistic.
///
/// Resamples `data` with replacement `resamples` times, evaluates `statistic`
/// on each resample, and reports the `(1−level)/2` and `(1+level)/2`
/// percentiles of the bootstrap distribution. Replicates on which the
/// statistic is non-finite (NaN/∞ — e.g. a ratio statistic hitting an
/// all-zero resample of a dirty fleet) are dropped and counted in
/// [`ConfidenceInterval::non_finite_replicates`] rather than aborting.
///
/// # Errors
///
/// Returns an error for empty/non-finite data, `level` outside `(0, 1)`,
/// zero resamples, or ([`StatsError::NonFiniteStatistic`]) when the
/// statistic is non-finite on the original sample or on every replicate.
///
/// # Example
///
/// ```
/// use rainshine_stats::bootstrap::bootstrap_ci;
/// use rainshine_stats::describe;
/// use rand::SeedableRng;
///
/// let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ci = bootstrap_ci(&data, 500, 0.95, &mut rng, |s| {
///     describe::mean(s).expect("non-empty resample")
/// })?;
/// assert!(ci.contains(49.5));
/// # Ok::<(), rainshine_stats::StatsError>(())
/// ```
pub fn bootstrap_ci<R, F>(
    data: &[f64],
    resamples: usize,
    level: f64,
    rng: &mut R,
    statistic: F,
) -> Result<ConfidenceInterval>
where
    R: Rng + ?Sized,
    F: Fn(&[f64]) -> f64,
{
    ensure_sample(data)?;
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidProbability { value: level });
    }
    if resamples == 0 {
        return Err(StatsError::DegenerateDimension { what: "zero bootstrap resamples" });
    }
    let estimate = statistic(data);
    let n = data.len();
    let mut stats = Vec::with_capacity(resamples);
    let mut buf = vec![0.0; n];
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = data[rng.gen_range(0..n)];
        }
        stats.push(statistic(&buf));
    }
    percentile_interval(estimate, stats, level)
}

/// [`bootstrap_ci`] with per-replicate derived seeds, evaluated in
/// parallel.
///
/// Replicate `i` resamples from its own RNG seeded by
/// `derive_seed(seed, _, i)`, and the bootstrap distribution is
/// assembled in replicate order before sorting — so the interval is a
/// pure function of `(data, resamples, level, seed)` and identical at
/// every thread count. Unlike [`bootstrap_ci`], it is also independent
/// of whatever else a shared `&mut rng` was used for.
///
/// # Errors
///
/// Same conditions as [`bootstrap_ci`].
pub fn bootstrap_ci_seeded<F>(
    data: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
    parallelism: Parallelism,
    statistic: F,
) -> Result<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    bootstrap_ci_seeded_with_obs(
        data,
        resamples,
        level,
        seed,
        parallelism,
        &Obs::disabled(),
        statistic,
    )
}

/// [`bootstrap_ci_seeded`] with observability: records a
/// `stats.bootstrap_ci` span plus `bootstrap.replicates` /
/// `bootstrap.non_finite_replicates` counters on `obs`.
///
/// # Errors
///
/// Same conditions as [`bootstrap_ci_seeded`].
pub fn bootstrap_ci_seeded_with_obs<F>(
    data: &[f64],
    resamples: usize,
    level: f64,
    seed: u64,
    parallelism: Parallelism,
    obs: &Obs,
    statistic: F,
) -> Result<ConfidenceInterval>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let mut span = obs.span("stats.bootstrap_ci");
    ensure_sample(data)?;
    if !(0.0 < level && level < 1.0) {
        return Err(StatsError::InvalidProbability { value: level });
    }
    if resamples == 0 {
        return Err(StatsError::DegenerateDimension { what: "zero bootstrap resamples" });
    }
    span.add_items(resamples as u64);
    let estimate = statistic(data);
    let stats = resample_statistics(data, resamples, seed, parallelism, &statistic);
    let result = percentile_interval(estimate, stats, level);
    if let Ok(ci) = &result {
        obs.incr("bootstrap.replicates", resamples as u64);
        obs.incr("bootstrap.non_finite_replicates", ci.non_finite_replicates as u64);
    }
    result
}

/// [`bootstrap_se`] with per-replicate derived seeds, evaluated in
/// parallel (see [`bootstrap_ci_seeded`] for the determinism contract).
///
/// # Errors
///
/// Same conditions as [`bootstrap_se`].
pub fn bootstrap_se_seeded<F>(
    data: &[f64],
    resamples: usize,
    seed: u64,
    parallelism: Parallelism,
    statistic: F,
) -> Result<f64>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    ensure_sample(data)?;
    if resamples < 2 {
        return Err(StatsError::DegenerateDimension { what: "need at least 2 resamples" });
    }
    let stats = resample_statistics(data, resamples, seed, parallelism, &statistic);
    replicate_stddev(stats)
}

/// Assembles a percentile interval from the raw replicate statistics,
/// dropping (and counting) non-finite replicates.
///
/// With all replicates finite this reproduces the historical behaviour
/// exactly: `total_cmp` orders finite floats like `partial_cmp`, and the
/// percentile indices are taken over the same count.
fn percentile_interval(estimate: f64, stats: Vec<f64>, level: f64) -> Result<ConfidenceInterval> {
    if !estimate.is_finite() {
        return Err(StatsError::NonFiniteStatistic { what: "the original sample" });
    }
    let total = stats.len();
    let mut finite: Vec<f64> = stats.into_iter().filter(|s| s.is_finite()).collect();
    let non_finite_replicates = total - finite.len();
    if finite.is_empty() {
        return Err(StatsError::NonFiniteStatistic { what: "every bootstrap replicate" });
    }
    finite.sort_by(f64::total_cmp);
    let m = finite.len();
    let alpha = (1.0 - level) / 2.0;
    let lo_idx = ((alpha * m as f64).floor() as usize).min(m - 1);
    let hi_idx = (((1.0 - alpha) * m as f64).ceil() as usize).saturating_sub(1).min(m - 1);
    Ok(ConfidenceInterval {
        estimate,
        lower: finite[lo_idx],
        upper: finite[hi_idx],
        level,
        non_finite_replicates,
    })
}

/// Sample standard deviation of the finite replicate statistics.
///
/// Welford accumulation stays sequential and in replicate order so the
/// float arithmetic is identical at every thread count; skipping
/// non-finite replicates preserves the order of the finite ones.
fn replicate_stddev(stats: Vec<f64>) -> Result<f64> {
    let mut w = crate::running::Welford::new();
    for s in stats {
        if s.is_finite() {
            w.push(s);
        }
    }
    if w.count() < 2 {
        return Err(StatsError::NonFiniteStatistic { what: "all but one bootstrap replicate" });
    }
    Ok(w.summary().expect("count >= 2").sample_stddev())
}

/// One statistic per bootstrap replicate, in replicate order.
fn resample_statistics<F>(
    data: &[f64],
    resamples: usize,
    seed: u64,
    parallelism: Parallelism,
    statistic: &F,
) -> Vec<f64>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let n = data.len();
    par_map_range(parallelism, resamples, |replicate| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, STREAM_BOOTSTRAP, replicate as u64));
        let resample: Vec<f64> = (0..n).map(|_| data[rng.gen_range(0..n)]).collect();
        statistic(&resample)
    })
}

/// Bootstrap standard error of a statistic (stddev of the bootstrap
/// distribution).
///
/// # Errors
///
/// Same conditions as [`bootstrap_ci`].
pub fn bootstrap_se<R, F>(data: &[f64], resamples: usize, rng: &mut R, statistic: F) -> Result<f64>
where
    R: Rng + ?Sized,
    F: Fn(&[f64]) -> f64,
{
    ensure_sample(data)?;
    if resamples < 2 {
        return Err(StatsError::DegenerateDimension { what: "need at least 2 resamples" });
    }
    let n = data.len();
    let mut buf = vec![0.0; n];
    let mut stats = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        for slot in buf.iter_mut() {
            *slot = data[rng.gen_range(0..n)];
        }
        stats.push(statistic(&buf));
    }
    replicate_stddev(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ci_covers_true_mean() {
        let data: Vec<f64> = (0..200).map(|i| (i % 10) as f64).collect();
        let mut rng = StdRng::seed_from_u64(42);
        let ci = bootstrap_ci(&data, 1000, 0.95, &mut rng, |s| describe::mean(s).unwrap()).unwrap();
        assert!(ci.contains(4.5), "{ci:?}");
        assert!(ci.lower <= ci.estimate && ci.estimate <= ci.upper);
        assert!(ci.width() < 1.0);
    }

    #[test]
    fn narrower_interval_for_lower_level() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let wide =
            bootstrap_ci(&data, 800, 0.99, &mut rng, |s| describe::mean(s).unwrap()).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let narrow =
            bootstrap_ci(&data, 800, 0.80, &mut rng, |s| describe::mean(s).unwrap()).unwrap();
        assert!(narrow.width() < wide.width());
    }

    #[test]
    fn rejects_bad_arguments() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(bootstrap_ci(&[], 10, 0.95, &mut rng, |_| 0.0).is_err());
        assert!(bootstrap_ci(&[1.0], 0, 0.95, &mut rng, |_| 0.0).is_err());
        assert!(bootstrap_ci(&[1.0], 10, 1.5, &mut rng, |_| 0.0).is_err());
    }

    #[test]
    fn se_positive_for_varied_data() {
        let data: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let se = bootstrap_se(&data, 500, &mut rng, |s| describe::mean(s).unwrap()).unwrap();
        assert!(se > 0.0 && se < 5.0);
    }

    #[test]
    fn seeded_bootstrap_matches_across_thread_counts() {
        let data: Vec<f64> = (0..150).map(|i| ((i * 37) % 100) as f64).collect();
        let stat = |s: &[f64]| describe::mean(s).unwrap();
        let seq_ci =
            bootstrap_ci_seeded(&data, 400, 0.95, 11, Parallelism::Sequential, stat).unwrap();
        let seq_se = bootstrap_se_seeded(&data, 400, 11, Parallelism::Sequential, stat).unwrap();
        for par in [Parallelism::Threads(2), Parallelism::Threads(4), Parallelism::Auto] {
            let ci = bootstrap_ci_seeded(&data, 400, 0.95, 11, par, stat).unwrap();
            let se = bootstrap_se_seeded(&data, 400, 11, par, stat).unwrap();
            assert_eq!(seq_ci, ci, "{par:?}");
            assert_eq!(seq_se, se, "{par:?}");
        }
        // A different seed gives a different interval.
        let other =
            bootstrap_ci_seeded(&data, 400, 0.95, 12, Parallelism::Sequential, stat).unwrap();
        assert_ne!((seq_ci.lower, seq_ci.upper), (other.lower, other.upper));
    }

    #[test]
    fn seeded_bootstrap_rejects_bad_arguments() {
        let stat = |_: &[f64]| 0.0;
        assert!(bootstrap_ci_seeded(&[], 10, 0.95, 0, Parallelism::Sequential, stat).is_err());
        assert!(bootstrap_ci_seeded(&[1.0], 0, 0.95, 0, Parallelism::Sequential, stat).is_err());
        assert!(bootstrap_ci_seeded(&[1.0], 10, 1.5, 0, Parallelism::Sequential, stat).is_err());
        assert!(bootstrap_se_seeded(&[1.0], 1, 0, Parallelism::Sequential, stat).is_err());
    }

    #[test]
    fn nan_replicates_are_dropped_and_counted() {
        // NaN whenever the resample happens to miss the largest value —
        // the shape of a ratio statistic degenerating on a dirty resample.
        // Pre-PR this panicked at the partial_cmp sort.
        let data: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let stat = |s: &[f64]| {
            if s.contains(&39.0) {
                s.iter().sum::<f64>() / s.len() as f64
            } else {
                f64::NAN
            }
        };
        let ci = bootstrap_ci_seeded(&data, 300, 0.95, 5, Parallelism::Sequential, stat).unwrap();
        assert!(ci.non_finite_replicates > 0, "{ci:?}");
        assert!(ci.non_finite_replicates < 300, "{ci:?}");
        assert!(ci.lower.is_finite() && ci.upper.is_finite());
        assert!(ci.lower <= ci.upper);
        // The SE path also survives NaN replicates.
        let se = bootstrap_se_seeded(&data, 300, 5, Parallelism::Sequential, stat).unwrap();
        assert!(se.is_finite() && se > 0.0);
    }

    #[test]
    fn non_finite_estimate_is_a_typed_error() {
        let data = vec![1.0, 2.0, 3.0];
        let err = bootstrap_ci_seeded(&data, 10, 0.95, 0, Parallelism::Sequential, |_| f64::NAN)
            .unwrap_err();
        assert_eq!(err, StatsError::NonFiniteStatistic { what: "the original sample" });
    }

    #[test]
    fn all_nan_replicates_are_a_typed_error() {
        // Finite only on a strictly increasing slice: true for the
        // original sample, (essentially) never for a resample.
        let data: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let stat = |s: &[f64]| {
            if s.windows(2).all(|w| w[0] < w[1]) {
                1.0
            } else {
                f64::NAN
            }
        };
        let err =
            bootstrap_ci_seeded(&data, 50, 0.95, 9, Parallelism::Sequential, stat).unwrap_err();
        assert_eq!(err, StatsError::NonFiniteStatistic { what: "every bootstrap replicate" });
    }

    #[test]
    fn obs_records_bootstrap_replicate_counters() {
        let data: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let obs = rainshine_obs::Obs::enabled();
        let ci = bootstrap_ci_seeded_with_obs(
            &data,
            200,
            0.95,
            11,
            Parallelism::Sequential,
            &obs,
            |s| describe::mean(s).unwrap(),
        )
        .unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.counters["bootstrap.replicates"], 200);
        assert_eq!(
            snap.counters["bootstrap.non_finite_replicates"],
            ci.non_finite_replicates as u64
        );
        assert_eq!(snap.stages["stats.bootstrap_ci"].calls, 1);
        assert_eq!(snap.stages["stats.bootstrap_ci"].items, 200);
    }

    #[test]
    fn se_zero_for_constant_data() {
        let data = vec![2.0; 30];
        let mut rng = StdRng::seed_from_u64(3);
        let se = bootstrap_se(&data, 100, &mut rng, |s| describe::mean(s).unwrap()).unwrap();
        assert_eq!(se, 0.0);
    }
}
