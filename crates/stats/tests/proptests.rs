//! Property-based tests for the statistics substrate.

use proptest::prelude::*;
use rainshine_stats::describe::Summary;
use rainshine_stats::ecdf::{quantile_interpolated, quantile_with_zeros, Ecdf};
use rainshine_stats::hist::Binner;
use rainshine_stats::impurity::{gini, sum_squared_deviation};
use rainshine_stats::running::Welford;
use rainshine_stats::special::{chi_square_cdf, gamma_p, gamma_q, std_normal_cdf};

fn finite_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

/// A sorted vector of nonzero sample values for `quantile_with_zeros`.
fn sorted_nonzero() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..1000, 0..50).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

/// The reference semantics of [`quantile_with_zeros`]: materialize the full
/// multiset (implicit zeros first, then the stored values) and take the
/// type-1 inverse-CDF order statistic, with ranks capped at `total` so
/// malformed over-full series stay in bounds.
fn naive_zero_mass_quantile(sorted_nonzero: &[u64], total: u64, q: f64) -> u64 {
    let zeros = total.saturating_sub(sorted_nonzero.len().min(total as usize) as u64);
    let full: Vec<u64> =
        std::iter::repeat_n(0, zeros as usize).chain(sorted_nonzero.iter().copied()).collect();
    if total == 0 {
        return 0;
    }
    let rank = ((q * total as f64).ceil().max(1.0) as u64).min(total);
    full[(rank - 1) as usize]
}

proptest! {
    #[test]
    fn ecdf_is_monotone_and_bounded(data in finite_vec(), probe in -2e6f64..2e6) {
        let e = Ecdf::new(data).unwrap();
        let f = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        // Monotone: F(probe) <= F(probe + delta).
        prop_assert!(f <= e.eval(probe + 1.0) + 1e-15);
        // Support bounds.
        prop_assert_eq!(e.eval(e.max()), 1.0);
        prop_assert!(e.eval(e.min() - 1.0) == 0.0);
    }

    #[test]
    fn ecdf_quantiles_are_ordered(data in finite_vec(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let e = Ecdf::new(data).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(e.quantile(lo) <= e.quantile(hi));
        // Quantiles are sample values.
        prop_assert!(e.values().contains(&e.quantile(a)));
    }

    #[test]
    fn interpolated_quantile_within_range(data in finite_vec(), q in 0.0f64..=1.0) {
        let v = quantile_interpolated(&data, q).unwrap();
        let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn welford_merge_matches_concatenation(a in finite_vec(), b in finite_vec()) {
        let mut wa: Welford = a.iter().copied().collect();
        let wb: Welford = b.iter().copied().collect();
        wa.merge(&wb);
        let all: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        let batch = Summary::from_slice(&all).unwrap();
        let merged = wa.summary().unwrap();
        prop_assert!((merged.mean() - batch.mean()).abs() < 1e-6 * (1.0 + batch.mean().abs()));
        prop_assert!(
            (merged.sample_variance() - batch.sample_variance()).abs()
                < 1e-5 * (1.0 + batch.sample_variance())
        );
    }

    #[test]
    fn binner_assigns_every_value_to_exactly_one_bin(
        mut edges in prop::collection::vec(-1e3f64..1e3, 1..10),
        value in -2e3f64..2e3,
    ) {
        edges.sort_by(|a, b| a.partial_cmp(b).unwrap());
        edges.dedup();
        let binner = Binner::from_edges(edges).unwrap();
        let bin = binner.bin_of(value);
        prop_assert!(bin < binner.bin_count());
        // Label rendering never panics for valid bins.
        let _ = binner.label(bin);
    }

    #[test]
    fn gini_bounds_hold(counts in prop::collection::vec(0.0f64..1e4, 1..10)) {
        let g = gini(&counts);
        let k = counts.iter().filter(|&&c| c > 0.0).count().max(1);
        prop_assert!(g >= -1e-12);
        prop_assert!(g <= 1.0 - 1.0 / k as f64 + 1e-12);
    }

    #[test]
    fn ssd_is_translation_invariant(data in finite_vec(), shift in -1e3f64..1e3) {
        let shifted: Vec<f64> = data.iter().map(|v| v + shift).collect();
        let a = sum_squared_deviation(&data);
        let b = sum_squared_deviation(&shifted);
        prop_assert!((a - b).abs() < 1e-4 * (1.0 + a));
    }

    #[test]
    fn gamma_p_q_complementary(a in 0.1f64..50.0, x in 0.0f64..100.0) {
        let sum = gamma_p(a, x) + gamma_q(a, x);
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&gamma_p(a, x)));
    }

    #[test]
    fn cdfs_are_monotone(x in -10.0f64..10.0, dx in 0.0f64..5.0, df in 1.0f64..30.0) {
        prop_assert!(std_normal_cdf(x) <= std_normal_cdf(x + dx) + 1e-12);
        let cx = x.abs();
        prop_assert!(chi_square_cdf(cx, df) <= chi_square_cdf(cx + dx, df) + 1e-12);
    }

    #[test]
    fn zero_mass_quantile_matches_materialized_multiset(
        values in sorted_nonzero(),
        total in 0u64..200,
        q in 0.0f64..=1.0,
    ) {
        prop_assert_eq!(
            quantile_with_zeros(&values, total, q),
            naive_zero_mass_quantile(&values, total, q)
        );
    }

    #[test]
    fn zero_mass_quantile_is_monotone_in_q(
        values in sorted_nonzero(),
        total in 0u64..200,
        a in 0.0f64..=1.0,
        b in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            quantile_with_zeros(&values, total, lo) <= quantile_with_zeros(&values, total, hi)
        );
    }

    #[test]
    fn zero_mass_quantile_boundary_ranks(values in sorted_nonzero(), extra_zeros in 0u64..100) {
        let total = values.len() as u64 + extra_zeros;
        // q = 0 clamps to rank 1: the smallest sample, which is an implicit
        // zero whenever any zero mass exists.
        let at_zero = quantile_with_zeros(&values, total, 0.0);
        if extra_zeros > 0 {
            prop_assert_eq!(at_zero, 0);
        } else {
            prop_assert_eq!(at_zero, values.first().copied().unwrap_or(0));
        }
        // q = 1 is the maximum of the full multiset.
        prop_assert_eq!(quantile_with_zeros(&values, total, 1.0), values.last().copied().unwrap_or(0));
        // The rank just inside the zero mass still reports zero; the first
        // rank past it reports the smallest nonzero value. Probing at
        // rank - 0.5 keeps ceil() away from float-rounding at exact
        // rank/total boundaries.
        if extra_zeros > 0 && total > 0 {
            let boundary = (extra_zeros as f64 - 0.5) / total as f64;
            prop_assert_eq!(quantile_with_zeros(&values, total, boundary), 0);
            if !values.is_empty() {
                let past = (extra_zeros as f64 + 0.5) / total as f64;
                prop_assert_eq!(quantile_with_zeros(&values, total, past), values[0]);
            }
        }
    }

    #[test]
    fn summary_mean_between_min_and_max(data in finite_vec()) {
        let s = Summary::from_slice(&data).unwrap();
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.sample_variance() >= 0.0);
    }
}
