//! Property-based tests for the simulator: determinism, ticket validity,
//! and hazard positivity across configuration perturbations.

use proptest::prelude::*;
use rainshine_dcsim::cooling::InletConditions;
use rainshine_dcsim::environment::EnvModel;
use rainshine_dcsim::hazard::ComponentClass;
use rainshine_dcsim::topology::Fleet;
use rainshine_dcsim::{FleetConfig, Simulation};
use rainshine_telemetry::ids::{DcId, RegionId};
use rainshine_telemetry::time::SimTime;

fn tiny_config(dc1: usize, dc2: usize, days: u64) -> FleetConfig {
    FleetConfig {
        dc1_racks: dc1,
        dc2_racks: dc2,
        end: SimTime::from_days(days),
        ..FleetConfig::small()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn runs_are_seed_deterministic(seed in 0u64..1000, dc1 in 2usize..8, dc2 in 2usize..8) {
        let config = tiny_config(dc1, dc2, 60);
        let a = Simulation::new(config.clone(), seed).run();
        let b = Simulation::new(config, seed).run();
        prop_assert_eq!(a.tickets, b.tickets);
    }

    #[test]
    fn all_tickets_valid_and_in_span(seed in 0u64..1000) {
        let config = tiny_config(4, 4, 90);
        let out = Simulation::new(config.clone(), seed).run();
        for t in &out.tickets {
            prop_assert!(t.validate().is_ok());
            prop_assert!(t.opened >= config.start);
            prop_assert!(t.opened < config.end);
            prop_assert!(t.resolved <= config.end);
        }
    }

    #[test]
    fn fleet_layout_independent_of_run_seed(seed1 in 0u64..100, seed2 in 100u64..200) {
        let config = tiny_config(5, 5, 30);
        let a = Simulation::new(config.clone(), seed1).run();
        let b = Simulation::new(config, seed2).run();
        prop_assert_eq!(a.fleet, b.fleet);
    }

    #[test]
    fn hazard_rates_positive_and_bounded(
        temp in 56.0f64..90.0,
        rh in 5.0f64..87.0,
        day in 0u64..900,
    ) {
        let config = FleetConfig::paper_scale();
        let fleet = Fleet::build(&config);
        let env = InletConditions { temp_f: temp, rh };
        let t = SimTime::from_days(day);
        for rack in fleet.racks.iter().take(50) {
            for class in ComponentClass::ALL {
                let rate = config.hazard.rack_day_rate(rack, class, env, t);
                prop_assert!(rate.is_finite());
                prop_assert!(rate >= 0.0);
                prop_assert!(rate < 5.0, "implausible rate {rate}");
                if !rack.is_active(t) {
                    prop_assert_eq!(rate, 0.0);
                }
            }
            let burst = config.hazard.burst_rate(rack, t);
            prop_assert!(burst.is_finite() && (0.0..0.5).contains(&burst));
        }
    }

    #[test]
    fn environment_always_within_table_iii_ranges(
        hour in 0u64..24_000,
        region in 1u8..=4,
        dc in 1u8..=2,
    ) {
        let env = EnvModel::paper_layout(7);
        let region = if dc == 2 { region.min(3) } else { region };
        let c = env.sample(DcId(dc), RegionId(region), SimTime(hour));
        prop_assert!((56.0..=90.0).contains(&c.temp_f), "temp {}", c.temp_f);
        prop_assert!((5.0..=87.0).contains(&c.rh), "rh {}", c.rh);
    }

    #[test]
    fn burst_sizes_respect_rack_capacity(u in 0.0f64..1.0) {
        let config = FleetConfig::paper_scale();
        let fleet = Fleet::build(&config);
        for rack in fleet.racks.iter().take(30) {
            let size = config.hazard.burst_size(rack, u);
            prop_assert!(size >= 1);
            prop_assert!(size <= rack.servers);
        }
    }

    #[test]
    fn false_positive_rate_respected(seed in 0u64..200) {
        let mut config = tiny_config(6, 6, 120);
        config.false_positive_rate = 0.15;
        let out = Simulation::new(config, seed).run();
        let fp = out.tickets.iter().filter(|t| t.false_positive).count() as f64;
        let share = fp / out.tickets.len() as f64;
        prop_assert!((share - 0.15).abs() < 0.05, "fp share {share}");
    }
}
