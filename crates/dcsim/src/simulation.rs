//! Top-level simulation driver.

use rainshine_obs::Obs;
use rainshine_parallel::derive_seed;
use rainshine_telemetry::ids::{DcId, RackId, RegionId};
use rainshine_telemetry::quality::{DataQualityReport, DefectClass, Sanitizer, SanitizerConfig};
use rainshine_telemetry::rma::{self, RmaTicket};
use rainshine_telemetry::time::SimTime;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::FleetConfig;
use crate::cooling::InletConditions;
use crate::corruption::{self, InjectionLog, SensorFaultPlan};
use crate::environment::EnvModel;
use crate::tickets;
use crate::topology::Fleet;

/// A configured simulation run. Construct with [`Simulation::new`], execute
/// with [`Simulation::run`].
///
/// # Example
///
/// ```
/// use rainshine_dcsim::{FleetConfig, Simulation};
///
/// let output = Simulation::new(FleetConfig::small(), 1).run();
/// let hardware = output.hardware_tickets();
/// assert!(!hardware.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    config: FleetConfig,
    seed: u64,
}

impl Simulation {
    /// Creates a simulation with the given configuration and seed.
    pub fn new(config: FleetConfig, seed: u64) -> Self {
        Simulation { config, seed }
    }

    /// The configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Runs the simulation, producing the fleet, the environment model, and
    /// the full RMA ticket stream (sorted by open time, false positives
    /// included and flagged).
    ///
    /// Each generation stage draws per-rack (or per-DC) seed-derived RNG
    /// streams and merges results in rack order, so the output is a pure
    /// function of the seed: [`FleetConfig::parallelism`] changes only
    /// wall-clock time, never a ticket.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; validate with
    /// [`FleetConfig::validate`] first if the config is untrusted.
    pub fn run(self) -> SimulationOutput {
        self.run_with_obs(&Obs::disabled())
    }

    /// [`Simulation::run`] with observability: each pipeline stage records
    /// a span (generation, false positives, corruption, sanitizer, env
    /// audit) plus ticket/row counters on `obs`. Every recorded counter and
    /// item count is a pure function of `(config, seed)`, so the
    /// deterministic report section is identical at any thread count.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Simulation::run`].
    pub fn run_with_obs(self, obs: &Obs) -> SimulationOutput {
        let mut run_span = obs.span("dcsim.run");
        self.config.validate().expect("invalid simulation config");
        let fleet = {
            let _span = obs.span("dcsim.fleet_build");
            Fleet::build(&self.config)
        };
        obs.incr("fleet.racks", fleet.racks.len() as u64);
        let env = {
            let _span = obs.span("dcsim.env_model");
            EnvModel::paper_layout(self.seed)
        };
        let par = self.config.parallelism;
        let mut all = {
            let mut span = obs.span("dcsim.tickets_hardware");
            let hw = tickets::generate_hardware_par(&fleet, &self.config, &env, self.seed, par);
            span.add_items(hw.len() as u64);
            hw
        };
        {
            let mut span = obs.span("dcsim.tickets_bursts");
            let bursts = tickets::generate_bursts_par(&fleet, &self.config, self.seed, par);
            span.add_items(bursts.len() as u64);
            all.extend(bursts);
        }
        {
            let mut span = obs.span("dcsim.tickets_non_hardware");
            let non_hw =
                tickets::generate_non_hardware_par(&fleet, &self.config, &all, self.seed, par);
            span.add_items(non_hw.len() as u64);
            all.extend(non_hw);
        }
        {
            let mut span = obs.span("dcsim.false_positives");
            let mut fp_rng =
                StdRng::seed_from_u64(derive_seed(self.seed, tickets::STREAM_FALSE_POSITIVES, 0));
            let fps = tickets::inject_false_positives(
                &all,
                self.config.false_positive_rate,
                self.config.end,
                &mut fp_rng,
            );
            span.add_items(fps.len() as u64);
            obs.incr("tickets.false_positives", fps.len() as u64);
            all.extend(fps);
        }
        all.sort_by_key(|t| (t.opened, t.location.rack, t.device));
        obs.incr("tickets.generated", all.len() as u64);
        obs.observe("tickets.per_rack_mean", (all.len() / fleet.racks.len().max(1)) as u64);

        // Dirty-data injection (off by default) followed by the robust
        // ingestion pass. The sanitizer always runs: on a pristine stream
        // it is a bit-identical no-op, so clean runs are unaffected, while
        // corrupted runs come out repaired/quarantined with every defect
        // accounted for in the quality report.
        let corruption_cfg = self.config.corruption.clone();
        let mut injection = InjectionLog::default();
        let mut sensor_faults = SensorFaultPlan::default();
        let start_day = self.config.start.hours() / 24;
        let end_day = start_day + self.config.span_days();
        if corruption_cfg.is_enabled() {
            let mut span = obs.span("dcsim.corruption");
            let mut rng =
                StdRng::seed_from_u64(derive_seed(self.seed, corruption::STREAM_CORRUPTION, 0));
            injection = corruption::corrupt_tickets(
                &mut all,
                &corruption_cfg,
                (self.config.start, self.config.end),
                &mut rng,
            );
            let dcs: Vec<(DcId, u8)> =
                fleet.datacenters.iter().map(|d| (d.id, d.regions)).collect();
            let mut env_rng =
                StdRng::seed_from_u64(derive_seed(self.seed, corruption::STREAM_CORRUPTION, 1));
            sensor_faults = corruption::plan_sensor_faults(
                &corruption_cfg,
                &dcs,
                start_day,
                end_day,
                &mut env_rng,
            );
            injection.spiked_cells = sensor_faults.spiked_cells();
            injection.blackout_cells = sensor_faults.blackout_cells();
            span.add_items(injection.total_ticket_defects());
            obs.incr("corruption.defects_injected", injection.total_ticket_defects());
        }

        let sanitizer = Sanitizer::new(
            fleet.manifest(),
            SanitizerConfig::for_span(self.config.start, self.config.end),
        );
        let (tickets, mut quality) = {
            let mut span = obs.span("dcsim.sanitize");
            span.add_items(all.len() as u64);
            sanitizer.sanitize(&all)
        };
        obs.incr("tickets.sanitized", tickets.len() as u64);
        obs.incr("tickets.quarantined", all.len().saturating_sub(tickets.len()) as u64);

        // Environment-sensor audit: replay every (DC, region, day) cell
        // through the ingestion bounds so blackouts and spikes show up in
        // the report. Skipped when corruption is off — the sensors are
        // clean by construction.
        if corruption_cfg.is_enabled() {
            let mut span = obs.span("dcsim.env_audit");
            let bounds = sanitizer.config().bounds;
            for d in &fleet.datacenters {
                for region in 1..=d.regions {
                    let region = RegionId(region);
                    for day in start_day..end_day {
                        span.add_items(1);
                        quality.env_cells_seen += 1;
                        if sensor_faults.is_blacked_out(d.id, region, day) {
                            quality.record(DefectClass::SensorBlackout, false);
                            continue;
                        }
                        let clean = env.daily_mean(d.id, region, day);
                        let temp = clean.temp_f
                            + sensor_faults.spike_delta(d.id, region, day).unwrap_or(0.0);
                        if bounds.winsorize_temp(temp).1 || bounds.winsorize_rh(clean.rh).1 {
                            quality.record(DefectClass::SensorSpike, true);
                        }
                    }
                }
            }
        }
        run_span.add_items(tickets.len() as u64);

        SimulationOutput {
            config: self.config,
            seed: self.seed,
            fleet,
            env,
            tickets,
            sensor_faults,
            injection,
            quality,
        }
    }
}

/// Everything a simulation run produces.
#[derive(Debug, Clone)]
pub struct SimulationOutput {
    /// The configuration that was run.
    pub config: FleetConfig,
    /// The seed that was used.
    pub seed: u64,
    /// The static fleet.
    pub fleet: Fleet,
    /// The environment model (queryable for any rack-hour).
    pub env: EnvModel,
    /// The sanitized RMA ticket stream, sorted by open time. Flagged false
    /// positives are included; injected defects have been repaired or
    /// quarantined (see [`Self::quality`]).
    pub tickets: Vec<RmaTicket>,
    /// Sensor faults injected into the environmental telemetry (empty when
    /// corruption is off). Raw readings are exposed via
    /// [`Self::observed_daily_env`], repaired ones via
    /// [`Self::ingested_daily_env`].
    pub sensor_faults: SensorFaultPlan,
    /// Ground truth of every defect the injector introduced.
    pub injection: InjectionLog,
    /// What the ingestion layer saw and did, row by row.
    pub quality: DataQualityReport,
}

impl SimulationOutput {
    /// Validated true-positive tickets — the population the paper analyzes.
    pub fn true_positives(&self) -> Vec<&RmaTicket> {
        rma::true_positives(&self.tickets)
    }

    /// True-positive *hardware* tickets — the population Q1–Q3 use.
    pub fn hardware_tickets(&self) -> Vec<&RmaTicket> {
        self.true_positives().into_iter().filter(|t| t.fault.is_hardware()).collect()
    }

    /// Looks up a rack.
    pub fn rack(&self, id: RackId) -> Option<&crate::topology::RackInfo> {
        self.fleet.rack(id)
    }

    /// Daily mean inlet conditions for a rack.
    ///
    /// # Panics
    ///
    /// Panics if the rack id is unknown.
    pub fn rack_daily_env(&self, rack: RackId, day: u64) -> InletConditions {
        let info = self.fleet.rack(rack).unwrap_or_else(|| panic!("unknown {rack}"));
        self.env.daily_mean(info.dc, info.region, day)
    }

    /// Daily mean inlet conditions *as the sensors reported them*: NaN
    /// during a blackout window, spiked during a spike cell, otherwise the
    /// true environment.
    pub fn observed_daily_env(&self, dc: DcId, region: RegionId, day: u64) -> InletConditions {
        if self.sensor_faults.is_empty() {
            return self.env.daily_mean(dc, region, day);
        }
        if self.sensor_faults.is_blacked_out(dc, region, day) {
            return InletConditions { temp_f: f64::NAN, rh: f64::NAN };
        }
        let mut cond = self.env.daily_mean(dc, region, day);
        if let Some(delta) = self.sensor_faults.spike_delta(dc, region, day) {
            cond.temp_f += delta;
        }
        cond
    }

    /// Streams every active (rack, day) in rack-major, day-ascending order,
    /// stepping days by `day_stride`, handing each visit the rack, the day's
    /// [`SimTime`], and the ingested (sanitized) inlet conditions.
    ///
    /// This is the zero-copy emission path for columnar dataset assembly:
    /// callers append straight into column builders instead of materializing
    /// per-row value vectors. Returns the number of rack-days visited.
    ///
    /// # Panics
    ///
    /// Panics if `day_stride == 0`.
    pub fn for_each_active_rack_day<F>(&self, day_stride: usize, mut emit: F) -> usize
    where
        F: FnMut(&crate::topology::RackInfo, SimTime, InletConditions),
    {
        assert!(day_stride > 0, "day_stride must be positive");
        let start_day = self.config.start.days();
        let end_day = self.config.end.days();
        let mut visited = 0usize;
        for rack in &self.fleet.racks {
            for day in (start_day..end_day).step_by(day_stride) {
                let t = SimTime::from_days(day);
                if !rack.is_active(t) {
                    continue;
                }
                let env = self.ingested_daily_env(rack.dc, rack.region, day);
                emit(rack, t, env);
                visited += 1;
            }
        }
        visited
    }

    /// Daily mean inlet conditions after robust ingestion: spikes are
    /// winsorized to physical bounds, blackout cells stay NaN (downstream
    /// analyses skip or route them). Identical to the true environment when
    /// the sensors are clean.
    pub fn ingested_daily_env(&self, dc: DcId, region: RegionId, day: u64) -> InletConditions {
        let observed = self.observed_daily_env(dc, region, day);
        if self.sensor_faults.is_empty() {
            return observed;
        }
        let bounds = rainshine_telemetry::quality::SensorBounds::default();
        InletConditions {
            temp_f: bounds.winsorize_temp(observed.temp_f).0,
            rh: bounds.winsorize_rh(observed.rh).0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_telemetry::ids::DcId;

    #[test]
    fn run_is_deterministic_per_seed() {
        let a = Simulation::new(FleetConfig::small(), 99).run();
        let b = Simulation::new(FleetConfig::small(), 99).run();
        assert_eq!(a.tickets, b.tickets);
        let c = Simulation::new(FleetConfig::small(), 100).run();
        assert_ne!(a.tickets.len(), 0);
        assert_ne!(a.tickets, c.tickets);
    }

    #[test]
    fn thread_count_does_not_change_the_ticket_stream() {
        use rainshine_parallel::Parallelism;
        let mut config = FleetConfig::small();
        config.parallelism = Parallelism::Sequential;
        let sequential = Simulation::new(config.clone(), 99).run();
        for par in [Parallelism::Threads(2), Parallelism::Threads(4), Parallelism::Auto] {
            config.parallelism = par;
            let parallel = Simulation::new(config.clone(), 99).run();
            assert_eq!(sequential.tickets, parallel.tickets, "{par:?}");
        }
    }

    #[test]
    fn tickets_sorted_and_mixed() {
        let out = Simulation::new(FleetConfig::small(), 3).run();
        assert!(out.tickets.windows(2).all(|w| w[0].opened <= w[1].opened));
        let tp = out.true_positives();
        let hw = out.hardware_tickets();
        assert!(!hw.is_empty());
        assert!(hw.len() < tp.len(), "software tickets exist");
        let fp_count = out.tickets.len() - tp.len();
        let fp_share = fp_count as f64 / out.tickets.len() as f64;
        assert!((fp_share - 0.08).abs() < 0.02, "fp share {fp_share}");
    }

    #[test]
    fn both_dcs_produce_tickets() {
        let out = Simulation::new(FleetConfig::small(), 4).run();
        for dc in [DcId(1), DcId(2)] {
            assert!(
                out.hardware_tickets().iter().any(|t| t.location.dc == dc),
                "no hardware tickets in {dc}"
            );
        }
    }

    #[test]
    fn rack_env_lookup_works() {
        let out = Simulation::new(FleetConfig::small(), 5).run();
        let rack = out.fleet.racks[0].id;
        let env = out.rack_daily_env(rack, 10);
        assert!((56.0..=90.0).contains(&env.temp_f));
        assert!((5.0..=87.0).contains(&env.rh));
    }
}
