//! Seeded data-corruption injector: degrades pristine simulator output the
//! way production ingestion pipelines do.
//!
//! The paper's framework exists because real RMA streams are *cloudy* —
//! duplicated tickets from pipeline retries, inverted or clock-skewed
//! intervals, mislabeled locations, censored resolution times, and flaky
//! environmental sensors. This module injects exactly those defects at
//! configurable per-class rates, deterministically from the run seed, so
//! the robust ingestion layer (`rainshine_telemetry::quality`) can be
//! exercised end-to-end and its [`DataQualityReport`] audited against the
//! ground-truth [`InjectionLog`].
//!
//! Design rules that make the accounting exact:
//!
//! * at most **one** defect per ticket (a single uniform draw against
//!   cumulative class rates), and false positives are never corrupted;
//! * every ticket defect is detectable from clean-data invariants the
//!   generators guarantee (outage ≥ 1 h, open time inside the span,
//!   locations consistent with the fleet);
//! * sensor spikes push readings outside [`SensorBounds`] by construction,
//!   and spike cells never overlap blackout windows.
//!
//! [`DataQualityReport`]: rainshine_telemetry::quality::DataQualityReport
//! [`SensorBounds`]: rainshine_telemetry::quality::SensorBounds

use rainshine_telemetry::ids::{DcId, RegionId};
use rainshine_telemetry::rma::RmaTicket;
use rainshine_telemetry::time::SimTime;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{Result, SimError};

/// RNG stream tag for corruption (ticket stream = index 0, sensor-fault
/// plan = index 1); tags 1–4 belong to the ticket generators.
pub(crate) const STREAM_CORRUPTION: u64 = 5;

/// Sensor spikes shift a reading by at least this much (°F). Clean inlet
/// temperatures span 56–90 °F and the ingestion bounds are 50–95 °F, so a
/// ≥ 45 °F shift always lands outside the bounds — every spike is
/// detectable.
const SPIKE_MIN_F: f64 = 45.0;
/// Upper bound on the spike magnitude (°F).
const SPIKE_MAX_F: f64 = 80.0;

/// Per-defect-class corruption rates. The default is all-zero (pristine
/// output, bit-identical to a simulator without this module); use
/// [`CorruptionConfig::dirty_default`] for the documented dirty preset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorruptionConfig {
    /// Fraction of tickets re-reported as a near-duplicate (pipeline retry).
    pub duplicate_rate: f64,
    /// Fraction of tickets with opened/resolved swapped.
    pub inverted_rate: f64,
    /// Fraction of tickets time-shifted outside the observation span.
    pub clock_skew_rate: f64,
    /// Fraction of tickets with the datacenter field mislabeled.
    pub mislabel_rate: f64,
    /// Fraction of tickets whose resolution time is lost (`resolved ==
    /// opened`).
    pub censor_rate: f64,
    /// Per-cell probability of an out-of-bounds sensor spike (cell =
    /// DC-region × day).
    pub sensor_spike_rate: f64,
    /// Sensor blackout windows per datacenter (each in its own region).
    pub blackout_windows_per_dc: u32,
    /// Length of each blackout window in days.
    pub blackout_days: u64,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        CorruptionConfig {
            duplicate_rate: 0.0,
            inverted_rate: 0.0,
            clock_skew_rate: 0.0,
            mislabel_rate: 0.0,
            censor_rate: 0.0,
            sensor_spike_rate: 0.0,
            blackout_windows_per_dc: 0,
            blackout_days: 14,
        }
    }
}

impl CorruptionConfig {
    /// The documented dirty preset: 6 % of tickets defective (spread over
    /// the five ticket classes), one two-week sensor blackout per DC, and
    /// a sprinkling of sensor spikes.
    pub fn dirty_default() -> Self {
        CorruptionConfig {
            duplicate_rate: 0.02,
            inverted_rate: 0.01,
            clock_skew_rate: 0.005,
            mislabel_rate: 0.015,
            censor_rate: 0.01,
            sensor_spike_rate: 0.002,
            blackout_windows_per_dc: 1,
            blackout_days: 14,
        }
    }

    /// Spreads one overall ticket-defect rate evenly over the five ticket
    /// classes and scales the sensor defects to match (the `--corrupt
    /// <rate>` CLI preset).
    pub fn with_total_rate(rate: f64) -> Self {
        CorruptionConfig {
            duplicate_rate: rate / 5.0,
            inverted_rate: rate / 5.0,
            clock_skew_rate: rate / 5.0,
            mislabel_rate: rate / 5.0,
            censor_rate: rate / 5.0,
            sensor_spike_rate: rate / 20.0,
            blackout_windows_per_dc: u32::from(rate > 0.0),
            blackout_days: 14,
        }
    }

    /// Parses a `k=v,...` spec, e.g.
    /// `duplicate=0.02,censor=0.01,blackout_windows=2,blackout_days=7`.
    /// Unset keys stay at zero (clean). Keys: `duplicate`, `inverted`,
    /// `clock_skew`, `mislabel`, `censor`, `spike`, `blackout_windows`,
    /// `blackout_days`.
    pub fn parse_spec(spec: &str) -> std::result::Result<Self, String> {
        let mut cfg = CorruptionConfig::default();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("corrupt-spec entry `{part}` is not k=v"))?;
            let key = key.trim();
            let value = value.trim();
            let rate = || {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("corrupt-spec `{key}` has non-numeric value `{value}`"))
            };
            match key {
                "duplicate" => cfg.duplicate_rate = rate()?,
                "inverted" => cfg.inverted_rate = rate()?,
                "clock_skew" => cfg.clock_skew_rate = rate()?,
                "mislabel" => cfg.mislabel_rate = rate()?,
                "censor" => cfg.censor_rate = rate()?,
                "spike" => cfg.sensor_spike_rate = rate()?,
                "blackout_windows" => {
                    cfg.blackout_windows_per_dc = value.parse().map_err(|_| {
                        format!("corrupt-spec `blackout_windows` needs an integer, got `{value}`")
                    })?;
                }
                "blackout_days" => {
                    cfg.blackout_days = value.parse().map_err(|_| {
                        format!("corrupt-spec `blackout_days` needs an integer, got `{value}`")
                    })?;
                }
                other => return Err(format!("unknown corrupt-spec key `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// Combined per-ticket defect probability.
    pub fn ticket_defect_rate(&self) -> f64 {
        self.duplicate_rate
            + self.inverted_rate
            + self.clock_skew_rate
            + self.mislabel_rate
            + self.censor_rate
    }

    /// Whether any defect is configured.
    pub fn is_enabled(&self) -> bool {
        self.ticket_defect_rate() > 0.0
            || self.sensor_spike_rate > 0.0
            || self.blackout_windows_per_dc > 0
    }

    /// Validates the rates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a rate is negative or not
    /// finite, ticket defect rates sum past 0.5, or a blackout is requested
    /// with zero length.
    pub fn validate(&self) -> Result<()> {
        let rates = [
            self.duplicate_rate,
            self.inverted_rate,
            self.clock_skew_rate,
            self.mislabel_rate,
            self.censor_rate,
            self.sensor_spike_rate,
        ];
        if rates.iter().any(|r| !r.is_finite() || *r < 0.0) {
            return Err(SimError::InvalidConfig {
                field: "corruption",
                reason: "defect rates must be finite and non-negative",
            });
        }
        if self.ticket_defect_rate() > 0.5 {
            return Err(SimError::InvalidConfig {
                field: "corruption",
                reason: "combined ticket defect rate must not exceed 0.5",
            });
        }
        if self.sensor_spike_rate > 0.2 {
            return Err(SimError::InvalidConfig {
                field: "corruption",
                reason: "sensor spike rate must not exceed 0.2",
            });
        }
        if self.blackout_windows_per_dc > 0 && self.blackout_days == 0 {
            return Err(SimError::InvalidConfig {
                field: "corruption",
                reason: "blackout windows need blackout_days >= 1",
            });
        }
        Ok(())
    }
}

/// Ground truth of what the injector actually did — the reference the
/// data-quality report is audited against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionLog {
    /// Near-duplicate tickets appended.
    pub duplicates: u64,
    /// Tickets with opened/resolved swapped.
    pub inverted: u64,
    /// Tickets shifted outside the observation span.
    pub clock_skewed: u64,
    /// Tickets with the DC field mislabeled.
    pub mislabeled: u64,
    /// Tickets with the resolution time censored.
    pub censored: u64,
    /// Sensor cells spiked out of bounds.
    pub spiked_cells: u64,
    /// Sensor cells inside a blackout window.
    pub blackout_cells: u64,
}

impl InjectionLog {
    /// Total defective ticket rows injected.
    pub fn total_ticket_defects(&self) -> u64 {
        self.duplicates + self.inverted + self.clock_skewed + self.mislabeled + self.censored
    }
}

/// Corrupts a sorted ticket stream in place (appending duplicates), one
/// defect per ticket at most, skipping flagged false positives. The stream
/// is re-sorted afterwards so downstream consumers still see open-time
/// order.
pub fn corrupt_tickets(
    tickets: &mut Vec<RmaTicket>,
    config: &CorruptionConfig,
    span: (SimTime, SimTime),
    rng: &mut StdRng,
) -> InjectionLog {
    let mut log = InjectionLog::default();
    let span_hours = span.1.hours().saturating_sub(span.0.hours());
    let mut clones: Vec<RmaTicket> = Vec::new();
    for t in tickets.iter_mut() {
        if t.false_positive {
            continue;
        }
        let u: f64 = rng.gen();
        let mut edge = config.duplicate_rate;
        if u < edge {
            // Pipeline retry: same event re-reported a little later. The
            // jitter stays below both the outage and the dedup window.
            let mut dup = t.clone();
            let jitter = rng.gen_range(1..=3u64).min(dup.outage_hours().saturating_sub(1));
            dup.opened = SimTime(dup.opened.hours() + jitter);
            clones.push(dup);
            log.duplicates += 1;
            continue;
        }
        edge += config.inverted_rate;
        if u < edge {
            if t.resolved > t.opened {
                std::mem::swap(&mut t.opened, &mut t.resolved);
                log.inverted += 1;
            }
            continue;
        }
        edge += config.clock_skew_rate;
        if u < edge {
            // A full-span shift always lands the open time past the end.
            t.opened = SimTime(t.opened.hours() + span_hours);
            t.resolved = SimTime(t.resolved.hours() + span_hours);
            log.clock_skewed += 1;
            continue;
        }
        edge += config.mislabel_rate;
        if u < edge {
            t.location.dc = DcId(if t.location.dc.0 == 1 { 2 } else { 1 });
            log.mislabeled += 1;
            continue;
        }
        edge += config.censor_rate;
        if u < edge {
            t.resolved = t.opened;
            log.censored += 1;
        }
    }
    tickets.extend(clones);
    tickets.sort_by_key(|t| (t.opened, t.location.rack, t.device));
    log
}

/// One sensor blackout: a DC region reports nothing for a run of days.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BlackoutWindow {
    /// Affected datacenter.
    pub dc: DcId,
    /// Affected cooling region.
    pub region: RegionId,
    /// First blacked-out day (absolute simulation day).
    pub start_day: u64,
    /// Window length in days.
    pub days: u64,
}

impl BlackoutWindow {
    /// Whether a cell falls inside this window.
    pub fn covers(&self, dc: DcId, region: RegionId, day: u64) -> bool {
        self.dc == dc
            && self.region == region
            && day >= self.start_day
            && day < self.start_day + self.days
    }
}

/// One spiked sensor cell: the daily temperature reading lands far outside
/// physical bounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeCell {
    /// Affected datacenter.
    pub dc: DcId,
    /// Affected cooling region.
    pub region: RegionId,
    /// Spiked day (absolute simulation day).
    pub day: u64,
    /// Additive temperature error (°F), always ≥ `SPIKE_MIN_F` (45 °F) in
    /// magnitude.
    pub delta_f: f64,
}

/// The sensor-fault plan for one run: which env cells are blacked out and
/// which are spiked. Empty by default (clean sensors).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SensorFaultPlan {
    /// Blackout windows (disjoint by construction — one region each).
    pub blackouts: Vec<BlackoutWindow>,
    /// Spiked cells (never inside a blackout window).
    pub spikes: Vec<SpikeCell>,
}

impl SensorFaultPlan {
    /// Whether the plan has no faults at all.
    pub fn is_empty(&self) -> bool {
        self.blackouts.is_empty() && self.spikes.is_empty()
    }

    /// Whether a cell falls in any blackout window.
    pub fn is_blacked_out(&self, dc: DcId, region: RegionId, day: u64) -> bool {
        self.blackouts.iter().any(|w| w.covers(dc, region, day))
    }

    /// The spike delta for a cell, if any.
    pub fn spike_delta(&self, dc: DcId, region: RegionId, day: u64) -> Option<f64> {
        self.spikes
            .iter()
            .find(|s| s.dc == dc && s.region == region && s.day == day)
            .map(|s| s.delta_f)
    }

    /// Total blacked-out cells.
    pub fn blackout_cells(&self) -> u64 {
        self.blackouts.iter().map(|w| w.days).sum()
    }

    /// Total spiked cells.
    pub fn spiked_cells(&self) -> u64 {
        self.spikes.len() as u64
    }
}

/// Draws the sensor-fault plan for a run. `dcs` lists each datacenter with
/// its region count; days are absolute simulation days in
/// `start_day..end_day`. Blackout windows pick distinct regions per DC (so
/// windows never overlap) and spikes skip blacked-out cells, keeping every
/// fault individually countable.
pub fn plan_sensor_faults(
    config: &CorruptionConfig,
    dcs: &[(DcId, u8)],
    start_day: u64,
    end_day: u64,
    rng: &mut StdRng,
) -> SensorFaultPlan {
    let mut plan = SensorFaultPlan::default();
    let span = end_day.saturating_sub(start_day);
    if span == 0 {
        return plan;
    }
    let days = config.blackout_days.min(span);
    if config.blackout_windows_per_dc > 0 && days > 0 {
        for &(dc, regions) in dcs {
            let mut region_pool: Vec<u8> = (1..=regions).collect();
            region_pool.shuffle(rng);
            let windows = (config.blackout_windows_per_dc as usize).min(region_pool.len());
            for &region in &region_pool[..windows] {
                let latest_start = end_day - days;
                let start = if latest_start > start_day {
                    rng.gen_range(start_day..latest_start)
                } else {
                    start_day
                };
                plan.blackouts.push(BlackoutWindow {
                    dc,
                    region: RegionId(region),
                    start_day: start,
                    days,
                });
            }
        }
    }
    if config.sensor_spike_rate > 0.0 {
        for &(dc, regions) in dcs {
            for region in 1..=regions {
                for day in start_day..end_day {
                    if plan.is_blacked_out(dc, RegionId(region), day) {
                        continue;
                    }
                    if rng.gen_bool(config.sensor_spike_rate) {
                        let magnitude = rng.gen_range(SPIKE_MIN_F..SPIKE_MAX_F);
                        let delta = if rng.gen_bool(0.5) { magnitude } else { -magnitude };
                        plan.spikes.push(SpikeCell {
                            dc,
                            region: RegionId(region),
                            day,
                            delta_f: delta,
                        });
                    }
                }
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_telemetry::ids::{DeviceId, RackId, RowId, ServerId, ServerLocation};
    use rainshine_telemetry::rma::FaultKind;
    use rand::SeedableRng;

    fn ticket(opened: u64, resolved: u64) -> RmaTicket {
        RmaTicket {
            device: DeviceId(1),
            location: ServerLocation {
                dc: DcId(1),
                region: RegionId(1),
                row: RowId(1),
                rack: RackId(1),
                server: ServerId(1),
            },
            fault: FaultKind::Other,
            opened: SimTime(opened),
            resolved: SimTime(resolved),
            repeat_count: 0,
            false_positive: false,
        }
    }

    #[test]
    fn default_is_clean_and_dirty_preset_meets_floor() {
        assert!(!CorruptionConfig::default().is_enabled());
        let dirty = CorruptionConfig::dirty_default();
        assert!(dirty.ticket_defect_rate() >= 0.05, "issue floor: >=5% defective");
        assert!(dirty.blackout_windows_per_dc >= 1);
        assert!(dirty.validate().is_ok());
    }

    #[test]
    fn spec_parses_and_rejects_garbage() {
        let cfg = CorruptionConfig::parse_spec(
            "duplicate=0.1, censor=0.05,blackout_windows=2,blackout_days=7",
        )
        .unwrap();
        assert_eq!(cfg.duplicate_rate, 0.1);
        assert_eq!(cfg.censor_rate, 0.05);
        assert_eq!(cfg.blackout_windows_per_dc, 2);
        assert_eq!(cfg.blackout_days, 7);
        assert_eq!(cfg.inverted_rate, 0.0);
        assert!(CorruptionConfig::parse_spec("bogus=1").is_err());
        assert!(CorruptionConfig::parse_spec("duplicate").is_err());
        assert!(CorruptionConfig::parse_spec("duplicate=x").is_err());
    }

    #[test]
    fn validate_rejects_bad_rates() {
        let cfg = CorruptionConfig { duplicate_rate: -0.1, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = CorruptionConfig { censor_rate: 0.6, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg =
            CorruptionConfig { blackout_windows_per_dc: 1, blackout_days: 0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn corruption_log_matches_stream_changes() {
        let clean: Vec<RmaTicket> = (0..2000)
            .map(|i| {
                let mut t = ticket(10 + i, 20 + i);
                t.device = DeviceId(i);
                t
            })
            .collect();
        let mut dirty = clean.clone();
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = CorruptionConfig::dirty_default();
        let log = corrupt_tickets(&mut dirty, &cfg, (SimTime(0), SimTime(5000)), &mut rng);
        assert_eq!(dirty.len() as u64, clean.len() as u64 + log.duplicates);
        assert!(log.total_ticket_defects() > 0, "2000 tickets at 6% should corrupt some");
        let inverted = dirty.iter().filter(|t| t.resolved < t.opened).count() as u64;
        assert_eq!(inverted, log.inverted);
        let skewed = dirty.iter().filter(|t| t.opened >= SimTime(5000)).count() as u64;
        assert_eq!(skewed, log.clock_skewed);
        let mislabeled = dirty.iter().filter(|t| t.location.dc == DcId(2)).count() as u64;
        assert_eq!(mislabeled, log.mislabeled);
        let censored = dirty.iter().filter(|t| t.resolved == t.opened).count() as u64;
        assert_eq!(censored, log.censored);
        // Sorted after corruption.
        assert!(dirty.windows(2).all(|w| w[0].opened <= w[1].opened));
    }

    #[test]
    fn injector_is_deterministic() {
        let clean: Vec<RmaTicket> = (0..500).map(|i| ticket(10 + i, 30 + i)).collect();
        let cfg = CorruptionConfig::dirty_default();
        let mut a = clean.clone();
        let mut b = clean.clone();
        let la = corrupt_tickets(
            &mut a,
            &cfg,
            (SimTime(0), SimTime(2000)),
            &mut StdRng::seed_from_u64(9),
        );
        let lb = corrupt_tickets(
            &mut b,
            &cfg,
            (SimTime(0), SimTime(2000)),
            &mut StdRng::seed_from_u64(9),
        );
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn false_positives_are_never_corrupted() {
        let mut tickets: Vec<RmaTicket> = (0..300)
            .map(|i| {
                let mut t = ticket(10 + i, 30 + i);
                t.false_positive = true;
                t
            })
            .collect();
        let cfg = CorruptionConfig::dirty_default();
        let log = corrupt_tickets(
            &mut tickets,
            &cfg,
            (SimTime(0), SimTime(2000)),
            &mut StdRng::seed_from_u64(3),
        );
        assert_eq!(log.total_ticket_defects(), 0);
        assert_eq!(tickets.len(), 300);
    }

    #[test]
    fn sensor_plan_counts_and_disjointness() {
        let cfg = CorruptionConfig::dirty_default();
        let dcs = [(DcId(1), 4u8), (DcId(2), 3u8)];
        let mut rng = StdRng::seed_from_u64(11);
        let plan = plan_sensor_faults(&cfg, &dcs, 0, 180, &mut rng);
        assert_eq!(plan.blackouts.len(), 2, "one window per DC");
        assert_eq!(plan.blackout_cells(), 2 * cfg.blackout_days);
        for s in &plan.spikes {
            assert!(!plan.is_blacked_out(s.dc, s.region, s.day), "spike inside blackout");
            assert!(s.delta_f.abs() >= SPIKE_MIN_F);
        }
        // Windows land on distinct regions within a DC.
        for (i, a) in plan.blackouts.iter().enumerate() {
            for b in &plan.blackouts[i + 1..] {
                assert!(a.dc != b.dc || a.region != b.region);
            }
        }
    }

    #[test]
    fn empty_span_yields_empty_plan() {
        let cfg = CorruptionConfig::dirty_default();
        let mut rng = StdRng::seed_from_u64(1);
        let plan = plan_sensor_faults(&cfg, &[(DcId(1), 4)], 10, 10, &mut rng);
        assert!(plan.is_empty());
    }
}
