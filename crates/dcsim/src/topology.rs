//! Fleet construction: datacenters, rows, racks, placement.
//!
//! The placement policy deliberately embeds the **confounding** the paper's
//! multi-factor analysis must untangle (Section V-A's SKU-selection
//! cautionary tale): in DC1 — the hot, adiabatically cooled site — the
//! compute SKU S2 is concentrated in the hottest regions and hosts the most
//! aggressive workload (W2), while S4 lives mostly in the tightly
//! climate-controlled DC2 with gentle workloads. A single-factor view of
//! S2 vs S4 therefore sees far more than their intrinsic 4:1 reliability
//! gap.

use rainshine_telemetry::ids::{
    DcId, RackId, RegionId, RowId, ServerId, ServerLocation, Sku, Workload,
};
use rainshine_telemetry::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::climate::unit_noise;
use crate::config::FleetConfig;
use crate::cooling::CoolingSystem;
use crate::sku::{self, SkuSpec};

/// Average days per month used for age bookkeeping.
pub const DAYS_PER_MONTH: f64 = 30.44;

/// Static description of one datacenter (the paper's Table I).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Datacenter {
    /// Identifier.
    pub id: DcId,
    /// Packaging: containers vs colocation.
    pub packaging: &'static str,
    /// Power-availability design (nines).
    pub availability_nines: u8,
    /// Cooling technology.
    pub cooling: CoolingSystem,
    /// Number of regions.
    pub regions: u8,
    /// Number of rack rows.
    pub rows: u16,
}

/// One rack: the paper's provisioning granularity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RackInfo {
    /// Fleet-unique rack id.
    pub id: RackId,
    /// Datacenter.
    pub dc: DcId,
    /// Region within the DC.
    pub region: RegionId,
    /// Row within the DC.
    pub row: RowId,
    /// Hardware configuration.
    pub sku: Sku,
    /// Workload hosted on the entire rack.
    pub workload: Workload,
    /// Rated power, kW.
    pub power_kw: f64,
    /// Commission day relative to the 2012-01-01 epoch (negative = already
    /// in service at epoch).
    pub commissioned_day: i64,
    /// Servers in the rack (from the SKU spec).
    pub servers: u32,
    /// First global server id; the rack owns `[base, base + servers)`.
    pub server_id_base: u32,
    /// Per-rack latent hazard multiplier (manufacturing lot, installation
    /// quality). Log-normal around 1.
    pub frailty: f64,
}

impl RackInfo {
    /// Equipment age in months at `t` (0 before commissioning).
    pub fn age_months(&self, t: SimTime) -> f64 {
        let days = t.days() as i64 - self.commissioned_day;
        (days as f64 / DAYS_PER_MONTH).max(0.0)
    }

    /// Whether the rack is in service at `t`.
    pub fn is_active(&self, t: SimTime) -> bool {
        t.days() as i64 >= self.commissioned_day
    }

    /// Full location of the rack's `server_index`-th server.
    ///
    /// # Panics
    ///
    /// Panics if `server_index >= self.servers`.
    pub fn server_location(&self, server_index: u32) -> ServerLocation {
        assert!(server_index < self.servers, "server index out of range");
        ServerLocation {
            dc: self.dc,
            region: self.region,
            row: self.row,
            rack: self.id,
            server: ServerId(self.server_id_base + server_index),
        }
    }

    /// The rack's SKU spec.
    pub fn sku_spec(&self) -> SkuSpec {
        sku::spec_of(self.sku)
    }
}

/// The whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Fleet {
    /// The two datacenters.
    pub datacenters: Vec<Datacenter>,
    /// All racks across both DCs.
    pub racks: Vec<RackInfo>,
}

/// SKU mix entry: `(sku, share, workload options with weights)`.
type MixEntry = (Sku, f64, &'static [(Workload, f64)]);

/// DC1 placement mix: S2-dominated compute hosting aggressive workloads.
const DC1_MIX: &[MixEntry] = &[
    (Sku::S2, 0.50, &[(Workload::W2, 0.55), (Workload::W1, 0.30), (Workload::W4, 0.15)]),
    (Sku::S4, 0.05, &[(Workload::W1, 0.60), (Workload::W2, 0.40)]),
    (Sku::S1, 0.15, &[(Workload::W6, 0.60), (Workload::W5, 0.40)]),
    (Sku::S3, 0.10, &[(Workload::W5, 0.50), (Workload::W6, 0.50)]),
    (Sku::S5, 0.10, &[(Workload::W4, 0.50), (Workload::W7, 0.50)]),
    (Sku::S7, 0.10, &[(Workload::W3, 1.00)]),
];

/// DC2 placement mix: S4-dominated compute with gentle workloads.
const DC2_MIX: &[MixEntry] = &[
    (Sku::S4, 0.35, &[(Workload::W1, 0.50), (Workload::W3, 0.30), (Workload::W2, 0.20)]),
    (Sku::S2, 0.10, &[(Workload::W1, 0.70), (Workload::W4, 0.30)]),
    (Sku::S1, 0.20, &[(Workload::W6, 0.70), (Workload::W5, 0.30)]),
    (Sku::S3, 0.15, &[(Workload::W5, 0.60), (Workload::W6, 0.40)]),
    (Sku::S6, 0.15, &[(Workload::W7, 0.60), (Workload::W4, 0.40)]),
    (Sku::S5, 0.05, &[(Workload::W4, 0.50), (Workload::W7, 0.50)]),
];

/// Region-preference weights for rack placement in DC1: compute SKUs are
/// biased toward the hotter regions (1 and 4), storage toward the cooler
/// ones — part of the planted confounding.
fn dc1_region_weights(sku: Sku) -> [f64; 4] {
    use rainshine_telemetry::ids::SkuClass;
    match sku.class() {
        SkuClass::ComputeIntensive => [0.30, 0.10, 0.10, 0.50],
        SkuClass::StorageIntensive => [0.10, 0.40, 0.40, 0.10],
        _ => [0.25, 0.25, 0.25, 0.25],
    }
}

fn weighted_pick<T: Copy>(options: &[(T, f64)], u: f64) -> T {
    let total: f64 = options.iter().map(|(_, w)| w).sum();
    let mut acc = 0.0;
    for &(v, w) in options {
        acc += w / total;
        if u < acc {
            return v;
        }
    }
    options.last().expect("non-empty options").0
}

/// Approximate standard-normal deviate from four uniform noise draws
/// (Irwin–Hall).
fn pseudo_normal(seed: u64, index: u64) -> f64 {
    let s: f64 = (0..4).map(|k| unit_noise(seed ^ (k << 56), index)).sum();
    (s - 2.0) * (3.0f64).sqrt()
}

impl Fleet {
    /// Builds the fleet for `config`. Deterministic in
    /// `config.layout_seed`.
    pub fn build(config: &FleetConfig) -> Fleet {
        let datacenters = vec![
            Datacenter {
                id: DcId(1),
                packaging: "Container",
                availability_nines: 3,
                cooling: CoolingSystem::Adiabatic,
                regions: 4,
                rows: 18,
            },
            Datacenter {
                id: DcId(2),
                packaging: "Colocated",
                availability_nines: 5,
                cooling: CoolingSystem::ChilledWater,
                regions: 3,
                rows: 32,
            },
        ];
        let mut racks = Vec::with_capacity(config.dc1_racks + config.dc2_racks);
        let mut next_rack: u32 = 1;
        let mut next_server: u32 = 1;
        let span_days = config.span_days() as i64;
        for (dc, count, mix) in [
            (&datacenters[0], config.dc1_racks, DC1_MIX),
            (&datacenters[1], config.dc2_racks, DC2_MIX),
        ] {
            for i in 0..count {
                let idx = next_rack as u64;
                let seed = config.layout_seed ^ (dc.id.0 as u64) << 48;
                // SKU by quota: walk the mix deterministically so shares are
                // exact; workload / power / region / age by hash.
                let frac = i as f64 / count as f64;
                let (sku_choice, wl_options) = pick_by_quota(mix, frac);
                let spec = sku::spec_of(sku_choice);
                let workload = weighted_pick(wl_options, unit_noise(seed ^ 0xA0, idx));
                let power_kw = spec.power_options_kw[(unit_noise(seed ^ 0xB0, idx)
                    * spec.power_options_kw.len() as f64)
                    as usize
                    % spec.power_options_kw.len()];
                let region = if dc.id == DcId(1) {
                    let w = dc1_region_weights(sku_choice);
                    let opts: Vec<(u8, f64)> = (1..=4u8).zip(w.iter().copied()).collect();
                    weighted_pick(&opts, unit_noise(seed ^ 0xC0, idx))
                } else {
                    1 + ((unit_noise(seed ^ 0xC0, idx) * dc.regions as f64) as u8) % dc.regions
                };
                let row = 1 + ((unit_noise(seed ^ 0xE0, idx) * dc.rows as f64) as u16) % dc.rows;
                // 60 % of racks pre-date the window (ages 0–36 months at
                // epoch); 40 % are commissioned during the first 60 % of it.
                let u_age = unit_noise(seed ^ 0xF0, idx);
                let commissioned_day = if u_age < 0.6 {
                    -(((u_age / 0.6) * 36.0 * DAYS_PER_MONTH) as i64)
                } else {
                    (((u_age - 0.6) / 0.4) * 0.6 * span_days as f64) as i64
                };
                let frailty = (0.28 * pseudo_normal(seed ^ 0xAB, idx)).exp();
                racks.push(RackInfo {
                    id: RackId(next_rack),
                    dc: dc.id,
                    region: RegionId(region),
                    row: RowId(row),
                    sku: sku_choice,
                    workload,
                    power_kw,
                    commissioned_day,
                    servers: spec.servers_per_rack,
                    server_id_base: next_server,
                    frailty,
                });
                next_server += spec.servers_per_rack;
                next_rack += 1;
            }
        }
        Fleet { datacenters, racks }
    }

    /// Racks in one datacenter.
    pub fn racks_in(&self, dc: DcId) -> impl Iterator<Item = &RackInfo> {
        self.racks.iter().filter(move |r| r.dc == dc)
    }

    /// Racks hosting one workload.
    pub fn racks_hosting(&self, workload: Workload) -> impl Iterator<Item = &RackInfo> {
        self.racks.iter().filter(move |r| r.workload == workload)
    }

    /// Total servers across the fleet.
    pub fn total_servers(&self) -> u64 {
        self.racks.iter().map(|r| r.servers as u64).sum()
    }

    /// Looks up a rack by id.
    pub fn rack(&self, id: RackId) -> Option<&RackInfo> {
        self.racks.iter().find(|r| r.id == id)
    }

    /// The fleet inventory the ingestion layer checks ticket locations
    /// against (rack ids are globally unique, so a rack record pins down
    /// every spatial field).
    pub fn manifest(&self) -> rainshine_telemetry::quality::FleetManifest {
        let mut manifest = rainshine_telemetry::quality::FleetManifest::new();
        for r in &self.racks {
            manifest.insert(
                r.id,
                rainshine_telemetry::quality::RackRecord {
                    dc: r.dc,
                    region: r.region,
                    row: r.row,
                    server_id_base: r.server_id_base,
                    servers: r.servers,
                },
            );
        }
        manifest
    }
}

/// Deterministic quota-based SKU pick: rack `frac` ∈ [0,1) of its DC walks
/// the cumulative mix shares.
fn pick_by_quota(mix: &[MixEntry], frac: f64) -> (Sku, &'static [(Workload, f64)]) {
    let mut acc = 0.0;
    for &(sku, share, wl) in mix {
        acc += share;
        if frac < acc {
            return (sku, wl);
        }
    }
    let last = mix.last().expect("non-empty mix");
    (last.0, last.2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn fleet() -> Fleet {
        Fleet::build(&FleetConfig::paper_scale())
    }

    #[test]
    fn build_is_deterministic() {
        let a = fleet();
        let b = fleet();
        assert_eq!(a, b);
    }

    #[test]
    fn rack_counts_match_config() {
        let f = fleet();
        assert_eq!(f.racks_in(DcId(1)).count(), 331);
        assert_eq!(f.racks_in(DcId(2)).count(), 290);
        assert_eq!(f.racks.len(), 621);
    }

    #[test]
    fn table_i_properties() {
        let f = fleet();
        let dc1 = &f.datacenters[0];
        let dc2 = &f.datacenters[1];
        assert_eq!(dc1.packaging, "Container");
        assert_eq!(dc1.availability_nines, 3);
        assert_eq!(dc1.cooling, CoolingSystem::Adiabatic);
        assert_eq!(dc2.packaging, "Colocated");
        assert_eq!(dc2.availability_nines, 5);
        assert_eq!(dc2.cooling, CoolingSystem::ChilledWater);
    }

    #[test]
    fn sku_shares_approximate_mix() {
        let f = fleet();
        let mut counts: BTreeMap<Sku, usize> = BTreeMap::new();
        for r in f.racks_in(DcId(1)) {
            *counts.entry(r.sku).or_insert(0) += 1;
        }
        let s2_share = counts[&Sku::S2] as f64 / 331.0;
        assert!((s2_share - 0.50).abs() < 0.02, "S2 share {s2_share}");
    }

    #[test]
    fn confounding_s2_in_hot_regions() {
        let f = fleet();
        let s2_hot = f
            .racks_in(DcId(1))
            .filter(|r| r.sku == Sku::S2)
            .filter(|r| r.region == RegionId(1) || r.region == RegionId(4))
            .count();
        let s2_total = f.racks_in(DcId(1)).filter(|r| r.sku == Sku::S2).count();
        assert!(s2_hot as f64 / s2_total as f64 > 0.6, "S2 hot-region share {}/{s2_total}", s2_hot);
    }

    #[test]
    fn server_id_ranges_are_disjoint() {
        let f = fleet();
        let mut prev_end = 0u32;
        for r in &f.racks {
            assert!(r.server_id_base > prev_end || prev_end == 0);
            assert_eq!(r.server_id_base, prev_end + 1);
            prev_end = r.server_id_base + r.servers - 1;
        }
        assert_eq!(f.total_servers(), prev_end as u64);
    }

    #[test]
    fn ages_and_activity() {
        let f = fleet();
        let epoch = SimTime::EPOCH;
        let mut pre = 0;
        let mut post = 0;
        for r in &f.racks {
            if r.commissioned_day <= 0 {
                pre += 1;
                assert!(r.is_active(epoch));
                assert!(r.age_months(epoch) <= 37.0);
            } else {
                post += 1;
                assert!(!r.is_active(epoch));
                assert_eq!(r.age_months(epoch), 0.0);
            }
        }
        let pre_share = pre as f64 / (pre + post) as f64;
        assert!((0.5..0.7).contains(&pre_share), "pre-epoch share {pre_share}");
    }

    #[test]
    fn frailty_is_centered_near_one() {
        let f = fleet();
        let mean: f64 = f.racks.iter().map(|r| r.frailty).sum::<f64>() / f.racks.len() as f64;
        assert!((mean - 1.0).abs() < 0.15, "frailty mean {mean}");
        assert!(f.racks.iter().all(|r| r.frailty > 0.2 && r.frailty < 5.0));
    }

    #[test]
    fn server_location_panics_out_of_range() {
        let f = fleet();
        let r = &f.racks[0];
        let loc = r.server_location(0);
        assert_eq!(loc.rack, r.id);
        let result = std::panic::catch_unwind(|| r.server_location(r.servers));
        assert!(result.is_err());
    }

    #[test]
    fn workloads_respect_mix_options() {
        let f = fleet();
        for r in f.racks_in(DcId(1)).filter(|r| r.sku == Sku::S7) {
            assert_eq!(r.workload, Workload::W3);
        }
        // W6 racks exist in both DCs on storage SKUs (needed for Q1).
        assert!(f.racks_hosting(Workload::W6).any(|r| r.dc == DcId(1)));
        assert!(f.racks_hosting(Workload::W6).any(|r| r.dc == DcId(2)));
        assert!(f.racks_hosting(Workload::W1).any(|r| r.dc == DcId(1)));
        assert!(f.racks_hosting(Workload::W1).any(|r| r.dc == DcId(2)));
    }
}
