//! RMA ticket generation.
//!
//! Hardware tickets are sampled from the multi-factor hazard model
//! ([`crate::hazard`]) via per-rack-day Poisson draws (a thinned
//! non-homogeneous Poisson process at daily resolution, with failures
//! placed at a uniform hour within the day). Software, boot, and "other"
//! tickets — which the paper reports in Table II but does not analyze
//! further — are generated to match Table II's per-DC category shares
//! exactly in expectation, anchored to the realized hardware count.
//! False positives are injected last and flagged, mirroring the paper's
//! "we use only the true positives".

use rainshine_parallel::{derive_seed, par_map_range, Parallelism};
use rainshine_stats::dist::{
    Bernoulli, Categorical, ContinuousDistribution, DiscreteDistribution, LogNormal, Poisson,
};
use rainshine_telemetry::ids::{DcId, DeviceId};
use rainshine_telemetry::rma::{BootFault, FaultKind, HardwareFault, RmaTicket, SoftwareFault};
use rainshine_telemetry::time::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::FleetConfig;
use crate::environment::EnvModel;
use crate::hazard::ComponentClass;
use crate::topology::{Fleet, RackInfo};

/// Stream tags for [`derive_seed`]: each generation stage draws from its
/// own family of per-item RNG streams, so stages never consume each
/// other's randomness and any stage can run its items in parallel.
pub(crate) const STREAM_HARDWARE: u64 = 1;
pub(crate) const STREAM_BURSTS: u64 = 2;
pub(crate) const STREAM_NON_HARDWARE: u64 = 3;
pub(crate) const STREAM_FALSE_POSITIVES: u64 = 4;

/// Table II's per-DC ticket-category shares (percent).
pub fn table_ii_shares(dc: DcId) -> Vec<(FaultKind, f64)> {
    use BootFault::*;
    use FaultKind::*;
    use HardwareFault::*;
    use SoftwareFault::*;
    match dc.0 {
        1 => vec![
            (Software(Timeout), 31.27),
            (Software(Deployment), 13.95),
            (Software(Crash), 2.89),
            (Boot(Pxe), 10.53),
            (Boot(Reboot), 1.25),
            (Hardware(Disk), 18.42),
            (Hardware(Memory), 5.29),
            (Hardware(Power), 1.59),
            (Hardware(Server), 2.84),
            (Hardware(Network), 2.52),
            (Other, 9.41),
        ],
        _ => vec![
            (Software(Timeout), 38.84),
            (Software(Deployment), 14.56),
            (Software(Crash), 3.05),
            (Boot(Pxe), 13.81),
            (Boot(Reboot), 0.19),
            (Hardware(Disk), 11.23),
            (Hardware(Memory), 1.85),
            (Hardware(Power), 3.83),
            (Hardware(Server), 1.21),
            (Hardware(Network), 0.65),
            (Other, 10.77),
        ],
    }
}

fn hardware_fault_of(class: ComponentClass) -> HardwareFault {
    match class {
        ComponentClass::Disk => HardwareFault::Disk,
        ComponentClass::Dimm => HardwareFault::Memory,
        ComponentClass::Power => HardwareFault::Power,
        ComponentClass::ServerOther => HardwareFault::Server,
        ComponentClass::Network => HardwareFault::Network,
    }
}

/// Median / spread (see [`LogNormal::from_median_spread`]) of
/// time-to-resolution in hours per fault kind.
fn repair_profile(fault: FaultKind) -> (f64, f64) {
    match fault {
        FaultKind::Hardware(HardwareFault::Disk) => (8.0, 2.0),
        FaultKind::Hardware(HardwareFault::Memory) => (12.0, 2.0),
        FaultKind::Hardware(HardwareFault::Power) => (24.0, 2.2),
        FaultKind::Hardware(HardwareFault::Server) => (36.0, 2.2),
        FaultKind::Hardware(HardwareFault::Network) => (12.0, 2.0),
        FaultKind::Software(_) => (3.0, 2.5),
        FaultKind::Boot(_) => (4.0, 2.5),
        FaultKind::Other => (6.0, 2.5),
    }
}

/// Longest permitted outage (hours); extreme log-normal draws are clamped.
const MAX_REPAIR_HOURS: f64 = 21.0 * 24.0;

fn sample_repair<R: Rng + ?Sized>(fault: FaultKind, rng: &mut R) -> u64 {
    let (median, spread) = repair_profile(fault);
    let dist = LogNormal::from_median_spread(median, spread).expect("static profile is valid");
    dist.sample(rng).clamp(1.0, MAX_REPAIR_HOURS) as u64
}

/// Encodes a stable device id: server id in the low 32 bits, component
/// class in bits 32–39, unit index in bits 40–55.
pub fn device_id(server: u32, class: ComponentClass, unit: u32) -> DeviceId {
    let class_code = match class {
        ComponentClass::Disk => 1u64,
        ComponentClass::Dimm => 2,
        ComponentClass::Power => 3,
        ComponentClass::ServerOther => 4,
        ComponentClass::Network => 5,
    };
    DeviceId(server as u64 | (class_code << 32) | ((unit as u64) << 40))
}

fn make_hardware_ticket<R: Rng + ?Sized>(
    rack: &RackInfo,
    class: ComponentClass,
    day: u64,
    rng: &mut R,
    end: SimTime,
) -> RmaTicket {
    let server_index = rng.gen_range(0..rack.servers);
    let location = rack.server_location(server_index);
    let units = rack.sku_spec();
    let unit_count = match class {
        ComponentClass::Disk => units.disks_per_server,
        ComponentClass::Dimm => units.dimms_per_server,
        _ => 1,
    };
    let unit = rng.gen_range(0..unit_count.max(1));
    let fault = FaultKind::Hardware(hardware_fault_of(class));
    let opened = SimTime::from_days(day).plus_hours(rng.gen_range(0..24));
    let repair = sample_repair(fault, rng);
    let resolved =
        SimTime(opened.hours().saturating_add(repair).min(end.hours()).max(opened.hours() + 1));
    let repeat = Bernoulli::new(0.1).expect("valid p");
    RmaTicket {
        device: device_id(location.server.0, class, unit),
        location,
        fault,
        opened,
        resolved,
        repeat_count: if repeat.sample(rng) { rng.gen_range(1..=3) } else { 0 },
        false_positive: false,
    }
}

/// Hardware tickets for one rack over the whole observation span.
fn hardware_for_rack<R: Rng + ?Sized>(
    rack: &RackInfo,
    config: &FleetConfig,
    env: &EnvModel,
    rng: &mut R,
) -> Vec<RmaTicket> {
    let start_day = config.start.days();
    let end_day = config.end.days();
    let mut out = Vec::new();
    for day in start_day..end_day {
        let day_start = SimTime::from_days(day);
        if !rack.is_active(day_start) {
            continue;
        }
        let conditions = env.daily_mean(rack.dc, rack.region, day);
        for class in ComponentClass::ALL {
            let rate = config.hazard.rack_day_rate(rack, class, conditions, day_start);
            if rate <= 0.0 {
                continue;
            }
            let n = Poisson::new(rate).expect("rate is positive finite").sample(rng);
            for _ in 0..n {
                out.push(make_hardware_ticket(rack, class, day, rng, config.end));
            }
        }
    }
    out
}

/// Generates hardware tickets for the whole observation span from one
/// shared RNG stream (racks processed in order).
pub fn generate_hardware<R: Rng + ?Sized>(
    fleet: &Fleet,
    config: &FleetConfig,
    env: &EnvModel,
    rng: &mut R,
) -> Vec<RmaTicket> {
    let mut out = Vec::new();
    for rack in &fleet.racks {
        out.extend(hardware_for_rack(rack, config, env, rng));
    }
    out
}

/// Generates hardware tickets with one seed-derived RNG stream per rack,
/// so racks evaluate in parallel; results merge in rack order, making
/// the stream a pure function of `seed` regardless of thread count.
pub fn generate_hardware_par(
    fleet: &Fleet,
    config: &FleetConfig,
    env: &EnvModel,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<RmaTicket> {
    let per_rack = par_map_range(parallelism, fleet.racks.len(), |rack_index| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, STREAM_HARDWARE, rack_index as u64));
        hardware_for_rack(&fleet.racks[rack_index], config, env, &mut rng)
    });
    per_rack.into_iter().flatten().collect()
}

/// Generates correlated failure bursts: rare rack-level events (PDU trips,
/// bad-batch storms) that take several servers of one rack down
/// *simultaneously*. These produce the heavy upper tail of μ that drives
/// 100 %-SLA spare provisioning (Figs. 10–12).
pub fn generate_bursts<R: Rng + ?Sized>(
    fleet: &Fleet,
    config: &FleetConfig,
    rng: &mut R,
) -> Vec<RmaTicket> {
    let mut out = Vec::new();
    for rack in &fleet.racks {
        out.extend(bursts_for_rack(rack, config, rng));
    }
    out
}

/// Generates burst tickets with one seed-derived RNG stream per rack;
/// deterministic at any thread count (see [`generate_hardware_par`]).
pub fn generate_bursts_par(
    fleet: &Fleet,
    config: &FleetConfig,
    seed: u64,
    parallelism: Parallelism,
) -> Vec<RmaTicket> {
    let per_rack = par_map_range(parallelism, fleet.racks.len(), |rack_index| {
        let mut rng = StdRng::seed_from_u64(derive_seed(seed, STREAM_BURSTS, rack_index as u64));
        bursts_for_rack(&fleet.racks[rack_index], config, &mut rng)
    });
    per_rack.into_iter().flatten().collect()
}

/// Burst tickets for one rack over the whole observation span.
fn bursts_for_rack<R: Rng + ?Sized>(
    rack: &RackInfo,
    config: &FleetConfig,
    rng: &mut R,
) -> Vec<RmaTicket> {
    use rand::seq::SliceRandom;
    let start_day = config.start.days();
    let end_day = config.end.days();
    let mut out = Vec::new();
    for day in start_day..end_day {
        let day_start = SimTime::from_days(day);
        let rate = config.hazard.burst_rate(rack, day_start);
        if rate <= 0.0 || rng.gen::<f64>() >= rate {
            continue;
        }
        let affected = config.hazard.burst_size(rack, rng.gen::<f64>());
        let mut servers: Vec<u32> = (0..rack.servers).collect();
        servers.shuffle(rng);
        let open = day_start.plus_hours(rng.gen_range(0..24));
        let duration = LogNormal::from_median_spread(8.0, 2.0)
            .expect("static profile is valid")
            .sample(rng)
            .clamp(1.0, MAX_REPAIR_HOURS) as u64;
        // Attribution by chassis type: dense-disk racks see disk storms
        // (vibration / backplane / firmware), compute racks see
        // bad-DIMM-batch storms — both coverable by *component* spares,
        // which is what makes component-level provisioning pay off
        // (Fig. 13).
        let disk_storm = rack.sku_spec().disks_per_server >= 8;
        for &server_index in servers.iter().take(affected as usize) {
            let location = rack.server_location(server_index);
            let (fault, class) = if disk_storm {
                (FaultKind::Hardware(HardwareFault::Disk), ComponentClass::Disk)
            } else {
                (FaultKind::Hardware(HardwareFault::Memory), ComponentClass::Dimm)
            };
            let jitter = rng.gen_range(0..3u64);
            let resolved = SimTime(
                (open.hours() + duration + jitter).min(config.end.hours()).max(open.hours() + 1),
            );
            out.push(RmaTicket {
                device: device_id(location.server.0, class, 0),
                location,
                fault,
                opened: open,
                resolved,
                repeat_count: 0,
                false_positive: false,
            });
        }
    }
    out
}

/// Generates software / boot / other tickets so that the overall per-DC
/// category mix matches Table II in expectation, anchored to the realized
/// hardware ticket count of each DC.
pub fn generate_non_hardware<R: Rng + ?Sized>(
    fleet: &Fleet,
    config: &FleetConfig,
    hardware: &[RmaTicket],
    rng: &mut R,
) -> Vec<RmaTicket> {
    let mut out = Vec::new();
    for dc in [DcId(1), DcId(2)] {
        out.extend(non_hardware_for_dc(fleet, config, hardware, dc, rng));
    }
    out
}

/// Generates non-hardware tickets with one seed-derived RNG stream per
/// DC; deterministic at any thread count (see [`generate_hardware_par`]).
pub fn generate_non_hardware_par(
    fleet: &Fleet,
    config: &FleetConfig,
    hardware: &[RmaTicket],
    seed: u64,
    parallelism: Parallelism,
) -> Vec<RmaTicket> {
    let dcs = [DcId(1), DcId(2)];
    let per_dc = par_map_range(parallelism, dcs.len(), |dc_index| {
        let mut rng =
            StdRng::seed_from_u64(derive_seed(seed, STREAM_NON_HARDWARE, dc_index as u64));
        non_hardware_for_dc(fleet, config, hardware, dcs[dc_index], &mut rng)
    });
    per_dc.into_iter().flatten().collect()
}

/// Non-hardware tickets for one DC, volume-anchored to its realized
/// hardware count.
fn non_hardware_for_dc<R: Rng + ?Sized>(
    fleet: &Fleet,
    config: &FleetConfig,
    hardware: &[RmaTicket],
    dc: DcId,
    rng: &mut R,
) -> Vec<RmaTicket> {
    let start_day = config.start.days();
    let end_day = config.end.days();
    let mut out = Vec::new();
    let hw_count = hardware.iter().filter(|t| t.location.dc == dc).count() as f64;
    if hw_count == 0.0 {
        return out;
    }
    let shares = table_ii_shares(dc);
    let hw_share: f64 = shares.iter().filter(|(k, _)| k.is_hardware()).map(|(_, s)| s).sum();
    // Racks sorted by commission day let us sample "a rack active on
    // day d" in O(log n).
    let mut racks: Vec<&RackInfo> = fleet.racks_in(dc).collect();
    racks.sort_by_key(|r| r.commissioned_day);
    // Day weights: active racks that day, weekday-boosted.
    let day_weights: Vec<f64> = (start_day..end_day)
        .map(|day| {
            let t = SimTime::from_days(day);
            let active = racks.partition_point(|r| r.commissioned_day <= day as i64) as f64;
            let dow = if t.day_of_week().is_weekday() { 1.25 } else { 0.85 };
            active * dow
        })
        .collect();
    if day_weights.iter().sum::<f64>() <= 0.0 {
        return out;
    }
    let day_dist = Categorical::new(&day_weights).expect("positive weights");
    for (fault, share) in shares.into_iter().filter(|(k, _)| !k.is_hardware()) {
        let expected = hw_count * share / hw_share;
        let count = expected.floor() as u64
            + u64::from(Bernoulli::new(expected.fract()).expect("fraction in [0,1]").sample(rng));
        for _ in 0..count {
            let day = start_day + day_dist.sample(rng) as u64;
            let active = racks.partition_point(|r| r.commissioned_day <= day as i64);
            if active == 0 {
                continue;
            }
            let rack = racks[rng.gen_range(0..active)];
            let server_index = rng.gen_range(0..rack.servers);
            let location = rack.server_location(server_index);
            let opened = SimTime::from_days(day).plus_hours(rng.gen_range(0..24));
            let repair = sample_repair(fault, rng);
            let resolved = SimTime(
                opened
                    .hours()
                    .saturating_add(repair)
                    .min(config.end.hours())
                    .max(opened.hours() + 1),
            );
            out.push(RmaTicket {
                device: device_id(location.server.0, ComponentClass::ServerOther, 0),
                location,
                fault,
                opened,
                resolved,
                repeat_count: 0,
                false_positive: false,
            });
        }
    }
    out
}

/// Injects false positives: clones of randomly chosen true tickets with a
/// jittered open time and the `false_positive` flag set, at a volume of
/// `rate / (1 − rate)` of the true tickets (so FPs are `rate` of the final
/// stream).
pub fn inject_false_positives<R: Rng + ?Sized>(
    tickets: &[RmaTicket],
    rate: f64,
    end: SimTime,
    rng: &mut R,
) -> Vec<RmaTicket> {
    if tickets.is_empty() || rate <= 0.0 {
        return Vec::new();
    }
    let count = (tickets.len() as f64 * rate / (1.0 - rate)).round() as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let template = &tickets[rng.gen_range(0..tickets.len())];
        let mut fp = template.clone();
        fp.false_positive = true;
        let jitter_days = rng.gen_range(0..14) as u64;
        fp.opened = SimTime((template.opened.hours() + jitter_days * 24).min(end.hours() - 1));
        // FPs close quickly: the engineer finds nothing.
        fp.resolved = SimTime((fp.opened.hours() + rng.gen_range(1..6u64)).min(end.hours()));
        fp.repeat_count = 0;
        out.push(fp);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Fleet, FleetConfig, EnvModel) {
        let config = FleetConfig::small();
        let fleet = Fleet::build(&config);
        let env = EnvModel::paper_layout(7);
        (fleet, config, env)
    }

    #[test]
    fn table_ii_shares_sum_to_100() {
        for dc in [DcId(1), DcId(2)] {
            let total: f64 = table_ii_shares(dc).iter().map(|(_, s)| s).sum();
            assert!((total - 100.0).abs() < 0.05, "{dc}: {total}");
        }
    }

    #[test]
    fn hardware_tickets_are_valid_and_in_span() {
        let (fleet, config, env) = setup();
        let mut rng = StdRng::seed_from_u64(1);
        let tickets = generate_hardware(&fleet, &config, &env, &mut rng);
        assert!(!tickets.is_empty());
        for t in &tickets {
            assert!(t.validate().is_ok());
            assert!(t.opened >= config.start && t.opened < config.end);
            assert!(t.resolved <= config.end);
            assert!(t.fault.is_hardware());
            assert!(!t.false_positive);
        }
    }

    #[test]
    fn hardware_tickets_only_on_active_racks() {
        let (fleet, config, env) = setup();
        let mut rng = StdRng::seed_from_u64(2);
        let tickets = generate_hardware(&fleet, &config, &env, &mut rng);
        for t in &tickets {
            let rack = fleet.rack(t.location.rack).expect("known rack");
            assert!(rack.is_active(t.opened), "ticket before commissioning");
        }
    }

    #[test]
    fn non_hardware_mix_tracks_table_ii() {
        let (fleet, config, env) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let hw = generate_hardware(&fleet, &config, &env, &mut rng);
        let sw = generate_non_hardware(&fleet, &config, &hw, &mut rng);
        assert!(!sw.is_empty());
        // Software should dominate: 45-57% of all per Table II.
        let all = hw.len() + sw.len();
        let software = sw.iter().filter(|t| matches!(t.fault, FaultKind::Software(_))).count();
        let share = software as f64 / all as f64;
        assert!((0.40..0.62).contains(&share), "software share {share}");
        for t in &sw {
            assert!(!t.fault.is_hardware());
            assert!(t.validate().is_ok());
        }
    }

    #[test]
    fn false_positive_volume_matches_rate() {
        let (fleet, config, env) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        let hw = generate_hardware(&fleet, &config, &env, &mut rng);
        let fps = inject_false_positives(&hw, 0.08, config.end, &mut rng);
        let expected = hw.len() as f64 * 0.08 / 0.92;
        assert!((fps.len() as f64 - expected).abs() <= 1.0);
        assert!(fps.iter().all(|t| t.false_positive));
        assert!(fps.iter().all(|t| t.validate().is_ok()));
    }

    #[test]
    fn zero_rate_no_false_positives() {
        let (fleet, config, env) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let hw = generate_hardware(&fleet, &config, &env, &mut rng);
        assert!(inject_false_positives(&hw, 0.0, config.end, &mut rng).is_empty());
        assert!(inject_false_positives(&[], 0.1, config.end, &mut rng).is_empty());
    }

    #[test]
    fn device_ids_distinguish_components() {
        let a = device_id(5, ComponentClass::Disk, 0);
        let b = device_id(5, ComponentClass::Dimm, 0);
        let c = device_id(5, ComponentClass::Disk, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn bursts_hit_one_rack_with_distinct_servers() {
        use std::collections::{BTreeMap, BTreeSet};
        let config = FleetConfig::medium();
        let fleet = Fleet::build(&config);
        let mut rng = StdRng::seed_from_u64(8);
        let bursts = generate_bursts(&fleet, &config, &mut rng);
        assert!(!bursts.is_empty(), "medium fleet over a year should see bursts");
        // Group by (rack, opened): each burst's tickets share one rack and
        // hit distinct servers.
        let mut groups: BTreeMap<(u32, u64), BTreeSet<u32>> = BTreeMap::new();
        for t in &bursts {
            assert!(t.validate().is_ok());
            assert!(t.fault.is_hardware());
            let servers = groups.entry((t.location.rack.0, t.opened.hours())).or_default();
            assert!(servers.insert(t.location.server.0), "burst hit the same server twice");
        }
        // At least one burst takes down several servers at once.
        assert!(groups.values().any(|s| s.len() >= 3));
    }

    #[test]
    fn burst_attribution_matches_chassis() {
        let config = FleetConfig::medium();
        let fleet = Fleet::build(&config);
        let mut rng = StdRng::seed_from_u64(8);
        let bursts = generate_bursts(&fleet, &config, &mut rng);
        for t in &bursts {
            let rack = fleet.rack(t.location.rack).expect("known rack");
            if rack.sku_spec().disks_per_server >= 8 {
                assert_eq!(t.fault, FaultKind::Hardware(HardwareFault::Disk));
            } else {
                assert_eq!(t.fault, FaultKind::Hardware(HardwareFault::Memory));
            }
        }
    }

    #[test]
    fn repair_times_clamped() {
        let (fleet, config, env) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let tickets = generate_hardware(&fleet, &config, &env, &mut rng);
        for t in &tickets {
            assert!(t.outage_hours() >= 1 || t.resolved == config.end);
            assert!(t.outage_hours() <= MAX_REPAIR_HOURS as u64);
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let (fleet, config, env) = setup();
        let t1 = generate_hardware(&fleet, &config, &env, &mut StdRng::seed_from_u64(42));
        let t2 = generate_hardware(&fleet, &config, &env, &mut StdRng::seed_from_u64(42));
        assert_eq!(t1, t2);
        let t3 = generate_hardware(&fleet, &config, &env, &mut StdRng::seed_from_u64(43));
        assert_ne!(t1, t3);
    }
}
