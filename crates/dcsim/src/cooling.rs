//! Cooling-system transfer functions: outdoor weather → rack-inlet
//! conditions.
//!
//! The two DCs differ exactly as in the paper's Table I:
//!
//! * **Adiabatic** (DC1) — outside-air economization with evaporative
//!   assist. Mild weather passes through (inlet tracks outdoor temperature);
//!   warm-but-not-extreme afternoons run in *dry* mode, producing the hot
//!   (> 78 °F) **and** dry (< 25 % RH) inlet corner the paper's Fig. 18
//!   flags; extreme heat engages the evaporative media, which caps the
//!   temperature but humidifies the air. Energy-efficient, weather-exposed.
//! * **Chilled water** (DC2) — a conventional HVAC loop holding a tight
//!   setpoint regardless of weather, so inlet T/RH barely move (and Q3 finds
//!   no environmental effect there).

use serde::{Deserialize, Serialize};

use crate::climate::{signed_noise, Weather};

/// Rack-inlet environmental conditions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InletConditions {
    /// Inlet dry-bulb temperature, °F.
    pub temp_f: f64,
    /// Inlet relative humidity, %.
    pub rh: f64,
}

/// Cooling technology (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoolingSystem {
    /// Outside-air economization with evaporative (adiabatic) assist.
    Adiabatic,
    /// Chilled-water HVAC at a fixed setpoint.
    ChilledWater,
}

impl CoolingSystem {
    /// Human-readable name as used in Table I.
    pub fn name(&self) -> &'static str {
        match self {
            CoolingSystem::Adiabatic => "Adiabatic",
            CoolingSystem::ChilledWater => "Chilled water",
        }
    }

    /// Inlet conditions for the given outdoor weather. `noise_seed` and
    /// `hour` drive small deterministic sensor-level noise.
    pub fn inlet(&self, outdoor: Weather, noise_seed: u64, hour: u64) -> InletConditions {
        match self {
            CoolingSystem::Adiabatic => adiabatic_inlet(outdoor, noise_seed, hour),
            CoolingSystem::ChilledWater => chilled_water_inlet(noise_seed, hour),
        }
    }
}

fn adiabatic_inlet(outdoor: Weather, seed: u64, hour: u64) -> InletConditions {
    let t_noise = signed_noise(seed, hour) * 1.2;
    let rh_noise = signed_noise(seed.wrapping_add(7), hour) * 3.0;
    let (temp_f, rh) = if outdoor.temp_f <= 68.0 {
        // Free cooling: outside air plus IT heat pickup.
        ((outdoor.temp_f + 8.0).max(58.0), outdoor.rh)
    } else if outdoor.temp_f <= 96.0 {
        // Dry economizer mode: no water, inlet climbs with outdoor
        // temperature and inherits the outdoor (often very low) humidity.
        (66.0 + 0.75 * (outdoor.temp_f - 68.0), outdoor.rh)
    } else {
        // Evaporative assist: caps temperature, humidifies supply air.
        (81.0 + 0.15 * (outdoor.temp_f - 96.0), (outdoor.rh + 30.0).min(85.0))
    };
    InletConditions {
        temp_f: (temp_f + t_noise).clamp(56.0, 90.0),
        rh: (rh + rh_noise).clamp(5.0, 87.0),
    }
}

fn chilled_water_inlet(seed: u64, hour: u64) -> InletConditions {
    use std::f64::consts::TAU;
    let diurnal = 1.5 * (TAU * ((hour % 24) as f64 - 9.0) / 24.0).sin();
    let t_noise = signed_noise(seed, hour) * 1.5;
    let rh_noise = signed_noise(seed.wrapping_add(7), hour) * 5.0;
    InletConditions {
        temp_f: (65.0 + diurnal + t_noise).clamp(60.0, 72.0),
        rh: (48.0 + rh_noise).clamp(35.0, 60.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::climate::SiteClimate;
    use rainshine_telemetry::time::SimTime;

    fn inlet_at(cooling: CoolingSystem, climate: &SiteClimate, t: SimTime) -> InletConditions {
        let w = climate.weather(t.hours(), t.year_fraction());
        cooling.inlet(w, 99, t.hours())
    }

    #[test]
    fn chilled_water_holds_setpoint_year_round() {
        let climate = SiteClimate::temperate(5);
        for day in (0..900).step_by(13) {
            for hour in [3, 15] {
                let t = SimTime::from_days(day).plus_hours(hour);
                let c = inlet_at(CoolingSystem::ChilledWater, &climate, t);
                assert!((60.0..=72.0).contains(&c.temp_f), "temp {}", c.temp_f);
                assert!((35.0..=60.0).contains(&c.rh), "rh {}", c.rh);
            }
        }
    }

    #[test]
    fn adiabatic_tracks_weather() {
        let climate = SiteClimate::warm_dry(5);
        let winter =
            inlet_at(CoolingSystem::Adiabatic, &climate, SimTime::from_date(2012, 1, 15, 12));
        let summer =
            inlet_at(CoolingSystem::Adiabatic, &climate, SimTime::from_date(2012, 7, 15, 15));
        assert!(summer.temp_f > winter.temp_f + 8.0);
    }

    #[test]
    fn adiabatic_produces_hot_dry_corner() {
        // The corner Fig. 18 identifies: inlet > 78 F and RH < 25 % must
        // occur on warm-dry afternoons under adiabatic cooling.
        let climate = SiteClimate::warm_dry(5);
        let mut corner_hours = 0;
        let mut hot_humid_hours = 0;
        for day in 120..270 {
            // Late spring through summer.
            for hour in 10..20 {
                let t = SimTime::from_days(day).plus_hours(hour);
                let c = inlet_at(CoolingSystem::Adiabatic, &climate, t);
                if c.temp_f > 78.0 && c.rh < 25.0 {
                    corner_hours += 1;
                }
                if c.temp_f > 78.0 && c.rh >= 25.0 {
                    hot_humid_hours += 1;
                }
            }
        }
        assert!(corner_hours > 50, "hot+dry hours: {corner_hours}");
        // Both sub-branches of the T split need support.
        assert!(hot_humid_hours > 50, "hot+humid hours: {hot_humid_hours}");
    }

    #[test]
    fn inlet_ranges_match_table_iii() {
        // Table III: temperature 56-90 F, RH 5-87 %.
        for cooling in [CoolingSystem::Adiabatic, CoolingSystem::ChilledWater] {
            let climate = SiteClimate::warm_dry(5);
            for h in (0..24 * 900).step_by(7) {
                let t = SimTime(h);
                let w = climate.weather(t.hours(), t.year_fraction());
                let c = cooling.inlet(w, 3, h);
                assert!((56.0..=90.0).contains(&c.temp_f), "temp {}", c.temp_f);
                assert!((5.0..=87.0).contains(&c.rh), "rh {}", c.rh);
            }
        }
    }

    #[test]
    fn names_match_table_i() {
        assert_eq!(CoolingSystem::Adiabatic.name(), "Adiabatic");
        assert_eq!(CoolingSystem::ChilledWater.name(), "Chilled water");
    }
}
