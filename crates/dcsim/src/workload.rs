//! The workload catalog.
//!
//! Workloads are assigned at rack granularity (Section IV: "infrastructure
//! provisioning for a workload is done at the rack level"). Each workload
//! stresses components differently; the ground-truth overall ordering
//! matches Fig. 6: W2 (batch compute) highest, W3 (HPC) lowest, storage-data
//! (W5, W6) below storage-compute (W4, W7).

use rainshine_telemetry::ids::Workload;
use serde::{Deserialize, Serialize};

/// Static description of one workload's failure-stress profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Which workload this describes.
    pub workload: Workload,
    /// Hazard multiplier on disk failures (I/O wear).
    pub disk_stress: f64,
    /// Hazard multiplier on memory failures (occupancy / bit-flip exposure).
    pub memory_stress: f64,
    /// Hazard multiplier on other server hardware (thermal / power cycling).
    pub server_stress: f64,
    /// How strongly the weekday demand cycle modulates this workload's
    /// hazard (`0.0` = flat, `1.0` = full weekday swing). Batch and HPC
    /// workloads run around the clock and swing less.
    pub weekday_sensitivity: f64,
}

impl WorkloadSpec {
    /// Geometric mean of the three component stresses — a scalar summary of
    /// the workload's overall aggressiveness.
    pub fn overall_stress(&self) -> f64 {
        (self.disk_stress * self.memory_stress * self.server_stress).cbrt()
    }
}

/// The full W1–W7 catalog.
pub fn catalog() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            workload: Workload::W1,
            disk_stress: 1.1,
            memory_stress: 1.3,
            server_stress: 1.3,
            weekday_sensitivity: 1.0,
        },
        WorkloadSpec {
            workload: Workload::W2,
            disk_stress: 1.6,
            memory_stress: 2.1,
            server_stress: 2.0,
            weekday_sensitivity: 0.8,
        },
        WorkloadSpec {
            workload: Workload::W3,
            disk_stress: 0.45,
            memory_stress: 0.5,
            server_stress: 0.45,
            weekday_sensitivity: 0.2,
        },
        WorkloadSpec {
            workload: Workload::W4,
            disk_stress: 1.5,
            memory_stress: 1.2,
            server_stress: 1.3,
            weekday_sensitivity: 0.9,
        },
        WorkloadSpec {
            workload: Workload::W5,
            disk_stress: 0.9,
            memory_stress: 0.75,
            server_stress: 0.8,
            weekday_sensitivity: 0.6,
        },
        WorkloadSpec {
            workload: Workload::W6,
            disk_stress: 1.0,
            memory_stress: 0.85,
            server_stress: 0.9,
            weekday_sensitivity: 0.6,
        },
        WorkloadSpec {
            workload: Workload::W7,
            disk_stress: 1.4,
            memory_stress: 1.2,
            server_stress: 1.25,
            weekday_sensitivity: 0.9,
        },
    ]
}

/// Looks up the spec of one workload.
pub fn spec_of(workload: Workload) -> WorkloadSpec {
    catalog().into_iter().find(|s| s.workload == workload).expect("catalog covers all workloads")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_covers_all_workloads() {
        let cat = catalog();
        assert_eq!(cat.len(), Workload::ALL.len());
        for w in Workload::ALL {
            assert!(cat.iter().any(|s| s.workload == w));
        }
    }

    #[test]
    fn fig6_ordering_holds_in_ground_truth() {
        let stress = |w| spec_of(w).overall_stress();
        // W2 highest, W3 lowest.
        for w in Workload::ALL {
            if w != Workload::W2 {
                assert!(stress(Workload::W2) > stress(w), "{w}");
            }
            if w != Workload::W3 {
                assert!(stress(Workload::W3) < stress(w), "{w}");
            }
        }
        // Storage-data below storage-compute.
        assert!(stress(Workload::W5) < stress(Workload::W4));
        assert!(stress(Workload::W6) < stress(Workload::W7));
    }

    #[test]
    fn weekday_sensitivity_in_unit_range() {
        for s in catalog() {
            assert!((0.0..=1.0).contains(&s.weekday_sensitivity));
        }
    }
}
