//! The per-(datacenter, region, hour) environment sampler.
//!
//! Combines a site climate ([`crate::climate`]), a cooling system
//! ([`crate::cooling`]), and per-region offsets (hot spots near power
//! distribution, cold-aisle ends, etc.) into the inlet conditions a rack's
//! sensors would report.

use rainshine_telemetry::ids::{DcId, RegionId};
use rainshine_telemetry::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::climate::{signed_noise, SiteClimate};
use crate::cooling::{CoolingSystem, InletConditions};

/// Environment model for one datacenter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcEnvironment {
    /// The datacenter this model covers.
    pub dc: DcId,
    /// Outdoor climate at the site.
    pub climate: SiteClimate,
    /// Cooling technology (Table I).
    pub cooling: CoolingSystem,
    /// Additive inlet-temperature offset per region (°F): hot spots.
    pub region_temp_offsets: Vec<f64>,
    /// Noise seed for sensor-level jitter.
    pub seed: u64,
}

/// Environment models for the whole fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvModel {
    dcs: Vec<DcEnvironment>,
}

/// Hours at which daily means are sampled (night / morning / afternoon /
/// evening), approximating the BMS's day-average reading.
pub const DAILY_SAMPLE_HOURS: [u64; 4] = [2, 8, 14, 20];

impl EnvModel {
    /// Builds the two-DC model of the paper: DC1 warm-dry + adiabatic,
    /// DC2 temperate + chilled water.
    pub fn paper_layout(seed: u64) -> Self {
        EnvModel {
            dcs: vec![
                DcEnvironment {
                    dc: DcId(1),
                    climate: SiteClimate::warm_dry(seed ^ 0x1111),
                    cooling: CoolingSystem::Adiabatic,
                    // Region 4 is the hot aisle-end; region 3 is coolest.
                    region_temp_offsets: vec![1.5, 0.0, -1.5, 3.0],
                    seed: seed ^ 0xD1,
                },
                DcEnvironment {
                    dc: DcId(2),
                    climate: SiteClimate::temperate(seed ^ 0x2222),
                    cooling: CoolingSystem::ChilledWater,
                    region_temp_offsets: vec![0.5, 0.0, -0.5],
                    seed: seed ^ 0xD2,
                },
            ],
        }
    }

    /// The per-DC models.
    pub fn datacenters(&self) -> &[DcEnvironment] {
        &self.dcs
    }

    /// The model for one DC.
    ///
    /// # Panics
    ///
    /// Panics if `dc` is not part of the model.
    pub fn dc(&self, dc: DcId) -> &DcEnvironment {
        self.dcs.iter().find(|d| d.dc == dc).unwrap_or_else(|| panic!("unknown {dc}"))
    }

    /// Inlet conditions for a region at an instant.
    ///
    /// # Panics
    ///
    /// Panics if `dc` is unknown. Unknown regions use a zero offset.
    pub fn sample(&self, dc: DcId, region: RegionId, t: SimTime) -> InletConditions {
        let model = self.dc(dc);
        let weather = model.climate.weather(t.hours(), t.year_fraction());
        let mut inlet = model.cooling.inlet(weather, model.seed, t.hours());
        let offset = model
            .region_temp_offsets
            .get((region.0 as usize).saturating_sub(1))
            .copied()
            .unwrap_or(0.0);
        // Per-region sensor jitter, deterministic in (seed, region, hour).
        let jitter = signed_noise(model.seed ^ (region.0 as u64) << 32, t.hours()) * 0.8;
        inlet.temp_f = (inlet.temp_f + offset + jitter).clamp(56.0, 90.0);
        inlet
    }

    /// Mean inlet conditions for a region over one day (averaged at
    /// [`DAILY_SAMPLE_HOURS`]) — what a rack-day analysis row records.
    pub fn daily_mean(&self, dc: DcId, region: RegionId, day: u64) -> InletConditions {
        let mut temp = 0.0;
        let mut rh = 0.0;
        for &h in &DAILY_SAMPLE_HOURS {
            let s = self.sample(dc, region, SimTime::from_days(day).plus_hours(h));
            temp += s.temp_f;
            rh += s.rh;
        }
        let n = DAILY_SAMPLE_HOURS.len() as f64;
        InletConditions { temp_f: temp / n, rh: rh / n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_matches_table_i() {
        let env = EnvModel::paper_layout(1);
        assert_eq!(env.dc(DcId(1)).cooling, CoolingSystem::Adiabatic);
        assert_eq!(env.dc(DcId(2)).cooling, CoolingSystem::ChilledWater);
        assert_eq!(env.dc(DcId(1)).region_temp_offsets.len(), 4);
        assert_eq!(env.dc(DcId(2)).region_temp_offsets.len(), 3);
    }

    #[test]
    fn sampling_is_deterministic() {
        let env = EnvModel::paper_layout(9);
        let t = SimTime::from_date(2012, 7, 4, 15);
        let a = env.sample(DcId(1), RegionId(4), t);
        let b = env.sample(DcId(1), RegionId(4), t);
        assert_eq!(a, b);
    }

    #[test]
    fn hot_region_runs_hotter_on_average() {
        let env = EnvModel::paper_layout(9);
        let mut hot = 0.0;
        let mut cool = 0.0;
        for day in 0..200 {
            hot += env.daily_mean(DcId(1), RegionId(4), day).temp_f;
            cool += env.daily_mean(DcId(1), RegionId(3), day).temp_f;
        }
        assert!(hot > cool + 200.0 * 2.0, "offsets should separate regions");
    }

    #[test]
    fn dc2_summer_is_unremarkable() {
        let env = EnvModel::paper_layout(9);
        // Mid-July afternoon, the worst case: DC2 stays within setpoint.
        let t = SimTime::from_date(2012, 7, 15, 15);
        let c = env.sample(DcId(2), RegionId(1), t);
        assert!(c.temp_f < 74.0, "dc2 temp {}", c.temp_f);
        assert!(c.rh > 30.0, "dc2 rh {}", c.rh);
    }

    #[test]
    fn daily_mean_within_sampled_extremes() {
        let env = EnvModel::paper_layout(9);
        let day = 200;
        let mean = env.daily_mean(DcId(1), RegionId(1), day);
        let samples: Vec<f64> = DAILY_SAMPLE_HOURS
            .iter()
            .map(|&h| {
                env.sample(DcId(1), RegionId(1), SimTime::from_days(day).plus_hours(h)).temp_f
            })
            .collect();
        let lo = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(mean.temp_f >= lo && mean.temp_f <= hi);
    }

    #[test]
    #[should_panic(expected = "unknown DC9")]
    fn unknown_dc_panics() {
        let env = EnvModel::paper_layout(1);
        env.sample(DcId(9), RegionId(1), SimTime(0));
    }
}
