//! Site weather models.
//!
//! The two datacenters sit in different climates (Section IV: "different
//! geographic locations … external environment (weather, altitude)").
//! We model outdoor temperature and relative humidity as annual + diurnal
//! sinusoids plus bounded deterministic noise. Noise is *hash-based* — a
//! pure function of `(site seed, hour)` — so the environment is perfectly
//! reproducible without threading RNG state through the simulation.

use serde::{Deserialize, Serialize};

/// SplitMix64 — deterministic hash used for environmental noise.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic pseudo-noise value in `[0, 1)` for a `(seed, index)`
/// pair.
pub fn unit_noise(seed: u64, index: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(index));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A deterministic pseudo-noise value in `[-1, 1)`.
pub fn signed_noise(seed: u64, index: u64) -> f64 {
    2.0 * unit_noise(seed, index) - 1.0
}

/// Outdoor weather at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weather {
    /// Dry-bulb temperature, °F.
    pub temp_f: f64,
    /// Relative humidity, %.
    pub rh: f64,
}

/// A site climate: annual and diurnal sinusoids with noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteClimate {
    /// Annual mean temperature, °F.
    pub mean_temp_f: f64,
    /// Annual temperature amplitude, °F (peak mid-July).
    pub annual_amp_f: f64,
    /// Diurnal temperature amplitude, °F (peak 15:00).
    pub diurnal_amp_f: f64,
    /// Hour-to-hour temperature noise amplitude, °F.
    pub temp_noise_f: f64,
    /// Annual mean relative humidity, %.
    pub mean_rh: f64,
    /// How strongly RH anti-correlates with the temperature anomaly
    /// (% RH per °F above the annual mean).
    pub rh_temp_coupling: f64,
    /// RH noise amplitude, %.
    pub rh_noise: f64,
    /// Noise seed distinguishing sites.
    pub seed: u64,
}

impl SiteClimate {
    /// A hot, dry site (the paper's DC1 uses adiabatic cooling, which is
    /// "effective in warm, dry climates").
    pub fn warm_dry(seed: u64) -> Self {
        SiteClimate {
            mean_temp_f: 74.0,
            annual_amp_f: 21.0,
            diurnal_amp_f: 13.0,
            temp_noise_f: 4.0,
            mean_rh: 32.0,
            rh_temp_coupling: 0.9,
            rh_noise: 7.0,
            seed,
        }
    }

    /// A temperate, humid site (DC2, chilled-water HVAC).
    pub fn temperate(seed: u64) -> Self {
        SiteClimate {
            mean_temp_f: 54.0,
            annual_amp_f: 14.0,
            diurnal_amp_f: 8.0,
            temp_noise_f: 3.0,
            mean_rh: 62.0,
            rh_temp_coupling: 0.5,
            rh_noise: 6.0,
            seed,
        }
    }

    /// Weather at `hour` (hours since the 2012-01-01 epoch), given the
    /// fraction of the calendar year elapsed.
    pub fn weather(&self, hour: u64, year_fraction: f64) -> Weather {
        use std::f64::consts::TAU;
        // Annual cycle peaks mid-July (fraction ~0.54).
        let annual = (TAU * (year_fraction - 0.29)).sin();
        // Diurnal cycle peaks at 15:00.
        let hour_of_day = (hour % 24) as f64;
        let diurnal = (TAU * (hour_of_day - 9.0) / 24.0).sin();
        let t_noise = signed_noise(self.seed, hour) * self.temp_noise_f;
        let temp_f =
            self.mean_temp_f + self.annual_amp_f * annual + self.diurnal_amp_f * diurnal + t_noise;
        let rh_noise = signed_noise(self.seed.wrapping_add(1), hour) * self.rh_noise;
        let anomaly = temp_f - self.mean_temp_f;
        let rh = (self.mean_rh - self.rh_temp_coupling * anomaly + rh_noise).clamp(3.0, 100.0);
        Weather { temp_f, rh }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_telemetry::time::SimTime;

    fn weather_at(c: &SiteClimate, t: SimTime) -> Weather {
        c.weather(t.hours(), t.year_fraction())
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        for i in 0..1000 {
            let a = unit_noise(42, i);
            let b = unit_noise(42, i);
            assert_eq!(a, b);
            assert!((0.0..1.0).contains(&a));
            assert!((-1.0..1.0).contains(&signed_noise(42, i)));
        }
        assert_ne!(unit_noise(1, 5), unit_noise(2, 5));
    }

    #[test]
    fn noise_mean_is_near_half() {
        let mean: f64 = (0..10_000).map(|i| unit_noise(9, i)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn summer_hotter_than_winter() {
        let c = SiteClimate::warm_dry(1);
        let winter = weather_at(&c, SimTime::from_date(2012, 1, 15, 12));
        let summer = weather_at(&c, SimTime::from_date(2012, 7, 15, 12));
        assert!(summer.temp_f > winter.temp_f + 20.0);
    }

    #[test]
    fn afternoon_hotter_than_night() {
        let c = SiteClimate::warm_dry(1);
        let night = weather_at(&c, SimTime::from_date(2012, 7, 15, 3));
        let noonish = weather_at(&c, SimTime::from_date(2012, 7, 15, 15));
        assert!(noonish.temp_f > night.temp_f + 10.0);
    }

    #[test]
    fn warm_dry_summer_is_hot_and_dry() {
        let c = SiteClimate::warm_dry(1);
        let mut hot_hours = 0;
        let mut dry_hours = 0;
        let mut n = 0;
        for day in 0..30 {
            for hour in [12, 15, 18] {
                let t = SimTime::from_date(2012, 7, 1, hour).plus_days(day);
                let w = weather_at(&c, t);
                if w.temp_f > 95.0 {
                    hot_hours += 1;
                }
                if w.rh < 25.0 {
                    dry_hours += 1;
                }
                n += 1;
            }
        }
        assert!(hot_hours > n / 4, "hot afternoons: {hot_hours}/{n}");
        assert!(dry_hours > n / 2, "dry afternoons: {dry_hours}/{n}");
    }

    #[test]
    fn temperate_site_stays_humid() {
        let c = SiteClimate::temperate(2);
        let mut min_rh = f64::INFINITY;
        for day in 0..365 {
            let t = SimTime::from_days(day).plus_hours(14);
            let w = weather_at(&c, t);
            min_rh = min_rh.min(w.rh);
        }
        assert!(min_rh > 25.0, "min rh {min_rh}");
    }

    #[test]
    fn rh_clamped_to_valid_range() {
        let c = SiteClimate::warm_dry(3);
        for h in 0..(24 * 400) {
            let t = SimTime(h);
            let w = weather_at(&c, t);
            assert!((3.0..=100.0).contains(&w.rh), "rh {} at {h}", w.rh);
        }
    }
}
