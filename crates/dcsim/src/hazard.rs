//! The multi-factor hardware hazard model — the simulator's ground truth.
//!
//! Expected hardware failures for component class `c` on a rack over one
//! day:
//!
//! ```text
//! rate = units(c) · base(c)
//!        · f_sku · f_workload(c) · f_age · f_dow · f_season
//!        · f_env(c, T, RH) · f_power · f_region · frailty
//! ```
//!
//! Every factor mirrors an effect the paper reports (DESIGN.md §3 maps each
//! to its figure). All effect sizes are plain struct fields so ablation
//! benches can switch them off individually.

use rainshine_telemetry::ids::DcId;
use rainshine_telemetry::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::cooling::InletConditions;
use crate::topology::RackInfo;
use crate::workload;
use crate::{Result, SimError};

/// Hardware component classes that generate RMA tickets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ComponentClass {
    /// Hard-disk drives.
    Disk,
    /// Memory DIMMs.
    Dimm,
    /// Power delivery (PSU / power strip).
    Power,
    /// Other server hardware (board, CPU, fans).
    ServerOther,
    /// NIC / connectivity.
    Network,
}

impl ComponentClass {
    /// All component classes.
    pub const ALL: [ComponentClass; 5] = [
        ComponentClass::Disk,
        ComponentClass::Dimm,
        ComponentClass::Power,
        ComponentClass::ServerOther,
        ComponentClass::Network,
    ];
}

/// Ground-truth hazard configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HazardConfig {
    /// Disk failures per disk-day at baseline (≈ 2.2 %/yr AFR).
    pub disk_base: f64,
    /// DIMM failures per DIMM-day at baseline.
    pub dimm_base: f64,
    /// Power-delivery failures per server-day at baseline.
    pub power_base: f64,
    /// Other server-hardware failures per server-day at baseline.
    pub server_base: f64,
    /// Network failures per server-day at baseline.
    pub network_base: f64,
    /// Extra power-component hazard in DC2: its five-nines power design
    /// (Table I) doubles up UPS/PDU strings, so there are many more
    /// RMA-able power components per server.
    pub dc2_power_infra_factor: f64,
    /// Network hazard scaling in DC2 (colocated facility uses the
    /// provider's aggregation gear, so fewer NIC-attributable tickets).
    pub dc2_network_factor: f64,

    /// Weekday hazard multiplier (utilization-driven, Fig. 3).
    pub weekday_factor: f64,
    /// Weekend hazard multiplier.
    pub weekend_factor: f64,
    /// Amplitude of the annual cycle peaking in the second half of the year
    /// (Fig. 4); `0.0` disables it.
    pub season_amplitude: f64,

    /// Extra infant-mortality hazard at age 0 (Fig. 9's elevated young
    /// equipment); decays exponentially.
    pub infant_scale: f64,
    /// e-folding age of infant mortality, months.
    pub infant_decay_months: f64,
    /// Age at which wear-out begins, months.
    pub wearout_onset_months: f64,
    /// Added hazard per month beyond the wear-out onset.
    pub wearout_slope: f64,

    /// Disk hazard slope per °F above [`Self::temp_ref_f`] (Fig. 17's
    /// gradual trend).
    pub disk_temp_slope: f64,
    /// Reference temperature for the disk slope, °F.
    pub temp_ref_f: f64,
    /// Threshold above which disks take a step-increase (Fig. 18: 78 °F).
    pub disk_hot_threshold_f: f64,
    /// Step multiplier above the hot threshold (paper: ×1.5).
    pub disk_hot_factor: f64,
    /// RH below which hot disks take a further step (Fig. 18: 25 %).
    pub disk_dry_rh_threshold: f64,
    /// Additional multiplier in the hot **and** dry corner (paper: ×1.25).
    pub disk_hot_dry_factor: f64,
    /// RH below which ESD-sensitive parts (DIMMs, boards) take a step
    /// (Fig. 5's elevated low-humidity bins).
    pub low_rh_threshold: f64,
    /// ESD multiplier below the low-RH threshold.
    pub low_rh_factor: f64,

    /// Rated power at/above which racks run hotter internally (Fig. 8:
    /// > 12 kW elevated).
    pub high_power_threshold_kw: f64,
    /// Multiplier at/above the power threshold.
    pub high_power_factor: f64,

    /// Per-region hazard multipliers for DC1 (installation/airflow quality,
    /// Fig. 2). Deliberately *not* aligned with the thermal offsets, so the
    /// environmental effects of Q3 stay attributable.
    pub dc1_region_factors: [f64; 4],
    /// Per-region hazard multipliers for DC2.
    pub dc2_region_factors: [f64; 3],

    /// Baseline probability of a correlated failure burst per rack-day
    /// (a PDU trip, a bad firmware push to one rack, a vibration storm in a
    /// dense-disk chassis). Bursts are what make μ heavy-tailed: many
    /// servers of one rack down *simultaneously* (Section V's "one spare
    /// may suffice when two servers do not fail at the same time but more
    /// may be needed to handle simultaneous failures").
    pub burst_base: f64,
    /// Burst-rate multiplier for racks at/above the high-power threshold.
    pub burst_power_factor: f64,
    /// Burst-rate multiplier while a rack is younger than the infant decay
    /// age (bad batches / teething installations).
    pub burst_infant_factor: f64,
    /// Exponent on `(disks_per_server / 4)` scaling burst proneness of
    /// dense-storage chassis.
    pub burst_disk_exponent: f64,
    /// Burst-rate factor for compute chassis (< 8 disks/server), whose
    /// bursts are bad-DIMM-batch storms rather than disk storms.
    pub burst_compute_factor: f64,
    /// Burst-rate multiplier once a rack passes the wear-out onset age —
    /// together with the infant factor this makes burst proneness a
    /// *bathtub in age*, the observable signature Q1's storage clusters
    /// key on ("devices that are either very old or very young require
    /// more spares").
    pub burst_wearout_factor: f64,
    /// Minimum fraction of a rack's servers a burst takes down.
    pub burst_min_frac: f64,
    /// Additional burst-size range for compute chassis:
    /// size = min + range·u² (right-skewed).
    pub burst_frac_range: f64,
    /// Additional burst-size range for dense-disk chassis — disk storms can
    /// take most of a storage rack down (the paper's 85 %-spares cluster).
    pub burst_storage_frac_range: f64,
    /// Commission-day windows (relative to the epoch) of "bad vendor lots".
    /// Racks commissioned inside a window carry full burst proneness;
    /// others are scaled by [`Self::burst_quiet_factor`]. Because lot
    /// membership is a function of commission date, CART can recover it
    /// through the `age_months` feature — the "very old or very young"
    /// clusters the paper reports.
    pub burst_bad_lot_windows: Vec<(i64, i64)>,
    /// Burst-rate scaling for racks outside every bad-lot window.
    pub burst_quiet_factor: f64,

    /// Scale on the spread of per-SKU intrinsic reliability around 1.0:
    /// `1.0` keeps the catalog factors (S2 intrinsically 4× S4), `0.0`
    /// flattens every SKU to the same intrinsic hazard (the SKU×workload
    /// confound then comes from placement alone). Conformance scenarios
    /// use this to ablate the Q2 effect.
    pub sku_spread: f64,
}

impl Default for HazardConfig {
    fn default() -> Self {
        HazardConfig {
            disk_base: 6.0e-5,
            dimm_base: 5.7e-6,
            power_base: 2.8e-5,
            server_base: 4.6e-5,
            network_base: 4.8e-5,
            dc2_power_infra_factor: 5.5,
            dc2_network_factor: 0.45,
            weekday_factor: 1.25,
            weekend_factor: 0.82,
            season_amplitude: 0.18,
            infant_scale: 1.6,
            infant_decay_months: 6.0,
            wearout_onset_months: 36.0,
            wearout_slope: 0.02,
            disk_temp_slope: 0.006,
            temp_ref_f: 60.0,
            disk_hot_threshold_f: 78.0,
            disk_hot_factor: 1.5,
            disk_dry_rh_threshold: 25.0,
            disk_hot_dry_factor: 1.4,
            low_rh_threshold: 30.0,
            low_rh_factor: 1.3,
            high_power_threshold_kw: 12.0,
            high_power_factor: 1.3,
            dc1_region_factors: [1.25, 1.0, 0.95, 1.1],
            dc2_region_factors: [0.8, 0.7, 0.75],
            burst_base: 1.5e-4,
            burst_power_factor: 2.0,
            burst_infant_factor: 6.0,
            burst_disk_exponent: 1.5,
            burst_compute_factor: 0.15,
            burst_wearout_factor: 3.0,
            burst_min_frac: 0.08,
            burst_frac_range: 0.45,
            burst_storage_frac_range: 0.77,
            burst_bad_lot_windows: vec![(-1095, -850), (-180, 180)],
            burst_quiet_factor: 0.01,
            sku_spread: 1.0,
        }
    }
}

impl HazardConfig {
    /// Validates that rates and factors are positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on any non-positive or
    /// non-finite field.
    pub fn validate(&self) -> Result<()> {
        let positives = [
            ("disk_base", self.disk_base),
            ("dimm_base", self.dimm_base),
            ("power_base", self.power_base),
            ("server_base", self.server_base),
            ("network_base", self.network_base),
            ("weekday_factor", self.weekday_factor),
            ("weekend_factor", self.weekend_factor),
            ("infant_decay_months", self.infant_decay_months),
            ("disk_hot_factor", self.disk_hot_factor),
            ("disk_hot_dry_factor", self.disk_hot_dry_factor),
            ("low_rh_factor", self.low_rh_factor),
            ("high_power_factor", self.high_power_factor),
        ];
        for (field, v) in positives {
            if !v.is_finite() || v <= 0.0 {
                return Err(SimError::InvalidConfig { field, reason: "must be positive finite" });
            }
        }
        if !self.season_amplitude.is_finite() || !(0.0..1.0).contains(&self.season_amplitude) {
            return Err(SimError::InvalidConfig {
                field: "season_amplitude",
                reason: "must be within [0, 1)",
            });
        }
        if !self.sku_spread.is_finite() || self.sku_spread < 0.0 {
            return Err(SimError::InvalidConfig {
                field: "sku_spread",
                reason: "must be non-negative finite",
            });
        }
        if !self.disk_hot_threshold_f.is_finite() {
            return Err(SimError::InvalidConfig {
                field: "disk_hot_threshold_f",
                reason: "must be finite",
            });
        }
        Ok(())
    }

    /// Flattens the bathtub (Fig. 9): no infant mortality, no wear-out,
    /// and age-independent burst proneness.
    pub fn ablate_age_bathtub(&mut self) {
        self.infant_scale = 0.0;
        self.wearout_slope = 0.0;
        self.burst_infant_factor = 1.0;
        self.burst_wearout_factor = 1.0;
    }

    /// Zeroes every environmental hazard effect (Figs. 5, 17, 18).
    pub fn ablate_environment(&mut self) {
        self.disk_temp_slope = 0.0;
        self.disk_hot_factor = 1.0;
        self.disk_hot_dry_factor = 1.0;
        self.low_rh_factor = 1.0;
    }

    /// Flattens the weekday and seasonal cycles (Figs. 3, 4).
    pub fn ablate_calendar(&mut self) {
        self.weekday_factor = 1.0;
        self.weekend_factor = 1.0;
        self.season_amplitude = 0.0;
    }

    /// Removes the correlated-burst channel (Section V's simultaneous
    /// failures).
    pub fn ablate_bursts(&mut self) {
        self.burst_base = 0.0;
        self.burst_quiet_factor = 0.0;
    }

    /// A SKU's intrinsic reliability factor with [`Self::sku_spread`]
    /// applied. Exactly the catalog factor at the default spread of 1.0
    /// (no float rounding), so seed-pinned outputs are unchanged.
    fn sku_reliability(&self, catalog_factor: f64) -> f64 {
        if self.sku_spread == 1.0 {
            catalog_factor
        } else {
            1.0 + (catalog_factor - 1.0) * self.sku_spread
        }
    }

    /// Baseline per-unit daily rate of a component class.
    pub fn base_rate(&self, class: ComponentClass) -> f64 {
        match class {
            ComponentClass::Disk => self.disk_base,
            ComponentClass::Dimm => self.dimm_base,
            ComponentClass::Power => self.power_base,
            ComponentClass::ServerOther => self.server_base,
            ComponentClass::Network => self.network_base,
        }
    }

    /// Units of a component class in one server of `rack`'s SKU.
    pub fn units_per_server(&self, rack: &RackInfo, class: ComponentClass) -> f64 {
        let spec = rack.sku_spec();
        match class {
            ComponentClass::Disk => spec.disks_per_server as f64,
            ComponentClass::Dimm => spec.dimms_per_server as f64,
            // Per-server subsystems.
            ComponentClass::Power | ComponentClass::ServerOther | ComponentClass::Network => 1.0,
        }
    }

    /// Bathtub age factor (Fig. 9): elevated infant mortality decaying over
    /// [`Self::infant_decay_months`], flat mid-life, linear wear-out after
    /// [`Self::wearout_onset_months`].
    pub fn age_factor(&self, age_months: f64) -> f64 {
        let infant = self.infant_scale * (-age_months / self.infant_decay_months).exp();
        let wearout = self.wearout_slope * (age_months - self.wearout_onset_months).max(0.0);
        1.0 + infant + wearout
    }

    /// Day-of-week factor for a workload with the given sensitivity.
    pub fn dow_factor(&self, t: SimTime, weekday_sensitivity: f64) -> f64 {
        let base =
            if t.day_of_week().is_weekday() { self.weekday_factor } else { self.weekend_factor };
        1.0 + weekday_sensitivity * (base - 1.0)
    }

    /// Seasonal factor peaking in the second half of the year (Fig. 4).
    pub fn season_factor(&self, t: SimTime) -> f64 {
        use std::f64::consts::TAU;
        // Peak around early September (fraction 0.68).
        1.0 + self.season_amplitude * (TAU * (t.year_fraction() - 0.43)).sin()
    }

    /// Environmental factor for a component class (Figs. 5, 17, 18).
    pub fn env_factor(&self, class: ComponentClass, env: InletConditions) -> f64 {
        match class {
            ComponentClass::Disk => {
                let mut f = 1.0 + self.disk_temp_slope * (env.temp_f - self.temp_ref_f).max(0.0);
                if env.temp_f > self.disk_hot_threshold_f {
                    f *= self.disk_hot_factor;
                    if env.rh < self.disk_dry_rh_threshold {
                        f *= self.disk_hot_dry_factor;
                    }
                }
                f
            }
            ComponentClass::Dimm | ComponentClass::ServerOther => {
                if env.rh < self.low_rh_threshold {
                    self.low_rh_factor
                } else {
                    1.0
                }
            }
            ComponentClass::Power | ComponentClass::Network => 1.0,
        }
    }

    /// Rated-power factor (Fig. 8).
    pub fn power_factor(&self, power_kw: f64) -> f64 {
        if power_kw >= self.high_power_threshold_kw {
            self.high_power_factor
        } else {
            1.0
        }
    }

    /// Per-region installation-quality factor (Fig. 2).
    pub fn region_factor(&self, dc: DcId, region_1based: u8) -> f64 {
        let idx = (region_1based as usize).saturating_sub(1);
        match dc.0 {
            1 => self.dc1_region_factors.get(idx).copied().unwrap_or(1.0),
            2 => self.dc2_region_factors.get(idx).copied().unwrap_or(1.0),
            _ => 1.0,
        }
    }

    /// Expected failures of `class` on `rack` during the day containing
    /// `day_start`, given that day's mean inlet conditions. Zero before the
    /// rack is commissioned.
    pub fn rack_day_rate(
        &self,
        rack: &RackInfo,
        class: ComponentClass,
        env: InletConditions,
        day_start: SimTime,
    ) -> f64 {
        if !rack.is_active(day_start) {
            return 0.0;
        }
        let spec = rack.sku_spec();
        let wl = workload::spec_of(rack.workload);
        let stress = match class {
            ComponentClass::Disk => wl.disk_stress,
            ComponentClass::Dimm => wl.memory_stress,
            ComponentClass::Power | ComponentClass::ServerOther | ComponentClass::Network => {
                wl.server_stress
            }
        };
        let units = rack.servers as f64 * self.units_per_server(rack, class);
        units
            * self.base_rate(class)
            * self.sku_reliability(spec.reliability_factor)
            * stress
            * self.age_factor(rack.age_months(day_start))
            * self.dow_factor(day_start, wl.weekday_sensitivity)
            * self.season_factor(day_start)
            * self.env_factor(class, env)
            * self.power_factor(rack.power_kw)
            * self.region_factor(rack.dc, rack.region.0)
            * self.dc_component_factor(rack.dc, class)
            * rack.frailty
    }

    /// Expected correlated-failure bursts for `rack` during one day.
    ///
    /// Burst proneness concentrates in dense-disk chassis, high-power
    /// racks, and young installations — the feature-defined pockets the MF
    /// clustering must isolate to beat SF provisioning (Fig. 11).
    pub fn burst_rate(&self, rack: &RackInfo, day_start: SimTime) -> f64 {
        if !rack.is_active(day_start) {
            return 0.0;
        }
        let spec = rack.sku_spec();
        let disk_factor = if spec.disks_per_server >= 8 {
            (spec.disks_per_server as f64 / 4.0).powf(self.burst_disk_exponent)
        } else {
            self.burst_compute_factor
        };
        let power = if rack.power_kw >= self.high_power_threshold_kw {
            self.burst_power_factor
        } else {
            1.0
        };
        let age = rack.age_months(day_start);
        let age_factor = if age < self.infant_decay_months {
            self.burst_infant_factor
        } else if age > self.wearout_onset_months {
            self.burst_wearout_factor
        } else {
            1.0
        };
        let lot = if self
            .burst_bad_lot_windows
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&rack.commissioned_day))
        {
            1.0
        } else {
            self.burst_quiet_factor
        };
        self.burst_base
            * disk_factor
            * power
            * age_factor
            * lot
            * self.sku_reliability(spec.reliability_factor)
            * rack.frailty
    }

    /// Servers taken down by a burst, given a uniform draw `u` in `[0, 1)`.
    /// Right-skewed: most bursts are small, a few take out half the rack.
    pub fn burst_size(&self, rack: &RackInfo, u: f64) -> u32 {
        let range = if rack.sku_spec().disks_per_server >= 8 {
            self.burst_storage_frac_range
        } else {
            self.burst_frac_range
        };
        let frac = self.burst_min_frac + range * u * u;
        ((frac * rack.servers as f64).ceil() as u32).clamp(1, rack.servers)
    }

    /// Per-DC component-class factor (power-infrastructure design and
    /// network topology differences between the two facilities).
    pub fn dc_component_factor(&self, dc: DcId, class: ComponentClass) -> f64 {
        if dc.0 == 2 {
            match class {
                ComponentClass::Power => self.dc2_power_infra_factor,
                ComponentClass::Network => self.dc2_network_factor,
                _ => 1.0,
            }
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FleetConfig;
    use crate::topology::Fleet;

    fn env(temp_f: f64, rh: f64) -> InletConditions {
        InletConditions { temp_f, rh }
    }

    #[test]
    fn defaults_validate() {
        assert!(HazardConfig::default().validate().is_ok());
    }

    #[test]
    fn validation_catches_nonpositive() {
        let h = HazardConfig { disk_base: 0.0, ..HazardConfig::default() };
        assert!(h.validate().is_err());
        let h = HazardConfig { season_amplitude: 1.5, ..HazardConfig::default() };
        assert!(h.validate().is_err());
    }

    #[test]
    fn sku_spread_default_is_exact_identity() {
        let h = HazardConfig::default();
        for f in [0.31, 1.0, 1.7, 4.0] {
            assert_eq!(h.sku_reliability(f).to_bits(), f.to_bits());
        }
    }

    #[test]
    fn sku_spread_zero_flattens_reliability() {
        let h = HazardConfig { sku_spread: 0.0, ..HazardConfig::default() };
        assert_eq!(h.sku_reliability(4.0), 1.0);
        assert_eq!(h.sku_reliability(0.25), 1.0);
    }

    #[test]
    fn ablations_zero_their_effects() {
        let mut h = HazardConfig::default();
        h.ablate_age_bathtub();
        assert_eq!(h.age_factor(0.0), 1.0);
        assert_eq!(h.age_factor(60.0), 1.0);
        let mut h = HazardConfig::default();
        h.ablate_environment();
        assert_eq!(h.env_factor(ComponentClass::Disk, env(95.0, 10.0)), 1.0);
        assert_eq!(h.env_factor(ComponentClass::Dimm, env(65.0, 10.0)), 1.0);
        let mut h = HazardConfig::default();
        h.ablate_calendar();
        let monday = SimTime::from_date(2012, 1, 2, 0);
        assert_eq!(h.dow_factor(monday, 1.0), 1.0);
        assert_eq!(h.season_factor(SimTime::from_date(2012, 9, 15, 0)), 1.0);
        let mut h = HazardConfig::default();
        h.ablate_bursts();
        let fleet = Fleet::build(&FleetConfig::paper_scale());
        let day = SimTime::from_date(2012, 6, 1, 0);
        for rack in fleet.racks.iter().filter(|r| r.is_active(day)) {
            assert_eq!(h.burst_rate(rack, day), 0.0);
        }
        // Every ablated config still validates.
        for ablate in [
            HazardConfig::ablate_age_bathtub,
            HazardConfig::ablate_environment,
            HazardConfig::ablate_calendar,
            HazardConfig::ablate_bursts,
        ] {
            let mut h = HazardConfig::default();
            ablate(&mut h);
            assert!(h.validate().is_ok());
        }
    }

    #[test]
    fn age_factor_is_a_bathtub() {
        let h = HazardConfig::default();
        assert!(h.age_factor(0.0) > h.age_factor(12.0), "infant mortality");
        assert!(h.age_factor(12.0) > h.age_factor(24.0), "infant tail still decaying");
        assert!(h.age_factor(60.0) > h.age_factor(30.0), "wear-out");
        // Mid-life is the hazard floor.
        let floor = h.age_factor(34.0);
        assert!(h.age_factor(2.0) > floor && h.age_factor(58.0) > floor);
    }

    #[test]
    fn env_factor_encodes_fig18_thresholds() {
        let h = HazardConfig::default();
        let mild = h.env_factor(ComponentClass::Disk, env(70.0, 40.0));
        let hot = h.env_factor(ComponentClass::Disk, env(80.0, 40.0));
        let hot_dry = h.env_factor(ComponentClass::Disk, env(80.0, 20.0));
        // Hot step ≈ 1.5x beyond the slope, hot+dry another 1.25x.
        assert!(hot / mild > 1.4, "hot/mild = {}", hot / mild);
        let expected = HazardConfig::default().disk_hot_dry_factor;
        assert!((hot_dry / hot - expected).abs() < 1e-9);
        // Below the threshold RH is irrelevant for disks.
        let cool_dry = h.env_factor(ComponentClass::Disk, env(70.0, 10.0));
        assert_eq!(cool_dry, mild);
    }

    #[test]
    fn low_rh_hits_esd_sensitive_classes_only() {
        let h = HazardConfig::default();
        assert!(h.env_factor(ComponentClass::Dimm, env(65.0, 20.0)) > 1.0);
        assert!(h.env_factor(ComponentClass::ServerOther, env(65.0, 20.0)) > 1.0);
        assert_eq!(h.env_factor(ComponentClass::Power, env(65.0, 20.0)), 1.0);
        assert_eq!(h.env_factor(ComponentClass::Dimm, env(65.0, 50.0)), 1.0);
    }

    #[test]
    fn weekday_vs_weekend() {
        let h = HazardConfig::default();
        let monday = SimTime::from_date(2012, 1, 2, 0);
        let sunday = SimTime::from_date(2012, 1, 1, 0);
        assert!(h.dow_factor(monday, 1.0) > 1.0);
        assert!(h.dow_factor(sunday, 1.0) < 1.0);
        // Insensitive workloads barely move.
        assert!((h.dow_factor(monday, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn season_peaks_in_second_half() {
        let h = HazardConfig::default();
        let spring = h.season_factor(SimTime::from_date(2012, 3, 15, 0));
        let fall = h.season_factor(SimTime::from_date(2012, 9, 15, 0));
        assert!(fall > spring);
    }

    #[test]
    fn power_threshold() {
        let h = HazardConfig::default();
        assert_eq!(h.power_factor(9.0), 1.0);
        assert!(h.power_factor(13.0) > 1.2);
    }

    #[test]
    fn rack_day_rate_zero_before_commission() {
        let fleet = Fleet::build(&FleetConfig::paper_scale());
        let h = HazardConfig::default();
        let future_rack = fleet
            .racks
            .iter()
            .find(|r| r.commissioned_day > 10)
            .expect("some racks commissioned mid-window");
        let rate =
            h.rack_day_rate(future_rack, ComponentClass::Disk, env(70.0, 40.0), SimTime::EPOCH);
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn rack_day_rates_are_sane() {
        let fleet = Fleet::build(&FleetConfig::paper_scale());
        let h = HazardConfig::default();
        let day = SimTime::from_date(2012, 6, 1, 0);
        for rack in fleet.racks.iter().filter(|r| r.is_active(day)) {
            let total: f64 = ComponentClass::ALL
                .iter()
                .map(|&c| h.rack_day_rate(rack, c, env(70.0, 40.0), day))
                .sum();
            assert!(total > 0.0, "{:?}", rack.id);
            assert!(total < 1.0, "rack {:?} rate {total} too high", rack.id);
        }
    }

    #[test]
    fn disk_rate_scales_with_disk_count() {
        let fleet = Fleet::build(&FleetConfig::paper_scale());
        let h = HazardConfig::default();
        let day = SimTime::from_date(2012, 6, 1, 0);
        let rack = fleet.racks.iter().find(|r| r.is_active(day)).unwrap();
        let spec = rack.sku_spec();
        let per_server = h.units_per_server(rack, ComponentClass::Disk);
        assert_eq!(per_server, spec.disks_per_server as f64);
    }
}
