use std::error::Error;
use std::fmt;

/// Error type for simulator configuration and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration field was out of its valid range.
    InvalidConfig {
        /// Field name.
        field: &'static str,
        /// Explanation of the constraint.
        reason: &'static str,
    },
    /// An underlying statistics error.
    Stats(rainshine_stats::StatsError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid config `{field}`: {reason}")
            }
            SimError::Stats(e) => write!(f, "statistics error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rainshine_stats::StatsError> for SimError {
    fn from(e: rainshine_stats::StatsError) -> Self {
        SimError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SimError::InvalidConfig { field: "span", reason: "end before start" };
        assert!(e.to_string().contains("span"));
        let e: SimError = rainshine_stats::StatsError::EmptyInput.into();
        assert!(Error::source(&e).is_some());
    }
}
