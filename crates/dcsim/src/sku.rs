//! The SKU (hardware configuration) catalog.
//!
//! Per Section IV of the paper: compute-intensive SKUs pack more than 40
//! servers per rack with ≈4 disks each; storage SKUs pack ≈20 servers per
//! rack with many more disks each. Each SKU also carries an *intrinsic*
//! reliability multiplier — the quantity Q2 tries to estimate — and unit
//! costs with the paper's server:disk:DIMM = 100:2:10 ratio.

use rainshine_telemetry::ids::Sku;
use serde::{Deserialize, Serialize};

/// Static description of one SKU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkuSpec {
    /// Which SKU this describes.
    pub sku: Sku,
    /// Servers per rack.
    pub servers_per_rack: u32,
    /// Hard disks per server.
    pub disks_per_server: u32,
    /// Memory DIMMs per server.
    pub dimms_per_server: u32,
    /// Intrinsic hazard multiplier (ground truth for Q2). `1.0` is the
    /// fleet baseline; S2:S4 is 4:1 by design (Fig. 15).
    pub reliability_factor: f64,
    /// Rack rated-power options (kW) this SKU ships with (Fig. 8's x-axis
    /// values).
    pub power_options_kw: Vec<f64>,
    /// Relative cost of one server (the paper's ratio unit: server = 100).
    pub server_cost: f64,
}

/// Relative cost of one hard disk (paper ratio 100:2:10).
pub const DISK_COST: f64 = 2.0;
/// Relative cost of one memory DIMM (paper ratio 100:2:10).
pub const DIMM_COST: f64 = 10.0;

/// The full S1–S7 catalog.
pub fn catalog() -> Vec<SkuSpec> {
    vec![
        SkuSpec {
            sku: Sku::S1,
            servers_per_rack: 20,
            disks_per_server: 12,
            dimms_per_server: 8,
            reliability_factor: 1.0,
            power_options_kw: vec![4.0, 6.0, 7.0],
            server_cost: 100.0,
        },
        SkuSpec {
            sku: Sku::S2,
            servers_per_rack: 44,
            disks_per_server: 4,
            dimms_per_server: 16,
            reliability_factor: 2.0,
            power_options_kw: vec![13.0, 15.0],
            server_cost: 100.0,
        },
        SkuSpec {
            sku: Sku::S3,
            servers_per_rack: 22,
            disks_per_server: 10,
            dimms_per_server: 8,
            reliability_factor: 1.3,
            power_options_kw: vec![6.0, 7.0, 8.0],
            server_cost: 100.0,
        },
        SkuSpec {
            sku: Sku::S4,
            servers_per_rack: 42,
            disks_per_server: 4,
            dimms_per_server: 16,
            reliability_factor: 0.5,
            power_options_kw: vec![12.0, 13.0],
            server_cost: 100.0,
        },
        SkuSpec {
            sku: Sku::S5,
            servers_per_rack: 30,
            disks_per_server: 8,
            dimms_per_server: 12,
            reliability_factor: 0.9,
            power_options_kw: vec![8.0, 9.0],
            server_cost: 100.0,
        },
        SkuSpec {
            sku: Sku::S6,
            servers_per_rack: 30,
            disks_per_server: 8,
            dimms_per_server: 12,
            reliability_factor: 1.1,
            power_options_kw: vec![8.0, 9.0],
            server_cost: 100.0,
        },
        SkuSpec {
            sku: Sku::S7,
            servers_per_rack: 36,
            disks_per_server: 2,
            dimms_per_server: 16,
            reliability_factor: 0.7,
            power_options_kw: vec![12.0],
            server_cost: 100.0,
        },
    ]
}

/// Looks up the spec of one SKU.
pub fn spec_of(sku: Sku) -> SkuSpec {
    catalog().into_iter().find(|s| s.sku == sku).expect("catalog covers all SKUs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_telemetry::ids::SkuClass;

    #[test]
    fn catalog_covers_all_skus() {
        let cat = catalog();
        assert_eq!(cat.len(), Sku::ALL.len());
        for sku in Sku::ALL {
            assert!(cat.iter().any(|s| s.sku == sku));
        }
    }

    #[test]
    fn compute_skus_have_more_servers_fewer_disks() {
        // Section IV: compute SKUs > 40 servers/rack, ~4 HDD/server;
        // storage SKUs ~20 servers/rack, more HDD.
        for spec in catalog() {
            match spec.sku.class() {
                SkuClass::ComputeIntensive => {
                    assert!(spec.servers_per_rack > 40, "{:?}", spec.sku);
                    assert!(spec.disks_per_server <= 4, "{:?}", spec.sku);
                }
                SkuClass::StorageIntensive => {
                    assert!(spec.servers_per_rack <= 24, "{:?}", spec.sku);
                    assert!(spec.disks_per_server >= 10, "{:?}", spec.sku);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn ground_truth_s2_s4_ratio_is_four() {
        let s2 = spec_of(Sku::S2).reliability_factor;
        let s4 = spec_of(Sku::S4).reliability_factor;
        assert!((s2 / s4 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn cost_ratio_matches_paper() {
        for spec in catalog() {
            assert!((spec.server_cost / DISK_COST - 50.0).abs() < 1e-12);
            assert!((spec.server_cost / DIMM_COST - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn power_options_within_table_iii_range() {
        for spec in catalog() {
            for &kw in &spec.power_options_kw {
                assert!((4.0..=15.0).contains(&kw));
            }
        }
    }
}
