//! Generative datacenter fleet simulator.
//!
//! The paper analyzes 2.5 years of proprietary telemetry from two production
//! cloud datacenters. That data cannot be shipped, so this crate builds the
//! closest synthetic equivalent: a seeded, deterministic generator whose
//! **ground-truth hazard model embeds the same multi-factor effect
//! structure** the paper reports (see `DESIGN.md` §3), producing the same
//! artifacts the paper's analysis consumes — a fleet inventory, RMA tickets
//! (Table II taxonomy), and per-rack environmental telemetry.
//!
//! Subsystems:
//!
//! * [`config`] — fleet scale, observation span, hazard knobs;
//! * [`sku`] — the S1–S7 hardware catalog (composition, reliability, cost);
//! * [`workload`] — the W1–W7 workload catalog (component stress profiles);
//! * [`climate`] — site weather models (warm-dry vs temperate-humid) with
//!   hash-based deterministic noise;
//! * [`cooling`] — adiabatic vs chilled-water transfer functions from
//!   outdoor weather to rack-inlet temperature / relative humidity;
//! * [`environment`] — the per-(DC, region, hour) environment sampler;
//! * [`topology`] — fleet construction with the paper's confounded
//!   placement (compute SKUs concentrated in the hot DC, etc.);
//! * [`hazard`] — the multi-factor hardware hazard model (bathtub age, SKU,
//!   workload, power density, day-of-week, season, temperature/humidity
//!   thresholds, region, per-rack frailty);
//! * [`tickets`] — RMA ticket generation (hardware via non-homogeneous
//!   Poisson sampling; software/boot/other matched to Table II shares;
//!   repair times; false-positive injection);
//! * [`corruption`] — seeded dirty-data injection (duplicate / inverted /
//!   skewed / mislabeled / censored tickets, sensor spikes and blackouts);
//! * [`simulation`] — the top-level [`simulation::Simulation`] driver.
//!
//! # Example
//!
//! ```
//! use rainshine_dcsim::{FleetConfig, Simulation};
//!
//! let output = Simulation::new(FleetConfig::small(), 7).run();
//! assert!(!output.tickets.is_empty());
//! // Same seed, same tickets.
//! let again = Simulation::new(FleetConfig::small(), 7).run();
//! assert_eq!(output.tickets.len(), again.tickets.len());
//! ```

pub mod climate;
pub mod config;
pub mod cooling;
pub mod corruption;
pub mod environment;
pub mod hazard;
pub mod simulation;
pub mod sku;
pub mod tickets;
pub mod topology;
pub mod workload;

mod error;

pub use config::FleetConfig;
pub use corruption::CorruptionConfig;
pub use error::SimError;
pub use simulation::{Simulation, SimulationOutput};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
