//! Fleet and simulation configuration.

use rainshine_parallel::Parallelism;
use rainshine_telemetry::time::SimTime;
use serde::{Deserialize, Serialize};

use crate::corruption::CorruptionConfig;
use crate::hazard::HazardConfig;
use crate::{Result, SimError};

/// Top-level simulation configuration.
///
/// Use [`FleetConfig::paper_scale`] for the full two-DC fleet the paper
/// studies (331 + 290 racks over 2.5 years) or [`FleetConfig::small`] /
/// [`FleetConfig::medium`] for faster runs in tests and examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Start of the observation window.
    pub start: SimTime,
    /// End of the observation window (exclusive).
    pub end: SimTime,
    /// Racks in DC1 (paper: R1–R331).
    pub dc1_racks: usize,
    /// Racks in DC2 (paper: R1–R290).
    pub dc2_racks: usize,
    /// Seed for the static fleet layout (placement, power ratings,
    /// commission dates). Separate from the run seed so topology stays
    /// fixed across Monte-Carlo replications.
    pub layout_seed: u64,
    /// Fraction of emitted tickets that are false positives (filtered out
    /// before analysis, as the paper does).
    pub false_positive_rate: f64,
    /// Hazard-model knobs (ground-truth effect sizes).
    pub hazard: HazardConfig,
    /// Dirty-data injection rates. Defaults to all-zero (pristine output);
    /// see [`CorruptionConfig::dirty_default`] for the documented dirty
    /// preset.
    pub corruption: CorruptionConfig,
    /// How to spread per-rack ticket generation across threads. Every
    /// rack draws from its own seed-derived RNG stream and results merge
    /// in rack order, so the ticket stream is bit-identical for any
    /// setting (see [`crate::Simulation::run`]).
    pub parallelism: Parallelism,
}

impl FleetConfig {
    /// The paper-scale fleet: 331 + 290 racks, 2012-01-01 through
    /// 2014-07-01 (≈ 2.5 years).
    pub fn paper_scale() -> Self {
        FleetConfig {
            start: SimTime::from_date(2012, 1, 1, 0),
            end: SimTime::from_date(2014, 7, 1, 0),
            dc1_racks: 331,
            dc2_racks: 290,
            layout_seed: 0xA11CE,
            false_positive_rate: 0.08,
            hazard: HazardConfig::default(),
            corruption: CorruptionConfig::default(),
            parallelism: Parallelism::Auto,
        }
    }

    /// A small fleet for unit tests and doc examples: 24 + 20 racks over
    /// six months.
    pub fn small() -> Self {
        FleetConfig {
            dc1_racks: 24,
            dc2_racks: 20,
            end: SimTime::from_date(2012, 6, 29, 0),
            ..Self::paper_scale()
        }
    }

    /// A medium fleet for integration tests: 90 + 80 racks over one year.
    pub fn medium() -> Self {
        FleetConfig {
            dc1_racks: 90,
            dc2_racks: 80,
            end: SimTime::from_date(2013, 1, 1, 0),
            ..Self::paper_scale()
        }
    }

    /// Observation span in whole days.
    pub fn span_days(&self) -> u64 {
        (self.end.hours().saturating_sub(self.start.hours())) / 24
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the span is empty, a DC has
    /// no racks, the false-positive rate is outside `[0, 0.9]`, or the
    /// hazard/corruption knobs are out of range.
    pub fn validate(&self) -> Result<()> {
        if self.end <= self.start {
            return Err(SimError::InvalidConfig {
                field: "end",
                reason: "end must be after start",
            });
        }
        if self.dc1_racks == 0 || self.dc2_racks == 0 {
            return Err(SimError::InvalidConfig {
                field: "racks",
                reason: "each datacenter needs at least one rack",
            });
        }
        if !(0.0..=0.9).contains(&self.false_positive_rate) {
            return Err(SimError::InvalidConfig {
                field: "false_positive_rate",
                reason: "must be within [0, 0.9]",
            });
        }
        self.hazard.validate()?;
        self.corruption.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_paper() {
        let c = FleetConfig::paper_scale();
        assert_eq!(c.dc1_racks, 331);
        assert_eq!(c.dc2_racks, 290);
        // 2.5 years ≈ 912 days.
        assert!((910..=915).contains(&c.span_days()), "{}", c.span_days());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn presets_validate() {
        assert!(FleetConfig::small().validate().is_ok());
        assert!(FleetConfig::medium().validate().is_ok());
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = FleetConfig::small();
        c.end = c.start;
        assert!(c.validate().is_err());

        let mut c = FleetConfig::small();
        c.dc1_racks = 0;
        assert!(c.validate().is_err());

        let mut c = FleetConfig::small();
        c.false_positive_rate = 0.95;
        assert!(c.validate().is_err());
    }
}
