//! `rainshine-obs` — deterministic observability for the rainshine
//! pipeline.
//!
//! Three layers:
//!
//! * [`Collector`] — the owned metric store (counters, gauges, log₂
//!   histograms, per-stage call/item/wall-time stats), all `BTreeMap`s so
//!   iteration and merging are key-ordered.
//! * [`Obs`] — the handle threaded through `dcsim`, `cart`, `stats`, and
//!   the bench binaries. Disabled handles are free (no lock, no clock
//!   read); parallel stages record into per-worker collectors and
//!   [`Obs::absorb`] them in worker-index order.
//! * [`RunReport`] — the serializable rollup. Its deterministic section
//!   (written by `--report PATH`) is byte-identical for a fixed seed at
//!   any `Parallelism` setting; wall-clock timings live in a separate
//!   section rendered only to the stderr human summary.

mod collector;
mod handle;
mod report;

pub use collector::{Collector, Histogram, StageStats};
pub use handle::{Obs, Span};
pub use report::{DeterministicReport, RunReport, StageCounts, WallTimes, SCHEMA_VERSION};
