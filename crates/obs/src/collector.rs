//! The metric store: counters, gauges, histograms, and per-stage stats.
//!
//! A [`Collector`] is plain owned data with no interior mutability, so a
//! parallel stage can hand each worker its own collector and merge them
//! back afterwards. Every map is a `BTreeMap`, so iteration — and
//! therefore serialization and [`Collector::merge`] — happens in stable
//! key order regardless of the order metrics were first touched.
//!
//! Determinism contract: counters, gauges, histograms, and the
//! `calls`/`items` halves of [`StageStats`] are pure functions of the
//! work performed (u64 sums are commutative, so even racy interleaving
//! through a shared lock cannot reorder them into different totals).
//! Only `wall_nanos` is wall-clock dependent; report builders must keep
//! it out of any byte-identity contract.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Wall-time and throughput accounting for one named stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageStats {
    /// Times the stage ran.
    pub calls: u64,
    /// Work items the stage processed (rows, tickets, trees, replicates —
    /// whatever the stage counts).
    pub items: u64,
    /// Total wall-clock time spent in the stage, in nanoseconds.
    /// **Non-deterministic**: excluded from the deterministic report.
    pub wall_nanos: u64,
}

/// A log₂-bucketed histogram of `u64` observations.
///
/// Bucket `b` holds values `v` with `bit_width(v) == b`, i.e. bucket 0 is
/// exactly zero, bucket 1 is `{1}`, bucket 2 is `{2, 3}`, bucket `b` is
/// `[2^(b-1), 2^b)`. Coarse, allocation-light, and — because every field
/// is an integer — merge order cannot change the result.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (saturating).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Bucket index (`bit_width` of the value) → observation count.
    pub buckets: BTreeMap<u8, u64>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        *self.buckets.entry(bucket_of(value)).or_insert(0) += 1;
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (&bucket, &n) in &other.buckets {
            *self.buckets.entry(bucket).or_insert(0) += n;
        }
    }
}

/// Bucket index of a value: its bit width (`0` for zero).
fn bucket_of(value: u64) -> u8 {
    (u64::BITS - value.leading_zeros()) as u8
}

/// An owned set of metrics: the unit of collection and merging.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Collector {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Named histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-stage call/item/wall-time accounting.
    pub stages: BTreeMap<String, StageStats>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Collector::default()
    }

    /// Adds `delta` to the counter `name`.
    pub fn incr(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records `value` in the histogram `name`.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_string()).or_default().observe(value);
    }

    /// Adds one call with `items` work items and `wall_nanos` of wall time
    /// to the stage `name`.
    pub fn record_stage(&mut self, name: &str, items: u64, wall_nanos: u64) {
        let s = self.stages.entry(name.to_string()).or_default();
        s.calls += 1;
        s.items += items;
        s.wall_nanos += wall_nanos;
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.stages.is_empty()
    }

    /// Folds `other` into `self`, visiting every map in ascending key order.
    ///
    /// Counters, histograms, and stage calls/items/wall sum; gauges from
    /// `other` overwrite. Because all summed quantities are integers,
    /// merging per-worker collectors in *any* fixed order yields the same
    /// totals — stages that want the stronger "stable order" guarantee
    /// (e.g. for gauges) merge worker collectors in worker-index order.
    pub fn merge(&mut self, other: &Collector) {
        for (name, &delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, &value) in &other.gauges {
            self.gauges.insert(name.clone(), value);
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
        for (name, stats) in &other.stages {
            let s = self.stages.entry(name.clone()).or_default();
            s.calls += stats.calls;
            s.items += stats.items;
            s.wall_nanos += stats.wall_nanos;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[&0], 1); // {0}
        assert_eq!(h.buckets[&1], 1); // {1}
        assert_eq!(h.buckets[&2], 2); // {2,3}
        assert_eq!(h.buckets[&3], 2); // {4..7}
        assert_eq!(h.buckets[&4], 1); // {8..15}
        assert_eq!(h.buckets[&11], 1); // {1024..2047}
        assert!((h.mean() - 1049.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_grouping_invariant() {
        // Simulate 6 work items spread over workers in two different ways:
        // the merged collector must be identical.
        let item = |i: u64| {
            let mut c = Collector::new();
            c.incr("items", 1);
            c.observe("value", i * i);
            c.record_stage("stage", 1, 0);
            c
        };
        let mut by_pairs = Collector::new();
        for chunk in [[0u64, 1], [2, 3], [4, 5]] {
            let mut w = Collector::new();
            for i in chunk {
                w.merge(&item(i));
            }
            by_pairs.merge(&w);
        }
        let mut flat = Collector::new();
        for i in 0..6u64 {
            flat.merge(&item(i));
        }
        assert_eq!(by_pairs, flat);
        assert_eq!(flat.counters["items"], 6);
        assert_eq!(flat.stages["stage"].calls, 6);
        assert_eq!(flat.stages["stage"].items, 6);
    }

    #[test]
    fn gauges_last_write_wins_on_merge() {
        let mut a = Collector::new();
        a.set_gauge("g", 1.0);
        let mut b = Collector::new();
        b.set_gauge("g", 2.0);
        a.merge(&b);
        assert_eq!(a.gauges["g"], 2.0);
    }

    #[test]
    fn empty_collector_reports_empty() {
        let mut c = Collector::new();
        assert!(c.is_empty());
        c.incr("x", 1);
        assert!(!c.is_empty());
    }
}
