//! The serializable run report.
//!
//! A [`RunReport`] splits what a run recorded into two sections with
//! different contracts:
//!
//! * [`DeterministicReport`] — counters, gauges, histograms, per-stage
//!   call/item counts, free-form metadata, and the data-quality payload.
//!   For a fixed seed this section is **byte-identical** at any
//!   `Parallelism` setting; it is what `--report PATH` writes to disk.
//! * [`WallTimes`] — per-stage wall-clock nanoseconds. Inherently
//!   machine- and schedule-dependent, so it is rendered only into the
//!   human summary on stderr and never into the report file.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};

use crate::collector::{Collector, Histogram};

/// Schema version written into every report.
pub const SCHEMA_VERSION: u32 = 1;

/// The deterministic half of a stage's stats: wall time stripped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCounts {
    /// Times the stage ran.
    pub calls: u64,
    /// Work items the stage processed.
    pub items: u64,
}

/// Everything about a run that is a pure function of (config, seed).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeterministicReport {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Free-form run metadata (scale, seed, corruption spec — but *not*
    /// the thread count, which must not influence this section's bytes).
    pub meta: BTreeMap<String, Value>,
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-stage call/item counts.
    pub stages: BTreeMap<String, StageCounts>,
    /// The sanitizer's `DataQualityReport`, serialized to a value tree by
    /// the caller (keeps this crate free of a telemetry dependency).
    pub quality: Option<Value>,
}

/// Per-stage wall-clock time. Non-deterministic; human summary only.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WallTimes {
    /// Sum of all stage wall times, in nanoseconds.
    pub total_nanos: u64,
    /// Stage name → wall nanoseconds.
    pub stages: BTreeMap<String, u64>,
}

/// A full run report: deterministic section plus wall-clock section.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// The byte-stable section written by `--report`.
    pub deterministic: DeterministicReport,
    /// Wall-clock timings for the human summary.
    pub wall: WallTimes,
}

impl RunReport {
    /// Builds a report from a collector snapshot, splitting stage stats
    /// into deterministic counts and wall times.
    pub fn from_collector(collector: &Collector) -> Self {
        let mut deterministic = DeterministicReport {
            schema_version: SCHEMA_VERSION,
            meta: BTreeMap::new(),
            counters: collector.counters.clone(),
            gauges: collector.gauges.clone(),
            histograms: collector.histograms.clone(),
            stages: BTreeMap::new(),
            quality: None,
        };
        let mut wall = WallTimes::default();
        for (name, stats) in &collector.stages {
            deterministic
                .stages
                .insert(name.clone(), StageCounts { calls: stats.calls, items: stats.items });
            wall.stages.insert(name.clone(), stats.wall_nanos);
            wall.total_nanos = wall.total_nanos.saturating_add(stats.wall_nanos);
        }
        RunReport { deterministic, wall }
    }

    /// Records a metadata entry in the deterministic section. Callers must
    /// not put schedule-dependent values (thread counts, timestamps) here.
    pub fn set_meta(&mut self, key: &str, value: Value) {
        self.deterministic.meta.insert(key.to_string(), value);
    }

    /// Attaches the data-quality payload to the deterministic section.
    pub fn set_quality(&mut self, quality: Value) {
        self.deterministic.quality = Some(quality);
    }

    /// The deterministic section as pretty-printed JSON — the exact bytes
    /// `--report PATH` writes (plus a trailing newline at the call site).
    pub fn deterministic_json(&self) -> String {
        serde_json::to_string_pretty(&self.deterministic).expect("report is serializable")
    }

    /// A human-readable multi-line summary including wall times, suitable
    /// for stderr. Never written to the report file.
    pub fn human_summary(&self) -> String {
        let mut out = String::new();
        out.push_str("== run report ==\n");
        for (key, value) in &self.deterministic.meta {
            let rendered =
                serde_json::to_string(value).unwrap_or_else(|_| "<unserializable>".to_string());
            out.push_str(&format!("  {key}: {rendered}\n"));
        }
        if !self.deterministic.stages.is_empty() {
            out.push_str("  stages (calls / items / wall):\n");
            for (name, counts) in &self.deterministic.stages {
                let nanos = self.wall.stages.get(name).copied().unwrap_or(0);
                out.push_str(&format!(
                    "    {name:<28} {:>6} / {:>10} / {:>10}\n",
                    counts.calls,
                    counts.items,
                    format_nanos(nanos)
                ));
            }
            out.push_str(&format!(
                "    {:<28} {:>6}   {:>10}   {:>10}\n",
                "total",
                "",
                "",
                format_nanos(self.wall.total_nanos)
            ));
        }
        if !self.deterministic.counters.is_empty() {
            out.push_str("  counters:\n");
            for (name, value) in &self.deterministic.counters {
                out.push_str(&format!("    {name:<28} {value}\n"));
            }
        }
        if !self.deterministic.gauges.is_empty() {
            out.push_str("  gauges:\n");
            for (name, value) in &self.deterministic.gauges {
                out.push_str(&format!("    {name:<28} {value}\n"));
            }
        }
        if !self.deterministic.histograms.is_empty() {
            out.push_str("  histograms (count / mean / min / max):\n");
            for (name, hist) in &self.deterministic.histograms {
                out.push_str(&format!(
                    "    {name:<28} {} / {:.2} / {} / {}\n",
                    hist.count,
                    hist.mean(),
                    hist.min,
                    hist.max
                ));
            }
        }
        out
    }
}

/// Formats nanoseconds as a short human duration.
fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.2}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.2}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.2}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_collector() -> Collector {
        let mut c = Collector::new();
        c.incr("tickets.total", 42);
        c.set_gauge("quality.drop_fraction", 0.125);
        c.observe("tree.depth", 9);
        c.record_stage("dcsim.generate", 42, 1_500_000);
        c.record_stage("forest.fit_tree", 8, 3_000_000);
        c
    }

    #[test]
    fn wall_times_are_split_out_of_the_deterministic_section() {
        let report = RunReport::from_collector(&sample_collector());
        assert_eq!(report.wall.stages["dcsim.generate"], 1_500_000);
        assert_eq!(report.wall.total_nanos, 4_500_000);
        assert_eq!(
            report.deterministic.stages["dcsim.generate"],
            StageCounts { calls: 1, items: 42 }
        );
        // The serialized deterministic section must not mention wall time.
        assert!(!report.deterministic_json().contains("nanos"));
    }

    #[test]
    fn deterministic_json_is_independent_of_wall_times() {
        let mut a = sample_collector();
        let mut b = sample_collector();
        a.record_stage("extra", 0, 999_999);
        b.record_stage("extra", 0, 1);
        let ra = RunReport::from_collector(&a);
        let rb = RunReport::from_collector(&b);
        assert_eq!(ra.deterministic_json(), rb.deterministic_json());
        assert_ne!(ra.wall, rb.wall);
    }

    #[test]
    fn report_roundtrips_through_serde() {
        let mut report = RunReport::from_collector(&sample_collector());
        report.set_meta("seed", Value::U64(7));
        report.set_quality(Value::Object(vec![("rows_dropped".to_string(), Value::U64(3))]));
        let value = serde::Serialize::to_value(&report);
        let back: RunReport = serde::Deserialize::from_value(&value).expect("roundtrip");
        assert_eq!(report, back);
    }

    #[test]
    fn human_summary_mentions_stages_and_counters() {
        let mut report = RunReport::from_collector(&sample_collector());
        report.set_meta("scale", Value::Str("small".to_string()));
        let text = report.human_summary();
        assert!(text.contains("dcsim.generate"));
        assert!(text.contains("tickets.total"));
        assert!(text.contains("quality.drop_fraction"));
        assert!(text.contains("scale"));
    }
}
