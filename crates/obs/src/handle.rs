//! The instrumentation handle threaded through the pipeline.
//!
//! [`Obs`] is a cheap clonable handle that is either *disabled* (every
//! call is a no-op — no lock, no clock read, no allocation) or *enabled*
//! (writes go to a shared [`Collector`] behind a mutex). Parallel stages
//! that need stronger ordering than the lock provides record into local
//! per-worker collectors and fold them back with [`Obs::absorb`] in
//! worker-index order.

use std::borrow::Cow;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::collector::Collector;

/// A cloneable, possibly-disabled handle to a shared [`Collector`].
#[derive(Debug, Clone, Default)]
pub struct Obs {
    shared: Option<Arc<Mutex<Collector>>>,
}

impl Obs {
    /// A handle that records nothing; every operation is a no-op.
    pub fn disabled() -> Self {
        Obs { shared: None }
    }

    /// A live handle backed by a fresh collector.
    pub fn enabled() -> Self {
        Obs { shared: Some(Arc::new(Mutex::new(Collector::new()))) }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// Adds `delta` to the counter `name`.
    pub fn incr(&self, name: &str, delta: u64) {
        if let Some(shared) = &self.shared {
            shared.lock().unwrap().incr(name, delta);
        }
    }

    /// Sets the gauge `name` (last write wins).
    pub fn gauge(&self, name: &str, value: f64) {
        if let Some(shared) = &self.shared {
            shared.lock().unwrap().set_gauge(name, value);
        }
    }

    /// Records `value` in the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        if let Some(shared) = &self.shared {
            shared.lock().unwrap().observe(name, value);
        }
    }

    /// Starts a stage span. Recorded (calls + items + wall time) when the
    /// returned guard drops; reads the clock only when enabled.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        self.span_inner(Cow::Borrowed(name))
    }

    /// [`Obs::span`] for stage names built at runtime (e.g. per-experiment
    /// stages like `experiment.t4`).
    pub fn span_owned(&self, name: String) -> Span<'_> {
        self.span_inner(Cow::Owned(name))
    }

    fn span_inner(&self, name: Cow<'static, str>) -> Span<'_> {
        Span {
            obs: self,
            name,
            items: 0,
            started: if self.shared.is_some() { Some(Instant::now()) } else { None },
        }
    }

    /// Folds a locally-accumulated collector into the shared one.
    ///
    /// Callers that fan out across workers must absorb per-worker
    /// collectors in a stable order (e.g. worker index) so last-write-wins
    /// gauges resolve identically at every thread count.
    pub fn absorb(&self, local: &Collector) {
        if let Some(shared) = &self.shared {
            shared.lock().unwrap().merge(local);
        }
    }

    /// A copy of everything recorded so far (empty when disabled).
    pub fn snapshot(&self) -> Collector {
        match &self.shared {
            Some(shared) => shared.lock().unwrap().clone(),
            None => Collector::new(),
        }
    }
}

/// RAII guard for one timed stage invocation.
///
/// On drop it records one call, the accumulated item count, and — when
/// the parent handle is enabled — the elapsed wall time under the span's
/// stage name.
#[derive(Debug)]
pub struct Span<'a> {
    obs: &'a Obs,
    name: Cow<'static, str>,
    items: u64,
    started: Option<Instant>,
}

impl Span<'_> {
    /// Attributes `n` work items to this span.
    pub fn add_items(&mut self, n: u64) {
        self.items += n;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(shared) = &self.obs.shared {
            let wall_nanos = self
                .started
                .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            shared.lock().unwrap().record_stage(&self.name, self.items, wall_nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let obs = Obs::disabled();
        obs.incr("c", 1);
        obs.gauge("g", 1.0);
        obs.observe("h", 1);
        {
            let mut span = obs.span("stage");
            span.add_items(10);
        }
        assert!(!obs.is_enabled());
        assert!(obs.snapshot().is_empty());
    }

    #[test]
    fn span_records_calls_items_and_time() {
        let obs = Obs::enabled();
        {
            let mut span = obs.span("stage");
            span.add_items(3);
        }
        {
            let mut span = obs.span("stage");
            span.add_items(4);
        }
        let snap = obs.snapshot();
        let stats = &snap.stages["stage"];
        assert_eq!(stats.calls, 2);
        assert_eq!(stats.items, 7);
    }

    #[test]
    fn owned_span_names_record_like_static_ones() {
        let obs = Obs::enabled();
        {
            let mut span = obs.span_owned(format!("experiment.{}", "t4"));
            span.add_items(6);
        }
        assert_eq!(obs.snapshot().stages["experiment.t4"].items, 6);
    }

    #[test]
    fn absorb_merges_local_collectors() {
        let obs = Obs::enabled();
        obs.incr("rows", 2);
        let mut local = Collector::new();
        local.incr("rows", 3);
        local.observe("h", 5);
        obs.absorb(&local);
        let snap = obs.snapshot();
        assert_eq!(snap.counters["rows"], 5);
        assert_eq!(snap.histograms["h"].count, 1);
    }

    #[test]
    fn clones_share_the_collector() {
        let obs = Obs::enabled();
        let other = obs.clone();
        other.incr("c", 1);
        obs.incr("c", 1);
        assert_eq!(obs.snapshot().counters["c"], 2);
    }
}
