//! Property-based tests for CART invariants.

use proptest::prelude::*;
use rainshine_cart::dataset::CartDataset;
use rainshine_cart::params::CartParams;
use rainshine_cart::prune::{cp_sequence, pruned};
use rainshine_cart::tree::Tree;
use rainshine_telemetry::table::{FeatureKind, Field, Schema, Table, TableBuilder, Value};

/// Builds a random regression table from generated (x, k, y) triples.
fn table_from(rows: &[(f64, u8, f64)]) -> Table {
    let schema = Schema::new(vec![
        Field::new("x", FeatureKind::Continuous),
        Field::new("k", FeatureKind::Nominal),
        Field::new("y", FeatureKind::Continuous),
    ]);
    let mut b = TableBuilder::new(schema);
    for (x, k, y) in rows {
        b.push_row(vec![
            Value::Continuous(*x),
            Value::Nominal(format!("c{k}")),
            Value::Continuous(*y),
        ])
        .unwrap();
    }
    b.build()
}

fn rows_strategy() -> impl Strategy<Value = Vec<(f64, u8, f64)>> {
    prop::collection::vec((-100.0f64..100.0, 0u8..5, -50.0f64..50.0), 30..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_row_lands_in_exactly_one_leaf(rows in rows_strategy()) {
        let table = table_from(&rows);
        let ds = CartDataset::regression(&table, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_min_sizes(10, 5)).unwrap();
        let leaves = tree.leaf_assignments(&table).unwrap();
        prop_assert_eq!(leaves.len(), table.rows());
        for &leaf in &leaves {
            prop_assert!(tree.nodes()[leaf].is_leaf());
        }
        // Node sizes: leaf n's sum to the dataset size.
        let total: usize = tree.leaves().iter().map(|l| l.n).sum();
        prop_assert_eq!(total, table.rows());
        // And each internal node's n equals its children's sum.
        for node in tree.nodes() {
            if let (Some(l), Some(r)) = (node.left, node.right) {
                prop_assert_eq!(node.n, tree.nodes()[l].n + tree.nodes()[r].n);
            }
        }
    }

    #[test]
    fn predictions_stay_within_target_range(rows in rows_strategy()) {
        let table = table_from(&rows);
        let ds = CartDataset::regression(&table, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_min_sizes(10, 5)).unwrap();
        let y = table.continuous("y").unwrap();
        let (min, max) = y.iter().fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
        for p in tree.predict(&table).unwrap() {
            prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
            prop_assert!(p.is_finite());
        }
    }

    #[test]
    fn splits_strictly_reduce_risk(rows in rows_strategy()) {
        let table = table_from(&rows);
        let ds = CartDataset::regression(&table, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_min_sizes(10, 5)).unwrap();
        for node in tree.nodes() {
            if let (Some(l), Some(r)) = (node.left, node.right) {
                let child_risk = tree.nodes()[l].risk + tree.nodes()[r].risk;
                prop_assert!(
                    child_risk <= node.risk + 1e-6,
                    "children risk {child_risk} exceeds parent {}",
                    node.risk
                );
                prop_assert!(node.improvement >= -1e-9);
            }
        }
    }

    #[test]
    fn pruning_is_monotone_in_cp(rows in rows_strategy()) {
        let table = table_from(&rows);
        let ds = CartDataset::regression(&table, "y", &["x", "k"]).unwrap();
        let tree =
            Tree::fit(&ds, &CartParams::default().with_min_sizes(10, 5).with_cp(0.0001)).unwrap();
        let mut last = usize::MAX;
        for cp in [0.0, 0.001, 0.01, 0.1, 1.0] {
            let p = pruned(&tree, cp);
            prop_assert!(p.leaf_count() <= last);
            last = p.leaf_count();
        }
        prop_assert_eq!(pruned(&tree, 1.0).leaf_count(), 1);
    }

    #[test]
    fn cp_sequence_is_well_formed(rows in rows_strategy()) {
        let table = table_from(&rows);
        let ds = CartDataset::regression(&table, "y", &["x", "k"]).unwrap();
        let tree =
            Tree::fit(&ds, &CartParams::default().with_min_sizes(10, 5).with_cp(0.0001)).unwrap();
        let seq = cp_sequence(&tree);
        prop_assert!(!seq.is_empty());
        for w in seq.windows(2) {
            prop_assert!(w[0].cp <= w[1].cp + 1e-9);
            prop_assert!(w[0].leaves >= w[1].leaves);
        }
        prop_assert_eq!(seq.last().unwrap().leaves, 1);
    }

    #[test]
    fn fitting_is_deterministic(rows in rows_strategy()) {
        let table = table_from(&rows);
        let ds = CartDataset::regression(&table, "y", &["x", "k"]).unwrap();
        let params = CartParams::default().with_min_sizes(10, 5);
        let a = Tree::fit(&ds, &params).unwrap();
        let b = Tree::fit(&ds, &params).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn variable_importance_sums_to_hundred_or_zero(rows in rows_strategy()) {
        let table = table_from(&rows);
        let ds = CartDataset::regression(&table, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_min_sizes(10, 5)).unwrap();
        let total: f64 = tree.variable_importance().iter().map(|(_, s)| s).sum();
        if tree.leaf_count() > 1 {
            prop_assert!((total - 100.0).abs() < 1e-6);
        } else {
            prop_assert_eq!(total, 0.0);
        }
    }
}
