//! Dataset view binding a [`Table`] to a target column and feature list.

use rainshine_telemetry::table::{FeatureKind, Table};

use crate::{CartError, Result};

/// The target variable of a tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Target<'a> {
    /// Continuous response (regression / `anova`).
    Regression(&'a [f64]),
    /// Nominal response (classification / Gini).
    Classification {
        /// Per-row class codes.
        codes: &'a [u32],
        /// Class labels indexed by code.
        classes: &'a [String],
    },
}

impl Target<'_> {
    /// Number of classes; 0 for regression.
    pub fn class_count(&self) -> usize {
        match self {
            Target::Regression(_) => 0,
            Target::Classification { classes, .. } => classes.len(),
        }
    }
}

/// A feature column borrowed from the table.
#[derive(Debug, Clone, PartialEq)]
pub enum FeatureColumn<'a> {
    /// Continuous values.
    Continuous(&'a [f64]),
    /// Ordinal levels.
    Ordinal(&'a [i64]),
    /// Nominal codes plus category labels.
    Nominal {
        /// Per-row category codes.
        codes: &'a [u32],
        /// Category labels indexed by code.
        categories: &'a [String],
    },
}

impl FeatureColumn<'_> {
    /// Human-readable kind name, used in kind-mismatch errors.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FeatureColumn::Continuous(_) => "continuous",
            FeatureColumn::Ordinal(_) => "ordinal",
            FeatureColumn::Nominal { .. } => "nominal",
        }
    }
}

/// A CART-ready dataset: a table, a validated target, and a feature list.
///
/// Construct with [`CartDataset::regression`] or
/// [`CartDataset::classification`].
#[derive(Debug, Clone)]
pub struct CartDataset<'a> {
    table: &'a Table,
    target_name: String,
    feature_names: Vec<String>,
    is_regression: bool,
}

impl<'a> CartDataset<'a> {
    /// Creates a regression dataset (continuous target).
    ///
    /// # Errors
    ///
    /// Returns an error if the table is empty, the target is missing or not
    /// continuous, the feature list is empty, any feature is missing, or
    /// the target appears among the features.
    pub fn regression(table: &'a Table, target: &str, features: &[&str]) -> Result<Self> {
        table.continuous(target).map_err(|_| CartError::TargetKind { expected: "continuous" })?;
        Self::new(table, target, features, true)
    }

    /// Creates a classification dataset (nominal target).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CartDataset::regression`], with the target
    /// required to be nominal.
    pub fn classification(table: &'a Table, target: &str, features: &[&str]) -> Result<Self> {
        table.nominal_codes(target).map_err(|_| CartError::TargetKind { expected: "nominal" })?;
        Self::new(table, target, features, false)
    }

    fn new(table: &'a Table, target: &str, features: &[&str], is_regression: bool) -> Result<Self> {
        if table.is_empty() {
            return Err(CartError::EmptyDataset);
        }
        if features.is_empty() {
            return Err(CartError::NoFeatures);
        }
        for &f in features {
            if f == target {
                return Err(CartError::TargetIsFeature { name: f.to_owned() });
            }
            if table.schema().index_of(f).is_none() {
                return Err(CartError::Telemetry(
                    rainshine_telemetry::TelemetryError::UnknownColumn { name: f.to_owned() },
                ));
            }
        }
        Ok(CartDataset {
            table,
            target_name: target.to_owned(),
            feature_names: features.iter().map(|&s| s.to_owned()).collect(),
            is_regression,
        })
    }

    /// The underlying table.
    pub fn table(&self) -> &'a Table {
        self.table
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.table.rows()
    }

    /// Whether the dataset has no rows (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this is a regression dataset.
    pub fn is_regression(&self) -> bool {
        self.is_regression
    }

    /// The target column name.
    pub fn target_name(&self) -> &str {
        &self.target_name
    }

    /// Feature names in declaration order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The target values.
    ///
    /// # Panics
    ///
    /// Never panics for a value constructed through the public constructors
    /// (column presence and kind were validated there).
    pub fn target(&self) -> Target<'a> {
        if self.is_regression {
            Target::Regression(self.table.continuous(&self.target_name).expect("validated"))
        } else {
            Target::Classification {
                codes: self.table.nominal_codes(&self.target_name).expect("validated"),
                classes: self.table.categories(&self.target_name).expect("validated"),
            }
        }
    }

    /// A feature's column by name.
    ///
    /// # Errors
    ///
    /// Returns an error if `name` is not one of the dataset's features.
    pub fn feature(&self, name: &str) -> Result<FeatureColumn<'a>> {
        if !self.feature_names.iter().any(|f| f == name) {
            return Err(CartError::MissingFeature { name: name.to_owned() });
        }
        feature_column(self.table, name)
    }
}

/// Reads a column of any kind from a table as a [`FeatureColumn`].
pub(crate) fn feature_column<'t>(table: &'t Table, name: &str) -> Result<FeatureColumn<'t>> {
    let idx = table
        .schema()
        .index_of(name)
        .ok_or_else(|| CartError::MissingFeature { name: name.to_owned() })?;
    let kind = table.schema().fields()[idx].kind;
    Ok(match kind {
        FeatureKind::Continuous => FeatureColumn::Continuous(table.continuous(name)?),
        FeatureKind::Ordinal => FeatureColumn::Ordinal(table.ordinal(name)?),
        FeatureKind::Nominal => FeatureColumn::Nominal {
            codes: table.nominal_codes(name)?,
            categories: table.categories(name)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_telemetry::table::{Field, Schema, TableBuilder, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("k", FeatureKind::Nominal),
            Field::new("y", FeatureKind::Continuous),
            Field::new("label", FeatureKind::Nominal),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..10 {
            b.push_row(vec![
                Value::Continuous(i as f64),
                Value::Nominal(if i % 2 == 0 { "even".into() } else { "odd".into() }),
                Value::Continuous(i as f64 * 2.0),
                Value::Nominal(if i < 5 { "low".into() } else { "high".into() }),
            ])
            .unwrap();
        }
        b.build()
    }

    #[test]
    fn regression_dataset_validates() {
        let t = table();
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        assert_eq!(ds.len(), 10);
        assert!(ds.is_regression());
        assert!(matches!(ds.target(), Target::Regression(_)));
        assert!(matches!(ds.feature("x").unwrap(), FeatureColumn::Continuous(_)));
        assert!(matches!(ds.feature("k").unwrap(), FeatureColumn::Nominal { .. }));
    }

    #[test]
    fn classification_dataset_validates() {
        let t = table();
        let ds = CartDataset::classification(&t, "label", &["x"]).unwrap();
        assert!(!ds.is_regression());
        match ds.target() {
            Target::Classification { classes, .. } => assert_eq!(classes.len(), 2),
            _ => panic!("expected classification target"),
        }
    }

    #[test]
    fn rejects_bad_construction() {
        let t = table();
        assert!(matches!(
            CartDataset::regression(&t, "k", &["x"]),
            Err(CartError::TargetKind { .. })
        ));
        assert!(matches!(
            CartDataset::classification(&t, "y", &["x"]),
            Err(CartError::TargetKind { .. })
        ));
        assert!(matches!(CartDataset::regression(&t, "y", &[]), Err(CartError::NoFeatures)));
        assert!(matches!(
            CartDataset::regression(&t, "y", &["y"]),
            Err(CartError::TargetIsFeature { .. })
        ));
        assert!(CartDataset::regression(&t, "y", &["missing"]).is_err());
        assert!(matches!(
            CartDataset::regression(&t, "y", &["x"]).unwrap().feature("k"),
            Err(CartError::MissingFeature { .. })
        ));
    }
}
