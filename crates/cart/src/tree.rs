//! Tree fitting, prediction, and inspection.

use std::collections::HashMap;
use std::fmt::Write as _;

use rainshine_telemetry::table::Table;
use serde::{Deserialize, Serialize};

use crate::dataset::{feature_column, CartDataset, FeatureColumn, Target};
use crate::params::CartParams;
use crate::split::{best_split, best_split_presorted, sorted_order, RiskAcc, SplitRule};
use crate::{CartError, Result};

/// Whether a tree predicts a continuous mean or a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeKind {
    /// Continuous target, variance impurity (`rpart` "anova").
    Regression,
    /// Nominal target, Gini impurity.
    Classification,
}

/// One node of a fitted tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Index of this node in [`Tree::nodes`].
    pub id: usize,
    /// Depth (root = 0).
    pub depth: usize,
    /// Training observations reaching this node.
    pub n: usize,
    /// Node risk: deviance (regression) or n·Gini (classification).
    pub risk: f64,
    /// Mean response (regression) or majority-class code (classification).
    pub prediction: f64,
    /// Per-class training counts (classification only).
    pub class_counts: Option<Vec<f64>>,
    /// Split applied at this node (`None` for leaves).
    pub rule: Option<SplitRule>,
    /// Left child index.
    pub left: Option<usize>,
    /// Right child index.
    pub right: Option<usize>,
    /// Risk decrease achieved by this node's split (0 for leaves).
    pub improvement: f64,
}

impl Node {
    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.rule.is_none()
    }
}

/// A fitted CART model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    kind: TreeKind,
    nodes: Vec<Node>,
    feature_names: Vec<String>,
    target_name: String,
    root_risk: f64,
    classes: Vec<String>,
}

impl Tree {
    /// Fits a tree to the whole dataset.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parameters or an empty dataset.
    pub fn fit(dataset: &CartDataset<'_>, params: &CartParams) -> Result<Self> {
        let rows: Vec<usize> = (0..dataset.len()).collect();
        Self::fit_on_rows(dataset, params, &rows)
    }

    /// Fits a tree using only the given training rows (cross-validation
    /// folds and bootstrap resamples use this; `rows` may repeat).
    ///
    /// Growth uses the presort-once / partition-many scheme: each
    /// ordered feature is stably sorted **once** over `rows` into an
    /// index permutation, and splitting a node stably partitions the
    /// per-feature segments in place (one shared scratch buffer, no
    /// per-node allocation or re-sort). Because the sort is stable and
    /// a stable partition of a sorted sequence equals a stable sort of
    /// the partitioned rows, the fitted tree is bit-identical to the
    /// per-node-sort reference ([`Tree::fit_on_rows_per_node_sort`]).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parameters or an empty row set.
    pub fn fit_on_rows(
        dataset: &CartDataset<'_>,
        params: &CartParams,
        rows: &[usize],
    ) -> Result<Self> {
        params.validate()?;
        if rows.is_empty() {
            return Err(CartError::EmptyDataset);
        }
        let target = dataset.target();
        let features: Vec<(String, FeatureColumn<'_>)> = dataset
            .feature_names()
            .iter()
            .map(|name| Ok((name.clone(), dataset.feature(name)?)))
            .collect::<Result<_>>()?;
        let mut tree = Tree::skeleton(dataset, &target);

        // Presort: one NaN-filtered, stably sorted index array per
        // ordered feature, partitioned (never re-sorted) down the tree.
        let mut rows_arr: Vec<usize> = rows.to_vec();
        let mut feat_orders: Vec<Option<Vec<usize>>> = features
            .iter()
            .map(|(_, column)| match column {
                FeatureColumn::Continuous(values) => Some(sorted_order(rows, |r| values[r])),
                FeatureColumn::Ordinal(values) => Some(sorted_order(rows, |r| values[r] as f64)),
                FeatureColumn::Nominal { .. } => None,
            })
            .collect();
        let root_segs: Vec<(usize, usize)> =
            feat_orders.iter().map(|o| (0, o.as_ref().map_or(0, Vec::len))).collect();

        // Workspace buffers shared by every split of this fit.
        let mut goes_left = vec![false; dataset.len()];
        let mut scratch: Vec<usize> = Vec::with_capacity(rows_arr.len());

        // Depth-first growth with an explicit stack of
        // (node id, rows segment, per-feature order segments).
        let root_id = tree.push_node(&target, &rows_arr, 0);
        tree.root_risk = tree.nodes[root_id].risk;
        let mut stack: Vec<GrowFrame> = vec![(root_id, (0, rows_arr.len()), root_segs)];
        while let Some((node_id, (lo, hi), feat_segs)) = stack.pop() {
            let depth = tree.nodes[node_id].depth;
            let risk = tree.nodes[node_id].risk;
            if depth >= params.max_depth || hi - lo < params.min_split || risk <= 1e-12 {
                continue;
            }
            let split = {
                let orders: Vec<Option<&[usize]>> = feat_orders
                    .iter()
                    .zip(&feat_segs)
                    .map(|(order, &(a, b))| order.as_ref().map(|v| &v[a..b]))
                    .collect();
                best_split_presorted(&target, &features, &rows_arr[lo..hi], &orders, risk, params)
            };
            let Some(split) = split else {
                continue;
            };
            // rpart semantics: the split must improve fit by cp · root risk.
            if tree.root_risk > 0.0 && split.improvement < params.cp * tree.root_risk {
                continue;
            }
            let column = features
                .iter()
                .find(|(n, _)| n == split.rule.feature())
                .map(|(_, c)| c)
                .expect("split rule references a known feature");
            // The rule is a pure function of a row's value, so one flag
            // per row id routes every occurrence (bootstrap duplicates
            // included) consistently.
            for &r in &rows_arr[lo..hi] {
                goes_left[r] = split.rule.goes_left(column, r);
            }
            let left_n = rows_arr[lo..hi].iter().filter(|&&r| goes_left[r]).count();
            if left_n == 0 || left_n == hi - lo {
                continue;
            }
            stable_partition(&mut rows_arr[lo..hi], &goes_left, &mut scratch);
            let mid = lo + left_n;
            let mut left_segs = Vec::with_capacity(feat_segs.len());
            let mut right_segs = Vec::with_capacity(feat_segs.len());
            for (order, &(a, b)) in feat_orders.iter_mut().zip(&feat_segs) {
                match order {
                    Some(v) => {
                        let ln = stable_partition(&mut v[a..b], &goes_left, &mut scratch);
                        left_segs.push((a, a + ln));
                        right_segs.push((a + ln, b));
                    }
                    None => {
                        left_segs.push((0, 0));
                        right_segs.push((0, 0));
                    }
                }
            }
            let left_id = tree.push_node(&target, &rows_arr[lo..mid], depth + 1);
            let right_id = tree.push_node(&target, &rows_arr[mid..hi], depth + 1);
            {
                let node = &mut tree.nodes[node_id];
                node.rule = Some(split.rule);
                node.improvement = split.improvement;
                node.left = Some(left_id);
                node.right = Some(right_id);
            }
            stack.push((left_id, (lo, mid), left_segs));
            stack.push((right_id, (mid, hi), right_segs));
        }
        Ok(tree)
    }

    /// The pre-refactor fitter, which re-sorts every ordered feature at
    /// every node. Kept as the reference implementation for the
    /// presort-equivalence regression test and the `split_scan`
    /// microbench; analysis code should use [`Tree::fit_on_rows`].
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parameters or an empty row set.
    #[doc(hidden)]
    pub fn fit_on_rows_per_node_sort(
        dataset: &CartDataset<'_>,
        params: &CartParams,
        rows: &[usize],
    ) -> Result<Self> {
        params.validate()?;
        if rows.is_empty() {
            return Err(CartError::EmptyDataset);
        }
        let target = dataset.target();
        let features: Vec<(String, FeatureColumn<'_>)> = dataset
            .feature_names()
            .iter()
            .map(|name| Ok((name.clone(), dataset.feature(name)?)))
            .collect::<Result<_>>()?;
        let mut tree = Tree::skeleton(dataset, &target);

        // Depth-first growth with an explicit stack of (node id, rows).
        let root_id = tree.push_node(&target, rows, 0);
        tree.root_risk = tree.nodes[root_id].risk;
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(root_id, rows.to_vec())];
        while let Some((node_id, node_rows)) = stack.pop() {
            let depth = tree.nodes[node_id].depth;
            let risk = tree.nodes[node_id].risk;
            if depth >= params.max_depth || node_rows.len() < params.min_split || risk <= 1e-12 {
                continue;
            }
            let Some(split) = best_split(&target, &features, &node_rows, risk, params) else {
                continue;
            };
            // rpart semantics: the split must improve fit by cp · root risk.
            if tree.root_risk > 0.0 && split.improvement < params.cp * tree.root_risk {
                continue;
            }
            let column = features
                .iter()
                .find(|(n, _)| n == split.rule.feature())
                .map(|(_, c)| c)
                .expect("split rule references a known feature");
            let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
                node_rows.iter().partition(|&&r| split.rule.goes_left(column, r));
            if left_rows.is_empty() || right_rows.is_empty() {
                continue;
            }
            let left_id = tree.push_node(&target, &left_rows, depth + 1);
            let right_id = tree.push_node(&target, &right_rows, depth + 1);
            {
                let node = &mut tree.nodes[node_id];
                node.rule = Some(split.rule);
                node.improvement = split.improvement;
                node.left = Some(left_id);
                node.right = Some(right_id);
            }
            stack.push((left_id, left_rows));
            stack.push((right_id, right_rows));
        }
        Ok(tree)
    }

    /// An empty tree carrying the dataset's metadata, ready for growth.
    fn skeleton(dataset: &CartDataset<'_>, target: &Target<'_>) -> Tree {
        let classes = match target {
            Target::Regression(_) => Vec::new(),
            Target::Classification { classes, .. } => classes.to_vec(),
        };
        let kind =
            if dataset.is_regression() { TreeKind::Regression } else { TreeKind::Classification };
        Tree {
            kind,
            nodes: Vec::new(),
            feature_names: dataset.feature_names().to_vec(),
            target_name: dataset.target_name().to_owned(),
            root_risk: 0.0,
            classes,
        }
    }

    fn push_node(&mut self, target: &Target<'_>, rows: &[usize], depth: usize) -> usize {
        let mut acc = RiskAcc::empty_like(target);
        for &r in rows {
            acc.add_row(target, r);
        }
        let (prediction, class_counts) = match (target, &acc) {
            (Target::Regression(_), RiskAcc::Reg { n, sum, .. }) => (sum / n, None),
            (Target::Classification { .. }, RiskAcc::Cls { counts, .. }) => {
                let majority = counts
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite counts"))
                    .map(|(i, _)| i as f64)
                    .unwrap_or(0.0);
                (majority, Some(counts.clone()))
            }
            _ => unreachable!("accumulator kind matches target"),
        };
        let id = self.nodes.len();
        self.nodes.push(Node {
            id,
            depth,
            n: rows.len(),
            risk: acc.risk(),
            prediction,
            class_counts,
            rule: None,
            left: None,
            right: None,
            improvement: 0.0,
        });
        id
    }

    /// The tree kind.
    pub fn kind(&self) -> TreeKind {
        self.kind
    }

    /// All nodes; index 0 is the root.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The root node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Risk of the root node (total deviance / Gini mass).
    pub fn root_risk(&self) -> f64 {
        self.root_risk
    }

    /// Class labels (empty for regression).
    pub fn classes(&self) -> &[String] {
        &self.classes
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Leaf nodes in id order.
    pub fn leaves(&self) -> Vec<&Node> {
        self.nodes.iter().filter(|n| n.is_leaf()).collect()
    }

    /// Maximum node depth.
    pub fn depth(&self) -> usize {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Feature names the tree may reference.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// The target column name the tree was fitted on.
    pub fn target_name(&self) -> &str {
        &self.target_name
    }

    /// Resolves the feature columns the tree needs from `table`.
    fn resolve_columns<'t>(&self, table: &'t Table) -> Result<HashMap<&str, FeatureColumn<'t>>> {
        let mut map = HashMap::new();
        for name in &self.feature_names {
            if table.schema().index_of(name).is_none() {
                return Err(CartError::MissingFeature { name: name.clone() });
            }
            map.insert(name.as_str(), feature_column(table, name)?);
        }
        Ok(map)
    }

    /// The leaf node id each row of `table` lands in.
    ///
    /// Unseen nominal categories route to the right child (they are not in
    /// any `left_codes` set).
    ///
    /// # Errors
    ///
    /// Returns [`CartError::MissingFeature`] if `table` lacks a feature the
    /// tree references, or [`CartError::ColumnKindMismatch`] if a feature's
    /// kind drifted from the fit-time schema.
    pub fn leaf_assignments(&self, table: &Table) -> Result<Vec<usize>> {
        let columns = self.resolve_columns(table)?;
        (0..table.rows()).map(|row| self.walk(&columns, row)).collect()
    }

    fn walk(&self, columns: &HashMap<&str, FeatureColumn<'_>>, row: usize) -> Result<usize> {
        let mut id = 0;
        loop {
            let node = &self.nodes[id];
            let Some(rule) = &node.rule else {
                return Ok(id);
            };
            let column = &columns[rule.feature()];
            id = if rule.try_goes_left(column, row)? {
                node.left.expect("split node has left child")
            } else {
                node.right.expect("split node has right child")
            };
        }
    }

    /// Predicted values for every row of `table`: the leaf mean for
    /// regression, the majority class code for classification.
    ///
    /// # Errors
    ///
    /// See [`Tree::leaf_assignments`].
    pub fn predict(&self, table: &Table) -> Result<Vec<f64>> {
        Ok(self
            .leaf_assignments(table)?
            .into_iter()
            .map(|leaf| self.nodes[leaf].prediction)
            .collect())
    }

    /// Predicted values for the given rows of `table`, in order — like
    /// `predict(&table.subset(rows))` without materializing the subset.
    ///
    /// # Errors
    ///
    /// See [`Tree::leaf_assignments`].
    ///
    /// # Panics
    ///
    /// Panics if a row index is out of bounds.
    pub fn predict_rows(&self, table: &Table, rows: &[usize]) -> Result<Vec<f64>> {
        let columns = self.resolve_columns(table)?;
        rows.iter()
            .map(|&row| self.walk(&columns, row).map(|leaf| self.nodes[leaf].prediction))
            .collect()
    }

    /// Variable importance: total risk decrease attributed to each feature
    /// across all splits, normalized to sum to 100. Features never used
    /// score 0. Sorted descending.
    pub fn variable_importance(&self) -> Vec<(String, f64)> {
        let mut raw: HashMap<&str, f64> = HashMap::new();
        for node in &self.nodes {
            if let Some(rule) = &node.rule {
                *raw.entry(rule.feature()).or_insert(0.0) += node.improvement;
            }
        }
        let total: f64 = raw.values().sum();
        let mut out: Vec<(String, f64)> = self
            .feature_names
            .iter()
            .map(|name| {
                let v = raw.get(name.as_str()).copied().unwrap_or(0.0);
                (name.clone(), if total > 0.0 { 100.0 * v / total } else { 0.0 })
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importance"));
        out
    }

    /// The chain of split descriptions from the root down to `leaf_id`,
    /// e.g. `["datacenter in {DC1}", "temperature_f <= 78.4"]`. Each entry
    /// is suffixed with `" (no)"` when the path takes the right branch.
    ///
    /// Returns an empty vector for the root, or if `leaf_id` is unknown.
    pub fn path_to(&self, leaf_id: usize) -> Vec<String> {
        // Parent links are implicit; rebuild by search (trees are small).
        let mut parent: HashMap<usize, (usize, bool)> = HashMap::new();
        for node in &self.nodes {
            if let (Some(l), Some(r)) = (node.left, node.right) {
                parent.insert(l, (node.id, true));
                parent.insert(r, (node.id, false));
            }
        }
        let mut path = Vec::new();
        let mut id = leaf_id;
        while let Some(&(p, went_left)) = parent.get(&id) {
            let rule = self.nodes[p].rule.as_ref().expect("parent has rule");
            let mut desc = rule.describe();
            if !went_left {
                desc.push_str(" (no)");
            }
            path.push(desc);
            id = p;
        }
        path.reverse();
        path
    }

    /// A compact text rendering of the tree, one node per line.
    pub fn format_text(&self) -> String {
        let mut out = String::new();
        self.format_node(0, 0, &mut out);
        out
    }

    fn format_node(&self, id: usize, indent: usize, out: &mut String) {
        let node = &self.nodes[id];
        let pad = "  ".repeat(indent);
        match &node.rule {
            Some(rule) => {
                let _ = writeln!(
                    out,
                    "{pad}[{id}] n={} risk={:.3} pred={:.4} split: {}",
                    node.n,
                    node.risk,
                    node.prediction,
                    rule.describe()
                );
                self.format_node(node.left.expect("split has left"), indent + 1, out);
                self.format_node(node.right.expect("split has right"), indent + 1, out);
            }
            None => {
                let _ = writeln!(
                    out,
                    "{pad}[{id}] n={} risk={:.3} pred={:.4} (leaf)",
                    node.n, node.risk, node.prediction
                );
            }
        }
    }

    /// Replaces the subtree rooted at `node_id` with a leaf (used by
    /// pruning). Descendant nodes become unreachable but remain in the
    /// arena; [`Tree::compact`] removes them.
    pub(crate) fn collapse(&mut self, node_id: usize) {
        let node = &mut self.nodes[node_id];
        node.rule = None;
        node.left = None;
        node.right = None;
        node.improvement = 0.0;
    }

    /// Rebuilds the node arena dropping unreachable nodes and renumbering
    /// ids (root stays 0).
    pub(crate) fn compact(&mut self) {
        let mut keep = Vec::new();
        let mut remap: HashMap<usize, usize> = HashMap::new();
        let mut stack = vec![0usize];
        // DFS preserving a stable order.
        while let Some(id) = stack.pop() {
            if remap.contains_key(&id) {
                continue;
            }
            remap.insert(id, keep.len());
            keep.push(id);
            let node = &self.nodes[id];
            if let (Some(l), Some(r)) = (node.left, node.right) {
                stack.push(r);
                stack.push(l);
            }
        }
        let mut new_nodes = Vec::with_capacity(keep.len());
        for &old_id in &keep {
            let mut node = self.nodes[old_id].clone();
            node.id = remap[&old_id];
            node.left = node.left.map(|l| remap[&l]);
            node.right = node.right.map(|r| remap[&r]);
            new_nodes.push(node);
        }
        new_nodes.sort_by_key(|n| n.id);
        self.nodes = new_nodes;
    }
}

/// One pending node on the presort fitter's growth stack: node id, its
/// `(lo, hi)` range of the shared rows array, and the `(lo, hi)` segment
/// of every per-feature order array.
type GrowFrame = (usize, (usize, usize), Vec<(usize, usize)>);

/// Stably partitions `seg` in place by the per-row-id `goes_left` flags
/// (left rows first, both sides keeping their relative order) and
/// returns the left count. `scratch` is a reusable buffer so splitting a
/// node allocates nothing once it has grown to the root segment size.
fn stable_partition(seg: &mut [usize], goes_left: &[bool], scratch: &mut Vec<usize>) -> usize {
    scratch.clear();
    scratch.extend_from_slice(seg);
    let mut write = 0;
    for &r in scratch.iter() {
        if goes_left[r] {
            seg[write] = r;
            write += 1;
        }
    }
    let left_n = write;
    for &r in scratch.iter() {
        if !goes_left[r] {
            seg[write] = r;
            write += 1;
        }
    }
    left_n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_telemetry::table::{FeatureKind, Field, Schema, TableBuilder, Value};

    /// y = 1 for x<30; 5 for 30<=x<70 and k=="a"; 9 otherwise.
    fn step_table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("k", FeatureKind::Nominal),
            Field::new("y", FeatureKind::Continuous),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..n {
            let x = (i % 100) as f64;
            let k = if i % 2 == 0 { "a" } else { "b" };
            let y = if x < 30.0 {
                1.0
            } else if x < 70.0 && k == "a" {
                5.0
            } else {
                9.0
            };
            b.push_row(vec![Value::Continuous(x), k.into(), Value::Continuous(y)]).unwrap();
        }
        b.build()
    }

    #[test]
    fn fits_and_recovers_structure() {
        let t = step_table(400);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
        assert!(tree.leaf_count() >= 3, "tree: {}", tree.format_text());
        // Predictions reproduce the generating rule exactly (pure leaves).
        let preds = tree.predict(&t).unwrap();
        let y = t.continuous("y").unwrap();
        for (p, target) in preds.iter().zip(y) {
            assert!((p - target).abs() < 1e-9, "pred {p} target {target}");
        }
    }

    #[test]
    fn every_row_lands_in_exactly_one_leaf() {
        let t = step_table(200);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
        let leaves = tree.leaf_assignments(&t).unwrap();
        assert_eq!(leaves.len(), t.rows());
        for &leaf in &leaves {
            assert!(tree.nodes()[leaf].is_leaf());
        }
        // Leaf sizes sum to the dataset size.
        let total: usize = tree.leaves().iter().map(|l| l.n).sum();
        assert_eq!(total, t.rows());
    }

    #[test]
    fn importance_ranks_informative_feature_first() {
        let t = step_table(400);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
        let imp = tree.variable_importance();
        assert_eq!(imp[0].0, "x");
        assert!(imp[0].1 > imp[1].1);
        let total: f64 = imp.iter().map(|(_, v)| v).sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn cp_controls_tree_size() {
        let t = step_table(400);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let small = Tree::fit(&ds, &CartParams::default().with_cp(0.5)).unwrap();
        let large = Tree::fit(&ds, &CartParams::default().with_cp(0.0001)).unwrap();
        assert!(small.leaf_count() <= large.leaf_count());
        assert!(small.leaf_count() >= 1);
    }

    #[test]
    fn max_depth_respected() {
        let t = step_table(400);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_max_depth(1)).unwrap();
        assert!(tree.depth() <= 1);
        assert!(tree.leaf_count() <= 2);
    }

    #[test]
    fn constant_target_single_leaf() {
        let schema = Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("y", FeatureKind::Continuous),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..50 {
            b.push_row(vec![Value::Continuous(i as f64), Value::Continuous(3.0)]).unwrap();
        }
        let t = b.build();
        let ds = CartDataset::regression(&t, "y", &["x"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.root().prediction, 3.0);
    }

    #[test]
    fn classification_tree_predicts_classes() {
        let schema = Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("c", FeatureKind::Nominal),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..200 {
            let x = i as f64;
            let c = if x < 100.0 { "low" } else { "high" };
            b.push_row(vec![Value::Continuous(x), c.into()]).unwrap();
        }
        let t = b.build();
        let ds = CartDataset::classification(&t, "c", &["x"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
        assert_eq!(tree.kind(), TreeKind::Classification);
        assert_eq!(tree.classes(), &["low", "high"]);
        let preds = tree.predict(&t).unwrap();
        let codes = t.nominal_codes("c").unwrap();
        let correct = preds.iter().zip(codes).filter(|(p, &c)| **p as u32 == c).count();
        assert_eq!(correct, 200, "perfectly separable");
    }

    #[test]
    fn path_to_describes_route() {
        let t = step_table(400);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
        let leaf = tree.leaves()[0].id;
        let path = tree.path_to(leaf);
        assert!(!path.is_empty());
        assert!(tree.path_to(0).is_empty());
    }

    #[test]
    fn presort_fitter_matches_per_node_sort_reference() {
        let t = step_table(400);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let params = CartParams::default().with_cp(0.0005).with_min_sizes(4, 2);
        // Full table, a subset, and a bootstrap-style multiset with
        // duplicates must all produce bit-identical trees.
        let all: Vec<usize> = (0..t.rows()).collect();
        let subset: Vec<usize> = (0..t.rows()).step_by(3).collect();
        let multiset: Vec<usize> = (0..t.rows()).map(|i| (i * 7 + 13) % t.rows()).collect();
        for rows in [&all, &subset, &multiset] {
            let presort = Tree::fit_on_rows(&ds, &params, rows).unwrap();
            let reference = Tree::fit_on_rows_per_node_sort(&ds, &params, rows).unwrap();
            assert_eq!(presort, reference);
        }
    }

    #[test]
    fn predict_rows_matches_subset_predict() {
        let t = step_table(200);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
        let rows: Vec<usize> = (0..t.rows()).step_by(7).collect();
        let direct = tree.predict_rows(&t, &rows).unwrap();
        let via_subset = tree.predict(&t.subset(&rows)).unwrap();
        assert_eq!(direct, via_subset);
    }

    #[test]
    fn fit_on_rows_uses_subset_only() {
        let t = step_table(400);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let rows: Vec<usize> = (0..100).collect();
        let tree = Tree::fit_on_rows(&ds, &CartParams::default(), &rows).unwrap();
        assert_eq!(tree.root().n, 100);
    }

    #[test]
    fn missing_feature_at_predict_errors() {
        let t = step_table(100);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
        // Table with only "y".
        let schema = Schema::new(vec![Field::new("y", FeatureKind::Continuous)]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![Value::Continuous(0.0)]).unwrap();
        let other = b.build();
        assert!(matches!(tree.predict(&other), Err(CartError::MissingFeature { .. })));
    }

    #[test]
    fn drifted_column_kind_errors_instead_of_panicking() {
        let t = step_table(200);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
        // Same column names, but "x" arrives nominal instead of continuous:
        // the schema drifted between fit and predict.
        let schema = Schema::new(vec![
            Field::new("x", FeatureKind::Nominal),
            Field::new("k", FeatureKind::Nominal),
            Field::new("y", FeatureKind::Continuous),
        ]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec!["10".into(), "a".into(), Value::Continuous(1.0)]).unwrap();
        let drifted = b.build();
        match tree.predict(&drifted) {
            Err(CartError::ColumnKindMismatch { feature, expected, found }) => {
                assert_eq!(feature, "x");
                assert_eq!(expected, "continuous");
                assert_eq!(found, "nominal");
            }
            other => panic!("expected ColumnKindMismatch, got {other:?}"),
        }
    }

    #[test]
    fn collapse_and_compact_keep_tree_valid() {
        let t = step_table(400);
        let ds = CartDataset::regression(&t, "y", &["x", "k"]).unwrap();
        let mut tree = Tree::fit(&ds, &CartParams::default().with_cp(0.001)).unwrap();
        let before_leaves = tree.leaf_count();
        // Collapse the root's left child if it's internal, else right.
        let root = tree.root().clone();
        let target =
            [root.left, root.right].into_iter().flatten().find(|&c| !tree.nodes()[c].is_leaf());
        if let Some(c) = target {
            tree.collapse(c);
            tree.compact();
            assert!(tree.leaf_count() < before_leaves);
            // Tree still predicts on the full table.
            assert_eq!(tree.predict(&t).unwrap().len(), t.rows());
            // ids are consistent after renumbering.
            for (i, n) in tree.nodes().iter().enumerate() {
                assert_eq!(n.id, i);
            }
        }
    }
}
