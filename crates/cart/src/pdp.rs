//! Partial dependence analysis.
//!
//! Two flavours, matching the paper's Section V-C:
//!
//! * **Grid PDP** (Friedman / Hastie et al.): for each grid value `v` of the
//!   feature of interest, force the feature to `v` for every observation and
//!   average the tree's predictions — [`partial_dependence_continuous`] /
//!   [`partial_dependence_nominal`].
//! * **Stratified normalization** — the paper's
//!   `Metric ~ X1, N(X2), …, N(Xn)` notation: fit a tree on the *control*
//!   features only, use its leaves as strata of "all other factors held
//!   fixed", and measure the effect of the feature of interest *within*
//!   each stratum, aggregating ratios across strata —
//!   [`stratified_effect_nominal`] / [`stratified_effect_binned`].

use std::collections::{BTreeMap, HashMap};

use rainshine_obs::Obs;
use rainshine_parallel::{par_map, Parallelism};
use rainshine_stats::hist::Binner;
use rainshine_telemetry::table::Table;
use serde::{Deserialize, Serialize};

use crate::dataset::{feature_column, CartDataset, FeatureColumn};
use crate::params::CartParams;
use crate::split::SplitRule;
use crate::tree::Tree;
use crate::{CartError, Result};

/// Options for grid partial-dependence evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PdpParams {
    /// How to spread grid-point evaluation across threads. Each grid
    /// point is an independent pass over the dataset and results are
    /// merged in grid order, so the curve is bit-identical for any
    /// setting.
    pub parallelism: Parallelism,
}

/// One point of a grid partial-dependence curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PdpPoint {
    /// The forced feature value.
    pub value: f64,
    /// Mean prediction over the dataset with the feature forced to `value`.
    pub mean_prediction: f64,
}

/// Value forced onto the feature of interest during a PDP walk.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Override {
    Continuous(f64),
    Ordinal(i64),
    Nominal(u32),
}

impl Override {
    fn kind_name(self) -> &'static str {
        match self {
            Override::Continuous(_) => "continuous",
            Override::Ordinal(_) => "ordinal",
            Override::Nominal(_) => "nominal",
        }
    }
}

fn walk_with_override(
    tree: &Tree,
    columns: &HashMap<&str, FeatureColumn<'_>>,
    row: usize,
    feature: &str,
    forced: Override,
) -> Result<f64> {
    let mut id = 0usize;
    loop {
        let node = &tree.nodes()[id];
        let Some(rule) = &node.rule else {
            return Ok(node.prediction);
        };
        let goes_left = if rule.feature() == feature {
            match (rule, forced) {
                (SplitRule::ContinuousThreshold { threshold, .. }, Override::Continuous(v)) => {
                    v <= *threshold
                }
                (SplitRule::OrdinalThreshold { threshold, .. }, Override::Ordinal(v)) => {
                    v <= *threshold
                }
                (SplitRule::NominalSubset { left_codes, .. }, Override::Nominal(c)) => {
                    left_codes.contains(&c)
                }
                _ => {
                    return Err(CartError::ColumnKindMismatch {
                        feature: feature.to_owned(),
                        expected: rule.expected_kind(),
                        found: forced.kind_name(),
                    })
                }
            }
        } else {
            rule.try_goes_left(&columns[rule.feature()], row)?
        };
        id = if goes_left {
            node.left.expect("split node has left child")
        } else {
            node.right.expect("split node has right child")
        };
    }
}

fn resolve_columns<'t>(
    tree: &Tree,
    table: &'t Table,
) -> Result<HashMap<&'t str, FeatureColumn<'t>>>
where
{
    let mut map = HashMap::new();
    for name in tree.feature_names() {
        if table.schema().index_of(name).is_none() {
            return Err(CartError::MissingFeature { name: name.clone() });
        }
        let idx = table.schema().index_of(name).expect("checked above");
        let key: &'t str = &table.schema().fields()[idx].name;
        map.insert(key, feature_column(table, name)?);
    }
    Ok(map)
}

/// Grid partial dependence for a continuous feature.
///
/// # Errors
///
/// Returns an error if the table lacks a feature the tree references, or
/// the feature of interest is not continuous in the table.
pub fn partial_dependence_continuous(
    tree: &Tree,
    table: &Table,
    feature: &str,
    grid: &[f64],
) -> Result<Vec<PdpPoint>> {
    partial_dependence_continuous_with(tree, table, feature, grid, &PdpParams::default())
}

/// [`partial_dependence_continuous`] with explicit [`PdpParams`]. Grid
/// points are independent dataset passes, so they evaluate in parallel;
/// per-point row sums run on one thread each, keeping float summation
/// order (and thus the curve) identical at every thread count.
///
/// # Errors
///
/// See [`partial_dependence_continuous`].
pub fn partial_dependence_continuous_with(
    tree: &Tree,
    table: &Table,
    feature: &str,
    grid: &[f64],
    params: &PdpParams,
) -> Result<Vec<PdpPoint>> {
    table.continuous(feature)?; // kind check
    let columns = resolve_columns(tree, table)?;
    let n = table.rows().max(1) as f64;
    par_map(params.parallelism, grid, |&v| {
        let mut sum = 0.0;
        for row in 0..table.rows() {
            sum += walk_with_override(tree, &columns, row, feature, Override::Continuous(v))?;
        }
        Ok(PdpPoint { value: v, mean_prediction: sum / n })
    })
    .into_iter()
    .collect()
}

/// [`partial_dependence_continuous_with`] with observability: records a
/// `pdp.grid` span whose item count is `grid points × rows`, plus a
/// `pdp.grid_points` counter.
///
/// # Errors
///
/// See [`partial_dependence_continuous`].
pub fn partial_dependence_continuous_obs(
    tree: &Tree,
    table: &Table,
    feature: &str,
    grid: &[f64],
    params: &PdpParams,
    obs: &Obs,
) -> Result<Vec<PdpPoint>> {
    let mut span = obs.span("pdp.grid");
    span.add_items((grid.len() * table.rows()) as u64);
    obs.incr("pdp.grid_points", grid.len() as u64);
    partial_dependence_continuous_with(tree, table, feature, grid, params)
}

/// Grid partial dependence for a nominal feature: one mean prediction per
/// category, returned as `(label, mean)` pairs in category order.
///
/// # Errors
///
/// Returns an error if the table lacks a feature the tree references, or
/// the feature of interest is not nominal in the table.
pub fn partial_dependence_nominal(
    tree: &Tree,
    table: &Table,
    feature: &str,
) -> Result<Vec<(String, f64)>> {
    partial_dependence_nominal_with(tree, table, feature, &PdpParams::default())
}

/// [`partial_dependence_nominal`] with explicit [`PdpParams`]; categories
/// evaluate in parallel, results stay in category order.
///
/// # Errors
///
/// See [`partial_dependence_nominal`].
pub fn partial_dependence_nominal_with(
    tree: &Tree,
    table: &Table,
    feature: &str,
    params: &PdpParams,
) -> Result<Vec<(String, f64)>> {
    let categories = table.categories(feature)?.to_vec();
    let columns = resolve_columns(tree, table)?;
    let n = table.rows().max(1) as f64;
    let codes: Vec<usize> = (0..categories.len()).collect();
    par_map(params.parallelism, &codes, |&code| {
        let mut sum = 0.0;
        for row in 0..table.rows() {
            sum +=
                walk_with_override(tree, &columns, row, feature, Override::Nominal(code as u32))?;
        }
        Ok((categories[code].clone(), sum / n))
    })
    .into_iter()
    .collect()
}

/// Grid partial dependence for an ordinal feature: one mean prediction per
/// supplied level, returned as `(level, mean)` pairs.
///
/// # Errors
///
/// Returns an error if the table lacks a feature the tree references, or
/// the feature of interest is not ordinal in the table.
pub fn partial_dependence_ordinal(
    tree: &Tree,
    table: &Table,
    feature: &str,
    levels: &[i64],
) -> Result<Vec<(i64, f64)>> {
    partial_dependence_ordinal_with(tree, table, feature, levels, &PdpParams::default())
}

/// [`partial_dependence_ordinal`] with explicit [`PdpParams`]; levels
/// evaluate in parallel, results stay in level order.
///
/// # Errors
///
/// See [`partial_dependence_ordinal`].
pub fn partial_dependence_ordinal_with(
    tree: &Tree,
    table: &Table,
    feature: &str,
    levels: &[i64],
    params: &PdpParams,
) -> Result<Vec<(i64, f64)>> {
    table.ordinal(feature)?; // kind check
    let columns = resolve_columns(tree, table)?;
    let n = table.rows().max(1) as f64;
    par_map(params.parallelism, levels, |&lvl| {
        let mut sum = 0.0;
        for row in 0..table.rows() {
            sum += walk_with_override(tree, &columns, row, feature, Override::Ordinal(lvl))?;
        }
        Ok((lvl, sum / n))
    })
    .into_iter()
    .collect()
}

/// An evenly spaced grid over the observed range of a continuous column.
///
/// # Errors
///
/// Returns an error if the column is missing/not continuous or the table is
/// empty.
pub fn grid_over_column(table: &Table, feature: &str, points: usize) -> Result<Vec<f64>> {
    let values = table.continuous(feature)?;
    if values.is_empty() || points == 0 {
        return Err(CartError::EmptyDataset);
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if points == 1 || lo == hi {
        return Ok(vec![lo]);
    }
    let step = (hi - lo) / (points - 1) as f64;
    Ok((0..points).map(|i| lo + i as f64 * step).collect())
}

/// Effect of one level of the feature of interest after normalizing all
/// control factors (the paper's `N(·)`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LevelEffect {
    /// Level label (category name, or bin label for binned features).
    pub level: String,
    /// Multiplicative effect of this level after removing stratum effects
    /// (from a weighted two-way log-additive fit): `1.0` means "no effect
    /// beyond the control factors"; `1.5` means +50 %. Effects are centred
    /// so their weighted geometric mean is 1.
    pub relative: f64,
    /// Weighted standard deviation across strata of the level's per-stratum
    /// de-trended ratio (the variance the paper reports dropping by ~50 %
    /// under MF — Fig. 15).
    pub stddev: f64,
    /// Raw (un-normalized) mean response at this level.
    pub raw_mean: f64,
    /// Observations at this level.
    pub n: usize,
}

/// One (stratum, level) cell of a stratified analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StratumCell {
    /// Stratum index (dense renumbering of tree leaves).
    pub stratum: usize,
    /// Level index into [`StratifiedEffect::levels`].
    pub level: usize,
    /// Mean response in the cell.
    pub mean: f64,
    /// Observations in the cell.
    pub n: usize,
}

/// The result of a stratified-normalization analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StratifiedEffect {
    /// Per-level effects, in level order.
    pub levels: Vec<LevelEffect>,
    /// Number of strata (tree leaves) used.
    pub strata: usize,
    /// Per-cell means, for direct contrasts.
    pub cells: Vec<StratumCell>,
}

impl StratifiedEffect {
    /// Direct within-stratum contrast between two levels: the weighted
    /// geometric mean of `mean(a)/mean(b)` over strata containing **both**
    /// levels with positive means (weight = the smaller cell count).
    ///
    /// This is the sharpest available estimate of a pairwise multiplicative
    /// effect — it never bridges through third levels, at the cost of using
    /// only co-occurrence strata. Returns `None` if the levels never
    /// co-occur.
    pub fn direct_ratio(&self, a: &str, b: &str) -> Option<f64> {
        let a_idx = self.levels.iter().position(|l| l.level == a)?;
        let b_idx = self.levels.iter().position(|l| l.level == b)?;
        let mut wsum = 0.0;
        let mut log_sum = 0.0;
        for cell in self.cells.iter().filter(|c| c.level == a_idx && c.mean > 0.0) {
            let Some(other) = self
                .cells
                .iter()
                .find(|c| c.stratum == cell.stratum && c.level == b_idx && c.mean > 0.0)
            else {
                continue;
            };
            let w = cell.n.min(other.n) as f64;
            wsum += w;
            log_sum += w * (cell.mean / other.mean).ln();
        }
        (wsum > 0.0).then(|| (log_sum / wsum).exp())
    }
}

fn stratified_effect_impl(
    table: &Table,
    target: &str,
    level_of_row: impl Fn(usize) -> usize,
    level_labels: &[String],
    controls: &[&str],
    params: &CartParams,
) -> Result<StratifiedEffect> {
    let ds = CartDataset::regression(table, target, controls)?;
    let tree = Tree::fit(&ds, params)?;
    let strata = tree.leaf_assignments(table)?;
    let y = table.continuous(target)?;
    let n_levels = level_labels.len();

    // stratum -> (per-level sums/counts, stratum sum/count)
    struct StratumAgg {
        level_sum: Vec<f64>,
        level_n: Vec<usize>,
        sum: f64,
        n: usize,
    }
    // BTreeMap, not HashMap: the aggregate is *iterated* below (stratum ids,
    // cell order, float summation order), so the map's iteration order is
    // part of the result. HashMap's per-instance hash seed made cell order —
    // and through it the last bits of the fitted effects — vary run to run.
    let mut agg: BTreeMap<usize, StratumAgg> = BTreeMap::new();
    for row in 0..table.rows() {
        let s = agg.entry(strata[row]).or_insert_with(|| StratumAgg {
            level_sum: vec![0.0; n_levels],
            level_n: vec![0; n_levels],
            sum: 0.0,
            n: 0,
        });
        let lvl = level_of_row(row);
        s.level_sum[lvl] += y[row];
        s.level_n[lvl] += 1;
        s.sum += y[row];
        s.n += 1;
    }

    // Two-way log-additive fit on the positive cell means:
    //   log y(s, l) ≈ α_s + β_l
    // solved by weighted alternating least squares. Naively dividing each
    // level's mean by its stratum's mean is biased: the level's own mass
    // sits in the denominator, so ratios chained across strata with
    // different level mixes compress toward 1. The additive fit separates
    // the stratum effect from the level effect exactly when the response is
    // multiplicative in both (our hazard model's form).
    struct Cell {
        stratum: usize,
        level: usize,
        z: f64, // log cell mean
        w: f64, // observations in the cell
    }
    let stratum_ids: Vec<usize> = agg.keys().copied().collect();
    let stratum_index: HashMap<usize, usize> =
        stratum_ids.iter().enumerate().map(|(i, &s)| (s, i)).collect();
    let mut cells = Vec::new();
    for (&sid, s) in &agg {
        for lvl in 0..n_levels {
            let ln = s.level_n[lvl];
            if ln == 0 {
                continue;
            }
            let mean = s.level_sum[lvl] / ln as f64;
            if mean <= 0.0 {
                continue;
            }
            cells.push(Cell {
                stratum: stratum_index[&sid],
                level: lvl,
                z: mean.ln(),
                w: ln as f64,
            });
        }
    }
    let mut alpha = vec![0.0f64; stratum_ids.len()];
    let mut beta = vec![0.0f64; n_levels];
    for _ in 0..200 {
        let mut delta: f64 = 0.0;
        // Update level effects.
        let mut num = vec![0.0f64; n_levels];
        let mut den = vec![0.0f64; n_levels];
        for c in &cells {
            num[c.level] += c.w * (c.z - alpha[c.stratum]);
            den[c.level] += c.w;
        }
        for l in 0..n_levels {
            if den[l] > 0.0 {
                let new = num[l] / den[l];
                delta = delta.max((new - beta[l]).abs());
                beta[l] = new;
            }
        }
        // Update stratum effects.
        let mut num = vec![0.0f64; stratum_ids.len()];
        let mut den = vec![0.0f64; stratum_ids.len()];
        for c in &cells {
            num[c.stratum] += c.w * (c.z - beta[c.level]);
            den[c.stratum] += c.w;
        }
        for s in 0..stratum_ids.len() {
            if den[s] > 0.0 {
                let new = num[s] / den[s];
                delta = delta.max((new - alpha[s]).abs());
                alpha[s] = new;
            }
        }
        if delta < 1e-12 {
            break;
        }
    }
    // Centre the level effects: weighted mean beta = 0 so the average
    // relative effect is 1.
    let mut wsum = 0.0;
    let mut bsum = 0.0;
    let mut level_w = vec![0.0f64; n_levels];
    for c in &cells {
        level_w[c.level] += c.w;
    }
    for l in 0..n_levels {
        wsum += level_w[l];
        bsum += level_w[l] * beta[l];
    }
    let center = if wsum > 0.0 { bsum / wsum } else { 0.0 };

    let mut levels = Vec::with_capacity(n_levels);
    for (lvl, label) in level_labels.iter().enumerate() {
        let has_cells = level_w[lvl] > 0.0;
        let relative = if has_cells { (beta[lvl] - center).exp() } else { f64::NAN };
        // Spread of the de-trended per-stratum ratios around the fitted
        // effect.
        let mut rsum = 0.0;
        let mut rsq = 0.0;
        let mut rw = 0.0;
        for c in cells.iter().filter(|c| c.level == lvl) {
            let ratio = (c.z - alpha[c.stratum] - center).exp();
            rw += c.w;
            rsum += c.w * ratio;
            rsq += c.w * ratio * ratio;
        }
        let stddev = if rw > 0.0 {
            let mean = rsum / rw;
            ((rsq / rw - mean * mean).max(0.0)).sqrt()
        } else {
            f64::NAN
        };
        let (raw_sum, raw_n) = agg.values().fold((0.0, 0usize), |(s_acc, n_acc), s| {
            (s_acc + s.level_sum[lvl], n_acc + s.level_n[lvl])
        });
        levels.push(LevelEffect {
            level: label.clone(),
            relative,
            stddev,
            raw_mean: if raw_n > 0 { raw_sum / raw_n as f64 } else { f64::NAN },
            n: raw_n,
        });
    }
    let out_cells = cells
        .iter()
        .map(|c| StratumCell {
            stratum: c.stratum,
            level: c.level,
            mean: c.z.exp(),
            n: c.w as usize,
        })
        .collect();
    Ok(StratifiedEffect { levels, strata: agg.len(), cells: out_cells })
}

/// Stratified effect of a **nominal** feature of interest (e.g. SKU in Q2):
/// `target ~ feature, N(controls…)`.
///
/// # Errors
///
/// Returns an error if columns are missing / of the wrong kind, the feature
/// appears among the controls, or tree fitting fails.
pub fn stratified_effect_nominal(
    table: &Table,
    target: &str,
    feature: &str,
    controls: &[&str],
    params: &CartParams,
) -> Result<StratifiedEffect> {
    if controls.contains(&feature) {
        return Err(CartError::TargetIsFeature { name: feature.to_owned() });
    }
    let codes = table.nominal_codes(feature)?;
    let labels = table.categories(feature)?.to_vec();
    stratified_effect_impl(table, target, |row| codes[row] as usize, &labels, controls, params)
}

/// Stratified effect of a **continuous** feature of interest, binned by
/// `binner` (e.g. temperature ranges in Q3): `target ~ bin(feature),
/// N(controls…)`.
///
/// # Errors
///
/// See [`stratified_effect_nominal`].
pub fn stratified_effect_binned(
    table: &Table,
    target: &str,
    feature: &str,
    binner: &Binner,
    controls: &[&str],
    params: &CartParams,
) -> Result<StratifiedEffect> {
    if controls.contains(&feature) {
        return Err(CartError::TargetIsFeature { name: feature.to_owned() });
    }
    let values = table.continuous(feature)?;
    let labels: Vec<String> = (0..binner.bin_count()).map(|i| binner.label(i)).collect();
    stratified_effect_impl(
        table,
        target,
        |row| binner.bin_of(values[row]),
        &labels,
        controls,
        params,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_telemetry::table::{FeatureKind, Field, Schema, TableBuilder, Value};

    /// y = base(z) * sku_factor, where z is a confounder: sku "bad" appears
    /// mostly at high z. Marginal bad/good ratio is inflated; the true
    /// per-stratum ratio is 2.
    fn confounded_table() -> Table {
        let schema = Schema::new(vec![
            Field::new("z", FeatureKind::Continuous),
            Field::new("sku", FeatureKind::Nominal),
            Field::new("y", FeatureKind::Continuous),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..600 {
            let high_z = i % 3 != 0; // 2/3 of rows high-z
            let z = if high_z { 10.0 } else { 1.0 };
            // bad sku concentrated in high-z region (confounding)
            let sku = if high_z == (i % 4 != 0) { "bad" } else { "good" };
            let base = if high_z { 8.0 } else { 1.0 };
            let factor = if sku == "bad" { 2.0 } else { 1.0 };
            b.push_row(vec![Value::Continuous(z), sku.into(), Value::Continuous(base * factor)])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn stratified_effect_deconfounds_sku() {
        let t = confounded_table();
        let params = CartParams::default().with_min_sizes(10, 5);
        let eff = stratified_effect_nominal(&t, "y", "sku", &["z"], &params).unwrap();
        assert_eq!(eff.levels.len(), 2);
        let bad = eff.levels.iter().find(|l| l.level == "bad").unwrap();
        let good = eff.levels.iter().find(|l| l.level == "good").unwrap();
        // Raw means are confounded: ratio far from 2.
        let raw_ratio = bad.raw_mean / good.raw_mean;
        // Normalized ratio recovers the true 2x factor.
        let norm_ratio = bad.relative / good.relative;
        assert!((norm_ratio - 2.0).abs() < 0.15, "normalized ratio {norm_ratio}");
        assert!(
            (raw_ratio - 2.0).abs() > (norm_ratio - 2.0).abs(),
            "raw {raw_ratio} should be more biased than normalized {norm_ratio}"
        );
    }

    #[test]
    fn pdp_recovers_monotone_effect() {
        // y = 1 + (x > 5 ? 4 : 0), no confounders.
        let schema = Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("y", FeatureKind::Continuous),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..200 {
            let x = (i % 10) as f64;
            let y = 1.0 + if x > 5.0 { 4.0 } else { 0.0 };
            b.push_row(vec![Value::Continuous(x), Value::Continuous(y)]).unwrap();
        }
        let t = b.build();
        let ds = CartDataset::regression(&t, "y", &["x"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_min_sizes(4, 2)).unwrap();
        let grid = grid_over_column(&t, "x", 10).unwrap();
        let pdp = partial_dependence_continuous(&tree, &t, "x", &grid).unwrap();
        assert_eq!(pdp.len(), 10);
        assert!(pdp.first().unwrap().mean_prediction < pdp.last().unwrap().mean_prediction);
        assert!((pdp.first().unwrap().mean_prediction - 1.0).abs() < 0.1);
        assert!((pdp.last().unwrap().mean_prediction - 5.0).abs() < 0.1);
    }

    #[test]
    fn pdp_nominal_per_category() {
        let t = confounded_table();
        let ds = CartDataset::regression(&t, "y", &["z", "sku"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_min_sizes(10, 5)).unwrap();
        let pdp = partial_dependence_nominal(&tree, &t, "sku").unwrap();
        assert_eq!(pdp.len(), 2);
        let bad = pdp.iter().find(|(l, _)| l == "bad").unwrap().1;
        let good = pdp.iter().find(|(l, _)| l == "good").unwrap().1;
        // PDP holds the z-mix fixed, so the ratio approaches the true 2x.
        let ratio = bad / good;
        assert!((ratio - 2.0).abs() < 0.3, "pdp ratio {ratio}");
    }

    #[test]
    fn binned_stratified_effect_labels() {
        let t = confounded_table();
        let binner = Binner::from_edges(vec![5.0]).unwrap();
        let params = CartParams::default().with_min_sizes(10, 5);
        let eff = stratified_effect_binned(&t, "y", "z", &binner, &["sku"], &params).unwrap();
        assert_eq!(eff.levels.len(), 2);
        assert_eq!(eff.levels[0].level, "<5");
        assert_eq!(eff.levels[1].level, ">=5");
        // High-z bin has higher relative failure rate than low-z within
        // sku-strata.
        assert!(eff.levels[1].relative > eff.levels[0].relative);
    }

    #[test]
    fn pdp_threads_match_sequential() {
        let t = confounded_table();
        let ds = CartDataset::regression(&t, "y", &["z", "sku"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_min_sizes(10, 5)).unwrap();
        let grid = grid_over_column(&t, "z", 17).unwrap();
        let sequential = partial_dependence_continuous_with(
            &tree,
            &t,
            "z",
            &grid,
            &PdpParams { parallelism: Parallelism::Sequential },
        )
        .unwrap();
        for par in [Parallelism::Threads(2), Parallelism::Threads(4), Parallelism::Auto] {
            let parallel = partial_dependence_continuous_with(
                &tree,
                &t,
                "z",
                &grid,
                &PdpParams { parallelism: par },
            )
            .unwrap();
            assert_eq!(sequential, parallel, "{par:?}");
        }
        let seq_nom = partial_dependence_nominal_with(
            &tree,
            &t,
            "sku",
            &PdpParams { parallelism: Parallelism::Sequential },
        )
        .unwrap();
        let par_nom = partial_dependence_nominal_with(
            &tree,
            &t,
            "sku",
            &PdpParams { parallelism: Parallelism::Threads(4) },
        )
        .unwrap();
        assert_eq!(seq_nom, par_nom);
    }

    #[test]
    fn pdp_override_kind_mismatch_is_typed() {
        let t = confounded_table();
        let ds = CartDataset::regression(&t, "y", &["z", "sku"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_min_sizes(10, 5)).unwrap();
        let columns = resolve_columns(&tree, &t).unwrap();
        // Force a nominal value onto the continuous feature "z": every walk
        // that reaches a "z" rule must surface the mismatch as an error.
        let result: Result<Vec<f64>> = (0..t.rows())
            .map(|row| walk_with_override(&tree, &columns, row, "z", Override::Nominal(0)))
            .collect();
        assert!(matches!(
            result,
            Err(CartError::ColumnKindMismatch { expected: "continuous", found: "nominal", .. })
        ));
    }

    #[test]
    fn feature_in_controls_rejected() {
        let t = confounded_table();
        let params = CartParams::default();
        assert!(matches!(
            stratified_effect_nominal(&t, "y", "sku", &["z", "sku"], &params),
            Err(CartError::TargetIsFeature { .. })
        ));
    }

    #[test]
    fn grid_over_column_spans_range() {
        let t = confounded_table();
        let grid = grid_over_column(&t, "z", 5).unwrap();
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0], 1.0);
        assert_eq!(*grid.last().unwrap(), 10.0);
    }
}
