//! Tree-growing hyper-parameters (the analogue of `rpart.control`).

use serde::{Deserialize, Serialize};

use crate::{CartError, Result};

/// Strategy for searching splits on nominal (unordered categorical)
/// features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NominalSearch {
    /// Order categories by mean response (regression) or first-class
    /// proportion (classification), then scan like an ordered feature.
    ///
    /// For regression with variance impurity and for two-class Gini this is
    /// *exact* (Breiman et al. 1984, Thm. 4.5) and costs `O(k log k)`.
    OrderedByResponse,
    /// Exhaustively evaluate all `2^(k−1) − 1` binary partitions of the
    /// categories. Exponential; only sensible for small `k` (an ablation
    /// option — see DESIGN.md §5).
    Exhaustive,
}

/// Hyper-parameters controlling tree growth.
///
/// Defaults mirror `rpart.control`: `min_split = 20`, `min_leaf = 7`
/// (rpart's `minbucket = minsplit/3`), `max_depth = 30`, `cp = 0.01`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CartParams {
    /// Minimum observations in a node for a split to be attempted.
    pub min_split: usize,
    /// Minimum observations in each child of a split.
    pub min_leaf: usize,
    /// Maximum tree depth (root is depth 0).
    pub max_depth: usize,
    /// Complexity parameter: a split must decrease the overall relative
    /// risk by at least `cp` (as a fraction of the root risk).
    pub cp: f64,
    /// Nominal split search strategy.
    pub nominal_search: NominalSearch,
    /// Cap on category count for [`NominalSearch::Exhaustive`]; features
    /// with more categories fall back to ordered search.
    pub exhaustive_limit: usize,
}

impl Default for CartParams {
    fn default() -> Self {
        CartParams {
            min_split: 20,
            min_leaf: 7,
            max_depth: 30,
            cp: 0.01,
            nominal_search: NominalSearch::OrderedByResponse,
            exhaustive_limit: 10,
        }
    }
}

impl CartParams {
    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns [`CartError::InvalidParameter`] if any value is out of range
    /// (`min_leaf` must be ≥ 1, `min_split` ≥ 2·`min_leaf` is *not*
    /// required but `min_split` ≥ 2 is, `cp` must be in `[0, 1]`, depth ≥ 1).
    pub fn validate(&self) -> Result<()> {
        if self.min_leaf == 0 {
            return Err(CartError::InvalidParameter { name: "min_leaf", value: 0.0 });
        }
        if self.min_split < 2 {
            return Err(CartError::InvalidParameter {
                name: "min_split",
                value: self.min_split as f64,
            });
        }
        if self.max_depth == 0 {
            return Err(CartError::InvalidParameter { name: "max_depth", value: 0.0 });
        }
        if !(0.0..=1.0).contains(&self.cp) || !self.cp.is_finite() {
            return Err(CartError::InvalidParameter { name: "cp", value: self.cp });
        }
        Ok(())
    }

    /// Returns a copy with a different `cp`.
    pub fn with_cp(mut self, cp: f64) -> Self {
        self.cp = cp;
        self
    }

    /// Returns a copy with different size thresholds.
    pub fn with_min_sizes(mut self, min_split: usize, min_leaf: usize) -> Self {
        self.min_split = min_split;
        self.min_leaf = min_leaf;
        self
    }

    /// Returns a copy with a different depth cap.
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_rpart_control() {
        let p = CartParams::default();
        assert_eq!(p.min_split, 20);
        assert_eq!(p.min_leaf, 7);
        assert_eq!(p.max_depth, 30);
        assert_eq!(p.cp, 0.01);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(CartParams::default().with_cp(-0.1).validate().is_err());
        assert!(CartParams::default().with_cp(f64::NAN).validate().is_err());
        assert!(CartParams::default().with_min_sizes(1, 1).validate().is_err());
        assert!(CartParams::default().with_min_sizes(5, 0).validate().is_err());
        assert!(CartParams::default().with_max_depth(0).validate().is_err());
    }

    #[test]
    fn builder_methods_chain() {
        let p = CartParams::default().with_cp(0.001).with_min_sizes(10, 3).with_max_depth(5);
        assert_eq!(p.cp, 0.001);
        assert_eq!(p.min_split, 10);
        assert_eq!(p.min_leaf, 3);
        assert_eq!(p.max_depth, 5);
    }
}
