//! Classification and Regression Trees (CART) for the `rainshine` workspace.
//!
//! The paper builds its multi-factor analysis on CART (Breiman, Friedman,
//! Olshen & Stone 1984) as implemented by R's `rpart` package, plus partial
//! dependence analysis (Hastie, Tibshirani & Friedman). This crate is a
//! from-scratch Rust implementation of the pieces the paper uses:
//!
//! * **regression trees** (`rpart` `method = "anova"`): within-node variance
//!   as impurity, used to cluster racks by failure behaviour (Q1) —
//!   [`tree::Tree`] with [`tree::TreeKind::Regression`];
//! * **classification trees** (Gini impurity) — [`tree::TreeKind::Classification`];
//! * nominal (unordered categorical) splits via the ordered-by-mean theorem,
//!   with an exhaustive-subset option for ablation ([`params::NominalSearch`]);
//! * rpart-style stopping rules: `min_split`, `min_leaf`, `max_depth`, and
//!   the complexity parameter `cp` ([`params::CartParams`]);
//! * cost-complexity (weakest-link) pruning with k-fold cross-validation
//!   ([`prune`]);
//! * variable importance rankings ([`tree::Tree::variable_importance`]);
//! * partial dependence: both the classic grid PDP and the paper's
//!   "`Metric ~ X1, N(X2), …, N(Xn)`" stratified normalization ([`pdp`]);
//! * bagged ensembles with out-of-bag error and permutation importance
//!   ([`forest`]) — a robustness extension beyond the paper's single trees.
//!
//! Missing-data surrogate splits are *not* implemented: the simulator's
//! datasets are complete by construction.
//!
//! # Example: recover a planted threshold
//!
//! ```
//! use rainshine_telemetry::table::{Field, FeatureKind, Schema, TableBuilder, Value};
//! use rainshine_cart::dataset::CartDataset;
//! use rainshine_cart::params::CartParams;
//! use rainshine_cart::tree::Tree;
//!
//! // y jumps at x = 50.
//! let schema = Schema::new(vec![
//!     Field::new("x", FeatureKind::Continuous),
//!     Field::new("y", FeatureKind::Continuous),
//! ]);
//! let mut b = TableBuilder::new(schema);
//! for i in 0..100 {
//!     let x = i as f64;
//!     let y = if x < 50.0 { 1.0 } else { 5.0 };
//!     b.push_row(vec![Value::Continuous(x), Value::Continuous(y)])?;
//! }
//! let table = b.build();
//! let ds = CartDataset::regression(&table, "y", &["x"])?;
//! let tree = Tree::fit(&ds, &CartParams::default())?;
//! assert_eq!(tree.leaf_count(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod dataset;
pub mod forest;
pub mod params;
pub mod pdp;
pub mod prune;
pub mod tree;

mod error;
mod split;

pub use split::SplitRule;

pub use error::CartError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CartError>;
