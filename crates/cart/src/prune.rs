//! Cost-complexity (weakest-link) pruning and k-fold cross-validation.
//!
//! Following Breiman et al. (1984) ch. 3 / `rpart`: for an internal node `t`
//! with subtree `T_t`,
//!
//! ```text
//! g(t) = (R(t) − R(T_t)) / (|leaves(T_t)| − 1)
//! ```
//!
//! is the per-leaf cost of keeping the subtree. Pruning repeatedly collapses
//! the node with minimal `g`, producing a nested sequence of subtrees indexed
//! by the complexity parameter `cp = g / R(root)`.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::CartDataset;
use crate::params::CartParams;
use crate::tree::{Tree, TreeKind};
use crate::{CartError, Result};

/// Subtree statistics: `(leaf count, sum of leaf risks)`.
fn subtree_stats(tree: &Tree, id: usize) -> (usize, f64) {
    let node = &tree.nodes()[id];
    match (node.left, node.right) {
        (Some(l), Some(r)) => {
            let (ll, lr) = subtree_stats(tree, l);
            let (rl, rr) = subtree_stats(tree, r);
            (ll + rl, lr + rr)
        }
        _ => (1, node.risk),
    }
}

/// The weakest link: the internal node with minimal `g(t)`, or `None` if the
/// tree is a single leaf.
fn weakest_link(tree: &Tree) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for node in tree.nodes() {
        if node.is_leaf() {
            continue;
        }
        let (leaves, subtree_risk) = subtree_stats(tree, node.id);
        let g = (node.risk - subtree_risk) / (leaves - 1) as f64;
        if best.is_none_or(|(_, bg)| g < bg) {
            best = Some((node.id, g));
        }
    }
    best
}

/// One step of the pruning sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpStep {
    /// Normalized complexity parameter at which this subtree becomes
    /// optimal (`g / R(root)`).
    pub cp: f64,
    /// Leaves in the subtree.
    pub leaves: usize,
    /// Relative training error `R(T)/R(root)` of the subtree.
    pub rel_error: f64,
}

/// The full nested pruning sequence from the fitted tree down to the root
/// leaf, ordered by increasing `cp`.
pub fn cp_sequence(tree: &Tree) -> Vec<CpStep> {
    let root_risk = tree.root_risk().max(f64::MIN_POSITIVE);
    let mut work = tree.clone();
    let mut steps = Vec::new();
    let (leaves0, risk0) = subtree_stats(&work, 0);
    steps.push(CpStep { cp: 0.0, leaves: leaves0, rel_error: risk0 / root_risk });
    while let Some((id, g)) = weakest_link(&work) {
        work.collapse(id);
        work.compact();
        let (leaves, risk) = subtree_stats(&work, 0);
        steps.push(CpStep { cp: g / root_risk, leaves, rel_error: risk / root_risk });
        if leaves == 1 {
            break;
        }
    }
    steps
}

/// Returns a copy of `tree` pruned at complexity `cp`: every subtree whose
/// weakest link has `g(t) <= cp · R(root)` is collapsed.
pub fn pruned(tree: &Tree, cp: f64) -> Tree {
    let threshold = cp * tree.root_risk();
    let mut work = tree.clone();
    loop {
        match weakest_link(&work) {
            Some((id, g)) if g <= threshold + 1e-12 => {
                work.collapse(id);
                work.compact();
            }
            _ => break,
        }
    }
    work
}

/// Cross-validation error for one candidate `cp`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CvPoint {
    /// Candidate complexity parameter.
    pub cp: f64,
    /// Mean held-out relative error across folds (relative to root risk of
    /// the full-data tree).
    pub error: f64,
    /// Standard error of the fold errors.
    pub se: f64,
}

/// Result of [`cross_validate`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvResult {
    /// Error for each candidate `cp`, ordered by increasing `cp`.
    pub points: Vec<CvPoint>,
}

impl CvResult {
    /// The `cp` minimizing cross-validated error.
    pub fn best_cp(&self) -> f64 {
        self.points
            .iter()
            .min_by(|a, b| a.error.partial_cmp(&b.error).expect("finite cv error"))
            .map(|p| p.cp)
            .unwrap_or(0.0)
    }

    /// The 1-SE rule: the largest `cp` whose error is within one standard
    /// error of the minimum (prefers simpler trees).
    pub fn best_cp_1se(&self) -> f64 {
        let best = self
            .points
            .iter()
            .min_by(|a, b| a.error.partial_cmp(&b.error).expect("finite cv error"));
        let Some(best) = best else { return 0.0 };
        let limit = best.error + best.se;
        self.points.iter().filter(|p| p.error <= limit).map(|p| p.cp).fold(best.cp, f64::max)
    }
}

/// Held-out prediction error of `tree` on `rows`: sum of squared errors for
/// regression, misclassification count for classification. Predicts the
/// held-out rows directly (no subset materialization).
fn holdout_error(tree: &Tree, dataset: &CartDataset<'_>, rows: &[usize]) -> Result<f64> {
    let preds = tree.predict_rows(dataset.table(), rows)?;
    match dataset.target() {
        crate::dataset::Target::Regression(y) => {
            Ok(rows.iter().zip(&preds).map(|(&r, p)| (y[r] - p).powi(2)).sum())
        }
        crate::dataset::Target::Classification { codes, .. } => {
            debug_assert_eq!(tree.kind(), TreeKind::Classification);
            Ok(rows.iter().zip(&preds).filter(|(&r, p)| codes[r] as usize != **p as usize).count()
                as f64)
        }
    }
}

/// K-fold cross-validation over the `cp` sequence of the full-data tree.
///
/// Candidate `cp` values are the geometric midpoints of adjacent steps of
/// the full tree's pruning sequence (rpart's scheme). For each fold the tree
/// is re-fitted on the training rows, pruned at every candidate, and scored
/// on the held-out rows.
///
/// # Errors
///
/// Returns [`CartError::TooManyFolds`] if `folds > rows` or `folds < 2`, or
/// any fitting error.
pub fn cross_validate(
    dataset: &CartDataset<'_>,
    params: &CartParams,
    folds: usize,
    seed: u64,
) -> Result<CvResult> {
    cross_validate_with_obs(dataset, params, folds, seed, &rainshine_obs::Obs::disabled())
}

/// [`cross_validate`] with observability: records a `prune.cross_validate`
/// span whose item count is `folds × candidate cp values`.
///
/// # Errors
///
/// Same conditions as [`cross_validate`].
pub fn cross_validate_with_obs(
    dataset: &CartDataset<'_>,
    params: &CartParams,
    folds: usize,
    seed: u64,
    obs: &rainshine_obs::Obs,
) -> Result<CvResult> {
    let mut span = obs.span("prune.cross_validate");
    let n = dataset.len();
    if folds < 2 || folds > n {
        return Err(CartError::TooManyFolds { folds, rows: n });
    }
    // Grow the reference tree with minimal cp so the sequence is rich.
    let grow_params = params.with_cp(params.cp.min(1e-4));
    let full = Tree::fit(dataset, &grow_params)?;
    let seq = cp_sequence(&full);
    let mut candidates: Vec<f64> = Vec::new();
    for w in seq.windows(2) {
        let lo = w[0].cp.max(1e-12);
        let hi = w[1].cp.max(lo);
        candidates.push((lo * hi).sqrt());
    }
    if candidates.is_empty() {
        candidates.push(params.cp);
    }
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite cp"));
    candidates.dedup();
    span.add_items((folds * candidates.len()) as u64);

    let mut rows: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rows.shuffle(&mut rng);

    let root_risk = full.root_risk().max(f64::MIN_POSITIVE);
    // fold_errors[c][f] = error of candidate c on fold f.
    let mut fold_errors = vec![Vec::with_capacity(folds); candidates.len()];
    for f in 0..folds {
        let test: Vec<usize> = rows.iter().copied().skip(f).step_by(folds).collect();
        let train: Vec<usize> = rows
            .iter()
            .copied()
            .enumerate()
            .filter_map(|(i, r)| ((i % folds) != f).then_some(r))
            .collect();
        if train.is_empty() || test.is_empty() {
            continue;
        }
        let fold_tree = Tree::fit_on_rows(dataset, &grow_params, &train)?;
        for (c, &cp) in candidates.iter().enumerate() {
            let p = pruned(&fold_tree, cp);
            fold_errors[c].push(holdout_error(&p, dataset, &test)? / root_risk);
        }
    }
    let points = candidates
        .iter()
        .zip(&fold_errors)
        .map(|(&cp, errs)| {
            let k = errs.len().max(1) as f64;
            let mean = errs.iter().sum::<f64>() / k;
            let var = errs.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (k - 1.0).max(1.0);
            CvPoint { cp, error: mean * folds as f64, se: (var / k).sqrt() * folds as f64 }
        })
        .collect();
    Ok(CvResult { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_telemetry::table::{FeatureKind, Field, Schema, Table, TableBuilder, Value};

    fn noisy_step_table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("noise", FeatureKind::Continuous),
            Field::new("y", FeatureKind::Continuous),
        ]);
        let mut b = TableBuilder::new(schema);
        // Deterministic pseudo-noise so the test has no RNG dependency.
        for i in 0..n {
            let x = (i % 100) as f64;
            let noise = ((i * 2_654_435_761) % 1000) as f64 / 1000.0;
            let y = if x < 50.0 { 1.0 } else { 5.0 } + (noise - 0.5) * 0.5;
            b.push_row(vec![Value::Continuous(x), Value::Continuous(noise), Value::Continuous(y)])
                .unwrap();
        }
        b.build()
    }

    #[test]
    fn cp_sequence_is_monotone_and_nested() {
        let t = noisy_step_table(300);
        let ds = CartDataset::regression(&t, "y", &["x", "noise"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_cp(0.0001)).unwrap();
        let seq = cp_sequence(&tree);
        assert!(seq.len() >= 2);
        for w in seq.windows(2) {
            assert!(w[0].cp <= w[1].cp + 1e-12, "cp increases");
            assert!(w[0].leaves >= w[1].leaves, "leaves shrink");
            assert!(w[0].rel_error <= w[1].rel_error + 1e-9, "training error grows");
        }
        assert_eq!(seq.last().unwrap().leaves, 1);
    }

    #[test]
    fn pruned_reduces_leaves_monotonically() {
        let t = noisy_step_table(300);
        let ds = CartDataset::regression(&t, "y", &["x", "noise"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default().with_cp(0.0001)).unwrap();
        let mut last = usize::MAX;
        for cp in [0.0, 0.001, 0.01, 0.1, 1.0] {
            let p = pruned(&tree, cp);
            assert!(p.leaf_count() <= last);
            last = p.leaf_count();
            // Pruned trees still predict.
            assert_eq!(p.predict(&t).unwrap().len(), t.rows());
        }
        assert_eq!(pruned(&tree, 1.0).leaf_count(), 1);
    }

    #[test]
    fn cross_validation_prefers_signal_over_noise() {
        let t = noisy_step_table(300);
        let ds = CartDataset::regression(&t, "y", &["x", "noise"]).unwrap();
        let cv = cross_validate(&ds, &CartParams::default(), 5, 7).unwrap();
        assert!(!cv.points.is_empty());
        let best = cv.best_cp();
        let tree = Tree::fit(&ds, &CartParams::default().with_cp(0.0001)).unwrap();
        let final_tree = pruned(&tree, best);
        // The signal split at x=50 must survive; overfit noise splits should
        // mostly be pruned away.
        assert!(final_tree.leaf_count() >= 2);
        let imp = final_tree.variable_importance();
        assert_eq!(imp[0].0, "x");
        assert!(imp[0].1 > 90.0, "importance: {imp:?}");
        // 1-SE cp never below the minimizing cp.
        assert!(cv.best_cp_1se() >= best);
    }

    #[test]
    fn cross_validate_rejects_bad_folds() {
        let t = noisy_step_table(50);
        let ds = CartDataset::regression(&t, "y", &["x"]).unwrap();
        assert!(matches!(
            cross_validate(&ds, &CartParams::default(), 1, 0),
            Err(CartError::TooManyFolds { .. })
        ));
        assert!(matches!(
            cross_validate(&ds, &CartParams::default(), 51, 0),
            Err(CartError::TooManyFolds { .. })
        ));
    }

    #[test]
    fn single_leaf_tree_has_trivial_sequence() {
        let schema = Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("y", FeatureKind::Continuous),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..30 {
            b.push_row(vec![Value::Continuous(i as f64), Value::Continuous(1.0)]).unwrap();
        }
        let t = b.build();
        let ds = CartDataset::regression(&t, "y", &["x"]).unwrap();
        let tree = Tree::fit(&ds, &CartParams::default()).unwrap();
        let seq = cp_sequence(&tree);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].leaves, 1);
    }
}
