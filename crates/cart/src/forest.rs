//! Bagged tree ensembles (a small random-forest) with out-of-bag error and
//! permutation importance.
//!
//! The paper's framework uses single CART trees (they are interpretable:
//! the clusters and split rules *are* the insight). An ensemble is the
//! natural robustness extension: bagging stabilizes variable-importance
//! rankings in the presence of correlated factors (the paper's footnote 3
//! caveat), and permutation importance gives an importance measure that is
//! not biased toward high-cardinality features.

use std::collections::HashMap;

use rainshine_obs::{Collector, Obs};
use rainshine_parallel::{derive_seed, par_map_range, Parallelism};
use rainshine_telemetry::table::Table;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::{feature_column, CartDataset, FeatureColumn, Target};
use crate::params::CartParams;
use crate::tree::Tree;
use crate::{CartError, Result};

/// Ensemble hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of bagged trees.
    pub trees: usize,
    /// Bootstrap sample size as a fraction of the dataset (sampling is with
    /// replacement, so `1.0` is the classic bootstrap).
    pub sample_fraction: f64,
    /// RNG seed for bootstrap sampling. Each tree derives its own
    /// independent stream as `seed ^ tree_index`, so the fitted forest
    /// does not depend on the order trees are built in.
    pub seed: u64,
    /// How to spread tree fitting across threads. Because every tree
    /// owns a derived seed and results merge in tree-index order, the
    /// fitted forest is bit-identical for any setting.
    pub parallelism: Parallelism,
    /// Parameters for each member tree.
    pub tree_params: CartParams,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            trees: 25,
            sample_fraction: 1.0,
            seed: 0,
            parallelism: Parallelism::Auto,
            tree_params: CartParams::default(),
        }
    }
}

impl ForestParams {
    fn validate(&self) -> Result<()> {
        if self.trees == 0 {
            return Err(CartError::InvalidParameter { name: "trees", value: 0.0 });
        }
        if !(self.sample_fraction > 0.0 && self.sample_fraction <= 1.0) {
            return Err(CartError::InvalidParameter {
                name: "sample_fraction",
                value: self.sample_fraction,
            });
        }
        self.tree_params.validate()
    }
}

/// A bagged regression forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Forest {
    trees: Vec<Tree>,
    feature_names: Vec<String>,
    oob_mse: Option<f64>,
    baseline_variance: f64,
}

impl Forest {
    /// Fits a bagged forest on a regression dataset.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parameters, a classification dataset,
    /// or an empty dataset.
    pub fn fit(dataset: &CartDataset<'_>, params: &ForestParams) -> Result<Self> {
        Self::fit_with_obs(dataset, params, &Obs::disabled())
    }

    /// [`Forest::fit`] with observability: records a `forest.fit` span,
    /// one `forest.fit_tree` stage call per member tree (timed inside the
    /// worker), and a `forest.tree_nodes` histogram.
    ///
    /// Workers write into **local** collectors which are merged in
    /// tree-index order before being absorbed into `obs`, so everything
    /// except wall time is identical at any thread count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Forest::fit`].
    pub fn fit_with_obs(
        dataset: &CartDataset<'_>,
        params: &ForestParams,
        obs: &Obs,
    ) -> Result<Self> {
        let mut fit_span = obs.span("forest.fit");
        params.validate()?;
        let Target::Regression(y) = dataset.target() else {
            return Err(CartError::TargetKind { expected: "continuous" });
        };
        fit_span.add_items(params.trees as u64);
        let n = dataset.len();
        let sample_size = ((n as f64 * params.sample_fraction).round() as usize).max(1);
        let record = obs.is_enabled();
        // Each tree draws its bootstrap sample from an RNG seeded by
        // `seed ^ tree_index`, so trees can fit on any thread in any
        // order and still land on identical results.
        let fitted = par_map_range(params.parallelism, params.trees, |tree_index| {
            let started = record.then(std::time::Instant::now);
            let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed ^ tree_index as u64);
            let mut in_bag = vec![false; n];
            let rows: Vec<usize> = (0..sample_size)
                .map(|_| {
                    let r = rng.gen_range(0..n);
                    in_bag[r] = true;
                    r
                })
                .collect();
            let tree = Tree::fit_on_rows(dataset, &params.tree_params, &rows)?;
            let predictions = tree.predict(dataset.table())?;
            let mut local = Collector::new();
            if let Some(t) = started {
                let nanos = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
                local.record_stage("forest.fit_tree", sample_size as u64, nanos);
                local.observe("forest.tree_nodes", tree.nodes().len() as u64);
            }
            Ok::<_, CartError>((tree, in_bag, predictions, local))
        });
        // Out-of-bag accumulation, merged sequentially in tree-index
        // order so float summation order is fixed; per-tree collectors
        // fold into one in the same order.
        let mut trees = Vec::with_capacity(params.trees);
        let mut oob_sum = vec![0.0f64; n];
        let mut oob_count = vec![0u32; n];
        let mut merged = Collector::new();
        for result in fitted {
            let (tree, in_bag, predictions, local): (Tree, Vec<bool>, Vec<f64>, Collector) =
                result?;
            for (row, &pred) in predictions.iter().enumerate() {
                if !in_bag[row] {
                    oob_sum[row] += pred;
                    oob_count[row] += 1;
                }
            }
            merged.merge(&local);
            trees.push(tree);
        }
        obs.absorb(&merged);
        let mut mse_sum = 0.0;
        let mut covered = 0usize;
        for row in 0..n {
            if oob_count[row] > 0 {
                let pred = oob_sum[row] / oob_count[row] as f64;
                mse_sum += (pred - y[row]).powi(2);
                covered += 1;
            }
        }
        let oob_mse = (covered > 0).then(|| mse_sum / covered as f64);
        let mean = y.iter().sum::<f64>() / n as f64;
        let baseline_variance = y.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Ok(Forest {
            trees,
            feature_names: dataset.feature_names().to_vec(),
            oob_mse,
            baseline_variance,
        })
    }

    /// The member trees.
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Mean prediction across members for every row of `table`.
    ///
    /// # Errors
    ///
    /// Returns [`CartError::MissingFeature`] if `table` lacks a feature.
    pub fn predict(&self, table: &Table) -> Result<Vec<f64>> {
        let mut acc = vec![0.0f64; table.rows()];
        for tree in &self.trees {
            for (slot, p) in acc.iter_mut().zip(tree.predict(table)?) {
                *slot += p;
            }
        }
        let k = self.trees.len() as f64;
        for slot in &mut acc {
            *slot /= k;
        }
        Ok(acc)
    }

    /// Out-of-bag mean squared error, or `None` if every row was in-bag for
    /// every tree (tiny datasets / few trees).
    pub fn oob_mse(&self) -> Option<f64> {
        self.oob_mse
    }

    /// OOB R²: `1 − mse/var(y)`; `None` when OOB is unavailable.
    pub fn oob_r2(&self) -> Option<f64> {
        self.oob_mse.map(|mse| 1.0 - mse / self.baseline_variance.max(f64::MIN_POSITIVE))
    }

    /// Impurity-based importance averaged over members, normalized to sum
    /// to 100.
    pub fn variable_importance(&self) -> Vec<(String, f64)> {
        let mut acc: HashMap<String, f64> = HashMap::new();
        for tree in &self.trees {
            for (name, v) in tree.variable_importance() {
                *acc.entry(name).or_insert(0.0) += v;
            }
        }
        let total: f64 = acc.values().sum();
        let mut out: Vec<(String, f64)> = self
            .feature_names
            .iter()
            .map(|f| {
                let v = acc.get(f).copied().unwrap_or(0.0);
                (f.clone(), if total > 0.0 { 100.0 * v / total } else { 0.0 })
            })
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importance"));
        out
    }

    /// Permutation importance: for each feature, the relative increase in
    /// prediction MSE when that feature's values are shuffled across rows.
    /// Zero (or slightly negative, clamped) means the feature carries no
    /// information the forest uses.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is not the one the forest was fitted
    /// on (missing features / target).
    pub fn permutation_importance(
        &self,
        dataset: &CartDataset<'_>,
        seed: u64,
    ) -> Result<Vec<(String, f64)>> {
        self.permutation_importance_with(dataset, seed, Parallelism::Auto)
    }

    /// [`permutation_importance`](Self::permutation_importance) with an
    /// explicit [`Parallelism`]. Each feature shuffles with its own
    /// derived seed, so results are identical at every thread count.
    ///
    /// # Errors
    ///
    /// Returns an error if the dataset is not the one the forest was fitted
    /// on (missing features / target).
    pub fn permutation_importance_with(
        &self,
        dataset: &CartDataset<'_>,
        seed: u64,
        parallelism: Parallelism,
    ) -> Result<Vec<(String, f64)>> {
        let Target::Regression(y) = dataset.target() else {
            return Err(CartError::TargetKind { expected: "continuous" });
        };
        let table = dataset.table();
        let n = table.rows();
        let base_pred = self.predict(table)?;
        let base_mse =
            base_pred.iter().zip(y).map(|(p, t)| (p - t).powi(2)).sum::<f64>() / n as f64;
        const PERMUTATION_STREAM: u64 = 0x9e37;
        let scores = par_map_range(parallelism, self.feature_names.len(), |feature_index| {
            let feature = &self.feature_names[feature_index];
            let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(
                seed,
                PERMUTATION_STREAM,
                feature_index as u64,
            ));
            let mut perm: Vec<usize> = (0..n).collect();
            perm.shuffle(&mut rng);
            let mut mse = 0.0;
            for row in 0..n {
                let p = self.predict_row_with_remap(table, row, feature, perm[row])?;
                mse += (p - y[row]).powi(2);
            }
            mse /= n as f64;
            let importance = ((mse - base_mse) / base_mse.max(f64::MIN_POSITIVE)).max(0.0);
            Ok((feature.clone(), importance))
        });
        let mut out = scores.into_iter().collect::<Result<Vec<_>>>()?;
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite importance"));
        Ok(out)
    }

    /// Predicts `row` with `feature`'s value taken from `source_row`.
    fn predict_row_with_remap(
        &self,
        table: &Table,
        row: usize,
        feature: &str,
        source_row: usize,
    ) -> Result<f64> {
        let mut columns: HashMap<&str, FeatureColumn<'_>> = HashMap::new();
        for name in &self.feature_names {
            columns.insert(name.as_str(), feature_column(table, name)?);
        }
        let mut sum = 0.0;
        for tree in &self.trees {
            let mut id = 0usize;
            loop {
                let node = &tree.nodes()[id];
                let Some(rule) = &node.rule else {
                    sum += node.prediction;
                    break;
                };
                let effective_row = if rule.feature() == feature { source_row } else { row };
                let goes_left = rule.try_goes_left(&columns[rule.feature()], effective_row)?;
                id = if goes_left {
                    node.left.expect("split node has left child")
                } else {
                    node.right.expect("split node has right child")
                };
            }
        }
        Ok(sum / self.trees.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_telemetry::table::{FeatureKind, Field, Schema, TableBuilder, Value};

    fn table(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("signal", FeatureKind::Continuous),
            Field::new("noise", FeatureKind::Continuous),
            Field::new("y", FeatureKind::Continuous),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..n {
            let signal = (i % 100) as f64;
            let noise = ((i * 2_654_435_761) % 997) as f64 / 997.0;
            let y = if signal < 50.0 { 1.0 } else { 5.0 } + 0.4 * (noise - 0.5);
            b.push_row(vec![
                Value::Continuous(signal),
                Value::Continuous(noise),
                Value::Continuous(y),
            ])
            .unwrap();
        }
        b.build()
    }

    fn forest_params() -> ForestParams {
        ForestParams {
            trees: 15,
            sample_fraction: 0.8,
            seed: 3,
            parallelism: Parallelism::Auto,
            tree_params: CartParams::default().with_min_sizes(20, 10),
        }
    }

    #[test]
    fn forest_fits_and_predicts_signal() {
        let t = table(600);
        let ds = CartDataset::regression(&t, "y", &["signal", "noise"]).unwrap();
        let forest = Forest::fit(&ds, &forest_params()).unwrap();
        assert_eq!(forest.trees().len(), 15);
        let preds = forest.predict(&t).unwrap();
        let y = t.continuous("y").unwrap();
        let mse: f64 =
            preds.iter().zip(y).map(|(p, t)| (p - t).powi(2)).sum::<f64>() / y.len() as f64;
        assert!(mse < 0.1, "mse {mse}");
    }

    #[test]
    fn oob_r2_high_for_learnable_signal() {
        let t = table(600);
        let ds = CartDataset::regression(&t, "y", &["signal", "noise"]).unwrap();
        let forest = Forest::fit(&ds, &forest_params()).unwrap();
        let r2 = forest.oob_r2().expect("oob coverage");
        assert!(r2 > 0.8, "oob r2 {r2}");
        assert!(forest.oob_mse().unwrap() > 0.0);
    }

    #[test]
    fn permutation_importance_separates_signal_from_noise() {
        let t = table(600);
        let ds = CartDataset::regression(&t, "y", &["signal", "noise"]).unwrap();
        let forest = Forest::fit(&ds, &forest_params()).unwrap();
        let imp = forest.permutation_importance(&ds, 11).unwrap();
        let get = |n: &str| imp.iter().find(|(f, _)| f == n).unwrap().1;
        assert!(get("signal") > 10.0 * get("noise").max(1e-6), "{imp:?}");
        // Impurity importance agrees.
        let vi = forest.variable_importance();
        assert_eq!(vi[0].0, "signal");
    }

    #[test]
    fn forest_is_seed_deterministic() {
        let t = table(300);
        let ds = CartDataset::regression(&t, "y", &["signal", "noise"]).unwrap();
        let a = Forest::fit(&ds, &forest_params()).unwrap();
        let b = Forest::fit(&ds, &forest_params()).unwrap();
        assert_eq!(a, b);
        let mut other = forest_params();
        other.seed = 99;
        let c = Forest::fit(&ds, &other).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn thread_count_does_not_change_the_forest() {
        let t = table(300);
        let ds = CartDataset::regression(&t, "y", &["signal", "noise"]).unwrap();
        let mut params = forest_params();
        params.parallelism = Parallelism::Sequential;
        let sequential = Forest::fit(&ds, &params).unwrap();
        for parallelism in [Parallelism::Threads(2), Parallelism::Threads(4), Parallelism::Auto] {
            params.parallelism = parallelism;
            let threaded = Forest::fit(&ds, &params).unwrap();
            assert_eq!(sequential, threaded, "forest differs under {parallelism:?}");
            assert_eq!(sequential.oob_mse(), threaded.oob_mse());
        }
        // Permutation importance is per-feature seeded, so it is also
        // invariant to thread count.
        let a = sequential.permutation_importance_with(&ds, 11, Parallelism::Sequential).unwrap();
        let b = sequential.permutation_importance_with(&ds, 11, Parallelism::Threads(4)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn obs_deterministic_section_is_thread_invariant() {
        let t = table(300);
        let ds = CartDataset::regression(&t, "y", &["signal", "noise"]).unwrap();
        let deterministic = |par: Parallelism| {
            let mut p = forest_params();
            p.parallelism = par;
            let obs = rainshine_obs::Obs::enabled();
            Forest::fit_with_obs(&ds, &p, &obs).unwrap();
            let report = rainshine_obs::RunReport::from_collector(&obs.snapshot());
            report.deterministic_json()
        };
        let sequential = deterministic(Parallelism::Sequential);
        assert!(sequential.contains("forest.fit_tree"));
        assert!(sequential.contains("forest.tree_nodes"));
        for par in [Parallelism::Threads(2), Parallelism::Threads(8)] {
            assert_eq!(sequential, deterministic(par), "{par:?}");
        }
    }

    #[test]
    fn invalid_params_rejected() {
        let t = table(100);
        let ds = CartDataset::regression(&t, "y", &["signal"]).unwrap();
        let mut p = forest_params();
        p.trees = 0;
        assert!(Forest::fit(&ds, &p).is_err());
        let mut p = forest_params();
        p.sample_fraction = 0.0;
        assert!(Forest::fit(&ds, &p).is_err());
        let mut p = forest_params();
        p.sample_fraction = 1.5;
        assert!(Forest::fit(&ds, &p).is_err());
    }

    #[test]
    fn classification_dataset_rejected() {
        let schema = Schema::new(vec![
            Field::new("x", FeatureKind::Continuous),
            Field::new("c", FeatureKind::Nominal),
        ]);
        let mut b = TableBuilder::new(schema);
        for i in 0..50 {
            b.push_row(vec![
                Value::Continuous(i as f64),
                Value::Nominal(if i < 25 { "a".into() } else { "b".into() }),
            ])
            .unwrap();
        }
        let t = b.build();
        let ds = CartDataset::classification(&t, "c", &["x"]).unwrap();
        assert!(matches!(Forest::fit(&ds, &forest_params()), Err(CartError::TargetKind { .. })));
    }
}
