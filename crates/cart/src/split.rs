//! Split-search machinery shared by regression and classification trees.
//!
//! For each candidate feature the search finds the binary partition of the
//! node's rows that maximizes the decrease in *risk*:
//!
//! * regression — risk(node) = Σ (y − ȳ)² (the node deviance);
//! * classification — risk(node) = n · Gini(node).
//!
//! Continuous and ordinal features are scanned over sorted distinct values.
//! Nominal features are scanned over categories ordered by mean response
//! (exact for these two criteria — Breiman et al. 1984, Thm. 4.5), or
//! exhaustively when [`NominalSearch::Exhaustive`] is selected and the
//! category count permits.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::dataset::{FeatureColumn, Target};
use crate::error::CartError;
use crate::params::{CartParams, NominalSearch};

/// A fitted split rule. Rows satisfying the rule go to the **left** child.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SplitRule {
    /// Continuous: `value <= threshold` goes left. NaN values (missing
    /// telemetry, e.g. a sensor blackout) route to the majority branch
    /// recorded at fit time.
    ContinuousThreshold {
        /// Feature name.
        feature: String,
        /// Split threshold (midpoint between adjacent observed values).
        threshold: f64,
        /// Where rows with a NaN feature value go: the side that held the
        /// majority of (finite) rows when the split was fitted.
        nan_left: bool,
    },
    /// Ordinal: `level <= threshold` goes left.
    OrdinalThreshold {
        /// Feature name.
        feature: String,
        /// Highest level routed left.
        threshold: i64,
    },
    /// Nominal: `code ∈ left_codes` goes left.
    NominalSubset {
        /// Feature name.
        feature: String,
        /// Category codes routed left.
        left_codes: BTreeSet<u32>,
        /// Labels for `left_codes` (for display).
        left_labels: Vec<String>,
    },
}

impl SplitRule {
    /// The feature this rule tests.
    pub fn feature(&self) -> &str {
        match self {
            SplitRule::ContinuousThreshold { feature, .. }
            | SplitRule::OrdinalThreshold { feature, .. }
            | SplitRule::NominalSubset { feature, .. } => feature,
        }
    }

    /// The column kind this rule expects to test.
    pub fn expected_kind(&self) -> &'static str {
        match self {
            SplitRule::ContinuousThreshold { .. } => "continuous",
            SplitRule::OrdinalThreshold { .. } => "ordinal",
            SplitRule::NominalSubset { .. } => "nominal",
        }
    }

    /// Whether `row` of `column` goes to the left child.
    ///
    /// # Errors
    ///
    /// Returns [`CartError::ColumnKindMismatch`] if the column kind does
    /// not match the rule kind — this happens when a prediction table's
    /// schema drifted from the fit-time schema (same column name,
    /// different kind).
    pub fn try_goes_left(&self, column: &FeatureColumn<'_>, row: usize) -> Result<bool, CartError> {
        match (self, column) {
            (
                SplitRule::ContinuousThreshold { threshold, nan_left, .. },
                FeatureColumn::Continuous(v),
            ) => {
                let x = v[row];
                Ok(if x.is_nan() { *nan_left } else { x <= *threshold })
            }
            (SplitRule::OrdinalThreshold { threshold, .. }, FeatureColumn::Ordinal(v)) => {
                Ok(v[row] <= *threshold)
            }
            (SplitRule::NominalSubset { left_codes, .. }, FeatureColumn::Nominal { codes, .. }) => {
                Ok(left_codes.contains(&codes[row]))
            }
            _ => Err(CartError::ColumnKindMismatch {
                feature: self.feature().to_owned(),
                expected: self.expected_kind(),
                found: column.kind_name(),
            }),
        }
    }

    /// Whether `row` of `column` goes to the left child.
    ///
    /// # Panics
    ///
    /// Panics if the column kind does not match the rule kind. Fit-time
    /// callers use this because the tree guarantees consistency there;
    /// prediction paths use [`SplitRule::try_goes_left`] instead so that
    /// schema drift surfaces as a typed error.
    pub fn goes_left(&self, column: &FeatureColumn<'_>, row: usize) -> bool {
        match self.try_goes_left(column, row) {
            Ok(left) => left,
            Err(e) => panic!("split rule kind does not match column kind: {e}"),
        }
    }

    /// Human-readable description, e.g. `temperature_f <= 78.4`.
    pub fn describe(&self) -> String {
        match self {
            SplitRule::ContinuousThreshold { feature, threshold, .. } => {
                format!("{feature} <= {threshold:.4}")
            }
            SplitRule::OrdinalThreshold { feature, threshold } => {
                format!("{feature} <= {threshold}")
            }
            SplitRule::NominalSubset { feature, left_labels, .. } => {
                format!("{feature} in {{{}}}", left_labels.join(", "))
            }
        }
    }
}

/// Incremental risk accumulator for one side of a candidate split.
#[derive(Debug, Clone)]
pub(crate) enum RiskAcc {
    Reg { n: f64, sum: f64, sumsq: f64 },
    Cls { n: f64, counts: Vec<f64> },
}

impl RiskAcc {
    pub(crate) fn empty_like(target: &Target<'_>) -> Self {
        match target {
            Target::Regression(_) => RiskAcc::Reg { n: 0.0, sum: 0.0, sumsq: 0.0 },
            Target::Classification { classes, .. } => {
                RiskAcc::Cls { n: 0.0, counts: vec![0.0; classes.len()] }
            }
        }
    }

    pub(crate) fn add_row(&mut self, target: &Target<'_>, row: usize) {
        match (self, target) {
            (RiskAcc::Reg { n, sum, sumsq }, Target::Regression(y)) => {
                *n += 1.0;
                *sum += y[row];
                *sumsq += y[row] * y[row];
            }
            (RiskAcc::Cls { n, counts }, Target::Classification { codes, .. }) => {
                *n += 1.0;
                counts[codes[row] as usize] += 1.0;
            }
            _ => unreachable!("accumulator kind matches target kind"),
        }
    }

    pub(crate) fn n(&self) -> f64 {
        match self {
            RiskAcc::Reg { n, .. } | RiskAcc::Cls { n, .. } => *n,
        }
    }

    /// Node risk: deviance (regression) or n·Gini (classification).
    pub(crate) fn risk(&self) -> f64 {
        match self {
            RiskAcc::Reg { n, sum, sumsq } => {
                if *n == 0.0 {
                    0.0
                } else {
                    (sumsq - sum * sum / n).max(0.0)
                }
            }
            RiskAcc::Cls { n, counts } => {
                if *n == 0.0 {
                    0.0
                } else {
                    *n * (1.0 - counts.iter().map(|c| (c / n).powi(2)).sum::<f64>())
                }
            }
        }
    }

    /// Risk of the complement side given the node total.
    pub(crate) fn complement_risk(&self, total: &RiskAcc) -> f64 {
        match (self, total) {
            (RiskAcc::Reg { n, sum, sumsq }, RiskAcc::Reg { n: tn, sum: ts, sumsq: tss }) => {
                let rn = tn - n;
                if rn <= 0.0 {
                    0.0
                } else {
                    let rs = ts - sum;
                    let rss = tss - sumsq;
                    (rss - rs * rs / rn).max(0.0)
                }
            }
            (RiskAcc::Cls { n, counts }, RiskAcc::Cls { n: tn, counts: tc }) => {
                let rn = tn - n;
                if rn <= 0.0 {
                    0.0
                } else {
                    let gini = 1.0
                        - counts.iter().zip(tc).map(|(c, t)| ((t - c) / rn).powi(2)).sum::<f64>();
                    rn * gini
                }
            }
            _ => unreachable!("accumulator kinds match"),
        }
    }

    /// Mean response (regression) or first-class proportion
    /// (classification) — the ordering key for nominal categories.
    fn ordering_key(&self) -> f64 {
        match self {
            RiskAcc::Reg { n, sum, .. } => {
                if *n == 0.0 {
                    0.0
                } else {
                    sum / n
                }
            }
            RiskAcc::Cls { n, counts } => {
                if *n == 0.0 {
                    0.0
                } else {
                    counts.first().copied().unwrap_or(0.0) / n
                }
            }
        }
    }
}

/// Best split found for one node.
#[derive(Debug, Clone)]
pub(crate) struct BestSplit {
    pub rule: SplitRule,
    /// Absolute risk decrease achieved by the split.
    pub improvement: f64,
}

/// The NaN-free, stably sorted row order of one ordered feature.
///
/// This is the *presort* half of the presort-once / partition-many
/// fitter: [`crate::tree::Tree`] computes it once per (tree, feature)
/// over the root rows and then stably partitions the index array down
/// the tree, so no node ever re-sorts. The stable sort (ties keep the
/// input row order) is what makes a partitioned segment bit-identical
/// to re-sorting the child's rows from scratch.
///
/// `f64::total_cmp` (not `partial_cmp().expect(..)`) keeps a NaN that
/// slips past the pre-filter from panicking a fit: total order sorts
/// NaN to the ends instead of aborting.
pub(crate) fn sorted_order<V: Fn(usize) -> f64>(rows: &[usize], value_of: V) -> Vec<usize> {
    let mut order: Vec<usize> = rows.iter().copied().filter(|&r| !value_of(r).is_nan()).collect();
    order.sort_by(|&a, &b| value_of(a).total_cmp(&value_of(b)));
    order
}

/// Searches all features for the best split of `rows`, sorting each
/// ordered feature on the fly.
///
/// This is the per-node-sort reference path, kept for unit tests and
/// the presort-equivalence regression; tree growth uses
/// [`best_split_presorted`] with cached index permutations instead.
///
/// Returns `None` if no admissible split exists (all features constant on
/// the node, or min_leaf cannot be satisfied).
pub(crate) fn best_split(
    target: &Target<'_>,
    features: &[(String, FeatureColumn<'_>)],
    rows: &[usize],
    parent_risk: f64,
    params: &CartParams,
) -> Option<BestSplit> {
    let orders: Vec<Option<Vec<usize>>> = features
        .iter()
        .map(|(_, column)| match column {
            FeatureColumn::Continuous(values) => Some(sorted_order(rows, |r| values[r])),
            FeatureColumn::Ordinal(values) => Some(sorted_order(rows, |r| values[r] as f64)),
            FeatureColumn::Nominal { .. } => None,
        })
        .collect();
    let orders: Vec<Option<&[usize]>> = orders.iter().map(Option::as_deref).collect();
    best_split_presorted(target, features, rows, &orders, parent_risk, params)
}

/// Searches all features for the best split of `rows`, using a cached
/// sorted index segment per ordered feature (`orders` is aligned with
/// `features`; nominal entries are `None`).
///
/// Each `Some` segment must hold exactly the node's rows with a finite
/// value for that feature, stably sorted ascending — the invariant the
/// presort-partition fitter maintains down the tree.
pub(crate) fn best_split_presorted(
    target: &Target<'_>,
    features: &[(String, FeatureColumn<'_>)],
    rows: &[usize],
    orders: &[Option<&[usize]>],
    parent_risk: f64,
    params: &CartParams,
) -> Option<BestSplit> {
    let mut best: Option<BestSplit> = None;
    for ((name, column), order) in features.iter().zip(orders) {
        let candidate = match column {
            FeatureColumn::Continuous(values) => scan_ordered(
                target,
                rows,
                order.expect("continuous feature has a presorted segment"),
                parent_risk,
                params,
                |row| values[row],
                |left_max, right_min, nan_left| SplitRule::ContinuousThreshold {
                    feature: name.clone(),
                    threshold: (left_max + right_min) / 2.0,
                    nan_left,
                },
            ),
            FeatureColumn::Ordinal(values) => scan_ordered(
                target,
                rows,
                order.expect("ordinal feature has a presorted segment"),
                parent_risk,
                params,
                |row| values[row] as f64,
                |left_max, _, _| SplitRule::OrdinalThreshold {
                    feature: name.clone(),
                    threshold: left_max as i64,
                },
            ),
            FeatureColumn::Nominal { codes, categories } => {
                scan_nominal(target, rows, parent_risk, params, name, codes, categories)
            }
        };
        if let Some(c) = candidate {
            let better = match &best {
                None => true,
                Some(b) => c.improvement > b.improvement,
            };
            if better {
                best = Some(c);
            }
        }
    }
    best
}

/// Scans an ordered feature over its presorted row segment, sweeping
/// prefix boundaries between distinct values.
///
/// Rows whose value is NaN (missing telemetry) are excluded from `order`
/// (at presort time); the candidate split's risk is then measured against
/// the finite subpopulation only, and the rule records which side held
/// the majority so missing rows route there at partition/prediction
/// time. With no NaN present the arithmetic is identical to a scan over
/// `rows` as given.
fn scan_ordered<V, M>(
    target: &Target<'_>,
    rows: &[usize],
    order: &[usize],
    parent_risk: f64,
    params: &CartParams,
    value_of: V,
    make_rule: M,
) -> Option<BestSplit>
where
    V: Fn(usize) -> f64,
    M: Fn(f64, f64, bool) -> SplitRule,
{
    if order.len() < 2 {
        return None;
    }
    let all_finite = order.len() == rows.len();
    let mut total = RiskAcc::empty_like(target);
    if all_finite {
        // Accumulate in the caller's row order so clean-data results stay
        // bit-identical to the pre-NaN-tolerant scan.
        for &r in rows {
            total.add_row(target, r);
        }
    } else {
        for &r in order {
            total.add_row(target, r);
        }
    }
    let parent_risk = if all_finite { parent_risk } else { total.risk() };
    let n = order.len();
    let mut left = RiskAcc::empty_like(target);
    let mut best: Option<(f64, usize)> = None; // (improvement, boundary index)
    for i in 0..n - 1 {
        left.add_row(target, order[i]);
        // Only split between distinct values.
        if value_of(order[i]) == value_of(order[i + 1]) {
            continue;
        }
        let left_n = i + 1;
        let right_n = n - left_n;
        if left_n < params.min_leaf || right_n < params.min_leaf {
            continue;
        }
        let improvement = parent_risk - left.risk() - left.complement_risk(&total);
        if improvement > best.map_or(0.0, |b| b.0) {
            best = Some((improvement, i));
        }
    }
    best.map(|(improvement, i)| BestSplit {
        rule: make_rule(value_of(order[i]), value_of(order[i + 1]), i + 1 >= n - (i + 1)),
        improvement,
    })
}

/// Scans a nominal feature.
fn scan_nominal(
    target: &Target<'_>,
    rows: &[usize],
    parent_risk: f64,
    params: &CartParams,
    name: &str,
    codes: &[u32],
    categories: &[String],
) -> Option<BestSplit> {
    // Aggregate per category present in this node.
    let mut per_cat: Vec<(u32, RiskAcc)> = Vec::new();
    for &r in rows {
        let code = codes[r];
        match per_cat.iter_mut().find(|(c, _)| *c == code) {
            Some((_, acc)) => acc.add_row(target, r),
            None => {
                let mut acc = RiskAcc::empty_like(target);
                acc.add_row(target, r);
                per_cat.push((code, acc));
            }
        }
    }
    if per_cat.len() < 2 {
        return None;
    }
    let exhaustive = params.nominal_search == NominalSearch::Exhaustive
        && per_cat.len() <= params.exhaustive_limit;
    if exhaustive {
        scan_nominal_exhaustive(
            target,
            rows,
            parent_risk,
            params,
            name,
            codes,
            categories,
            &per_cat,
        )
    } else {
        scan_nominal_ordered(target, rows, parent_risk, params, name, codes, categories, &per_cat)
    }
}

#[allow(clippy::too_many_arguments)]
fn scan_nominal_ordered(
    target: &Target<'_>,
    rows: &[usize],
    parent_risk: f64,
    params: &CartParams,
    name: &str,
    codes: &[u32],
    categories: &[String],
    per_cat: &[(u32, RiskAcc)],
) -> Option<BestSplit> {
    let mut ordered: Vec<&(u32, RiskAcc)> = per_cat.iter().collect();
    // total_cmp so a non-finite ordering key (possible only with a dirty
    // target) degrades the category order instead of panicking the fit.
    ordered.sort_by(|a, b| a.1.ordering_key().total_cmp(&b.1.ordering_key()).then(a.0.cmp(&b.0)));
    let mut total = RiskAcc::empty_like(target);
    for &r in rows {
        total.add_row(target, r);
    }
    let n = rows.len();
    let mut left = RiskAcc::empty_like(target);
    let mut left_codes: BTreeSet<u32> = BTreeSet::new();
    let mut best: Option<(f64, BTreeSet<u32>)> = None;
    for (k, (code, _)) in ordered.iter().enumerate().take(ordered.len() - 1) {
        // Move category k into the left side.
        for &r in rows {
            if codes[r] == *code {
                left.add_row(target, r);
            }
        }
        left_codes.insert(*code);
        let left_n = left.n() as usize;
        let right_n = n - left_n;
        let _ = k;
        if left_n < params.min_leaf || right_n < params.min_leaf {
            continue;
        }
        let improvement = parent_risk - left.risk() - left.complement_risk(&total);
        if improvement > best.as_ref().map_or(0.0, |b| b.0) {
            best = Some((improvement, left_codes.clone()));
        }
    }
    best.map(|(improvement, set)| BestSplit {
        rule: SplitRule::NominalSubset {
            feature: name.to_owned(),
            left_labels: set.iter().map(|&c| categories[c as usize].clone()).collect(),
            left_codes: set,
        },
        improvement,
    })
}

#[allow(clippy::too_many_arguments)]
fn scan_nominal_exhaustive(
    target: &Target<'_>,
    rows: &[usize],
    parent_risk: f64,
    params: &CartParams,
    name: &str,
    codes: &[u32],
    categories: &[String],
    per_cat: &[(u32, RiskAcc)],
) -> Option<BestSplit> {
    let cats: Vec<u32> = per_cat.iter().map(|(c, _)| *c).collect();
    let k = cats.len();
    let mut total = RiskAcc::empty_like(target);
    for &r in rows {
        total.add_row(target, r);
    }
    let n = rows.len();
    let mut best: Option<(f64, BTreeSet<u32>)> = None;
    // Iterate proper non-empty subsets; fix category 0 on the right to halve
    // the space (masks over cats[1..]).
    for mask in 1u64..(1 << (k - 1)) {
        let mut left = RiskAcc::empty_like(target);
        let mut set = BTreeSet::new();
        for (bit, &cat) in cats[1..].iter().enumerate() {
            if mask & (1 << bit) != 0 {
                set.insert(cat);
            }
        }
        for &r in rows {
            if set.contains(&codes[r]) {
                left.add_row(target, r);
            }
        }
        let left_n = left.n() as usize;
        let right_n = n - left_n;
        if left_n < params.min_leaf || right_n < params.min_leaf {
            continue;
        }
        let improvement = parent_risk - left.risk() - left.complement_risk(&total);
        if improvement > best.as_ref().map_or(0.0, |b| b.0) {
            best = Some((improvement, set));
        }
    }
    best.map(|(improvement, set)| BestSplit {
        rule: SplitRule::NominalSubset {
            feature: name.to_owned(),
            left_labels: set.iter().map(|&c| categories[c as usize].clone()).collect(),
            left_codes: set,
        },
        improvement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_target(values: &[f64]) -> Target<'_> {
        Target::Regression(values)
    }

    #[test]
    fn risk_acc_regression_matches_ssd() {
        let y = [1.0, 2.0, 3.0, 10.0];
        let t = reg_target(&y);
        let mut acc = RiskAcc::empty_like(&t);
        for r in 0..4 {
            acc.add_row(&t, r);
        }
        let expected = rainshine_stats::impurity::sum_squared_deviation(&y);
        assert!((acc.risk() - expected).abs() < 1e-9);
    }

    #[test]
    fn complement_risk_matches_direct() {
        let y = [1.0, 2.0, 3.0, 10.0, 4.0];
        let t = reg_target(&y);
        let mut total = RiskAcc::empty_like(&t);
        for r in 0..5 {
            total.add_row(&t, r);
        }
        let mut left = RiskAcc::empty_like(&t);
        left.add_row(&t, 0);
        left.add_row(&t, 3);
        let mut right = RiskAcc::empty_like(&t);
        for r in [1, 2, 4] {
            right.add_row(&t, r);
        }
        assert!((left.complement_risk(&total) - right.risk()).abs() < 1e-9);
    }

    #[test]
    fn ordered_scan_finds_step() {
        let y = [0.0, 0.0, 0.0, 10.0, 10.0, 10.0];
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let t = reg_target(&y);
        let rows: Vec<usize> = (0..6).collect();
        let mut parent = RiskAcc::empty_like(&t);
        for &r in &rows {
            parent.add_row(&t, r);
        }
        let params = CartParams::default().with_min_sizes(2, 1);
        let features = vec![("x".to_owned(), FeatureColumn::Continuous(&x))];
        let best = best_split(&t, &features, &rows, parent.risk(), &params).unwrap();
        match best.rule {
            SplitRule::ContinuousThreshold { threshold, .. } => {
                assert!((threshold - 3.5).abs() < 1e-9);
            }
            _ => panic!("expected continuous rule"),
        }
        // Perfect split removes all deviance.
        assert!((best.improvement - parent.risk()).abs() < 1e-9);
    }

    #[test]
    fn nominal_ordered_matches_exhaustive_for_regression() {
        // 4 categories with means 1, 9, 2, 8 — optimal partition {a, c} | {b, d}.
        let codes = [0u32, 0, 1, 1, 2, 2, 3, 3];
        let y = [1.0, 1.2, 9.0, 8.8, 2.0, 2.2, 8.0, 8.2];
        let cats: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let t = reg_target(&y);
        let rows: Vec<usize> = (0..8).collect();
        let mut parent = RiskAcc::empty_like(&t);
        for &r in &rows {
            parent.add_row(&t, r);
        }
        let mut params = CartParams::default().with_min_sizes(2, 1);
        let features =
            vec![("k".to_owned(), FeatureColumn::Nominal { codes: &codes, categories: &cats })];

        let ordered = best_split(&t, &features, &rows, parent.risk(), &params).unwrap();
        params.nominal_search = NominalSearch::Exhaustive;
        let exhaustive = best_split(&t, &features, &rows, parent.risk(), &params).unwrap();
        assert!((ordered.improvement - exhaustive.improvement).abs() < 1e-9);
        match &ordered.rule {
            SplitRule::NominalSubset { left_codes, .. } => {
                // Low-mean side: categories a (0) and c (2).
                assert_eq!(left_codes.iter().copied().collect::<Vec<_>>(), vec![0, 2]);
            }
            _ => panic!("expected nominal rule"),
        }
    }

    #[test]
    fn min_leaf_blocks_extreme_splits() {
        let y = [0.0, 10.0, 10.0, 10.0, 10.0, 10.0];
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let t = reg_target(&y);
        let rows: Vec<usize> = (0..6).collect();
        let mut parent = RiskAcc::empty_like(&t);
        for &r in &rows {
            parent.add_row(&t, r);
        }
        // min_leaf = 3 forbids the 1|5 split that isolates the outlier.
        let params = CartParams::default().with_min_sizes(2, 3);
        let features = vec![("x".to_owned(), FeatureColumn::Continuous(&x))];
        let best = best_split(&t, &features, &rows, parent.risk(), &params).unwrap();
        match best.rule {
            SplitRule::ContinuousThreshold { threshold, .. } => {
                assert!((threshold - 3.5).abs() < 1e-9, "got {threshold}");
            }
            _ => panic!("expected continuous rule"),
        }
    }

    #[test]
    fn constant_feature_yields_no_split() {
        let y = [0.0, 1.0, 2.0, 3.0];
        let x = [5.0, 5.0, 5.0, 5.0];
        let t = reg_target(&y);
        let rows: Vec<usize> = (0..4).collect();
        let features = vec![("x".to_owned(), FeatureColumn::Continuous(&x))];
        let params = CartParams::default().with_min_sizes(2, 1);
        assert!(best_split(&t, &features, &rows, 10.0, &params).is_none());
    }

    #[test]
    fn classification_split_on_gini() {
        let codes = [0u32, 0, 0, 1, 1, 1];
        let classes: Vec<String> = vec!["no".into(), "yes".into()];
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let t = Target::Classification { codes: &codes, classes: &classes };
        let rows: Vec<usize> = (0..6).collect();
        let mut parent = RiskAcc::empty_like(&t);
        for &r in &rows {
            parent.add_row(&t, r);
        }
        // Parent gini risk: 6 * 0.5 = 3.
        assert!((parent.risk() - 3.0).abs() < 1e-9);
        let features = vec![("x".to_owned(), FeatureColumn::Continuous(&x))];
        let params = CartParams::default().with_min_sizes(2, 1);
        let best = best_split(&t, &features, &rows, parent.risk(), &params).unwrap();
        assert!((best.improvement - 3.0).abs() < 1e-9, "perfect split");
    }

    #[test]
    fn nan_rows_are_excluded_from_the_scan_and_routed_by_majority() {
        // Step at x = 3.5 among finite rows; two NaN rows ride along.
        let y = [0.0, 0.0, 0.0, 10.0, 10.0, 10.0, 5.0, 5.0];
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, f64::NAN, f64::NAN];
        let t = reg_target(&y);
        let rows: Vec<usize> = (0..8).collect();
        let params = CartParams::default().with_min_sizes(2, 1);
        let features = vec![("x".to_owned(), FeatureColumn::Continuous(&x))];
        let best = best_split(&t, &features, &rows, 1e9, &params).unwrap();
        match &best.rule {
            SplitRule::ContinuousThreshold { threshold, nan_left, .. } => {
                assert!((threshold - 3.5).abs() < 1e-9, "got {threshold}");
                // 3 finite rows on each side: ties route left.
                assert!(nan_left);
            }
            other => panic!("expected continuous rule, got {other:?}"),
        }
        let col = FeatureColumn::Continuous(&x);
        assert!(best.rule.goes_left(&col, 6), "NaN row follows nan_left");
    }

    #[test]
    fn all_nan_feature_yields_no_split() {
        let y = [0.0, 1.0, 2.0, 3.0];
        let x = [f64::NAN; 4];
        let t = reg_target(&y);
        let rows: Vec<usize> = (0..4).collect();
        let features = vec![("x".to_owned(), FeatureColumn::Continuous(&x))];
        let params = CartParams::default().with_min_sizes(2, 1);
        assert!(best_split(&t, &features, &rows, 10.0, &params).is_none());
    }

    #[test]
    fn rule_describe_and_goes_left() {
        let rule = SplitRule::ContinuousThreshold {
            feature: "t".into(),
            threshold: 78.0,
            nan_left: false,
        };
        let values = [70.0, 80.0];
        let col = FeatureColumn::Continuous(&values);
        assert!(rule.goes_left(&col, 0));
        assert!(!rule.goes_left(&col, 1));
        assert_eq!(rule.describe(), "t <= 78.0000");

        let set: BTreeSet<u32> = [1u32].into_iter().collect();
        let rule = SplitRule::NominalSubset {
            feature: "k".into(),
            left_codes: set,
            left_labels: vec!["b".into()],
        };
        assert_eq!(rule.describe(), "k in {b}");
    }
}
