use std::error::Error;
use std::fmt;

/// Error type for CART model building and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum CartError {
    /// The dataset had no rows.
    EmptyDataset,
    /// A referenced column does not exist or has the wrong kind.
    Telemetry(rainshine_telemetry::TelemetryError),
    /// The target column kind does not match the tree kind.
    TargetKind {
        /// What the constructor required.
        expected: &'static str,
    },
    /// The feature list was empty.
    NoFeatures,
    /// The target column was listed among the features.
    TargetIsFeature {
        /// The offending column name.
        name: String,
    },
    /// A hyper-parameter was out of its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
    /// Cross-validation was asked for more folds than rows.
    TooManyFolds {
        /// Requested folds.
        folds: usize,
        /// Available rows.
        rows: usize,
    },
    /// A prediction was requested against a table missing a feature used by
    /// the fitted tree.
    MissingFeature {
        /// Feature name used by the tree.
        name: String,
    },
    /// A prediction table carries a feature whose kind differs from the
    /// kind the fitted split rule was trained on (e.g. a column that was
    /// continuous at fit time arrives nominal at predict time).
    ColumnKindMismatch {
        /// Feature name tested by the split rule.
        feature: String,
        /// Column kind the rule expects.
        expected: &'static str,
        /// Column kind the table provided.
        found: &'static str,
    },
}

impl fmt::Display for CartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CartError::EmptyDataset => write!(f, "dataset has no rows"),
            CartError::Telemetry(e) => write!(f, "dataset error: {e}"),
            CartError::TargetKind { expected } => {
                write!(f, "target column must be {expected}")
            }
            CartError::NoFeatures => write!(f, "feature list is empty"),
            CartError::TargetIsFeature { name } => {
                write!(f, "target column `{name}` also listed as a feature")
            }
            CartError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
            CartError::TooManyFolds { folds, rows } => {
                write!(f, "{folds} folds requested but only {rows} rows available")
            }
            CartError::MissingFeature { name } => {
                write!(f, "prediction table lacks feature `{name}`")
            }
            CartError::ColumnKindMismatch { feature, expected, found } => {
                write!(f, "feature `{feature}` is {found} but the fitted rule expects {expected}")
            }
        }
    }
}

impl Error for CartError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CartError::Telemetry(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rainshine_telemetry::TelemetryError> for CartError {
    fn from(e: rainshine_telemetry::TelemetryError) -> Self {
        CartError::Telemetry(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        assert!(CartError::EmptyDataset.to_string().contains("no rows"));
        assert!(CartError::TargetIsFeature { name: "y".into() }.to_string().contains("y"));
        assert!(CartError::TooManyFolds { folds: 10, rows: 3 }.to_string().contains("10"));
    }
}
