//! Property-based tests for the conformance harness: scenario specs must
//! survive a serde round-trip for any envelope values, and the divergence
//! arithmetic behind the differential oracles must be total — NaN cells,
//! signed zeros, and zero-row tables included.

use proptest::prelude::*;
use rainshine_conformance::scenario::{
    CartSpec, Claim, ClaimSpec, EffectToggles, Expect, Scenario,
};
use rainshine_conformance::{cell_divergence, DiffOracle, DivergenceBound};
use rainshine_telemetry::table::{FeatureKind, Field, Schema, Table, TableBuilder, Value};

const LABELS: [&str; 8] = ["W2", "W3", "S2", "S4", "DC1", "DC2", "software", "rack_7-b"];

fn finite() -> impl Strategy<Value = f64> {
    -1e6f64..1e6
}

/// Any f64 bit pattern: normals, subnormals, infinities, and NaNs.
fn any_f64() -> impl Strategy<Value = f64> {
    (0u64..u64::MAX).prop_map(f64::from_bits)
}

fn pbool() -> impl Strategy<Value = bool> {
    (0u8..2).prop_map(|b| b == 1)
}

fn label() -> impl Strategy<Value = String> {
    (0usize..LABELS.len()).prop_map(|i| LABELS[i].to_string())
}

/// Labels `Scenario::validate` accepts as workloads / mix categories.
fn workload() -> impl Strategy<Value = String> {
    (1usize..7).prop_map(|i| format!("W{i}"))
}

fn category() -> impl Strategy<Value = String> {
    (0usize..3).prop_map(|i| ["software", "hardware", "boot"][i].to_string())
}

fn cart_spec() -> impl Strategy<Value = CartSpec> {
    (2usize..2000, 1usize..1000, 0.0f64..0.1).prop_map(|(min_split, min_leaf, cp)| CartSpec {
        min_split,
        min_leaf,
        cp,
    })
}

fn effects() -> impl Strategy<Value = EffectToggles> {
    (pbool(), pbool(), pbool(), pbool(), 0.0f64..2.0, -10.0f64..10.0, 0.0f64..0.3).prop_map(
        |(age, env, cal, bursts, sku, shift, corruption)| EffectToggles {
            age_bathtub: age,
            environment: env,
            calendar: cal,
            bursts,
            sku_spread: sku,
            hot_threshold_shift_f: shift,
            corruption_rate: corruption,
        },
    )
}

/// One arbitrary claim covering every structural shape: bare envelope
/// floats, embedded [`CartSpec`]s, string-keyed variants.
fn claim() -> impl Strategy<Value = Claim> {
    (
        0usize..10,
        cart_spec(),
        1usize..8,
        (label(), label(), workload(), category()),
        (finite(), finite(), finite()),
        pbool(),
        0usize..10,
    )
        .prop_map(|(variant, cart, stride, (l1, l2, w, cat), (f1, f2, f3), flag, small)| {
            match variant {
                0 => Claim::AgeBathtub { min_young_over_mid: f1 },
                1 => Claim::RegionGap { min_dc1_over_dc2: f1 },
                2 => Claim::WeekdaySpread { lo: f1, hi: f2, weekdays_over_weekends: flag },
                3 => Claim::WorkloadExtremes { highest: w.clone(), lowest: w },
                4 => Claim::DriverImportance { cart, min_planted_share: f1, max_week_share: f2 },
                5 => Claim::MfSkuRatio {
                    cart,
                    table_stride: stride,
                    sku_hi: l1,
                    sku_lo: l2,
                    lo: f1,
                    hi: f2,
                },
                6 => Claim::TempThreshold {
                    cart,
                    table_stride: stride,
                    dc: l1,
                    lo_f: f1,
                    hi_f: f2,
                    min_hot_over_cool: f3,
                },
                7 => Claim::EnvRules { cart, table_stride: stride, dc: l1, min_rules: small },
                8 => Claim::SfOverprovision { workload: w, sla: 0.95, lo_pct: f1, hi_pct: f2 },
                _ => Claim::MixShare { category: cat, lo: f1, hi: f2 },
            }
        })
}

fn claim_spec() -> impl Strategy<Value = ClaimSpec> {
    (label(), claim(), pbool(), 0.0f64..1.0, label()).prop_map(
        |(name, claim, present, min_recovery, derivation)| ClaimSpec {
            name,
            claim,
            expect: if present { Expect::Present } else { Expect::Absent },
            min_recovery,
            derivation,
        },
    )
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        label(),
        label(),
        (0usize..3).prop_map(|i| ["small", "medium", "paper"][i].to_string()),
        1usize..8,
        0u64..u64::MAX / 2,
        effects(),
        prop::collection::vec(claim_spec(), 1..6),
    )
        .prop_map(|(name, description, scale, day_stride, seed_base, effects, claims)| {
            Scenario { name, description, scale, day_stride, seed_base, effects, claims }
        })
}

fn two_col_table(xs: &[f64], labels: &[String]) -> Table {
    let schema = Schema::new(vec![
        Field { name: "x".into(), kind: FeatureKind::Continuous },
        Field { name: "label".into(), kind: FeatureKind::Nominal },
    ]);
    let mut b = TableBuilder::new(schema);
    for (x, l) in xs.iter().zip(labels) {
        b.push_row(vec![Value::Continuous(*x), Value::Nominal(l.clone())]).unwrap();
    }
    b.build()
}

proptest! {
    #[test]
    fn scenario_specs_round_trip_through_serde(s in scenario()) {
        let json = s.to_json();
        let reparsed = Scenario::from_json(&json).expect("generated scenario re-parses");
        prop_assert_eq!(reparsed, s);
    }

    #[test]
    fn cell_divergence_is_total_symmetric_and_self_zero(a in any_f64(), b in any_f64()) {
        // Total: never NaN, never negative.
        let d = cell_divergence(a, b);
        prop_assert!(!d.is_nan(), "divergence of {a:?} vs {b:?} is NaN");
        prop_assert!(d >= 0.0);
        // Symmetric.
        prop_assert_eq!(d.to_bits(), cell_divergence(b, a).to_bits());
        // Self-comparison is exactly zero, NaN included.
        prop_assert_eq!(cell_divergence(a, a), 0.0);
        // Mixed NaN is an unconditional violation signal.
        if a.is_nan() != b.is_nan() {
            prop_assert_eq!(d, f64::INFINITY);
        }
    }

    #[test]
    fn bound_arithmetic_matches_its_definition(d in 0.0f64..1e9, bound in 0.0f64..1e9) {
        prop_assert_eq!(DivergenceBound::MaxAbs(bound).allows(d), d <= bound);
        prop_assert_eq!(DivergenceBound::BitIdentical.allows(d), d == 0.0);
        prop_assert!(!DivergenceBound::MaxAbs(bound).allows(f64::INFINITY));
    }

    #[test]
    fn any_table_is_bit_identical_to_itself(
        cells in prop::collection::vec(((0u8..4), finite(), label()), 0..40),
    ) {
        // One cell in four is NaN: sensor blackouts must not break
        // self-comparison.
        let xs: Vec<f64> =
            cells.iter().map(|(k, x, _)| if *k == 0 { f64::NAN } else { *x }).collect();
        let labels: Vec<String> = cells.iter().map(|(_, _, l)| l.clone()).collect();
        let t = two_col_table(&xs, &labels);
        let oracle = DiffOracle::new("self", DivergenceBound::BitIdentical);
        let r = oracle.compare_tables(&t, &t);
        prop_assert!(!r.violation, "{}", r.detail);
        prop_assert_eq!(r.max_divergence, 0.0);
        prop_assert_eq!(r.cells as usize, cells.len() * 2);
    }

    #[test]
    fn perturbing_one_cell_beyond_the_bound_is_caught(
        rows in prop::collection::vec((finite(), label()), 1..30),
        pick in 0usize..1usize << 30,
        delta in 0.5f64..100.0,
    ) {
        let xs: Vec<f64> = rows.iter().map(|(x, _)| *x).collect();
        let labels: Vec<String> = rows.iter().map(|(_, l)| l.clone()).collect();
        let a = two_col_table(&xs, &labels);
        let mut ys = xs.clone();
        ys[pick % xs.len()] += delta;
        let b = two_col_table(&ys, &labels);
        let tight = DiffOracle::new("tight", DivergenceBound::MaxAbs(delta / 4.0));
        prop_assert!(tight.compare_tables(&a, &b).violation);
        let loose = DiffOracle::new("loose", DivergenceBound::MaxAbs(delta * 4.0));
        prop_assert!(!loose.compare_tables(&a, &b).violation);
    }
}

#[test]
fn zero_row_tables_compare_clean() {
    let a = two_col_table(&[], &[]);
    let b = two_col_table(&[], &[]);
    let oracle = DiffOracle::new("empty", DivergenceBound::BitIdentical);
    let r = oracle.compare_tables(&a, &b);
    assert!(!r.violation, "{}", r.detail);
    assert_eq!(r.cells, 0);
    assert_eq!(r.max_divergence, 0.0);
}
