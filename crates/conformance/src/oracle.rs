//! Differential oracles: paired executions that must agree.
//!
//! Each oracle runs the same logical computation down two different code
//! paths and asserts either bit-identity or a bounded divergence:
//!
//! * `Sequential` vs `Threads(n)` simulation — the determinism contract;
//! * sanitizer fixed-point — sanitizing an already-clean ticket stream is
//!   the identity;
//! * frame-path vs row-path table assembly — the split-borrow columnar
//!   emitter in `rainshine-core::dataset` equals a naive
//!   [`TableBuilder::push_row`] rebuild;
//! * presorted vs per-node-sort CART fitting — the sort-once optimization
//!   grows the same tree.
//!
//! Divergence is measured per cell: bit-equal cells (including matching
//! NaNs) diverge by 0, a NaN facing a number diverges infinitely, and
//! numeric pairs diverge by absolute difference.

use rainshine_cart::dataset::CartDataset;
use rainshine_cart::params::CartParams;
use rainshine_cart::tree::Tree;
use rainshine_core::dataset::{rack_day_table, ticket_counts_by_rack_day, FaultFilter};
use rainshine_dcsim::{Simulation, SimulationOutput};
use rainshine_parallel::Parallelism;
use rainshine_telemetry::quality::{Sanitizer, SanitizerConfig};
use rainshine_telemetry::schema::{analysis_schema, columns};
use rainshine_telemetry::table::{Table, TableBuilder, Value};

use crate::scenario::Scenario;
use crate::{ConformanceError, Result};

/// How much two paired executions may diverge.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum DivergenceBound {
    /// Every cell must be bit-identical.
    BitIdentical,
    /// Numeric cells may differ by at most this absolute amount.
    MaxAbs(f64),
}

impl DivergenceBound {
    /// Whether a per-cell divergence is within the bound.
    pub fn allows(&self, divergence: f64) -> bool {
        match self {
            DivergenceBound::BitIdentical => divergence == 0.0,
            DivergenceBound::MaxAbs(limit) => divergence <= *limit,
        }
    }
}

/// Per-cell divergence: 0 for bit-equal (matching NaNs included), infinite
/// for NaN vs number, absolute difference otherwise.
pub fn cell_divergence(a: f64, b: f64) -> f64 {
    if a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan()) {
        return 0.0;
    }
    if a.is_nan() || b.is_nan() {
        return f64::INFINITY;
    }
    (a - b).abs()
}

/// Outcome of one differential oracle.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OracleReport {
    /// Oracle name.
    pub name: String,
    /// Bound the oracle asserts.
    pub bound: DivergenceBound,
    /// Cells (or bytes, for serialized comparisons) compared.
    pub cells: usize,
    /// Largest per-cell divergence observed (0 when bit-identical).
    pub max_divergence: f64,
    /// Whether the bound was exceeded.
    pub violation: bool,
    /// Deterministic detail (first differing location, or "identical").
    pub detail: String,
}

/// A named differential comparison with a divergence bound.
#[derive(Debug, Clone)]
pub struct DiffOracle {
    /// Oracle name, used in reports.
    pub name: String,
    /// Allowed divergence.
    pub bound: DivergenceBound,
}

impl DiffOracle {
    /// Creates an oracle.
    pub fn new(name: &str, bound: DivergenceBound) -> Self {
        DiffOracle { name: name.to_string(), bound }
    }

    /// Compares two tables cell by cell: schemas, row counts, nominal
    /// labels, ordinal values, and continuous cells all participate.
    /// Structural mismatches (schema, arity, labels) are infinite
    /// divergence regardless of the bound.
    pub fn compare_tables(&self, a: &Table, b: &Table) -> OracleReport {
        if a.schema().fields() != b.schema().fields() {
            return self.structural("schemas differ");
        }
        if a.rows() != b.rows() {
            return self.structural(&format!("row counts differ: {} vs {}", a.rows(), b.rows()));
        }
        let mut cells = 0usize;
        let mut max = 0.0f64;
        let mut first_diff: Option<String> = None;
        for field in a.schema().fields() {
            use rainshine_telemetry::table::FeatureKind;
            match field.kind {
                FeatureKind::Continuous => {
                    let (xa, xb) = match (a.continuous(&field.name), b.continuous(&field.name)) {
                        (Ok(xa), Ok(xb)) => (xa, xb),
                        _ => return self.structural(&format!("column {} unreadable", field.name)),
                    };
                    for (row, (&va, &vb)) in xa.iter().zip(xb).enumerate() {
                        cells += 1;
                        let d = cell_divergence(va, vb);
                        if d > max {
                            max = d;
                        }
                        if d != 0.0 && first_diff.is_none() {
                            first_diff =
                                Some(format!("{}[{row}]: {va} vs {vb} (|Δ| = {d})", field.name));
                        }
                    }
                }
                FeatureKind::Nominal => {
                    for row in 0..a.rows() {
                        cells += 1;
                        let (la, lb) = match (
                            a.nominal_label(&field.name, row),
                            b.nominal_label(&field.name, row),
                        ) {
                            (Ok(la), Ok(lb)) => (la, lb),
                            _ => {
                                return self
                                    .structural(&format!("column {} unreadable", field.name))
                            }
                        };
                        if la != lb {
                            return self
                                .structural(&format!("{}[{row}]: `{la}` vs `{lb}`", field.name));
                        }
                    }
                }
                FeatureKind::Ordinal => {
                    let (xa, xb) = match (a.ordinal(&field.name), b.ordinal(&field.name)) {
                        (Ok(xa), Ok(xb)) => (xa, xb),
                        _ => return self.structural(&format!("column {} unreadable", field.name)),
                    };
                    for (row, (&va, &vb)) in xa.iter().zip(xb).enumerate() {
                        cells += 1;
                        if va != vb {
                            return self
                                .structural(&format!("{}[{row}]: {va} vs {vb}", field.name));
                        }
                    }
                }
            }
        }
        let violation = !self.bound.allows(max);
        OracleReport {
            name: self.name.clone(),
            bound: self.bound,
            cells,
            max_divergence: max,
            violation,
            detail: first_diff.unwrap_or_else(|| "identical".to_string()),
        }
    }

    /// Compares two serialized artifacts byte for byte (always
    /// [`DivergenceBound::BitIdentical`] semantics).
    pub fn compare_serialized(&self, a: &str, b: &str) -> OracleReport {
        let identical = a == b;
        let detail = if identical {
            "identical".to_string()
        } else {
            let at = a.bytes().zip(b.bytes()).position(|(x, y)| x != y);
            match at {
                Some(i) => format!("first byte difference at offset {i}"),
                None => format!("length differs: {} vs {} bytes", a.len(), b.len()),
            }
        };
        OracleReport {
            name: self.name.clone(),
            bound: DivergenceBound::BitIdentical,
            cells: a.len().max(b.len()),
            max_divergence: if identical { 0.0 } else { f64::INFINITY },
            violation: !identical,
            detail,
        }
    }

    fn structural(&self, detail: &str) -> OracleReport {
        OracleReport {
            name: self.name.clone(),
            bound: self.bound,
            cells: 0,
            max_divergence: f64::INFINITY,
            violation: true,
            detail: detail.to_string(),
        }
    }
}

/// Rebuilds the rack-day analysis table through the generic row-by-row
/// [`TableBuilder`] path, mirroring the exact emission and interning order
/// of the columnar fast path in `rainshine-core::dataset`.
///
/// # Errors
///
/// Returns [`ConformanceError::Analysis`]-equivalent parse errors wrapped
/// as [`ConformanceError::InvalidScenario`] if the rebuild pushes an
/// inconsistent row (which would itself be an oracle failure).
pub fn row_path_rack_day_table(
    output: &SimulationOutput,
    filter: FaultFilter,
    day_stride: usize,
) -> Result<Table> {
    let tickets = output.true_positives();
    let counts = ticket_counts_by_rack_day(&tickets, filter);
    let mut builder = TableBuilder::new(analysis_schema());
    let mut push_error: Option<String> = None;
    output.for_each_active_rack_day(day_stride, |rack, t, env| {
        if push_error.is_some() {
            return;
        }
        let count = counts.get(&(rack.id, t.days())).copied().unwrap_or(0) as f64;
        let row = vec![
            Value::Nominal(rack.sku.to_string()),
            Value::Continuous(rack.age_months(t)),
            Value::Continuous(rack.power_kw),
            Value::Nominal(rack.workload.to_string()),
            Value::Continuous(env.temp_f),
            Value::Continuous(env.rh),
            Value::Nominal(rack.dc.to_string()),
            Value::Nominal(format!("{}-{}", rack.dc, rack.region.0)),
            Value::Nominal(format!("{}-row{}", rack.dc, rack.row.0)),
            Value::Nominal(rack.id.to_string()),
            Value::Ordinal(t.day_of_week().index() as i64),
            Value::Ordinal(t.week_of_year() as i64),
            Value::Ordinal(t.month() as i64),
            Value::Ordinal(t.year_offset() as i64),
            Value::Continuous(count),
        ];
        if let Err(e) = builder.push_row(row) {
            push_error = Some(e.to_string());
        }
    });
    if let Some(e) = push_error {
        return Err(ConformanceError::InvalidScenario {
            what: format!("row-path rebuild rejected a row: {e}"),
        });
    }
    Ok(builder.build())
}

/// Runs the standard oracle suite for a scenario at one seed.
///
/// The suite simulates the scenario twice (sequential and threaded) for the
/// determinism oracle, then reuses the sequential output for the remaining
/// comparisons. The sanitizer fixed-point oracle needs a clean stream, so
/// when the scenario injects corruption it re-simulates with corruption
/// disabled.
///
/// # Errors
///
/// Returns [`ConformanceError`] if the scenario config is invalid or a
/// table cannot be built at all (individual bound violations are reported,
/// not errors).
pub fn standard_oracles(scenario: &Scenario, seed: u64) -> Result<Vec<OracleReport>> {
    let mut reports = Vec::with_capacity(4);

    let mut seq_config = scenario.fleet_config()?;
    seq_config.parallelism = Parallelism::Sequential;
    let seq = Simulation::new(seq_config, seed).run();

    let mut thr_config = scenario.fleet_config()?;
    thr_config.parallelism = Parallelism::Threads(3);
    let thr = Simulation::new(thr_config, seed).run();

    let det = DiffOracle::new("sim_sequential_vs_threads", DivergenceBound::BitIdentical);
    let ser = |out: &SimulationOutput| {
        let tickets = serde_json::to_string(&out.tickets).expect("tickets serialize");
        let quality = serde_json::to_string(&out.quality).expect("quality serializes");
        format!("{tickets}\n{quality}")
    };
    reports.push(det.compare_serialized(&ser(&seq), &ser(&thr)));

    // Sanitizer fixed-point: sanitizing an already-sanitized clean stream
    // must be the identity. Corrupted scenarios re-simulate clean.
    let clean;
    let clean_out = if scenario.effects.corruption_rate > 0.0 {
        let mut config = scenario.fleet_config()?;
        config.parallelism = Parallelism::Sequential;
        config.corruption = rainshine_dcsim::corruption::CorruptionConfig::default();
        clean = Simulation::new(config, seed).run();
        &clean
    } else {
        &seq
    };
    let sanitizer = Sanitizer::new(
        clean_out.fleet.manifest(),
        SanitizerConfig::for_span(clean_out.config.start, clean_out.config.end),
    );
    let (resanitized, _) = sanitizer.sanitize(&clean_out.tickets);
    let fixed = DiffOracle::new("sanitizer_fixed_point", DivergenceBound::BitIdentical);
    reports.push(fixed.compare_serialized(
        &serde_json::to_string(&clean_out.tickets).expect("tickets serialize"),
        &serde_json::to_string(&resanitized).expect("tickets serialize"),
    ));

    // Frame-path vs row-path table assembly.
    let frame_table = rack_day_table(&seq, FaultFilter::AllHardware, scenario.day_stride)?;
    let row_table = row_path_rack_day_table(&seq, FaultFilter::AllHardware, scenario.day_stride)?;
    let assembly = DiffOracle::new("frame_vs_row_path_table", DivergenceBound::BitIdentical);
    reports.push(assembly.compare_tables(&frame_table, &row_table));

    // Presorted vs per-node-sort CART growth.
    let params = CartParams::default().with_min_sizes(60, 30).with_cp(0.0008);
    let ds = CartDataset::regression(
        &frame_table,
        columns::FAILURE_RATE,
        &[
            columns::SKU,
            columns::WORKLOAD,
            columns::DATACENTER,
            columns::AGE_MONTHS,
            columns::TEMPERATURE_F,
        ],
    )
    .map_err(|e| ConformanceError::InvalidScenario { what: format!("cart dataset: {e}") })?;
    let rows: Vec<usize> = (0..frame_table.rows()).collect();
    let presorted = Tree::fit(&ds, &params)
        .map_err(|e| ConformanceError::InvalidScenario { what: format!("presort fit: {e}") })?;
    let per_node = Tree::fit_on_rows_per_node_sort(&ds, &params, &rows)
        .map_err(|e| ConformanceError::InvalidScenario { what: format!("per-node fit: {e}") })?;
    let cart = DiffOracle::new("cart_presort_vs_per_node_sort", DivergenceBound::BitIdentical);
    reports.push(cart.compare_serialized(
        &serde_json::to_string(&presorted).expect("tree serializes"),
        &serde_json::to_string(&per_node).expect("tree serializes"),
    ));

    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_telemetry::table::{FeatureKind, Field, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Field { name: "x".into(), kind: FeatureKind::Continuous },
            Field { name: "label".into(), kind: FeatureKind::Nominal },
        ])
    }

    fn table(xs: &[f64], labels: &[&str]) -> Table {
        let mut b = TableBuilder::new(schema());
        for (&x, &l) in xs.iter().zip(labels) {
            b.push_row(vec![Value::Continuous(x), Value::Nominal(l.to_string())]).unwrap();
        }
        b.build()
    }

    #[test]
    fn cell_divergence_handles_nan_and_bits() {
        assert_eq!(cell_divergence(1.0, 1.0), 0.0);
        assert_eq!(cell_divergence(f64::NAN, f64::NAN), 0.0);
        assert_eq!(cell_divergence(f64::NAN, 1.0), f64::INFINITY);
        assert_eq!(cell_divergence(1.0, 1.5), 0.5);
        // Signed zeros are numerically equal but not bit-equal; the
        // numeric branch reports zero divergence.
        assert_eq!(cell_divergence(0.0, -0.0), 0.0);
    }

    #[test]
    fn bound_arithmetic() {
        assert!(DivergenceBound::BitIdentical.allows(0.0));
        assert!(!DivergenceBound::BitIdentical.allows(1e-18));
        assert!(DivergenceBound::MaxAbs(0.1).allows(0.1));
        assert!(!DivergenceBound::MaxAbs(0.1).allows(f64::INFINITY));
    }

    #[test]
    fn identical_tables_pass_and_divergent_tables_fail() {
        let a = table(&[1.0, f64::NAN], &["p", "q"]);
        let b = table(&[1.0, f64::NAN], &["p", "q"]);
        let oracle = DiffOracle::new("t", DivergenceBound::BitIdentical);
        let r = oracle.compare_tables(&a, &b);
        assert!(!r.violation, "{}", r.detail);
        assert_eq!(r.max_divergence, 0.0);
        assert_eq!(r.cells, 4);

        let c = table(&[1.0, 2.0], &["p", "q"]);
        let r = oracle.compare_tables(&a, &c);
        assert!(r.violation);
        assert_eq!(r.max_divergence, f64::INFINITY);

        let loose = DiffOracle::new("t", DivergenceBound::MaxAbs(0.5));
        let d = table(&[1.25, f64::NAN], &["p", "q"]);
        let r = loose.compare_tables(&a, &d);
        assert!(!r.violation, "{}", r.detail);
        assert!((r.max_divergence - 0.25).abs() < 1e-12);
    }

    #[test]
    fn label_mismatch_is_structural() {
        let a = table(&[1.0], &["p"]);
        let b = table(&[1.0], &["z"]);
        let oracle = DiffOracle::new("t", DivergenceBound::MaxAbs(1e9));
        let r = oracle.compare_tables(&a, &b);
        assert!(r.violation, "nominal mismatch must violate even loose bounds");
    }

    #[test]
    fn zero_row_tables_are_identical() {
        let a = TableBuilder::new(schema()).build();
        let b = TableBuilder::new(schema()).build();
        let oracle = DiffOracle::new("t", DivergenceBound::BitIdentical);
        let r = oracle.compare_tables(&a, &b);
        assert!(!r.violation);
        assert_eq!(r.cells, 0);
    }

    #[test]
    fn serialized_compare_reports_first_difference() {
        let oracle = DiffOracle::new("s", DivergenceBound::BitIdentical);
        assert!(!oracle.compare_serialized("abc", "abc").violation);
        let r = oracle.compare_serialized("abc", "abd");
        assert!(r.violation);
        assert!(r.detail.contains("offset 2"), "{}", r.detail);
    }
}
