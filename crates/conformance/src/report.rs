//! The serializable conformance report.
//!
//! Mirrors the deterministic/wall split of [`rainshine_obs::RunReport`]:
//! scenario outcomes, oracle reports, and run counters are pure functions
//! of (scenario, seeds) and land in [`ConformanceDeterministic`] — the
//! bytes the `conformance` bin writes with `--report` and gates with
//! `--baseline`. Wall-clock stage timings stay in the human summary.

use rainshine_obs::{Collector, DeterministicReport, RunReport, WallTimes};

use crate::oracle::OracleReport;
use crate::power::ScenarioOutcome;
use crate::{ConformanceError, Result};

/// Schema version written into every conformance report.
pub const SCHEMA_VERSION: u32 = 1;

/// The byte-stable section: identical across thread counts for the same
/// scenarios and seeds.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConformanceDeterministic {
    /// Report schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// One outcome per scenario, in run order.
    pub scenarios: Vec<ScenarioOutcome>,
    /// Differential oracle results, in run order.
    pub oracles: Vec<OracleReport>,
    /// Deterministic observability section (counters, stage call/item
    /// counts) from the run's collector.
    pub run: DeterministicReport,
}

/// A full conformance report.
#[derive(Debug, Clone, PartialEq)]
pub struct ConformanceReport {
    /// The byte-stable section.
    pub deterministic: ConformanceDeterministic,
    /// Wall-clock stage timings (human summary only).
    pub wall: WallTimes,
}

impl ConformanceReport {
    /// Assembles a report from outcomes, oracle results, and the
    /// collector snapshot of the run.
    pub fn new(
        scenarios: Vec<ScenarioOutcome>,
        oracles: Vec<OracleReport>,
        collector: &Collector,
    ) -> Self {
        let run = RunReport::from_collector(collector);
        ConformanceReport {
            deterministic: ConformanceDeterministic {
                schema_version: SCHEMA_VERSION,
                scenarios,
                oracles,
                run: run.deterministic,
            },
            wall: run.wall,
        }
    }

    /// The deterministic section as pretty-printed JSON — the exact bytes
    /// `--report` and `--baseline` compare.
    pub fn deterministic_json(&self) -> String {
        serde_json::to_string_pretty(&self.deterministic).expect("report is serializable")
    }

    /// Every violation in the report: claims that missed their recovery
    /// envelope and oracles whose bound was exceeded.
    pub fn violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.deterministic.scenarios {
            for c in &s.claims {
                if !c.pass {
                    out.push(format!(
                        "scenario `{}` claim `{}`: recovered {}/{} (need {:.0}%){}",
                        s.scenario,
                        c.name,
                        c.recovered,
                        c.seeds,
                        c.min_recovery * 100.0,
                        c.failures.first().map(|f| format!(" — {f}")).unwrap_or_default(),
                    ));
                }
            }
        }
        for o in &self.deterministic.oracles {
            if o.violation {
                out.push(format!("oracle `{}`: {}", o.name, o.detail));
            }
        }
        out
    }

    /// Compares the deterministic section against baseline bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ConformanceError::Parse`] with the first differing line
    /// when the report drifted from the baseline.
    pub fn check_baseline(&self, baseline: &str) -> Result<()> {
        let current = self.deterministic_json();
        if current.trim_end() == baseline.trim_end() {
            return Ok(());
        }
        let diff = current
            .lines()
            .zip(baseline.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: `{a}` vs baseline `{b}`", i + 1))
            .unwrap_or_else(|| "reports differ in length".to_string());
        Err(ConformanceError::Parse(format!("deterministic report drifted from baseline: {diff}")))
    }

    /// Multi-line human summary (includes wall times; stderr only).
    pub fn human_summary(&self) -> String {
        let mut out = String::new();
        for s in &self.deterministic.scenarios {
            out.push_str(&format!(
                "scenario {}: {} ({} seeds)\n",
                s.scenario,
                if s.pass { "PASS" } else { "FAIL" },
                s.seeds.len()
            ));
            for c in &s.claims {
                out.push_str(&format!(
                    "  {} {:24} {:>3}/{:<3} recovered (need {:>3.0}%)  effect q1/q2/q3 = {:.3}/{:.3}/{:.3}\n",
                    if c.pass { "ok " } else { "FAIL" },
                    c.name,
                    c.recovered,
                    c.seeds,
                    c.min_recovery * 100.0,
                    c.effect_q1,
                    c.effect_q2,
                    c.effect_q3,
                ));
            }
        }
        for o in &self.deterministic.oracles {
            out.push_str(&format!(
                "oracle {} {:32} {} cells, max divergence {}\n",
                if o.violation { "FAIL" } else { "ok " },
                o.name,
                o.cells,
                o.max_divergence,
            ));
        }
        if self.wall.total_nanos > 0 {
            out.push_str(&format!("wall: {:.2}s\n", self.wall.total_nanos as f64 / 1e9));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::DivergenceBound;
    use crate::power::ClaimOutcome;
    use crate::scenario::Expect;

    fn sample() -> ConformanceReport {
        let claim = ClaimOutcome {
            name: "region_gap".into(),
            expect: Expect::Present,
            min_recovery: 0.9,
            seeds: 2,
            recovered: 2,
            errors: 0,
            recovery_rate: 1.0,
            effect_q1: 1.1,
            effect_q2: 1.2,
            effect_q3: 1.3,
            pass: true,
            failures: vec![],
        };
        let scenario = ScenarioOutcome {
            scenario: "unit".into(),
            seeds: vec![1, 2],
            claims: vec![claim],
            pass: true,
        };
        let oracle = OracleReport {
            name: "frame_vs_row_path_table".into(),
            bound: DivergenceBound::BitIdentical,
            cells: 10,
            max_divergence: 0.0,
            violation: false,
            detail: "identical".into(),
        };
        ConformanceReport::new(vec![scenario], vec![oracle], &Collector::new())
    }

    #[test]
    fn clean_report_has_no_violations_and_matches_its_own_baseline() {
        let report = sample();
        assert!(report.violations().is_empty());
        let baseline = report.deterministic_json();
        report.check_baseline(&baseline).expect("self-comparison");
        // Trailing newline differences don't count as drift.
        report.check_baseline(&format!("{baseline}\n")).expect("newline-insensitive");
    }

    #[test]
    fn violations_and_baseline_drift_are_reported() {
        let mut report = sample();
        report.deterministic.scenarios[0].claims[0].pass = false;
        report.deterministic.scenarios[0].claims[0].recovered = 1;
        report.deterministic.oracles[0].violation = true;
        let v = report.violations();
        assert_eq!(v.len(), 2);
        assert!(v[0].contains("region_gap"));
        assert!(v[1].contains("frame_vs_row_path_table"));

        let clean = sample();
        let err = report.check_baseline(&clean.deterministic_json()).unwrap_err();
        assert!(err.to_string().contains("drifted"));
    }

    #[test]
    fn deterministic_json_round_trips() {
        let report = sample();
        let json = report.deterministic_json();
        let parsed: ConformanceDeterministic = serde_json::from_str(&json).expect("round-trip");
        assert_eq!(parsed, report.deterministic);
    }
}
