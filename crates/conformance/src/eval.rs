//! Per-seed claim evaluation.
//!
//! A [`SeedRun`] owns one simulation output and lazily caches the analysis
//! tables the scenario's claims read; [`SeedRun::evaluate`] turns a
//! [`Claim`] into a [`Measurement`] — an effect-size value plus pass/fail
//! against the claim's envelope. Everything here is a pure function of
//! (scenario, seed), so the power runner can fan seeds out across threads
//! and still aggregate deterministically.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use rainshine_core::dataset::{rack_day_table, FaultFilter};
use rainshine_core::q1::{provision_servers, ProvisionParams};
use rainshine_core::q3::{dc_subset, env_analysis};
use rainshine_core::tco::TcoModel;
use rainshine_core::{evidence, q1, q2};
use rainshine_dcsim::{Simulation, SimulationOutput};
use rainshine_telemetry::metrics::{self, SpatialGranularity};
use rainshine_telemetry::rma::{FaultKind, HardwareFault};
use rainshine_telemetry::schema::columns;
use rainshine_telemetry::table::Table;
use rainshine_telemetry::time::TimeGranularity;

use crate::scenario::{parse_workload, Claim, Scenario};
use crate::Result;

/// One claim evaluated on one seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// The claim's effect-size measurement (NaN when unmeasurable).
    pub value: f64,
    /// Whether the claim's condition held.
    pub pass: bool,
    /// Whether evaluation errored (an errored seed never counts as
    /// recovered, for either expectation).
    pub error: bool,
    /// Deterministic human-readable detail.
    pub detail: String,
}

impl Measurement {
    fn ok(value: f64, pass: bool, detail: String) -> Self {
        Measurement { value, pass, error: false, detail }
    }

    fn err(detail: String) -> Self {
        Measurement { value: f64::NAN, pass: false, error: true, detail }
    }
}

/// Table cache key: fault filter × day stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TableKind {
    AllHardware(usize),
    Disk(usize),
}

/// One simulated seed with lazily built analysis tables.
pub struct SeedRun {
    /// The seed that produced [`Self::output`].
    pub seed: u64,
    /// The simulation output all claims read.
    pub output: SimulationOutput,
    day_stride: usize,
    tables: RefCell<BTreeMap<TableKind, Rc<Table>>>,
}

impl SeedRun {
    /// Simulates `scenario` at `seed`. The per-run simulation is forced
    /// sequential — the power runner parallelizes across seeds instead.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ConformanceError`] if the scenario's config is
    /// invalid.
    pub fn new(scenario: &Scenario, seed: u64) -> Result<SeedRun> {
        let mut config = scenario.fleet_config()?;
        config.parallelism = rainshine_parallel::Parallelism::Sequential;
        let output = Simulation::new(config, seed).run();
        Ok(SeedRun {
            seed,
            output,
            day_stride: scenario.day_stride,
            tables: RefCell::new(BTreeMap::new()),
        })
    }

    /// Wraps an existing simulation output (the caller picked the stride).
    pub fn from_output(seed: u64, output: SimulationOutput, day_stride: usize) -> SeedRun {
        SeedRun { seed, output, day_stride, tables: RefCell::new(BTreeMap::new()) }
    }

    fn table(&self, kind: TableKind) -> std::result::Result<Rc<Table>, String> {
        if let Some(t) = self.tables.borrow().get(&kind) {
            return Ok(Rc::clone(t));
        }
        let (filter, stride) = match kind {
            TableKind::AllHardware(s) => (FaultFilter::AllHardware, s),
            TableKind::Disk(s) => (FaultFilter::Component(HardwareFault::Disk), s),
        };
        let table = rack_day_table(&self.output, filter, stride)
            .map(Rc::new)
            .map_err(|e| format!("table build failed: {e}"))?;
        self.tables.borrow_mut().insert(kind, Rc::clone(&table));
        Ok(table)
    }

    fn hw_table(&self) -> std::result::Result<Rc<Table>, String> {
        self.table(TableKind::AllHardware(self.day_stride))
    }

    /// Evaluates one claim against this seed's output.
    pub fn evaluate(&self, claim: &Claim) -> Measurement {
        match self.try_evaluate(claim) {
            Ok(m) => m,
            Err(detail) => Measurement::err(detail),
        }
    }

    fn try_evaluate(&self, claim: &Claim) -> std::result::Result<Measurement, String> {
        match claim {
            Claim::AgeBathtub { min_young_over_mid } => {
                let table = self.hw_table()?;
                let rows = evidence::by_age(&table).map_err(|e| e.to_string())?;
                let young = series_mean(&rows, "<5")?;
                let mid = series_mean(&rows, "25-30")?;
                let value = young / mid;
                Ok(Measurement::ok(
                    value,
                    value > *min_young_over_mid,
                    format!("young/mid = {value:.3} (young {young:.4}, mid {mid:.4})"),
                ))
            }
            Claim::RegionGap { min_dc1_over_dc2 } => {
                let table = self.hw_table()?;
                let rows = evidence::by_region(&table).map_err(|e| e.to_string())?;
                let dc1_min = rows
                    .iter()
                    .filter(|r| r.label.starts_with("DC1"))
                    .map(|r| r.mean)
                    .fold(f64::INFINITY, f64::min);
                let dc2_max = rows
                    .iter()
                    .filter(|r| r.label.starts_with("DC2"))
                    .map(|r| r.mean)
                    .fold(0.0f64, f64::max);
                if !dc1_min.is_finite() || dc2_max <= 0.0 {
                    return Err("missing DC1 or DC2 regions".into());
                }
                let value = dc1_min / dc2_max;
                Ok(Measurement::ok(
                    value,
                    value > *min_dc1_over_dc2,
                    format!("DC1 min / DC2 max = {value:.3}"),
                ))
            }
            Claim::WeekdaySpread { lo, hi, weekdays_over_weekends } => {
                let table = self.hw_table()?;
                let rows = evidence::by_day_of_week(&table, 0).map_err(|e| e.to_string())?;
                let max = rows.iter().map(|r| r.mean).fold(0.0f64, f64::max);
                let min = rows.iter().map(|r| r.mean).fold(f64::INFINITY, f64::min);
                if !min.is_finite() || min <= 0.0 {
                    return Err("empty day-of-week series".into());
                }
                let value = max / min;
                let mut pass = (*lo..=*hi).contains(&value);
                if *weekdays_over_weekends {
                    let mean_of = |label: &str| series_mean(&rows, label);
                    for weekday in ["Mon", "Tue", "Wed", "Thu", "Fri"] {
                        for weekend in ["Sun", "Sat"] {
                            pass &= mean_of(weekday)? > mean_of(weekend)?;
                        }
                    }
                }
                Ok(Measurement::ok(value, pass, format!("weekday spread max/min = {value:.3}")))
            }
            Claim::SeasonalLift { min_h2_over_h1 } => {
                let table = self.hw_table()?;
                let rows = evidence::by_month(&table, 0).map_err(|e| e.to_string())?;
                let half = |months: &[&str]| {
                    let vals: Vec<f64> = rows
                        .iter()
                        .filter(|r| months.contains(&r.label.as_str()))
                        .map(|r| r.mean)
                        .collect();
                    vals.iter().sum::<f64>() / vals.len().max(1) as f64
                };
                let h1 = half(&["Jan", "Feb", "Mar", "Apr", "May", "Jun"]);
                let h2 = half(&["Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]);
                if h1 <= 0.0 {
                    return Err("empty first-half month series".into());
                }
                let value = h2 / h1;
                Ok(Measurement::ok(value, value > *min_h2_over_h1, format!("H2/H1 = {value:.3}")))
            }
            Claim::LowHumidityLift { min_dry_over_mid } => {
                let table = self.hw_table()?;
                let rows = evidence::by_rh_bin(&table).map_err(|e| e.to_string())?;
                let dry = series_mean(&rows, "20-30")?;
                let mid = series_mean(&rows, "40-50")?;
                if mid <= 0.0 {
                    return Err("empty 40-50 RH bin".into());
                }
                let value = dry / mid;
                Ok(Measurement::ok(
                    value,
                    value > *min_dry_over_mid,
                    format!("dry/mid RH ratio = {value:.3}"),
                ))
            }
            Claim::WorkloadExtremes { highest, lowest } => {
                let table = self.hw_table()?;
                let rows = evidence::by_workload(&table).map_err(|e| e.to_string())?;
                let hi = series_mean(&rows, highest)?;
                let lo = series_mean(&rows, lowest)?;
                let is_max = rows.iter().all(|r| r.label == *highest || hi >= r.mean);
                let is_min = rows.iter().all(|r| r.label == *lowest || lo <= r.mean);
                if lo <= 0.0 {
                    return Err(format!("{lowest} has zero mean"));
                }
                let value = hi / lo;
                Ok(Measurement::ok(
                    value,
                    is_max && is_min,
                    format!("{highest}/{lowest} = {value:.3}, extremes hold: {}", is_max && is_min),
                ))
            }
            Claim::DriverImportance { cart, min_planted_share, max_week_share } => {
                let table = self.hw_table()?;
                let ds = rainshine_cart::dataset::CartDataset::regression(
                    &table,
                    columns::FAILURE_RATE,
                    &[
                        columns::SKU,
                        columns::WORKLOAD,
                        columns::DATACENTER,
                        columns::AGE_MONTHS,
                        columns::TEMPERATURE_F,
                        columns::RATED_POWER_KW,
                        columns::WEEK,
                    ],
                )
                .map_err(|e| e.to_string())?;
                let tree = rainshine_cart::tree::Tree::fit(&ds, &cart.params())
                    .map_err(|e| e.to_string())?;
                let importance = tree.variable_importance();
                let score = |name: &str| {
                    importance.iter().find(|(n, _)| n == name).map(|(_, s)| *s).unwrap_or(0.0)
                };
                let planted =
                    score(columns::SKU) + score(columns::WORKLOAD) + score(columns::DATACENTER);
                let week = score(columns::WEEK);
                Ok(Measurement::ok(
                    planted,
                    planted > *min_planted_share && week < *max_week_share,
                    format!("planted share {planted:.1}, week share {week:.1}"),
                ))
            }
            Claim::BurstLotTails { min_lot_over_quiet } => {
                let out = &self.output;
                let hw = out.hardware_tickets();
                let mu = metrics::mu(
                    &hw,
                    SpatialGranularity::Rack,
                    TimeGranularity::Daily,
                    out.config.start,
                    out.config.end,
                );
                let windows = &out.config.hazard.burst_bad_lot_windows;
                let in_lot = |day: i64| windows.iter().any(|&(lo, hi)| (lo..=hi).contains(&day));
                let mut lot_peaks = Vec::new();
                let mut quiet_peaks = Vec::new();
                for rack in &out.fleet.racks {
                    let key = SpatialGranularity::Rack.key(&rack.server_location(0));
                    let peak =
                        mu.get(&key).map(|s| s.max() as f64).unwrap_or(0.0) / rack.servers as f64;
                    if in_lot(rack.commissioned_day) {
                        lot_peaks.push(peak);
                    } else {
                        quiet_peaks.push(peak);
                    }
                }
                let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
                let quiet = mean(&quiet_peaks);
                if quiet <= 0.0 {
                    return Err("quiet cohorts have zero peak".into());
                }
                let value = mean(&lot_peaks) / quiet;
                Ok(Measurement::ok(
                    value,
                    value > *min_lot_over_quiet,
                    format!("lot/quiet peak ratio = {value:.3}"),
                ))
            }
            Claim::MfSkuRatio { cart, table_stride, sku_hi, sku_lo, lo, hi } => {
                let table = self.table(TableKind::AllHardware(*table_stride))?;
                let mf = q2::mf_comparison(&self.output, &table, &cart.params())
                    .map_err(|e| e.to_string())?;
                let value = mf
                    .avg_ratio(sku_hi, sku_lo)
                    .ok_or_else(|| format!("{sku_hi} or {sku_lo} missing from MF levels"))?;
                Ok(Measurement::ok(
                    value,
                    (*lo..=*hi).contains(&value),
                    format!("MF {sku_hi}/{sku_lo} = {value:.3}"),
                ))
            }
            Claim::TempThreshold { cart, table_stride, dc, lo_f, hi_f, min_hot_over_cool } => {
                let (r, subset) = self.env_analysis_for(dc, *table_stride, cart)?;
                // The tree may split on a spurious shallow temperature rule
                // before the planted one, so scan every discovered
                // temperature rule: prefer the strongest one inside the
                // envelope, falling back to the strongest overall so the
                // failure detail still names a threshold.
                let temp_rules: Vec<_> = r
                    .discovered
                    .iter()
                    .filter(|rule| rule.feature == columns::TEMPERATURE_F)
                    .collect();
                let best = |in_band: bool| {
                    temp_rules
                        .iter()
                        .filter(|rule| !in_band || (*lo_f..=*hi_f).contains(&rule.threshold))
                        .max_by(|a, b| {
                            a.improvement.partial_cmp(&b.improvement).expect("finite improvement")
                        })
                        .copied()
                };
                let Some(rule) = best(true).or_else(|| best(false)) else {
                    return Ok(Measurement::ok(
                        f64::NAN,
                        false,
                        format!("no temperature rule discovered in {dc}"),
                    ));
                };
                let value = rule.threshold;
                let step = hot_cool_step(&subset, value)?;
                Ok(Measurement::ok(
                    value,
                    (*lo_f..=*hi_f).contains(&value) && step >= *min_hot_over_cool,
                    format!("threshold {value:.1}F, hot/cool step {step:.2}"),
                ))
            }
            Claim::EnvRules { cart, table_stride, dc, min_rules } => {
                let (r, _) = self.env_analysis_for(dc, *table_stride, cart)?;
                let value = r.discovered.len() as f64;
                Ok(Measurement::ok(
                    value,
                    r.discovered.len() >= *min_rules,
                    format!("{} environmental rule(s) in {dc}", r.discovered.len()),
                ))
            }
            Claim::SfOverprovision { workload, sla, lo_pct, hi_pct } => {
                let r = self.provision(workload, *sla)?;
                let value = r.sf.overprovision_pct;
                Ok(Measurement::ok(
                    value,
                    (*lo_pct..=*hi_pct).contains(&value),
                    format!("SF overprovision {value:.1}% for {workload}"),
                ))
            }
            Claim::MfSfGap { workload, sla, min_gap_pct } => {
                let r = self.provision(workload, *sla)?;
                let value = r.sf.overprovision_pct - r.mf.overprovision_pct;
                Ok(Measurement::ok(
                    value,
                    value >= *min_gap_pct,
                    format!(
                        "SF-MF gap {value:.1} points (SF {:.1}, MF {:.1})",
                        r.sf.overprovision_pct, r.mf.overprovision_pct
                    ),
                ))
            }
            Claim::MixShare { category, lo, hi } => {
                let tp = self.output.true_positives();
                let total = tp.len() as f64;
                if total == 0.0 {
                    return Err("no true-positive tickets".into());
                }
                let matched = tp
                    .iter()
                    .filter(|t| match category.as_str() {
                        "software" => matches!(t.fault, FaultKind::Software(_)),
                        "hardware" => t.fault.is_hardware(),
                        _ => matches!(t.fault, FaultKind::Boot(_)),
                    })
                    .count() as f64;
                let value = matched / total;
                Ok(Measurement::ok(
                    value,
                    (*lo..=*hi).contains(&value),
                    format!("{category} share {value:.3}"),
                ))
            }
            Claim::TcoSavings { workload, sla, lo, hi } => {
                let r = self.provision(workload, *sla)?;
                let value = q1::tco_savings(&r, &TcoModel::default());
                Ok(Measurement::ok(
                    value,
                    (*lo..=*hi).contains(&value),
                    format!("TCO savings {value:.3} for {workload}"),
                ))
            }
        }
    }

    fn env_analysis_for(
        &self,
        dc: &str,
        stride: usize,
        cart: &crate::scenario::CartSpec,
    ) -> std::result::Result<(rainshine_core::q3::EnvAnalysis, Table), String> {
        let disk = self.table(TableKind::Disk(stride))?;
        let subset = dc_subset(&disk, dc).map_err(|e| e.to_string())?;
        let analysis = env_analysis(dc, &subset, &cart.params()).map_err(|e| e.to_string())?;
        Ok((analysis, subset))
    }

    fn provision(
        &self,
        workload: &str,
        sla: f64,
    ) -> std::result::Result<rainshine_core::q1::ServerProvisioning, String> {
        let workload = parse_workload(workload).ok_or_else(|| format!("bad label {workload}"))?;
        let params = ProvisionParams::new(sla, TimeGranularity::Daily);
        provision_servers(&self.output, workload, &params).map_err(|e| e.to_string())
    }
}

/// Mean of the labelled series row, or an error naming the missing label.
fn series_mean(rows: &[evidence::SeriesRow], label: &str) -> std::result::Result<f64, String> {
    rows.iter()
        .find(|r| r.label == label)
        .map(|r| r.mean)
        .ok_or_else(|| format!("series label `{label}` missing"))
}

/// Raw hot/cool failure-rate step at `threshold_f`, mirroring the Fig. 18
/// grouping in `q3::env_analysis` but at an arbitrary threshold so the
/// step can be checked for whichever discovered rule the claim selected.
fn hot_cool_step(table: &Table, threshold_f: f64) -> std::result::Result<f64, String> {
    let y = table.continuous(columns::FAILURE_RATE).map_err(|e| e.to_string())?;
    let temp = table.continuous(columns::TEMPERATURE_F).map_err(|e| e.to_string())?;
    let (mut cool_sum, mut cool_n, mut hot_sum, mut hot_n) = (0.0_f64, 0u64, 0.0_f64, 0u64);
    for i in 0..table.rows() {
        if !temp[i].is_finite() || !y[i].is_finite() {
            continue;
        }
        if temp[i] <= threshold_f {
            cool_sum += y[i];
            cool_n += 1;
        } else {
            hot_sum += y[i];
            hot_n += 1;
        }
    }
    if cool_n == 0 || hot_n == 0 {
        return Err(format!("threshold {threshold_f:.1}F leaves an empty hot or cool group"));
    }
    Ok((hot_sum / hot_n as f64) / (cool_sum / cool_n as f64).max(1e-12))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{CartSpec, Claim, EffectToggles, Scenario};
    use crate::scenario::{ClaimSpec, Expect};

    fn small_scenario() -> Scenario {
        Scenario {
            name: "unit".into(),
            description: "eval unit tests".into(),
            scale: "small".into(),
            day_stride: 2,
            seed_base: 5,
            effects: EffectToggles::all_on(),
            claims: vec![ClaimSpec {
                name: "region_gap".into(),
                claim: Claim::RegionGap { min_dc1_over_dc2: 1.0 },
                expect: Expect::Present,
                min_recovery: 1.0,
                derivation: "unit".into(),
            }],
        }
    }

    #[test]
    fn evaluates_cheap_claims_on_a_small_fleet() {
        let run = SeedRun::new(&small_scenario(), 5).unwrap();
        let m = run.evaluate(&Claim::RegionGap { min_dc1_over_dc2: 0.5 });
        assert!(!m.error, "{}", m.detail);
        assert!(m.value.is_finite());
        let m = run.evaluate(&Claim::MixShare { category: "software".into(), lo: 0.0, hi: 1.0 });
        assert!(!m.error && m.pass, "{}", m.detail);
        // Bad workload label surfaces as an error, not a panic.
        let m = run.evaluate(&Claim::SfOverprovision {
            workload: "W99".into(),
            sla: 1.0,
            lo_pct: 0.0,
            hi_pct: 1000.0,
        });
        assert!(m.error);
        assert!(m.value.is_nan());
    }

    #[test]
    fn table_cache_reuses_instances() {
        let run = SeedRun::new(&small_scenario(), 5).unwrap();
        let a = run.hw_table().unwrap();
        let b = run.hw_table().unwrap();
        assert!(Rc::ptr_eq(&a, &b));
        let _ = CartSpec { min_split: 8, min_leaf: 4, cp: 0.01 };
    }
}
