//! Statistical conformance harness for the rainshine pipeline.
//!
//! The simulator plants known multi-factor effect structure (DESIGN.md §3);
//! the analyses claim to recover it. This crate turns that claim into a
//! machine-checked contract with three layers:
//!
//! * [`scenario`] — declarative, serde-serializable [`scenario::Scenario`]
//!   specs (checked in under `scenarios/*.json`) that plant or ablate
//!   individual ground-truth effects in a
//!   [`rainshine_dcsim::FleetConfig`] and state what each analysis must
//!   (or must not) find, with explicit tolerance envelopes.
//! * [`power`] — a multi-seed runner that evaluates every claim across a
//!   seed sweep via `rainshine-parallel`, reporting per-claim recovery
//!   rates and effect-size quartiles (Q1/Q2/Q3). Test tolerances become
//!   *derived* envelopes ("the 78 °F split is found in ≥ 18/20 seeds")
//!   instead of hand-tuned per-seed constants.
//! * [`oracle`] — differential oracles asserting bit-identity or bounded
//!   divergence between paired executions: presorted vs per-node-sort CART
//!   fitting, `Sequential` vs `Threads(n)` simulation, sanitizer
//!   fixed-point on clean streams, and frame-path vs row-path table
//!   assembly.
//!
//! [`report::ConformanceReport`] aggregates all of it with the same
//! deterministic/wall split as [`rainshine_obs::RunReport`]: the
//! deterministic section is byte-identical across thread counts and is
//! what the `conformance` bin gates against a committed baseline.

pub mod error;
pub mod eval;
pub mod oracle;
pub mod power;
pub mod report;
pub mod scenario;

pub use error::{ConformanceError, Result};
// Re-exported so downstream tests can drive the runner without depending
// on the parallel/obs crates directly.
pub use eval::{Measurement, SeedRun};
pub use oracle::{cell_divergence, DiffOracle, DivergenceBound, OracleReport};
pub use power::{run_scenario, ClaimOutcome, ScenarioOutcome};
pub use rainshine_obs::Obs;
pub use rainshine_parallel::Parallelism;
pub use report::ConformanceReport;
pub use scenario::{CartSpec, Claim, ClaimSpec, EffectToggles, Expect, Scenario};
