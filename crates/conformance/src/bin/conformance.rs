//! Statistical conformance gate.
//!
//! ```text
//! conformance --scenario PATH [--scenario PATH ...] [--seeds N]
//!             [--threads N|auto] [--skip-oracles]
//!             [--report PATH] [--baseline PATH]
//! ```
//!
//! Loads each scenario spec, sweeps `--seeds` seeds per scenario (default
//! 5, starting at the scenario's `seed_base`), evaluates every claim's
//! recovery rate against its envelope, and runs the differential oracle
//! suite once per scenario at `seed_base`. Exits non-zero if any claim
//! misses its envelope, any oracle bound is violated, or the deterministic
//! report drifted from `--baseline`.
//!
//! The deterministic report section is byte-identical at any `--threads`
//! setting; wall times go only to the stderr summary.

use std::path::PathBuf;
use std::process::ExitCode;

use rainshine_conformance::report::ConformanceReport;
use rainshine_conformance::{oracle, run_scenario, Scenario};
use rainshine_obs::Obs;
use rainshine_parallel::Parallelism;

struct Args {
    scenarios: Vec<PathBuf>,
    seeds: usize,
    threads: Parallelism,
    skip_oracles: bool,
    report: Option<PathBuf>,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenarios: Vec::new(),
        seeds: 5,
        threads: Parallelism::Auto,
        skip_oracles: false,
        report: None,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--scenario" => args.scenarios.push(PathBuf::from(value("--scenario")?)),
            "--seeds" => {
                args.seeds = value("--seeds")?.parse().map_err(|e| format!("bad seeds: {e}"))?;
                if args.seeds == 0 {
                    return Err("--seeds must be at least 1".into());
                }
            }
            "--threads" => args.threads = Parallelism::from_flag(&value("--threads")?)?,
            "--skip-oracles" => args.skip_oracles = true,
            "--report" => args.report = Some(PathBuf::from(value("--report")?)),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--help" | "-h" => {
                println!(
                    "usage: conformance --scenario PATH [--scenario PATH ...] [--seeds N] \
                     [--threads N|auto] [--skip-oracles] [--report PATH] [--baseline PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if args.scenarios.is_empty() {
        return Err("at least one --scenario is required".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<ConformanceReport, String> {
    let obs = Obs::enabled();
    let mut outcomes = Vec::new();
    let mut oracles = Vec::new();
    for path in &args.scenarios {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let scenario =
            Scenario::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!(
            "conformance: scenario `{}` — {} claims, {} seeds",
            scenario.name,
            scenario.claims.len(),
            args.seeds
        );
        let seeds = scenario.seeds(args.seeds);
        let outcome = run_scenario(&scenario, &seeds, args.threads, &obs)
            .map_err(|e| format!("scenario `{}`: {e}", scenario.name))?;
        outcomes.push(outcome);
        if !args.skip_oracles {
            let suite = oracle::standard_oracles(&scenario, scenario.seed_base)
                .map_err(|e| format!("oracles for `{}`: {e}", scenario.name))?;
            oracles.extend(suite);
        }
    }
    Ok(ConformanceReport::new(outcomes, oracles, &obs.snapshot()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("conformance: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match run(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("conformance: {e}");
            return ExitCode::FAILURE;
        }
    };

    eprint!("{}", report.human_summary());

    if let Some(path) = &args.report {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                if let Err(e) = std::fs::create_dir_all(parent) {
                    eprintln!("conformance: cannot create {}: {e}", parent.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        let json = format!("{}\n", report.deterministic_json());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("conformance: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("conformance: report written to {}", path.display());
    }

    let mut failed = false;
    let violations = report.violations();
    if !violations.is_empty() {
        failed = true;
        for v in &violations {
            eprintln!("conformance: VIOLATION: {v}");
        }
    }

    if let Some(path) = &args.baseline {
        match std::fs::read_to_string(path) {
            Ok(baseline) => {
                if let Err(e) = report.check_baseline(&baseline) {
                    eprintln!("conformance: {e}");
                    failed = true;
                } else {
                    eprintln!("conformance: baseline match ({})", path.display());
                }
            }
            Err(e) => {
                eprintln!("conformance: cannot read baseline {}: {e}", path.display());
                failed = true;
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        eprintln!("conformance: all claims recovered, 0 oracle violations");
        ExitCode::SUCCESS
    }
}
