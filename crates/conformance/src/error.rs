//! Typed errors for the conformance harness.

use std::error::Error;
use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ConformanceError>;

/// Everything that can go wrong loading a scenario or running the harness.
#[derive(Debug)]
pub enum ConformanceError {
    /// A scenario file or value failed validation.
    InvalidScenario {
        /// What was wrong.
        what: String,
    },
    /// A scenario or report failed to parse.
    Parse(String),
    /// Reading or writing a file failed.
    Io(String),
    /// The scenario's fleet configuration was rejected by the simulator.
    Sim(rainshine_dcsim::SimError),
    /// An underlying analysis error outside claim evaluation (claim-level
    /// analysis errors are captured per-measurement instead).
    Analysis(rainshine_core::AnalysisError),
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceError::InvalidScenario { what } => write!(f, "invalid scenario: {what}"),
            ConformanceError::Parse(what) => write!(f, "parse error: {what}"),
            ConformanceError::Io(what) => write!(f, "io error: {what}"),
            ConformanceError::Sim(e) => write!(f, "simulator rejected scenario config: {e}"),
            ConformanceError::Analysis(e) => write!(f, "analysis error: {e}"),
        }
    }
}

impl Error for ConformanceError {}

impl From<rainshine_dcsim::SimError> for ConformanceError {
    fn from(e: rainshine_dcsim::SimError) -> Self {
        ConformanceError::Sim(e)
    }
}

impl From<rainshine_core::AnalysisError> for ConformanceError {
    fn from(e: rainshine_core::AnalysisError) -> Self {
        ConformanceError::Analysis(e)
    }
}
