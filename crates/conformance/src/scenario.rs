//! Declarative scenario specs.
//!
//! A [`Scenario`] is a checked-in JSON document (`scenarios/*.json`) that
//! says (a) which planted ground-truth effects are on or off, and (b) what
//! each analysis must — or must not — recover, with explicit tolerance
//! envelopes. The envelopes are *derived* from multi-seed sweeps of the
//! power runner (see DESIGN.md §11); each [`ClaimSpec::derivation`] field
//! documents the sweep that produced its band.

use rainshine_cart::params::CartParams;
use rainshine_dcsim::corruption::CorruptionConfig;
use rainshine_dcsim::FleetConfig;
use rainshine_telemetry::ids::Workload;
use serde::{Deserialize, Serialize, Value};

use crate::{ConformanceError, Result};

/// Which planted effects the scenario leaves on.
///
/// All fields are required in the JSON (the serde shim would silently turn
/// a missing number into NaN; [`Scenario::validate`] rejects that).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EffectToggles {
    /// Bathtub age hazard (infant mortality + wear-out, Fig. 9).
    pub age_bathtub: bool,
    /// Environmental effects (T slope, hot step, dry steps — Figs. 5/17/18).
    pub environment: bool,
    /// Weekday and seasonal cycles (Figs. 3/4).
    pub calendar: bool,
    /// Correlated failure bursts (Section V's simultaneous failures).
    pub bursts: bool,
    /// Spread of per-SKU intrinsic reliability: 1.0 = catalog (S2 = 4× S4),
    /// 0.0 = every SKU identical (ablates the Q2 effect).
    pub sku_spread: f64,
    /// Shift applied to the planted 78 °F disk hot threshold (°F); the Q3
    /// claims' envelopes must follow the shift.
    pub hot_threshold_shift_f: f64,
    /// Dirty-data corruption rate (0.0 = pristine; see
    /// [`CorruptionConfig::with_total_rate`]).
    pub corruption_rate: f64,
}

impl EffectToggles {
    /// All effects on, clean data — the simulator defaults.
    pub fn all_on() -> Self {
        EffectToggles {
            age_bathtub: true,
            environment: true,
            calendar: true,
            bursts: true,
            sku_spread: 1.0,
            hot_threshold_shift_f: 0.0,
            corruption_rate: 0.0,
        }
    }
}

/// CART parameters embedded in a claim (the former hand-tuned `cp` /
/// min-size constants, now part of the scenario contract).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CartSpec {
    /// Minimum rows to attempt a split.
    pub min_split: usize,
    /// Minimum rows per leaf.
    pub min_leaf: usize,
    /// Complexity-pruning threshold.
    pub cp: f64,
}

impl CartSpec {
    /// The equivalent [`CartParams`].
    pub fn params(&self) -> CartParams {
        CartParams::default().with_min_sizes(self.min_split, self.min_leaf).with_cp(self.cp)
    }
}

/// Whether the claim's condition should hold or fail on this scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expect {
    /// The effect is planted; the analysis must find it.
    Present,
    /// The effect is ablated; the analysis must *not* find it.
    Absent,
}

/// One measurable recovery condition.
///
/// Each variant mirrors one assertion the repo's tests used to hard-code;
/// the numeric fields are the tolerance envelope.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Claim {
    /// Fig. 9: mean rate of the `<5` months age bin exceeds the `25-30`
    /// bin by at least this ratio. Measures young/mid.
    AgeBathtub {
        /// Minimum young/mid-life ratio.
        min_young_over_mid: f64,
    },
    /// Fig. 2: every DC1 region's mean exceeds every DC2 region's by at
    /// least this ratio. Measures min(DC1)/max(DC2).
    RegionGap {
        /// Minimum DC1-min over DC2-max ratio.
        min_dc1_over_dc2: f64,
    },
    /// Fig. 3: max/min across day-of-week means lies inside `[lo, hi]`,
    /// and every weekday mean exceeds every weekend mean when
    /// `weekdays_over_weekends`. Measures max/min.
    WeekdaySpread {
        /// Lower envelope for the spread.
        lo: f64,
        /// Upper envelope for the spread.
        hi: f64,
        /// Additionally require Mon–Fri ≻ Sat/Sun pointwise.
        weekdays_over_weekends: bool,
    },
    /// Fig. 4: mean of Jul–Dec over mean of Jan–Jun. Measures H2/H1.
    SeasonalLift {
        /// Minimum second-half lift.
        min_h2_over_h1: f64,
    },
    /// Fig. 5: the `20-30` RH bin mean exceeds the `40-50` bin.
    /// Measures dry/mid.
    LowHumidityLift {
        /// Minimum dry/mid ratio.
        min_dry_over_mid: f64,
    },
    /// Fig. 6: the named workloads are the extremes of the by-workload
    /// means. Measures highest/lowest ratio.
    WorkloadExtremes {
        /// Workload expected to top the ranking (paper: W2).
        highest: String,
        /// Workload expected to bottom it (paper: W3).
        lowest: String,
    },
    /// CART variable importance ranks the planted drivers (SKU, workload,
    /// datacenter) above noise (week-of-year). Measures the planted
    /// drivers' combined share.
    DriverImportance {
        /// Tree settings.
        cart: CartSpec,
        /// Minimum combined SKU+workload+datacenter importance.
        min_planted_share: f64,
        /// Maximum week-of-year importance.
        max_week_share: f64,
    },
    /// Bad-lot cohorts have heavier per-rack peak-μ tails than quiet
    /// cohorts. Measures lot/quiet mean-peak ratio.
    BurstLotTails {
        /// Minimum lot/quiet ratio.
        min_lot_over_quiet: f64,
    },
    /// Q2 (Fig. 15): the MF-estimated `sku_hi`/`sku_lo` intrinsic ratio
    /// lies inside `[lo, hi]` (ground truth plants 4×). Measures the
    /// ratio.
    MfSkuRatio {
        /// Control-tree settings.
        cart: CartSpec,
        /// Day stride of the rack-day table the control tree fits on.
        table_stride: usize,
        /// Numerator SKU label.
        sku_hi: String,
        /// Denominator SKU label.
        sku_lo: String,
        /// Lower envelope.
        lo: f64,
        /// Upper envelope.
        hi: f64,
    },
    /// Q3 (Fig. 18): the environment tree discovers a temperature rule in
    /// `dc` with a threshold inside `[lo_f, hi_f]` and a hot/cool step of
    /// at least `min_hot_over_cool`. Measures the discovered threshold.
    TempThreshold {
        /// Tree settings for control + environment trees.
        cart: CartSpec,
        /// Day stride of the disk-failure rack-day table.
        table_stride: usize,
        /// Datacenter label to analyze.
        dc: String,
        /// Lower envelope for the discovered threshold, °F.
        lo_f: f64,
        /// Upper envelope, °F.
        hi_f: f64,
        /// Minimum hot-group over cool-group mean ratio.
        min_hot_over_cool: f64,
    },
    /// Q3 negative control: the environment tree finds at least
    /// `min_rules` environmental split rules in `dc`. Use with
    /// [`Expect::Absent`] to require *no* discovery. Measures the rule
    /// count.
    EnvRules {
        /// Tree settings.
        cart: CartSpec,
        /// Day stride of the disk-failure rack-day table.
        table_stride: usize,
        /// Datacenter label to analyze.
        dc: String,
        /// Rule-count threshold.
        min_rules: usize,
    },
    /// Q1 (Fig. 10): the SF overprovision percentage for a workload lies
    /// inside `[lo_pct, hi_pct]`. Measures the percentage.
    SfOverprovision {
        /// Workload label (W1–W7).
        workload: String,
        /// Availability SLA.
        sla: f64,
        /// Lower envelope, percent.
        lo_pct: f64,
        /// Upper envelope, percent.
        hi_pct: f64,
    },
    /// Q1: the SF-minus-MF overprovision gap (what clustering recovers)
    /// is at least `min_gap_pct` points. Measures the gap.
    MfSfGap {
        /// Workload label.
        workload: String,
        /// Availability SLA.
        sla: f64,
        /// Minimum gap in percentage points.
        min_gap_pct: f64,
    },
    /// Table II gate: the ticket share of a fault category lies inside
    /// `[lo, hi]`. Measures the share.
    MixShare {
        /// `software`, `hardware`, or `boot`.
        category: String,
        /// Lower envelope (fraction).
        lo: f64,
        /// Upper envelope (fraction).
        hi: f64,
    },
    /// Table IV gate: relative TCO savings of MF over SF for a workload
    /// lies inside `[lo, hi]` (fractions). Measures the savings.
    TcoSavings {
        /// Workload label.
        workload: String,
        /// Availability SLA.
        sla: f64,
        /// Lower envelope (fraction).
        lo: f64,
        /// Upper envelope (fraction).
        hi: f64,
    },
}

/// A named claim with its expectation and required recovery power.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClaimSpec {
    /// Stable identifier (shows up in reports and CI output).
    pub name: String,
    /// The measurable condition.
    pub claim: Claim,
    /// Whether the condition must hold ([`Expect::Present`]) or fail
    /// ([`Expect::Absent`]) on this scenario.
    pub expect: Expect,
    /// Minimum fraction of seeds that must recover the expectation.
    pub min_recovery: f64,
    /// How the envelope was derived (sweep seeds, measured quartiles) —
    /// documentation carried with the spec.
    pub derivation: String,
}

/// A full scenario: fleet scale, effect toggles, and claims.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Stable scenario name.
    pub name: String,
    /// What the scenario exercises.
    pub description: String,
    /// Fleet scale: `small`, `medium`, or `paper`.
    pub scale: String,
    /// Day stride of the default (all-hardware) rack-day table the
    /// evidence claims read.
    pub day_stride: usize,
    /// First seed of the sweep; seed `i` of `n` is `seed_base + i`.
    pub seed_base: u64,
    /// Which planted effects are on.
    pub effects: EffectToggles,
    /// The recovery claims.
    pub claims: Vec<ClaimSpec>,
}

impl Scenario {
    /// Parses and validates a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`ConformanceError::Parse`] on malformed JSON and
    /// [`ConformanceError::InvalidScenario`] on validation failures.
    pub fn from_json(text: &str) -> Result<Scenario> {
        let scenario: Scenario =
            serde_json::from_str(text).map_err(|e| ConformanceError::Parse(e.to_string()))?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// The scenario serialized as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario is serializable")
    }

    /// Validates the scenario: known scale, positive stride, claims
    /// well-formed, and **no non-finite number anywhere** — the serde shim
    /// deserializes a missing numeric field as NaN, so a NaN here almost
    /// always means a typo'd or missing field in the JSON.
    ///
    /// # Errors
    ///
    /// Returns [`ConformanceError::InvalidScenario`] describing the first
    /// problem found.
    pub fn validate(&self) -> Result<()> {
        if Self::base_config(&self.scale).is_none() {
            return Err(ConformanceError::InvalidScenario {
                what: format!("unknown scale `{}` (want small|medium|paper)", self.scale),
            });
        }
        if self.day_stride == 0 {
            return Err(ConformanceError::InvalidScenario {
                what: "day_stride must be ≥ 1".into(),
            });
        }
        if self.claims.is_empty() {
            return Err(ConformanceError::InvalidScenario { what: "no claims".into() });
        }
        for spec in &self.claims {
            if !(0.0..=1.0).contains(&spec.min_recovery) {
                return Err(ConformanceError::InvalidScenario {
                    what: format!("claim `{}`: min_recovery outside [0, 1]", spec.name),
                });
            }
            if let Claim::MixShare { category, .. } = &spec.claim {
                if !matches!(category.as_str(), "software" | "hardware" | "boot") {
                    return Err(ConformanceError::InvalidScenario {
                        what: format!("claim `{}`: unknown category `{category}`", spec.name),
                    });
                }
            }
            for w in claim_workloads(&spec.claim) {
                if parse_workload(w).is_none() {
                    return Err(ConformanceError::InvalidScenario {
                        what: format!("claim `{}`: unknown workload `{w}`", spec.name),
                    });
                }
            }
        }
        check_finite(&serde_json::to_value(self), "scenario")?;
        Ok(())
    }

    /// Builds the fleet configuration with the scenario's effects applied.
    ///
    /// # Errors
    ///
    /// Returns [`ConformanceError::Sim`] if the resulting config fails the
    /// simulator's validation.
    pub fn fleet_config(&self) -> Result<FleetConfig> {
        let mut config = Self::base_config(&self.scale).ok_or_else(|| {
            ConformanceError::InvalidScenario { what: format!("unknown scale `{}`", self.scale) }
        })?;
        let e = &self.effects;
        if !e.age_bathtub {
            config.hazard.ablate_age_bathtub();
        }
        if !e.environment {
            config.hazard.ablate_environment();
        }
        if !e.calendar {
            config.hazard.ablate_calendar();
        }
        if !e.bursts {
            config.hazard.ablate_bursts();
        }
        config.hazard.sku_spread = e.sku_spread;
        config.hazard.disk_hot_threshold_f += e.hot_threshold_shift_f;
        if e.corruption_rate > 0.0 {
            config.corruption = CorruptionConfig::with_total_rate(e.corruption_rate);
        }
        config.validate()?;
        Ok(config)
    }

    /// The seed sweep for an `n`-seed run: `seed_base .. seed_base + n`.
    pub fn seeds(&self, n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| self.seed_base + i).collect()
    }

    fn base_config(scale: &str) -> Option<FleetConfig> {
        match scale {
            "small" => Some(FleetConfig::small()),
            "medium" => Some(FleetConfig::medium()),
            "paper" => Some(FleetConfig::paper_scale()),
            _ => None,
        }
    }
}

/// Workload labels referenced by a claim, for validation.
fn claim_workloads(claim: &Claim) -> Vec<&str> {
    match claim {
        Claim::SfOverprovision { workload, .. }
        | Claim::MfSfGap { workload, .. }
        | Claim::TcoSavings { workload, .. } => vec![workload.as_str()],
        Claim::WorkloadExtremes { highest, lowest } => {
            vec![highest.as_str(), lowest.as_str()]
        }
        _ => Vec::new(),
    }
}

/// Parses a `W1`–`W7` label.
pub fn parse_workload(label: &str) -> Option<Workload> {
    Workload::ALL.into_iter().find(|w| w.to_string() == label)
}

/// Rejects any non-finite number in a serialized value tree.
fn check_finite(value: &Value, path: &str) -> Result<()> {
    match value {
        Value::F64(v) if !v.is_finite() => Err(ConformanceError::InvalidScenario {
            what: format!("non-finite number at {path} (missing or misspelled field?)"),
        }),
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                check_finite(item, &format!("{path}[{i}]"))?;
            }
            Ok(())
        }
        Value::Object(pairs) => {
            for (key, item) in pairs {
                check_finite(item, &format!("{path}.{key}"))?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> Scenario {
        Scenario {
            name: "t".into(),
            description: "d".into(),
            scale: "small".into(),
            day_stride: 1,
            seed_base: 1,
            effects: EffectToggles::all_on(),
            claims: vec![ClaimSpec {
                name: "region_gap".into(),
                claim: Claim::RegionGap { min_dc1_over_dc2: 1.0 },
                expect: Expect::Present,
                min_recovery: 1.0,
                derivation: "unit test".into(),
            }],
        }
    }

    #[test]
    fn round_trips_through_json() {
        let s = minimal();
        let text = s.to_json();
        let back = Scenario::from_json(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn default_toggles_reproduce_base_config() {
        let s = minimal();
        let config = s.fleet_config().unwrap();
        assert_eq!(config, FleetConfig::small());
    }

    #[test]
    fn ablations_and_shifts_apply() {
        let mut s = minimal();
        s.effects.age_bathtub = false;
        s.effects.sku_spread = 0.0;
        s.effects.hot_threshold_shift_f = -5.0;
        s.effects.corruption_rate = 0.02;
        let config = s.fleet_config().unwrap();
        assert_eq!(config.hazard.infant_scale, 0.0);
        assert_eq!(config.hazard.sku_spread, 0.0);
        assert_eq!(config.hazard.disk_hot_threshold_f, 73.0);
        assert!(config.corruption.is_enabled());
    }

    #[test]
    fn validation_rejects_nan_and_unknowns() {
        let mut s = minimal();
        s.effects.sku_spread = f64::NAN;
        assert!(s.validate().is_err());
        let mut s = minimal();
        s.scale = "galactic".into();
        assert!(s.validate().is_err());
        let mut s = minimal();
        s.claims[0].min_recovery = 1.5;
        assert!(s.validate().is_err());
        let mut s = minimal();
        s.claims[0].claim = Claim::MixShare { category: "quantum".into(), lo: 0.0, hi: 1.0 };
        assert!(s.validate().is_err());
    }

    #[test]
    fn missing_numeric_field_is_caught() {
        // Drop `sku_spread` from the JSON: the serde shim yields NaN, and
        // validation must catch it rather than silently flattening SKUs.
        let text = minimal().to_json().replace("\"sku_spread\": 1.0,", "");
        let err = Scenario::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("non-finite"), "{err}");
    }

    #[test]
    fn workload_labels_parse() {
        assert_eq!(parse_workload("W6"), Some(Workload::W6));
        assert_eq!(parse_workload("W9"), None);
    }
}
