//! Multi-seed recovery power runner.
//!
//! Re-simulating a scenario under many seeds and re-evaluating every claim
//! turns a single pass/fail assertion into a *recovery rate*: the fraction
//! of seeds on which the analysis finds (or correctly fails to find) the
//! planted effect. Tolerances stop being per-seed magic constants — a
//! scenario instead states "this effect is recovered in ≥ 90 % of seeds"
//! and documents the sweep that derived its envelope.
//!
//! Seeds fan out via `rainshine-parallel`; every per-seed simulation runs
//! sequentially inside its worker, so the aggregate is bit-identical for
//! any `Parallelism`.

use rainshine_obs::Obs;
use rainshine_parallel::{par_map, Parallelism};
use rainshine_stats::ecdf::quantile_interpolated;

use crate::eval::{Measurement, SeedRun};
use crate::scenario::{Expect, Scenario};
use crate::Result;

/// One claim aggregated across the seed sweep.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClaimOutcome {
    /// Claim name from the scenario spec.
    pub name: String,
    /// Whether the effect was expected present or absent.
    pub expect: Expect,
    /// Required recovery rate from the spec.
    pub min_recovery: f64,
    /// Seeds evaluated.
    pub seeds: usize,
    /// Seeds on which the claim was recovered (condition held iff expected).
    pub recovered: usize,
    /// Seeds on which evaluation errored (never counted as recovered).
    pub errors: usize,
    /// `recovered / seeds`.
    pub recovery_rate: f64,
    /// First quartile of the finite effect-size measurements.
    pub effect_q1: f64,
    /// Median effect size.
    pub effect_q2: f64,
    /// Third quartile.
    pub effect_q3: f64,
    /// Whether `recovery_rate >= min_recovery`.
    pub pass: bool,
    /// Per-seed detail for every non-recovered seed, in seed order.
    pub failures: Vec<String>,
}

/// A full scenario evaluated across a seed sweep.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Seeds swept, in order.
    pub seeds: Vec<u64>,
    /// One outcome per claim, in scenario order.
    pub claims: Vec<ClaimOutcome>,
    /// Whether every claim met its recovery envelope.
    pub pass: bool,
}

impl ScenarioOutcome {
    /// Names of claims that missed their envelope.
    pub fn failed_claims(&self) -> Vec<&str> {
        self.claims.iter().filter(|c| !c.pass).map(|c| c.name.as_str()).collect()
    }
}

/// Evaluates every claim of `scenario` on every seed and aggregates
/// per-claim recovery rates and effect-size quartiles.
///
/// Parallelism applies *across* seeds; each seed's simulation and analyses
/// run sequentially in their worker, so the outcome (and the observability
/// counters recorded on `obs`) are independent of `parallelism`.
///
/// # Errors
///
/// Returns [`crate::ConformanceError`] if the scenario's fleet config fails
/// validation. Per-claim analysis errors do not abort the sweep; they are
/// reported in the affected claim's `errors` count and `failures` list.
pub fn run_scenario(
    scenario: &Scenario,
    seeds: &[u64],
    parallelism: Parallelism,
    obs: &Obs,
) -> Result<ScenarioOutcome> {
    // Surface config errors once, before fanning out workers.
    scenario.fleet_config()?;
    let mut span = obs.span_owned(format!("conformance.sweep.{}", scenario.name));
    span.add_items(seeds.len() as u64);

    let per_seed: Vec<Vec<Measurement>> =
        par_map(parallelism, seeds, |&seed| match SeedRun::new(scenario, seed) {
            Ok(run) => scenario.claims.iter().map(|spec| run.evaluate(&spec.claim)).collect(),
            Err(e) => {
                let m = Measurement {
                    value: f64::NAN,
                    pass: false,
                    error: true,
                    detail: format!("seed run failed: {e}"),
                };
                vec![m; scenario.claims.len()]
            }
        });
    drop(span);

    let mut claims = Vec::with_capacity(scenario.claims.len());
    for (idx, spec) in scenario.claims.iter().enumerate() {
        let mut recovered = 0usize;
        let mut errors = 0usize;
        let mut values = Vec::with_capacity(seeds.len());
        let mut failures = Vec::new();
        for (seed, measurements) in seeds.iter().zip(&per_seed) {
            let m = &measurements[idx];
            if m.value.is_finite() {
                values.push(m.value);
            }
            if m.error {
                errors += 1;
                failures.push(format!("seed {seed}: error: {}", m.detail));
                continue;
            }
            let want_present = spec.expect == Expect::Present;
            if m.pass == want_present {
                recovered += 1;
            } else {
                failures.push(format!("seed {seed}: {}", m.detail));
            }
        }
        let recovery_rate =
            if seeds.is_empty() { 0.0 } else { recovered as f64 / seeds.len() as f64 };
        let quartile = |q: f64| quantile_interpolated(&values, q).unwrap_or(f64::NAN);
        let pass = recovery_rate >= spec.min_recovery;
        claims.push(ClaimOutcome {
            name: spec.name.clone(),
            expect: spec.expect,
            min_recovery: spec.min_recovery,
            seeds: seeds.len(),
            recovered,
            errors,
            recovery_rate,
            effect_q1: quartile(0.25),
            effect_q2: quartile(0.50),
            effect_q3: quartile(0.75),
            pass,
            failures,
        });
    }

    let pass = claims.iter().all(|c| c.pass);
    obs.incr("conformance.seeds", seeds.len() as u64);
    obs.incr("conformance.claims", claims.len() as u64);
    obs.incr("conformance.claims_recovered", claims.iter().map(|c| c.recovered as u64).sum());
    obs.incr("conformance.claim_errors", claims.iter().map(|c| c.errors as u64).sum());
    Ok(ScenarioOutcome { scenario: scenario.name.clone(), seeds: seeds.to_vec(), claims, pass })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{Claim, ClaimSpec, EffectToggles};

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "power-unit".into(),
            description: "power runner unit tests".into(),
            scale: "small".into(),
            day_stride: 4,
            seed_base: 11,
            effects: EffectToggles::all_on(),
            claims: vec![
                ClaimSpec {
                    name: "region_gap".into(),
                    claim: Claim::RegionGap { min_dc1_over_dc2: 0.2 },
                    expect: Expect::Present,
                    min_recovery: 0.5,
                    derivation: "unit".into(),
                },
                ClaimSpec {
                    name: "mix_software".into(),
                    claim: Claim::MixShare { category: "software".into(), lo: 0.0, hi: 1.0 },
                    expect: Expect::Present,
                    min_recovery: 1.0,
                    derivation: "unit".into(),
                },
            ],
        }
    }

    #[test]
    fn sweep_is_identical_across_parallelism() {
        let scenario = tiny_scenario();
        let seeds: Vec<u64> = scenario.seeds(3);
        let seq = run_scenario(&scenario, &seeds, Parallelism::Sequential, &Obs::disabled())
            .expect("sequential sweep");
        let par = run_scenario(&scenario, &seeds, Parallelism::Threads(3), &Obs::disabled())
            .expect("threaded sweep");
        assert_eq!(seq, par);
        assert_eq!(seq.seeds, seeds);
        assert_eq!(seq.claims.len(), 2);
        for claim in &seq.claims {
            assert_eq!(claim.seeds, 3);
            assert!(claim.effect_q1 <= claim.effect_q3);
        }
    }

    #[test]
    fn quartiles_and_rates_come_from_measurements() {
        let scenario = tiny_scenario();
        let outcome =
            run_scenario(&scenario, &[11], Parallelism::Sequential, &Obs::disabled()).unwrap();
        let mix = &outcome.claims[1];
        assert_eq!(mix.recovered, 1);
        assert_eq!(mix.errors, 0);
        assert!((mix.recovery_rate - 1.0).abs() < 1e-12);
        // With one seed, all three quartiles collapse onto the measurement.
        assert_eq!(mix.effect_q1, mix.effect_q2);
        assert_eq!(mix.effect_q2, mix.effect_q3);
        assert!(mix.pass);
    }
}
