//! Analysis-dataset assembly.
//!
//! Turns a [`SimulationOutput`] into the typed tables the framework
//! consumes:
//!
//! * [`rack_day_table`] — one row per active (rack, day) with every
//!   Table III candidate feature plus the day's failure count (the λ
//!   response at rack/day granularity, the paper's default);
//! * [`rack_table`] — one row per rack with static features, mean
//!   environment, and a caller-supplied response (used by Q1 to cluster
//!   racks by provisioning need).

use std::collections::{BTreeMap, HashMap};

use rainshine_dcsim::topology::RackInfo;
use rainshine_dcsim::SimulationOutput;
use rainshine_telemetry::frame::{ColumnBuilder, FrameBuilder};
use rainshine_telemetry::ids::RackId;
use rainshine_telemetry::rma::{FaultKind, HardwareFault, RmaTicket};
use rainshine_telemetry::schema::analysis_schema;
use rainshine_telemetry::table::Table;
use rainshine_telemetry::time::SimTime;

use crate::{AnalysisError, Result};

/// Which tickets count toward the response column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFilter {
    /// All validated true-positive tickets (hardware + software + boot +
    /// other).
    All,
    /// All hardware tickets (the paper's Q1/Q2 population).
    AllHardware,
    /// One specific hardware component (Q1-B and Q3 use Disk / Memory).
    Component(HardwareFault),
    /// Hardware faults other than disk and memory (the population still
    /// needing whole-server spares under component-level provisioning).
    OtherHardware,
}

impl FaultFilter {
    /// Whether a ticket matches the filter.
    pub fn matches(&self, fault: FaultKind) -> bool {
        match self {
            FaultFilter::All => true,
            FaultFilter::AllHardware => fault.is_hardware(),
            FaultFilter::Component(c) => fault == FaultKind::Hardware(*c),
            FaultFilter::OtherHardware => {
                fault.is_hardware()
                    && fault != FaultKind::Hardware(HardwareFault::Disk)
                    && fault != FaultKind::Hardware(HardwareFault::Memory)
            }
        }
    }
}

/// Counts matching true-positive tickets per (rack, day).
///
/// Returned as a [`BTreeMap`] so that callers iterating the counts (rather
/// than just probing them) see a deterministic key order.
pub fn ticket_counts_by_rack_day(
    tickets: &[&RmaTicket],
    filter: FaultFilter,
) -> BTreeMap<(RackId, u64), u64> {
    let mut counts = BTreeMap::new();
    for t in tickets {
        if filter.matches(t.fault) {
            *counts.entry((t.location.rack, t.opened.days())).or_insert(0) += 1;
        }
    }
    counts
}

/// Builds the rack-day analysis table.
///
/// One row per active (rack, day), stepping days by `day_stride` (use 1 for
/// the full dataset; larger strides thin the table for faster tree fits —
/// the response is still that single day's count, so rates are unbiased).
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] if `day_stride == 0` and
/// [`AnalysisError::NoData`] if no rack-day is active in the span.
pub fn rack_day_table(
    output: &SimulationOutput,
    filter: FaultFilter,
    day_stride: usize,
) -> Result<Table> {
    if day_stride == 0 {
        return Err(AnalysisError::InvalidParameter { name: "day_stride", value: 0.0 });
    }
    let tickets = output.true_positives();
    let counts = ticket_counts_by_rack_day(&tickets, filter);
    let mut builder = FrameBuilder::new(analysis_schema());
    let rows = {
        let mut cols = AnalysisCols::split(&mut builder);
        // Per-rack nominal codes, interned on the rack's first active day so
        // code assignment matches first-seen row order.
        let mut cached: Option<(RackId, RackCodes)> = None;
        output.for_each_active_rack_day(day_stride, |rack, t, env| {
            let codes = match cached {
                Some((id, codes)) if id == rack.id => codes,
                _ => {
                    let codes = cols.intern_rack(rack);
                    cached = Some((rack.id, codes));
                    codes
                }
            };
            // Ingested (sanitized) environment: spikes winsorized, blackout
            // cells NaN — the NaN-tolerant CART and the evidence series
            // handle missing readings downstream.
            let count = counts.get(&(rack.id, t.days())).copied().unwrap_or(0) as f64;
            cols.push(codes, rack, t, env.temp_f, env.rh, count);
        })
    };
    if rows == 0 {
        return Err(AnalysisError::NoData { what: "no active rack-days in span".into() });
    }
    Ok(Table::from_frame(builder.build()?))
}

/// Nominal codes for one rack's static features, interned once and reused
/// for every day the rack contributes.
#[derive(Clone, Copy)]
struct RackCodes {
    sku: u32,
    workload: u32,
    dc: u32,
    region: u32,
    row: u32,
    rack: u32,
}

/// The 15 analysis-schema column builders, split-borrowed so the emission
/// loop can append to all of them without per-row [`Value`] vectors.
///
/// [`Value`]: rainshine_telemetry::table::Value
struct AnalysisCols<'a> {
    sku: &'a mut ColumnBuilder,
    age: &'a mut ColumnBuilder,
    power: &'a mut ColumnBuilder,
    workload: &'a mut ColumnBuilder,
    temp: &'a mut ColumnBuilder,
    rh: &'a mut ColumnBuilder,
    dc: &'a mut ColumnBuilder,
    region: &'a mut ColumnBuilder,
    row: &'a mut ColumnBuilder,
    rack: &'a mut ColumnBuilder,
    dow: &'a mut ColumnBuilder,
    week: &'a mut ColumnBuilder,
    month: &'a mut ColumnBuilder,
    year: &'a mut ColumnBuilder,
    response: &'a mut ColumnBuilder,
}

impl<'a> AnalysisCols<'a> {
    fn split(builder: &'a mut FrameBuilder) -> Self {
        let [sku, age, power, workload, temp, rh, dc, region, row, rack, dow, week, month, year, response] =
            builder.columns_mut()
        else {
            unreachable!("analysis schema has 15 columns")
        };
        AnalysisCols {
            sku,
            age,
            power,
            workload,
            temp,
            rh,
            dc,
            region,
            row,
            rack,
            dow,
            week,
            month,
            year,
            response,
        }
    }

    fn intern_rack(&mut self, rack: &RackInfo) -> RackCodes {
        RackCodes {
            sku: self.sku.intern(&rack.sku.to_string()),
            workload: self.workload.intern(&rack.workload.to_string()),
            dc: self.dc.intern(&rack.dc.to_string()),
            region: self.region.intern(&format!("{}-{}", rack.dc, rack.region.0)),
            row: self.row.intern(&format!("{}-row{}", rack.dc, rack.row.0)),
            rack: self.rack.intern(&rack.id.to_string()),
        }
    }

    fn push(
        &mut self,
        codes: RackCodes,
        rack: &RackInfo,
        t: SimTime,
        temp_f: f64,
        rh: f64,
        response: f64,
    ) {
        self.sku.push_code(codes.sku);
        self.age.push_f64(rack.age_months(t));
        self.power.push_f64(rack.power_kw);
        self.workload.push_code(codes.workload);
        self.temp.push_f64(temp_f);
        self.rh.push_f64(rh);
        self.dc.push_code(codes.dc);
        self.region.push_code(codes.region);
        self.row.push_code(codes.row);
        self.rack.push_code(codes.rack);
        self.dow.push_i64(t.day_of_week().index() as i64);
        self.week.push_i64(t.week_of_year() as i64);
        self.month.push_i64(t.month() as i64);
        self.year.push_i64(t.year_offset() as i64);
        self.response.push_f64(response);
    }
}

/// Builds a rack-level table: one row per rack carrying its static features,
/// its mean environment over the active span, and the caller-supplied
/// response (racks missing from `response` are skipped).
///
/// Time features are taken at the midpoint of the rack's active span (age)
/// or zeroed (calendar ordinals are meaningless for a whole-span summary).
///
/// # Errors
///
/// Returns [`AnalysisError::NoData`] if no rack has a response.
pub fn rack_table(output: &SimulationOutput, response: &HashMap<RackId, f64>) -> Result<Table> {
    let mut builder = FrameBuilder::new(analysis_schema());
    let start_day = output.config.start.days() as i64;
    let end_day = output.config.end.days() as i64;
    let mut rows = 0usize;
    {
        let mut cols = AnalysisCols::split(&mut builder);
        for rack in &output.fleet.racks {
            let Some(&resp) = response.get(&rack.id) else {
                continue;
            };
            let active_start = rack.commissioned_day.max(start_day);
            if active_start >= end_day {
                continue;
            }
            let mid_day = ((active_start + end_day) / 2) as u64;
            let t = SimTime::from_days(mid_day);
            // Mean environment over a monthly sample of the active span.
            let mut temp = 0.0;
            let mut rh = 0.0;
            let mut n = 0.0;
            let mut day = active_start as u64;
            while (day as i64) < end_day {
                let env = output.ingested_daily_env(rack.dc, rack.region, day);
                // Skip blacked-out samples; the mean comes from the days the
                // sensors actually reported.
                if env.temp_f.is_finite() && env.rh.is_finite() {
                    temp += env.temp_f;
                    rh += env.rh;
                    n += 1.0;
                }
                day += 30;
            }
            let (temp, rh) = if n > 0.0 { (temp / n, rh / n) } else { (65.0, 45.0) };
            let codes = cols.intern_rack(rack);
            cols.push(codes, rack, t, temp, rh, resp);
            rows += 1;
        }
    }
    if rows == 0 {
        return Err(AnalysisError::NoData { what: "no racks with responses".into() });
    }
    Ok(Table::from_frame(builder.build()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_dcsim::{FleetConfig, Simulation};
    use rainshine_telemetry::schema::columns;

    fn sim() -> SimulationOutput {
        Simulation::new(FleetConfig::small(), 11).run()
    }

    #[test]
    fn rack_day_table_has_schema_and_rows() {
        let out = sim();
        let t = rack_day_table(&out, FaultFilter::AllHardware, 1).unwrap();
        assert_eq!(t.schema().len(), 15);
        // Active rack-days <= racks × days.
        let max_rows = out.fleet.racks.len() as u64 * out.config.span_days();
        assert!(t.rows() as u64 <= max_rows);
        assert!(t.rows() > 1000);
        // Response is non-negative and non-trivial.
        let y = t.continuous(columns::FAILURE_RATE).unwrap();
        assert!(y.iter().all(|&v| v >= 0.0));
        assert!(y.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn stride_thins_rows_proportionally() {
        let out = sim();
        let full = rack_day_table(&out, FaultFilter::AllHardware, 1).unwrap();
        let thin = rack_day_table(&out, FaultFilter::AllHardware, 7).unwrap();
        let ratio = full.rows() as f64 / thin.rows() as f64;
        assert!((6.0..8.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn component_filter_counts_fewer() {
        let out = sim();
        let all = rack_day_table(&out, FaultFilter::AllHardware, 2).unwrap();
        let disks = rack_day_table(&out, FaultFilter::Component(HardwareFault::Disk), 2).unwrap();
        let sum = |t: &Table| t.continuous(columns::FAILURE_RATE).unwrap().iter().sum::<f64>();
        assert!(sum(&disks) < sum(&all));
        assert!(sum(&disks) > 0.0);
    }

    #[test]
    fn zero_stride_rejected() {
        let out = sim();
        assert!(matches!(
            rack_day_table(&out, FaultFilter::All, 0),
            Err(AnalysisError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn rack_table_one_row_per_responding_rack() {
        let out = sim();
        let mut resp = HashMap::new();
        for (i, r) in out.fleet.racks.iter().enumerate() {
            if i % 2 == 0 {
                resp.insert(r.id, i as f64);
            }
        }
        let t = rack_table(&out, &resp).unwrap();
        assert_eq!(t.rows(), resp.len());
        // Nominal features preserved.
        assert!(t.categories(columns::SKU).unwrap().len() >= 2);
        assert_eq!(t.categories(columns::DATACENTER).unwrap().len(), 2);
    }

    #[test]
    fn rack_table_empty_response_errors() {
        let out = sim();
        assert!(matches!(rack_table(&out, &HashMap::new()), Err(AnalysisError::NoData { .. })));
    }

    #[test]
    fn fault_filter_matching() {
        use rainshine_telemetry::rma::{BootFault, SoftwareFault};
        let disk = FaultKind::Hardware(HardwareFault::Disk);
        let mem = FaultKind::Hardware(HardwareFault::Memory);
        let sw = FaultKind::Software(SoftwareFault::Timeout);
        let boot = FaultKind::Boot(BootFault::Pxe);
        assert!(FaultFilter::All.matches(sw));
        assert!(FaultFilter::AllHardware.matches(disk));
        assert!(!FaultFilter::AllHardware.matches(boot));
        assert!(FaultFilter::Component(HardwareFault::Disk).matches(disk));
        assert!(!FaultFilter::Component(HardwareFault::Disk).matches(mem));
    }
}
