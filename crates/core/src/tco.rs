//! Total-cost-of-ownership model.
//!
//! A parametric stand-in for the commercial cost tools the paper uses
//! (the paper's ref. \[4\] for unit prices, Kontorinis et al. \[24\] for the
//! TCO breakdown).
//! All quantities are in *relative cost units* anchored to the paper's
//! server:disk:DIMM = 100:2:10 price ratio.

use serde::{Deserialize, Serialize};

use crate::{AnalysisError, Result};

/// TCO parameters per server over the amortization horizon.
///
/// Defaults follow the Kontorinis et al. breakdown: servers are a bit over
/// half of TCO, with power/cooling infrastructure and energy making up most
/// of the rest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TcoModel {
    /// Purchase price of one production server (relative units).
    pub server_price: f64,
    /// Amortized power/cooling/building infrastructure per deployed server.
    pub infra_per_server: f64,
    /// Lifetime energy cost (PUE-inflated) of an *active* server.
    pub energy_per_server: f64,
    /// Fraction of the active-server energy a hot spare consumes.
    pub spare_energy_fraction: f64,
    /// Maintenance cost per hardware failure (technician time + logistics).
    pub maintenance_per_failure: f64,
}

impl Default for TcoModel {
    fn default() -> Self {
        TcoModel {
            server_price: 100.0,
            infra_per_server: 55.0,
            energy_per_server: 50.0,
            spare_energy_fraction: 0.5,
            maintenance_per_failure: 25.0,
        }
    }
}

impl TcoModel {
    /// Validates the model.
    ///
    /// # Errors
    ///
    /// Returns an error if any cost is negative/non-finite or the spare
    /// energy fraction is outside `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        for (name, v) in [
            ("server_price", self.server_price),
            ("infra_per_server", self.infra_per_server),
            ("energy_per_server", self.energy_per_server),
            ("maintenance_per_failure", self.maintenance_per_failure),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(AnalysisError::InvalidParameter { name, value: v });
            }
        }
        if !(0.0..=1.0).contains(&self.spare_energy_fraction) {
            return Err(AnalysisError::InvalidParameter {
                name: "spare_energy_fraction",
                value: self.spare_energy_fraction,
            });
        }
        Ok(())
    }

    /// Full cost of one deployed production server.
    pub fn cost_per_base_server(&self) -> f64 {
        self.server_price + self.infra_per_server + self.energy_per_server
    }

    /// Full cost of one server-class spare (idles at reduced energy).
    pub fn cost_per_spare_server(&self) -> f64 {
        self.server_price
            + self.infra_per_server
            + self.spare_energy_fraction * self.energy_per_server
    }

    /// TCO of a deployment with `base_servers` production servers and
    /// `spare_servers` spares (fractional spares allowed: they represent
    /// per-rack fractions summed over many racks).
    pub fn deployment_tco(&self, base_servers: f64, spare_servers: f64) -> f64 {
        base_servers * self.cost_per_base_server() + spare_servers * self.cost_per_spare_server()
    }

    /// Relative TCO savings of provisioning `spares_a` instead of
    /// `spares_b` for the same `base_servers` (the paper's Table IV:
    /// `a = MF`, `b = SF`). Positive when `a` is cheaper.
    pub fn relative_savings(&self, base_servers: f64, spares_a: f64, spares_b: f64) -> f64 {
        let tco_a = self.deployment_tco(base_servers, spares_a);
        let tco_b = self.deployment_tco(base_servers, spares_b);
        if tco_b == 0.0 {
            return 0.0;
        }
        (tco_b - tco_a) / tco_b
    }

    /// Per-server TCO of procuring a SKU at `price` with spare fraction
    /// `spare_frac` and `failures_per_server` expected hardware failures
    /// over the horizon (the Q2 procurement comparison).
    pub fn sku_tco(&self, price: f64, spare_frac: f64, failures_per_server: f64) -> f64 {
        price * (1.0 + spare_frac)
            + self.infra_per_server
            + self.energy_per_server
            + self.maintenance_per_failure * failures_per_server
    }

    /// Relative savings of procuring SKU `a` over SKU `b` (positive when
    /// `a` is cheaper per server).
    pub fn sku_savings(&self, a: f64, b: f64) -> f64 {
        if b == 0.0 {
            return 0.0;
        }
        (b - a) / b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_and_ballpark() {
        let m = TcoModel::default();
        assert!(m.validate().is_ok());
        // Server share of base TCO ≈ half (Kontorinis breakdown).
        let share = m.server_price / m.cost_per_base_server();
        assert!((0.4..0.6).contains(&share), "server share {share}");
        // A spare is cheaper than a production server but not free.
        assert!(m.cost_per_spare_server() < m.cost_per_base_server());
        assert!(m.cost_per_spare_server() > m.server_price);
    }

    #[test]
    fn savings_matches_hand_computation() {
        let m = TcoModel::default();
        // 100 servers; MF 18 spares vs SF 40 spares.
        let s = m.relative_savings(100.0, 18.0, 40.0);
        let tco_mf = 100.0 * 205.0 + 18.0 * 180.0;
        let tco_sf = 100.0 * 205.0 + 40.0 * 180.0;
        assert!((s - (tco_sf - tco_mf) / tco_sf).abs() < 1e-12);
        assert!(s > 0.1 && s < 0.2, "savings {s}");
    }

    #[test]
    fn equal_spares_zero_savings() {
        let m = TcoModel::default();
        assert_eq!(m.relative_savings(10.0, 3.0, 3.0), 0.0);
        assert!(m.relative_savings(10.0, 5.0, 3.0) < 0.0, "more spares cost more");
    }

    #[test]
    fn sku_tco_penalizes_failure_rate() {
        let m = TcoModel::default();
        // Same price, worse reliability -> strictly more expensive.
        let unreliable = m.sku_tco(100.0, 0.10, 8.0);
        let reliable = m.sku_tco(100.0, 0.03, 2.0);
        assert!(unreliable > reliable);
        let expected_gap = (0.10 - 0.03) * 100.0 + m.maintenance_per_failure * 6.0;
        assert!((unreliable - reliable - expected_gap).abs() < 1e-9);
        // Savings sign convention: positive when the first argument is
        // cheaper.
        assert!(m.sku_savings(reliable, unreliable) > 0.0);
        assert!(m.sku_savings(unreliable, reliable) < 0.0);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let m = TcoModel { server_price: -1.0, ..TcoModel::default() };
        assert!(m.validate().is_err());
        let m = TcoModel { spare_energy_fraction: 1.5, ..TcoModel::default() };
        assert!(m.validate().is_err());
    }
}
