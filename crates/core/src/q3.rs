//! Q3 — environmental operating ranges (Figs. 16–18).
//!
//! The SF view bins failure rates by temperature (Figs. 16–17). The MF view
//! normalizes the non-environmental factors (age, SKU, workload, power)
//! via a control tree, then lets CART find temperature / relative-humidity
//! thresholds in the *normalized* disk-failure rate per DC — discovering
//! the paper's "above 78 °F and below 25 % RH" rule in DC1 and its absence
//! in DC2.

use rainshine_cart::dataset::CartDataset;
use rainshine_cart::params::CartParams;
use rainshine_cart::tree::Tree;
use rainshine_cart::SplitRule;
use rainshine_stats::hist::Binner;
use rainshine_telemetry::frame::FrameBuilder;
use rainshine_telemetry::schema::columns;
use rainshine_telemetry::table::{FeatureKind, Field, Schema, Table};
use serde::{Deserialize, Serialize};

use crate::evidence::{by_binned, SeriesRow};
use crate::{AnalysisError, Result};

/// The temperature bins of Figs. 16–17 (`<60`, `60-65`, `65-70`, `70-75`,
/// `>=75`).
pub fn fig16_binner() -> Binner {
    Binner::from_edges(vec![60.0, 65.0, 70.0, 75.0]).expect("static edges are valid")
}

/// Fig. 16 / Fig. 17 — failure rate by operating-temperature bin. Pass an
/// all-hardware rack-day table for Fig. 16 or a disk-only table for
/// Fig. 17.
pub fn rate_by_temperature(table: &Table) -> Result<Vec<SeriesRow>> {
    by_binned(table, columns::TEMPERATURE_F, &fig16_binner())
}

/// Fig. 17 — *per-disk* failure rate (failures per 1000 disk-days) by
/// operating-temperature bin.
///
/// Racks carry very different disk counts (storage SKUs have 3× a compute
/// SKU's), so the per-rack disk-failure rate confounds fleet composition
/// with temperature; normalizing per disk exposes the environmental trend
/// the paper shows.
///
/// # Errors
///
/// Returns [`AnalysisError::InvalidParameter`] for `day_stride == 0` or
/// [`AnalysisError::NoData`] for an empty span.
pub fn disk_rate_by_temperature(
    output: &rainshine_dcsim::SimulationOutput,
    day_stride: usize,
) -> Result<Vec<SeriesRow>> {
    use crate::dataset::{ticket_counts_by_rack_day, FaultFilter};
    use rainshine_stats::hist::GroupedMeans;
    use rainshine_telemetry::rma::HardwareFault;

    if day_stride == 0 {
        return Err(AnalysisError::InvalidParameter { name: "day_stride", value: 0.0 });
    }
    let tickets = output.true_positives();
    let counts = ticket_counts_by_rack_day(&tickets, FaultFilter::Component(HardwareFault::Disk));
    let mut temps = Vec::new();
    let mut rates = Vec::new();
    let start_day = output.config.start.days();
    let end_day = output.config.end.days();
    for rack in &output.fleet.racks {
        let disks = (rack.servers * rack.sku_spec().disks_per_server).max(1) as f64;
        for day in (start_day..end_day).step_by(day_stride) {
            if !rack.is_active(rainshine_telemetry::time::SimTime::from_days(day)) {
                continue;
            }
            let env = output.ingested_daily_env(rack.dc, rack.region, day);
            // Sensor blackouts leave NaN cells; those rack-days cannot be
            // attributed to a temperature bin.
            if !env.temp_f.is_finite() {
                continue;
            }
            let failures = counts.get(&(rack.id, day)).copied().unwrap_or(0) as f64;
            temps.push(env.temp_f);
            rates.push(1000.0 * failures / disks);
        }
    }
    if temps.is_empty() {
        return Err(AnalysisError::NoData { what: "no active rack-days".into() });
    }
    let grouped = GroupedMeans::new(fig16_binner(), &temps, &rates)?;
    Ok(grouped
        .rows()
        .into_iter()
        .map(|(label, mean, sd, n)| SeriesRow { label, mean, sd, n })
        .collect())
}

/// Control features normalized before environmental threshold discovery.
pub const ENV_CONTROLS: &[&str] =
    &[columns::AGE_MONTHS, columns::SKU, columns::WORKLOAD, columns::RATED_POWER_KW];

/// A threshold rule discovered by the environment tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscoveredRule {
    /// Feature split on (`temperature_f` or `relative_humidity`).
    pub feature: String,
    /// Discovered threshold.
    pub threshold: f64,
    /// Depth of the split in the environment tree (0 = root).
    pub depth: usize,
    /// Risk-decrease of the split (importance of the rule).
    pub improvement: f64,
}

/// Fig. 18's per-DC result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvAnalysis {
    /// Datacenter label.
    pub dc: String,
    /// Mean disk failure rate for `T <= t*` rows.
    pub cool: SeriesGroup,
    /// Mean for `T > t*` rows.
    pub hot: SeriesGroup,
    /// Mean for `T > t*` and `RH < rh*` rows.
    pub hot_dry: SeriesGroup,
    /// Mean over all rows.
    pub all: SeriesGroup,
    /// The thresholds used for the grouping (discovered, or the defaults
    /// 78 °F / 25 % if the tree found no environmental split).
    pub temp_threshold: f64,
    /// RH threshold used.
    pub rh_threshold: f64,
    /// All environmental splits the tree found, in discovery order.
    pub discovered: Vec<DiscoveredRule>,
}

/// Mean/sd/n of one Fig. 18 group.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesGroup {
    /// Mean failure rate of the group.
    pub mean: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Rows in the group.
    pub n: usize,
}

fn group_of(values: &[f64]) -> SeriesGroup {
    match rainshine_stats::describe::Summary::from_slice(values) {
        Ok(s) => SeriesGroup { mean: s.mean(), sd: s.sample_stddev(), n: s.count() },
        Err(_) => SeriesGroup { mean: f64::NAN, sd: f64::NAN, n: 0 },
    }
}

/// Normalizes the response by the control-tree stratum means, returning a
/// two-feature (temperature, RH) table with the normalized response.
fn normalized_env_table(table: &Table, cart: &CartParams) -> Result<Table> {
    let ds = CartDataset::regression(table, columns::FAILURE_RATE, ENV_CONTROLS)?;
    let control_tree = Tree::fit(&ds, cart)?;
    let strata = control_tree.leaf_assignments(table)?;
    let y = table.continuous(columns::FAILURE_RATE)?;
    // Stratum means.
    let mut sums: std::collections::HashMap<usize, (f64, f64)> = std::collections::HashMap::new();
    for (i, &s) in strata.iter().enumerate() {
        let e = sums.entry(s).or_insert((0.0, 0.0));
        e.0 += y[i];
        e.1 += 1.0;
    }
    let temp = table.continuous(columns::TEMPERATURE_F)?;
    let rh = table.continuous(columns::RELATIVE_HUMIDITY)?;
    let schema = Schema::new(vec![
        Field::new(columns::TEMPERATURE_F, FeatureKind::Continuous),
        Field::new(columns::RELATIVE_HUMIDITY, FeatureKind::Continuous),
        Field::new(columns::FAILURE_RATE, FeatureKind::Continuous),
    ]);
    // Columnar assembly: temperature and RH copy straight from the source
    // frame's column buffers; only the response is recomputed per row.
    let mut b = FrameBuilder::new(schema);
    b.reserve(table.rows());
    {
        let [temp_col, rh_col, resp_col] = b.columns_mut() else {
            unreachable!("schema above has 3 columns")
        };
        for i in 0..table.rows() {
            let (sum, n) = sums[&strata[i]];
            let stratum_mean = sum / n;
            let normalized = if stratum_mean > 0.0 { y[i] / stratum_mean } else { 0.0 };
            temp_col.push_f64(temp[i]);
            rh_col.push_f64(rh[i]);
            resp_col.push_f64(normalized);
        }
    }
    Ok(Table::from_frame(b.build()?))
}

/// Extracts environmental threshold rules from a tree fitted on the
/// normalized (temperature, RH) table.
fn discover_rules(tree: &Tree) -> Vec<DiscoveredRule> {
    tree.nodes()
        .iter()
        .filter_map(|node| {
            node.rule.as_ref().and_then(|rule| match rule {
                SplitRule::ContinuousThreshold { feature, threshold, .. } => Some(DiscoveredRule {
                    feature: feature.clone(),
                    threshold: *threshold,
                    depth: node.depth,
                    improvement: node.improvement,
                }),
                _ => None,
            })
        })
        .collect()
}

/// Runs the Fig. 18 analysis for one DC's disk-failure rack-day table.
///
/// `table` must contain only that DC's rows (filter upstream with
/// [`Table::filter_nominal`] + [`Table::subset`]).
///
/// # Errors
///
/// Returns [`AnalysisError::NoData`] for an empty table, or any underlying
/// tree error.
pub fn env_analysis(dc_label: &str, table: &Table, cart: &CartParams) -> Result<EnvAnalysis> {
    if table.is_empty() {
        return Err(AnalysisError::NoData { what: format!("no rows for {dc_label}") });
    }
    let normalized = normalized_env_table(table, cart)?;
    let env_ds = CartDataset::regression(
        &normalized,
        columns::FAILURE_RATE,
        &[columns::TEMPERATURE_F, columns::RELATIVE_HUMIDITY],
    )?;
    let env_tree = Tree::fit(&env_ds, cart)?;
    let mut discovered = discover_rules(&env_tree);
    discovered.sort_by(|a, b| {
        a.depth
            .cmp(&b.depth)
            .then(b.improvement.partial_cmp(&a.improvement).expect("finite improvement"))
    });
    // Fallback when the tree finds no environmental split (the DC2 case):
    // split at the 75th percentile of observed temperature so the "hot"
    // group exists and its flatness is visible, rather than empty.
    let temp_values = table.continuous(columns::TEMPERATURE_F)?;
    let temp_threshold = discovered
        .iter()
        .find(|r| r.feature == columns::TEMPERATURE_F)
        .map(|r| r.threshold)
        .unwrap_or_else(|| {
            let finite: Vec<f64> = temp_values.iter().copied().filter(|t| t.is_finite()).collect();
            rainshine_stats::ecdf::quantile_interpolated(&finite, 0.75).unwrap_or(78.0)
        });
    let rh_threshold = discovered
        .iter()
        .find(|r| r.feature == columns::RELATIVE_HUMIDITY)
        .map(|r| r.threshold)
        .unwrap_or(25.0);

    // Fig. 18 groups on the *raw* table.
    let y = table.continuous(columns::FAILURE_RATE)?;
    let temp = table.continuous(columns::TEMPERATURE_F)?;
    let rh = table.continuous(columns::RELATIVE_HUMIDITY)?;
    let mut cool = Vec::new();
    let mut hot = Vec::new();
    let mut hot_dry = Vec::new();
    for i in 0..table.rows() {
        // Rows with no temperature reading (sensor blackout) cannot be
        // assigned to either side of the threshold.
        if !temp[i].is_finite() {
            continue;
        }
        if temp[i] <= temp_threshold {
            cool.push(y[i]);
        } else {
            hot.push(y[i]);
            if rh[i] < rh_threshold {
                hot_dry.push(y[i]);
            }
        }
    }
    Ok(EnvAnalysis {
        dc: dc_label.to_owned(),
        cool: group_of(&cool),
        hot: group_of(&hot),
        hot_dry: group_of(&hot_dry),
        all: group_of(y),
        temp_threshold,
        rh_threshold,
        discovered,
    })
}

/// One candidate temperature cap in a set-point trade-off study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetpointOption {
    /// Inlet temperature cap, °F (`f64::INFINITY` = no cap, free-running).
    pub cap_f: f64,
    /// Expected disk failures over the observed span under this cap.
    pub failures: f64,
    /// Extra cooling energy cost (relative units) to hold the cap over the
    /// span.
    pub cooling_cost: f64,
    /// Maintenance cost attributable to the failures.
    pub maintenance_cost: f64,
    /// Total of the two variable costs.
    pub total_cost: f64,
}

/// Parameters of the set-point trade-off model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetpointModel {
    /// Cost of removing one rack-degree-day of heat above the cap
    /// (mechanical-assist energy + water in an adiabatic facility).
    pub cooling_cost_per_degree_day: f64,
    /// Maintenance cost per disk failure (repair labor + drive).
    pub cost_per_failure: f64,
}

impl Default for SetpointModel {
    fn default() -> Self {
        SetpointModel { cooling_cost_per_degree_day: 0.02, cost_per_failure: 10.0 }
    }
}

/// The paper's closing Q3 remark made concrete: "while setting the
/// temperature and RH as identified by the MF can reduce failure rate …
/// it may in turn increase the OpEx from adhering to the temperature/RH
/// bounds. … a more extensive analysis (considering cost of environment
/// control) is required to minimize overall TCO."
///
/// For each candidate cap, rack-days observed above the cap are assumed to
/// be cooled down to it (paying
/// [`SetpointModel::cooling_cost_per_degree_day`] per degree of excess);
/// their expected failures are scaled by the **MF-normalized** temperature
/// response — the raw pooled rate-vs-temperature curve is composition
/// confounded (cool aisles hold the disk-dense storage racks), which is
/// exactly the single-factor trap the paper warns about. The normalized
/// response is made monotone (isotonic from below): physically, cooling a
/// rack cannot raise its temperature-driven failure rate. Returns one row
/// per candidate, cheapest total first.
///
/// # Errors
///
/// Returns [`AnalysisError::NoData`] for an empty table.
pub fn setpoint_tradeoff(
    table: &Table,
    caps_f: &[f64],
    model: &SetpointModel,
    cart: &CartParams,
) -> Result<Vec<SetpointOption>> {
    if table.is_empty() {
        return Err(AnalysisError::NoData { what: "empty table for setpoint study".into() });
    }
    let temp = table.continuous(columns::TEMPERATURE_F)?;
    let y = table.continuous(columns::FAILURE_RATE)?;
    // Relative (composition-normalized) response vs temperature in 2-degree
    // bins, from the control-tree-normalized table.
    let normalized = normalized_env_table(table, cart)?;
    let norm_y = normalized.continuous(columns::FAILURE_RATE)?;
    let lo = temp.iter().cloned().fold(f64::INFINITY, f64::min).floor();
    let hi = temp.iter().cloned().fold(f64::NEG_INFINITY, f64::max).ceil();
    let bins = (((hi - lo) / 2.0).ceil() as usize).max(1);
    let mut sums = vec![0.0f64; bins];
    let mut counts = vec![0.0f64; bins];
    let bin_of = |t: f64| (((t - lo) / 2.0) as usize).min(bins - 1);
    for (t, v) in temp.iter().zip(norm_y) {
        // NaN temperatures (sensor blackout) would alias into bin 0.
        if !t.is_finite() {
            continue;
        }
        sums[bin_of(*t)] += v;
        counts[bin_of(*t)] += 1.0;
    }
    // Fill empty bins from the left, then fit a weighted isotonic
    // (non-decreasing) curve so a noisy sparse bin cannot distort the
    // response. Empty bins get a token weight.
    let mut raw = vec![0.0f64; bins];
    let mut w = vec![1e-6f64; bins];
    let mut last = 1.0;
    for b in 0..bins {
        if counts[b] > 0.0 {
            last = sums[b] / counts[b];
            w[b] = counts[b];
        }
        raw[b] = last;
    }
    let rel: Vec<f64> = rainshine_stats::timeseries::isotonic_regression(&raw, &w)?
        .into_iter()
        .map(|v| v.max(1e-9))
        .collect();
    let rel_at = |t: f64| rel[bin_of(t)];
    let mut out = Vec::with_capacity(caps_f.len());
    for &cap in caps_f {
        let mut failures = 0.0;
        let mut degree_days = 0.0;
        for (t, v) in temp.iter().zip(y) {
            if *t > cap {
                failures += v * rel_at(cap) / rel_at(*t);
                degree_days += *t - cap;
            } else {
                failures += v;
            }
        }
        let cooling = degree_days * model.cooling_cost_per_degree_day;
        let maintenance = failures * model.cost_per_failure;
        out.push(SetpointOption {
            cap_f: cap,
            failures,
            cooling_cost: cooling,
            maintenance_cost: maintenance,
            total_cost: cooling + maintenance,
        });
    }
    out.sort_by(|a, b| a.total_cost.partial_cmp(&b.total_cost).expect("finite costs"));
    Ok(out)
}

/// Convenience: subsets a rack-day table to one DC's rows.
///
/// # Errors
///
/// Returns [`AnalysisError::NoData`] if the DC has no rows.
pub fn dc_subset(table: &Table, dc_label: &str) -> Result<Table> {
    let rows = table.filter_nominal(columns::DATACENTER, dc_label)?;
    if rows.is_empty() {
        return Err(AnalysisError::NoData { what: format!("no rows for {dc_label}") });
    }
    Ok(table.subset(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{rack_day_table, FaultFilter};
    use rainshine_dcsim::{FleetConfig, Simulation};
    use rainshine_telemetry::rma::HardwareFault;

    fn disk_table() -> Table {
        // A full year so summer heat is in the data.
        let out = Simulation::new(FleetConfig::medium(), 31).run();
        rack_day_table(&out, FaultFilter::Component(HardwareFault::Disk), 1).unwrap()
    }

    #[test]
    fn fig17_shape_per_disk_rate_rises_with_temperature() {
        let out = Simulation::new(FleetConfig::medium(), 31).run();
        let rows = disk_rate_by_temperature(&out, 1).unwrap();
        assert!(rows.len() >= 3);
        let first = rows.first().unwrap().mean;
        let last = rows.last().unwrap().mean;
        assert!(last > first, "hot bins {last} should exceed cool bins {first}");
    }

    #[test]
    fn fig16_shape_per_rack_means_vary_less_than_within_group_sd() {
        // Fig. 16's message: grouped by temperature alone, the *means* vary
        // little relative to the within-group spread.
        let t = disk_table();
        let rows = rate_by_temperature(&t).unwrap();
        let means: Vec<f64> = rows.iter().map(|r| r.mean).collect();
        let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - means.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_sd = rows.iter().map(|r| r.sd).fold(0.0, f64::max);
        assert!(spread < max_sd, "mean spread {spread} vs within-group sd {max_sd}");
    }

    #[test]
    fn dc1_discovers_temperature_threshold() {
        let t = disk_table();
        let dc1 = dc_subset(&t, "DC1").unwrap();
        let cart = CartParams::default().with_min_sizes(400, 200).with_cp(0.002);
        let r = env_analysis("DC1", &dc1, &cart).unwrap();
        // The planted threshold is 78F; discovery should land nearby.
        assert!(
            (73.0..=83.0).contains(&r.temp_threshold),
            "discovered {} (rules {:?})",
            r.temp_threshold,
            r.discovered
        );
        assert!(r.hot.mean > r.cool.mean, "hot {} > cool {}", r.hot.mean, r.cool.mean);
        assert!(r.hot_dry.mean >= r.hot.mean * 0.95, "hot+dry at least as bad as hot");
    }

    #[test]
    fn dc2_shows_no_meaningful_env_effect() {
        let t = disk_table();
        let dc2 = dc_subset(&t, "DC2").unwrap();
        let cart = CartParams::default().with_min_sizes(400, 200).with_cp(0.002);
        let r = env_analysis("DC2", &dc2, &cart).unwrap();
        // DC2's chilled-water loop never crosses the planted thresholds, so
        // whatever the tree finds, group means stay close together.
        if r.hot.n > 50 {
            let ratio = r.hot.mean / r.cool.mean.max(1e-9);
            assert!(ratio < 1.35, "DC2 hot/cool ratio {ratio}");
        }
    }

    #[test]
    fn setpoint_tradeoff_balances_cooling_against_failures() {
        let t = disk_table();
        let dc1 = dc_subset(&t, "DC1").unwrap();
        let model = SetpointModel::default();
        let caps = [70.0, 74.0, 78.0, 82.0, f64::INFINITY];
        let cart = CartParams::default().with_min_sizes(400, 200).with_cp(0.002);
        let rows = setpoint_tradeoff(&dc1, &caps, &model, &cart).unwrap();
        assert_eq!(rows.len(), caps.len());
        // Failures are monotone non-decreasing in the cap; cooling cost is
        // monotone non-increasing.
        let by_cap = |c: f64| rows.iter().find(|r| r.cap_f == c).unwrap();
        assert!(by_cap(70.0).failures <= by_cap(82.0).failures + 1e-9);
        assert!(by_cap(70.0).cooling_cost >= by_cap(82.0).cooling_cost);
        assert_eq!(by_cap(f64::INFINITY).cooling_cost, 0.0);
        // Results come back sorted by total cost, and every cost is finite.
        for w in rows.windows(2) {
            assert!(w[0].total_cost <= w[1].total_cost + 1e-9);
        }
        assert!(rows.iter().all(|r| r.total_cost.is_finite()));
        // With a high failure cost a sub-threshold cap must win (the
        // normalized response is flat below the planted 78 F threshold, so
        // 70/74/78 tie on failures and cooling cost breaks the tie); with
        // free failures, no cap must win.
        let expensive = SetpointModel { cost_per_failure: 1e6, ..SetpointModel::default() };
        let best = setpoint_tradeoff(&dc1, &caps, &expensive, &cart).unwrap();
        assert!(best[0].cap_f <= 78.0, "sub-threshold cap should win, got {:?}", best[0]);
        assert!(
            best[0].failures < by_cap(f64::INFINITY).failures,
            "capping below the threshold must save failures"
        );
        let free = SetpointModel { cost_per_failure: 0.0, ..SetpointModel::default() };
        let best = setpoint_tradeoff(&dc1, &caps, &free, &cart).unwrap();
        assert_eq!(best[0].cap_f, f64::INFINITY);
    }

    #[test]
    fn dc_subset_errors_on_unknown() {
        let t = disk_table();
        assert!(matches!(dc_subset(&t, "DC9"), Err(AnalysisError::NoData { .. })));
    }

    #[test]
    fn env_analysis_rejects_empty() {
        let t = disk_table();
        let empty = t.subset(&[]);
        let cart = CartParams::default();
        assert!(matches!(env_analysis("DC1", &empty, &cart), Err(AnalysisError::NoData { .. })));
    }
}
