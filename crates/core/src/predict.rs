//! Failure prediction — the paper's flagged extension.
//!
//! Section V notes that CART alone cannot *predict* failures on this data:
//! "failed devices are a minority … one may need pre-processing to balance
//! these two sets", and the conclusion lists "prediction of datacenter
//! failures for pro-active maintenance" as future work. This module builds
//! that pipeline:
//!
//! 1. a rack-day classification dataset (Table III features plus
//!    recent-failure-history features) labelled with "does this rack
//!    generate a hardware failure within the next *horizon* days?";
//! 2. a **time-ordered** train/test split (no peeking at the future);
//! 3. **majority-class downsampling** on the training split only;
//! 4. a Gini classification tree, evaluated on the untouched test split
//!    with the usual detection metrics.

use rainshine_cart::dataset::CartDataset;
use rainshine_cart::params::CartParams;
use rainshine_cart::tree::Tree;
use rainshine_dcsim::SimulationOutput;
use rainshine_telemetry::frame::FrameBuilder;
use rainshine_telemetry::schema::columns;
use rainshine_telemetry::table::{FeatureKind, Field, Schema, Table};
use rainshine_telemetry::time::SimTime;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::dataset::{ticket_counts_by_rack_day, FaultFilter};
use crate::{AnalysisError, Result};

/// History-feature column names added on top of the Table III schema.
pub mod history_columns {
    /// Hardware failures on this rack in the trailing short window.
    pub const RECENT_SHORT: &str = "failures_last_7d";
    /// Hardware failures on this rack in the trailing long window.
    pub const RECENT_LONG: &str = "failures_last_30d";
    /// Nominal prediction label: `"fail"` or `"ok"`.
    pub const LABEL: &str = "label";
}

/// Configuration of a prediction study.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionConfig {
    /// Label horizon: "fails within the next N days".
    pub horizon_days: u64,
    /// Trailing history windows (short, long) in days.
    pub history_days: (u64, u64),
    /// Fraction of the timeline used for training (time-ordered split).
    pub train_fraction: f64,
    /// Negative:positive ratio after downsampling the training majority
    /// class (1.0 = perfectly balanced). `None` disables balancing — the
    /// ablation the paper warns about.
    pub downsample_ratio: Option<f64>,
    /// Tree parameters.
    pub cart: CartParams,
    /// Day stride when sampling rack-days.
    pub day_stride: usize,
    /// RNG seed for downsampling.
    pub seed: u64,
}

impl Default for PredictionConfig {
    fn default() -> Self {
        PredictionConfig {
            horizon_days: 7,
            history_days: (7, 30),
            train_fraction: 0.7,
            downsample_ratio: Some(1.0),
            cart: CartParams::default().with_min_sizes(60, 30).with_cp(0.003),
            day_stride: 3,
            seed: 0,
        }
    }
}

/// Binary confusion counts on the test split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Confusion {
    /// Predicted fail, did fail.
    pub true_positives: u64,
    /// Predicted fail, did not fail.
    pub false_positives: u64,
    /// Predicted ok, did not fail.
    pub true_negatives: u64,
    /// Predicted ok, did fail.
    pub false_negatives: u64,
}

impl Confusion {
    /// Precision = TP / (TP + FP); 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall = TP / (TP + FN); 0 when there were no positives.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 — harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let total =
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives;
        if total == 0 {
            0.0
        } else {
            (self.true_positives + self.true_negatives) as f64 / total as f64
        }
    }

    /// Base rate of positives in the test split.
    pub fn base_rate(&self) -> f64 {
        let total =
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives;
        if total == 0 {
            0.0
        } else {
            (self.true_positives + self.false_negatives) as f64 / total as f64
        }
    }

    /// Lift of precision over the base rate (1.0 = no better than guessing).
    pub fn lift(&self) -> f64 {
        let base = self.base_rate();
        if base == 0.0 {
            0.0
        } else {
            self.precision() / base
        }
    }
}

/// Outcome of a prediction study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionReport {
    /// Test-split confusion counts.
    pub confusion: Confusion,
    /// Training rows after balancing.
    pub train_rows: usize,
    /// Test rows.
    pub test_rows: usize,
    /// Positive share of training rows after balancing.
    pub train_positive_share: f64,
    /// Leaves of the fitted tree.
    pub tree_leaves: usize,
    /// Variable importance of the fitted tree.
    pub importance: Vec<(String, f64)>,
}

fn prediction_schema() -> Schema {
    Schema::new(vec![
        Field::new(columns::SKU, FeatureKind::Nominal),
        Field::new(columns::AGE_MONTHS, FeatureKind::Continuous),
        Field::new(columns::RATED_POWER_KW, FeatureKind::Continuous),
        Field::new(columns::WORKLOAD, FeatureKind::Nominal),
        Field::new(columns::TEMPERATURE_F, FeatureKind::Continuous),
        Field::new(columns::RELATIVE_HUMIDITY, FeatureKind::Continuous),
        Field::new(columns::DATACENTER, FeatureKind::Nominal),
        Field::new(columns::REGION, FeatureKind::Nominal),
        Field::new(columns::DAY_OF_WEEK, FeatureKind::Ordinal),
        Field::new(history_columns::RECENT_SHORT, FeatureKind::Continuous),
        Field::new(history_columns::RECENT_LONG, FeatureKind::Continuous),
        Field::new(history_columns::LABEL, FeatureKind::Nominal),
    ])
}

/// Feature list used by the prediction tree (everything except the label).
pub const PREDICTION_FEATURES: &[&str] = &[
    columns::SKU,
    columns::AGE_MONTHS,
    columns::RATED_POWER_KW,
    columns::WORKLOAD,
    columns::TEMPERATURE_F,
    columns::RELATIVE_HUMIDITY,
    columns::DATACENTER,
    columns::REGION,
    columns::DAY_OF_WEEK,
    history_columns::RECENT_SHORT,
    history_columns::RECENT_LONG,
];

/// Builds the labelled rack-day table plus the day index of each row (for
/// the time-ordered split).
fn build_prediction_table(
    output: &SimulationOutput,
    config: &PredictionConfig,
) -> Result<(Table, Vec<u64>)> {
    let tickets = output.true_positives();
    let counts = ticket_counts_by_rack_day(&tickets, FaultFilter::AllHardware);
    let start_day = output.config.start.days();
    let end_day = output.config.end.days();
    let (short, long) = config.history_days;
    let mut builder = FrameBuilder::new(prediction_schema());
    let mut day_of_row = Vec::new();
    {
        let [sku_c, age_c, power_c, workload_c, temp_c, rh_c, dc_c, region_c, dow_c, short_c, long_c, label_c] =
            builder.columns_mut()
        else {
            unreachable!("prediction schema has 12 columns")
        };
        for rack in &output.fleet.racks {
            // Prefix sums of this rack's daily counts for O(1) history lookups.
            let days = (end_day - start_day) as usize;
            let mut prefix = vec![0u64; days + 1];
            for d in 0..days {
                let c = counts.get(&(rack.id, start_day + d as u64)).copied().unwrap_or(0);
                prefix[d + 1] = prefix[d] + c;
            }
            let window_sum = |from_day: i64, to_day: i64| -> f64 {
                let lo = from_day.clamp(0, days as i64) as usize;
                let hi = to_day.clamp(0, days as i64) as usize;
                (prefix[hi] - prefix[lo]) as f64
            };
            // Static nominal codes, interned on the rack's first emitted row.
            let mut rack_codes: Option<(u32, u32, u32, u32)> = None;
            let first_eligible = start_day.max(rack.commissioned_day.max(0) as u64) + long;
            let mut day = first_eligible;
            while day + config.horizon_days < end_day {
                let t = SimTime::from_days(day);
                if rack.is_active(t) {
                    let rel = (day - start_day) as i64;
                    let label_window = window_sum(rel + 1, rel + 1 + config.horizon_days as i64);
                    let env = output.env.daily_mean(rack.dc, rack.region, day);
                    let (sku, workload, dc, region) = match rack_codes {
                        Some(codes) => codes,
                        None => {
                            let codes = (
                                sku_c.intern(&rack.sku.to_string()),
                                workload_c.intern(&rack.workload.to_string()),
                                dc_c.intern(&rack.dc.to_string()),
                                region_c.intern(&format!("{}-{}", rack.dc, rack.region.0)),
                            );
                            rack_codes = Some(codes);
                            codes
                        }
                    };
                    sku_c.push_code(sku);
                    age_c.push_f64(rack.age_months(t));
                    power_c.push_f64(rack.power_kw);
                    workload_c.push_code(workload);
                    temp_c.push_f64(env.temp_f);
                    rh_c.push_f64(env.rh);
                    dc_c.push_code(dc);
                    region_c.push_code(region);
                    dow_c.push_i64(t.day_of_week().index() as i64);
                    short_c.push_f64(window_sum(rel - short as i64 + 1, rel + 1));
                    long_c.push_f64(window_sum(rel - long as i64 + 1, rel + 1));
                    let label = label_c.intern(if label_window > 0.0 { "fail" } else { "ok" });
                    label_c.push_code(label);
                    day_of_row.push(day);
                }
                day += config.day_stride as u64;
            }
        }
    }
    let table = Table::from_frame(builder.build()?);
    if table.is_empty() {
        return Err(AnalysisError::NoData { what: "no eligible rack-days for prediction".into() });
    }
    Ok((table, day_of_row))
}

/// Runs the full prediction study.
///
/// # Errors
///
/// Returns [`AnalysisError::NoData`] if the span is too short for the
/// history + horizon windows, or if either split ends up empty or
/// single-class.
pub fn predict_failures(
    output: &SimulationOutput,
    config: &PredictionConfig,
) -> Result<PredictionReport> {
    if config.day_stride == 0 {
        return Err(AnalysisError::InvalidParameter { name: "day_stride", value: 0.0 });
    }
    if !(0.0 < config.train_fraction && config.train_fraction < 1.0) {
        return Err(AnalysisError::InvalidParameter {
            name: "train_fraction",
            value: config.train_fraction,
        });
    }
    let (table, day_of_row) = build_prediction_table(output, config)?;
    let start_day = output.config.start.days();
    let end_day = output.config.end.days();
    let split_day = start_day + ((end_day - start_day) as f64 * config.train_fraction) as u64;

    let labels = table.nominal_codes(history_columns::LABEL)?;
    let classes = table.categories(history_columns::LABEL)?;
    let fail_code = classes.iter().position(|c| c == "fail").map(|i| i as u32);
    let Some(fail_code) = fail_code else {
        return Err(AnalysisError::NoData { what: "no positive examples in span".into() });
    };

    let mut train_pos = Vec::new();
    let mut train_neg = Vec::new();
    let mut test_rows = Vec::new();
    for row in 0..table.rows() {
        if day_of_row[row] < split_day {
            if labels[row] == fail_code {
                train_pos.push(row);
            } else {
                train_neg.push(row);
            }
        } else {
            test_rows.push(row);
        }
    }
    if train_pos.is_empty() || train_neg.is_empty() || test_rows.is_empty() {
        return Err(AnalysisError::NoData {
            what: "train/test splits need both classes and a test period".into(),
        });
    }

    // Balance by downsampling the majority (negatives are the majority in
    // any realistic run).
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let train: Vec<usize> = match config.downsample_ratio {
        Some(ratio) => {
            let keep =
                ((train_pos.len() as f64 * ratio).round() as usize).clamp(1, train_neg.len());
            let mut neg = train_neg.clone();
            neg.shuffle(&mut rng);
            neg.truncate(keep);
            train_pos.iter().chain(neg.iter()).copied().collect()
        }
        None => train_pos.iter().chain(train_neg.iter()).copied().collect(),
    };
    let train_positive_share = train_pos.len() as f64 / train.len() as f64;

    let ds = CartDataset::classification(&table, history_columns::LABEL, PREDICTION_FEATURES)?;
    let tree = Tree::fit_on_rows(&ds, &config.cart, &train)?;

    // Evaluate on the untouched, unbalanced test split.
    let predictions = tree.predict(&table)?;
    let mut confusion = Confusion::default();
    for &row in &test_rows {
        let predicted_fail = predictions[row] as u32 == fail_code;
        let actually_failed = labels[row] == fail_code;
        match (predicted_fail, actually_failed) {
            (true, true) => confusion.true_positives += 1,
            (true, false) => confusion.false_positives += 1,
            (false, false) => confusion.true_negatives += 1,
            (false, true) => confusion.false_negatives += 1,
        }
    }
    Ok(PredictionReport {
        confusion,
        train_rows: train.len(),
        test_rows: test_rows.len(),
        train_positive_share,
        tree_leaves: tree.leaf_count(),
        importance: tree.variable_importance(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_dcsim::{FleetConfig, Simulation};

    fn sim() -> SimulationOutput {
        Simulation::new(FleetConfig::medium(), 47).run()
    }

    #[test]
    fn prediction_beats_base_rate() {
        let out = sim();
        let report = predict_failures(&out, &PredictionConfig::default()).unwrap();
        let c = &report.confusion;
        assert!(report.test_rows > 500, "test rows {}", report.test_rows);
        assert!(c.recall() > 0.4, "recall {}", c.recall());
        assert!(
            c.precision() > c.base_rate(),
            "precision {} should beat base rate {}",
            c.precision(),
            c.base_rate()
        );
        assert!(c.lift() > 1.2, "lift {}", c.lift());
        // Balanced training split.
        assert!((report.train_positive_share - 0.5).abs() < 0.05);
    }

    #[test]
    fn history_features_matter() {
        let out = sim();
        let report = predict_failures(&out, &PredictionConfig::default()).unwrap();
        let history: f64 = report
            .importance
            .iter()
            .filter(|(n, _)| n.starts_with("failures_last"))
            .map(|(_, v)| v)
            .sum();
        // Static features (SKU, placement) already encode much of the rack's
        // propensity, but the trailing-failure features must contribute
        // beyond them.
        assert!(history > 1.0, "history importance {history}: {:?}", report.importance);
    }

    #[test]
    fn unbalanced_ablation_hurts_recall() {
        let out = sim();
        let balanced = predict_failures(&out, &PredictionConfig::default()).unwrap();
        let unbalanced = predict_failures(
            &out,
            &PredictionConfig { downsample_ratio: None, ..PredictionConfig::default() },
        )
        .unwrap();
        // The paper's warning: without balancing, the majority class
        // dominates and the model misses failures.
        assert!(
            unbalanced.confusion.recall() < balanced.confusion.recall(),
            "unbalanced recall {} vs balanced {}",
            unbalanced.confusion.recall(),
            balanced.confusion.recall()
        );
    }

    #[test]
    fn invalid_config_rejected() {
        let out = sim();
        let c = PredictionConfig { train_fraction: 1.5, ..PredictionConfig::default() };
        assert!(predict_failures(&out, &c).is_err());
        let c = PredictionConfig { day_stride: 0, ..PredictionConfig::default() };
        assert!(predict_failures(&out, &c).is_err());
    }

    #[test]
    fn confusion_metric_identities() {
        let c = Confusion {
            true_positives: 30,
            false_positives: 10,
            true_negatives: 50,
            false_negatives: 10,
        };
        assert!((c.precision() - 0.75).abs() < 1e-12);
        assert!((c.recall() - 0.75).abs() < 1e-12);
        assert!((c.f1() - 0.75).abs() < 1e-12);
        assert!((c.accuracy() - 0.8).abs() < 1e-12);
        assert!((c.base_rate() - 0.4).abs() < 1e-12);
        assert!((c.lift() - 1.875).abs() < 1e-12);
        let empty = Confusion::default();
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        assert_eq!(empty.lift(), 0.0);
    }
}
