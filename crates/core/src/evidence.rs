//! Single-factor evidence series (Section V-B, Figs. 2–9).
//!
//! Each function groups the rack-day failure-rate table by one factor and
//! reports the per-group mean and standard deviation of λ — exactly the
//! bar-plus-error-bar series the paper uses to show that *many* factors
//! correlate with failures. As in the paper, figure values can be
//! normalized to their maximum mean ([`normalize`]).

use rainshine_stats::hist::{Binner, GroupedMeans};
use rainshine_stats::running::Welford;
use rainshine_telemetry::schema::columns;
use rainshine_telemetry::table::Table;
use rainshine_telemetry::time::DayOfWeek;

use crate::{AnalysisError, Result};

/// One bar of an evidence figure.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesRow {
    /// Group label (e.g. `"DC1-1"`, `"Mon"`, `"S2"`, `"20-30"`).
    pub label: String,
    /// Mean failure rate in the group (λ per rack per window).
    pub mean: f64,
    /// Sample standard deviation within the group.
    pub sd: f64,
    /// Observations (rack-days) in the group.
    pub n: usize,
}

/// Scales rows so the largest mean is `1.0` (the paper normalizes "with
/// respect to their maximum value"). Standard deviations scale by the same
/// factor. No-op on an empty series.
pub fn normalize(rows: &mut [SeriesRow]) {
    let max = rows.iter().map(|r| r.mean).fold(0.0f64, f64::max);
    if max > 0.0 {
        for r in rows.iter_mut() {
            r.mean /= max;
            r.sd /= max;
        }
    }
}

/// Groups λ by a nominal column, in category order.
pub fn by_nominal(table: &Table, column: &str) -> Result<Vec<SeriesRow>> {
    let y = table.continuous(columns::FAILURE_RATE)?;
    let codes = table.nominal_codes(column)?;
    let cats = table.categories(column)?;
    let mut accs = vec![Welford::new(); cats.len()];
    for (i, &c) in codes.iter().enumerate() {
        accs[c as usize].push(y[i]);
    }
    Ok(cats
        .iter()
        .zip(&accs)
        .filter_map(|(label, acc)| {
            acc.summary().map(|s| SeriesRow {
                label: label.clone(),
                mean: s.mean(),
                sd: s.sample_stddev(),
                n: s.count(),
            })
        })
        .collect())
}

/// Groups λ by bins of a continuous column. Rows whose factor value is not
/// finite (e.g. a sensor-blackout NaN) are excluded — they cannot be
/// assigned to a bin.
pub fn by_binned(table: &Table, column: &str, binner: &Binner) -> Result<Vec<SeriesRow>> {
    let y = table.continuous(columns::FAILURE_RATE)?;
    let x = table.continuous(column)?;
    let (x, y): (Vec<f64>, Vec<f64>) =
        x.iter().zip(y).filter(|(xv, _)| xv.is_finite()).map(|(xv, yv)| (*xv, *yv)).unzip();
    let grouped = GroupedMeans::new(binner.clone(), &x, &y)?;
    Ok(grouped
        .rows()
        .into_iter()
        .map(|(label, mean, sd, n)| SeriesRow { label, mean, sd, n })
        .collect())
}

/// Groups λ by an ordinal column, optionally restricted to one calendar
/// year, labelling levels with `labeler`.
pub fn by_ordinal(
    table: &Table,
    column: &str,
    year: Option<i64>,
    labeler: impl Fn(i64) -> String,
) -> Result<Vec<SeriesRow>> {
    let y = table.continuous(columns::FAILURE_RATE)?;
    let levels = table.ordinal(column)?;
    let years = table.ordinal(columns::YEAR)?;
    let mut accs: std::collections::BTreeMap<i64, Welford> = std::collections::BTreeMap::new();
    for i in 0..table.rows() {
        if let Some(target_year) = year {
            if years[i] != target_year {
                continue;
            }
        }
        accs.entry(levels[i]).or_default().push(y[i]);
    }
    if accs.is_empty() {
        return Err(AnalysisError::NoData { what: format!("no rows for year {year:?}") });
    }
    Ok(accs
        .into_iter()
        .filter_map(|(level, acc)| {
            acc.summary().map(|s| SeriesRow {
                label: labeler(level),
                mean: s.mean(),
                sd: s.sample_stddev(),
                n: s.count(),
            })
        })
        .collect())
}

/// Fig. 2 — λ by DC region (`DC1-1` … `DC2-3`).
pub fn by_region(table: &Table) -> Result<Vec<SeriesRow>> {
    by_nominal(table, columns::REGION)
}

/// Fig. 3 — λ by day of week for one year offset (0 = 2012).
pub fn by_day_of_week(table: &Table, year: i64) -> Result<Vec<SeriesRow>> {
    by_ordinal(table, columns::DAY_OF_WEEK, Some(year), |lvl| {
        DayOfWeek::ALL.get(lvl as usize).map(|d| d.to_string()).unwrap_or_else(|| lvl.to_string())
    })
}

/// Fig. 4 — λ by month of year for one year offset (0 = 2012).
pub fn by_month(table: &Table, year: i64) -> Result<Vec<SeriesRow>> {
    const MONTHS: [&str; 12] =
        ["Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"];
    by_ordinal(table, columns::MONTH, Some(year), |lvl| {
        MONTHS
            .get((lvl - 1).max(0) as usize)
            .map(|m| m.to_string())
            .unwrap_or_else(|| lvl.to_string())
    })
}

/// Fig. 5 — λ by relative-humidity bin (`<20`, `20-30`, …, `>=70`).
pub fn by_rh_bin(table: &Table) -> Result<Vec<SeriesRow>> {
    let binner = Binner::from_edges(vec![20.0, 30.0, 40.0, 50.0, 60.0, 70.0])?;
    by_binned(table, columns::RELATIVE_HUMIDITY, &binner)
}

/// Fig. 6 — λ by workload (W1–W7).
pub fn by_workload(table: &Table) -> Result<Vec<SeriesRow>> {
    let mut rows = by_nominal(table, columns::WORKLOAD)?;
    rows.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(rows)
}

/// Fig. 7 — λ by SKU.
pub fn by_sku(table: &Table) -> Result<Vec<SeriesRow>> {
    let mut rows = by_nominal(table, columns::SKU)?;
    rows.sort_by(|a, b| a.label.cmp(&b.label));
    Ok(rows)
}

/// Fig. 8 — λ by rack rated power (one bin per observed kW value).
pub fn by_power(table: &Table) -> Result<Vec<SeriesRow>> {
    // kW ratings are discrete (4–15); bin at integer boundaries.
    let binner =
        Binner::from_edges(vec![5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0])?;
    Ok(by_binned(table, columns::RATED_POWER_KW, &binner)?
        .into_iter()
        .filter(|r| r.n > 0)
        .collect())
}

/// Fig. 9 — λ by equipment age in 5-month bins (0–40 months).
pub fn by_age(table: &Table) -> Result<Vec<SeriesRow>> {
    let binner = Binner::from_edges(vec![5.0, 10.0, 15.0, 20.0, 25.0, 30.0, 35.0, 40.0])?;
    by_binned(table, columns::AGE_MONTHS, &binner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{rack_day_table, FaultFilter};
    use rainshine_dcsim::{FleetConfig, Simulation};

    fn table() -> Table {
        let out = Simulation::new(FleetConfig::small(), 21).run();
        rack_day_table(&out, FaultFilter::AllHardware, 1).unwrap()
    }

    #[test]
    fn region_series_covers_both_dcs() {
        let t = table();
        let rows = by_region(&t).unwrap();
        assert!(rows.iter().any(|r| r.label.starts_with("DC1-")));
        assert!(rows.iter().any(|r| r.label.starts_with("DC2-")));
        // DC1 regions generally above DC2 regions (Fig. 2).
        let dc1_max =
            rows.iter().filter(|r| r.label.starts_with("DC1")).map(|r| r.mean).fold(0.0, f64::max);
        let dc2_max =
            rows.iter().filter(|r| r.label.starts_with("DC2")).map(|r| r.mean).fold(0.0, f64::max);
        assert!(dc1_max > dc2_max, "dc1 {dc1_max} dc2 {dc2_max}");
    }

    #[test]
    fn weekday_above_weekend() {
        let t = table();
        let rows = by_day_of_week(&t, 0).unwrap();
        assert_eq!(rows.len(), 7);
        let get = |l: &str| rows.iter().find(|r| r.label == l).unwrap().mean;
        let weekday_mean = (get("Mon") + get("Tue") + get("Wed") + get("Thu")) / 4.0;
        let weekend_mean = (get("Sun") + get("Sat")) / 2.0;
        assert!(weekday_mean > weekend_mean, "{weekday_mean} vs {weekend_mean}");
    }

    #[test]
    fn workload_ordering_matches_fig6() {
        let t = table();
        let rows = by_workload(&t).unwrap();
        let get = |l: &str| rows.iter().find(|r| r.label == l).map(|r| r.mean);
        if let (Some(w2), Some(w3)) = (get("W2"), get("W3")) {
            assert!(w2 > w3, "W2 {w2} should exceed W3 {w3}");
        } else {
            panic!("missing workloads in small fleet: {rows:?}");
        }
    }

    #[test]
    fn normalize_caps_at_one() {
        let t = table();
        let mut rows = by_sku(&t).unwrap();
        normalize(&mut rows);
        let max = rows.iter().map(|r| r.mean).fold(0.0, f64::max);
        assert!((max - 1.0).abs() < 1e-12);
        normalize(&mut []); // no panic on empty
    }

    #[test]
    fn age_series_shows_infant_mortality() {
        let t = table();
        let rows = by_age(&t).unwrap();
        assert!(rows.len() >= 3);
        // Youngest bin above the 20-30 month bins (bathtub's infant side).
        let young = rows.iter().find(|r| r.label == "<5").map(|r| r.mean);
        let mid = rows.iter().find(|r| r.label == "20-25").map(|r| r.mean);
        if let (Some(young), Some(mid)) = (young, mid) {
            assert!(young > mid, "young {young} mid {mid}");
        }
    }

    #[test]
    fn missing_year_errors() {
        let t = table();
        assert!(matches!(by_month(&t, 7), Err(AnalysisError::NoData { .. })));
    }
}
