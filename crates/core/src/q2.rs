//! Q2 — SKU reliability ranking (Figs. 14–15) and procurement TCO
//! scenarios.
//!
//! The single-factor (SF) view histogramms raw failure rates per SKU; the
//! multi-factor (MF) view normalizes away the other observed factors
//! (`λ ~ SKU, N(DC), N(RatedPower), N(Workload), N(Age), N(Temperature)`)
//! using the stratified partial-dependence machinery of
//! [`rainshine_cart::pdp`]. In the simulator's ground truth S2's intrinsic
//! hazard is exactly 4× S4's, but its placement (hot DC1 regions, W2
//! workload) inflates the SF ratio far beyond that — the paper's
//! cautionary tale.

use std::collections::HashMap;

use rainshine_cart::params::CartParams;
use rainshine_cart::pdp::{stratified_effect_nominal, StratifiedEffect};
use rainshine_dcsim::SimulationOutput;
use rainshine_telemetry::ids::{RackId, Sku};
use rainshine_telemetry::metrics::{self, SpatialGranularity};
use rainshine_telemetry::schema::columns;
use rainshine_telemetry::table::Table;
use rainshine_telemetry::time::TimeGranularity;
use serde::{Deserialize, Serialize};

use crate::dataset::rack_table;
use crate::tco::TcoModel;
use crate::{AnalysisError, Result};

/// Control features normalized away in the MF comparison (the paper's
/// `N(DC), N(RatedPower), N(Workload), N(CommissionYear)` plus inlet
/// temperature, which our ground truth also confounds with placement).
pub const MF_CONTROLS: &[&str] = &[
    columns::DATACENTER,
    columns::REGION,
    columns::RATED_POWER_KW,
    columns::WORKLOAD,
    columns::AGE_MONTHS,
    columns::TEMPERATURE_F,
];

/// Single-factor reliability summary of one SKU (Fig. 14 bars).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkuReliability {
    /// SKU label.
    pub sku: String,
    /// Mean rack-day failure rate.
    pub avg_rate: f64,
    /// Standard deviation of the rate across the SKU's racks.
    pub avg_sd: f64,
    /// Mean (across racks) of the per-rack worst-window μ.
    pub peak_rate: f64,
    /// Standard deviation of the per-rack peaks.
    pub peak_sd: f64,
    /// Racks of this SKU.
    pub racks: usize,
}

/// Per-rack mean failure rate and per-rack peak μ for the SKU's racks.
fn per_rack_stats(output: &SimulationOutput) -> (HashMap<RackId, f64>, HashMap<RackId, f64>) {
    let tickets = output.hardware_tickets();
    let lambda = metrics::lambda(
        &tickets,
        SpatialGranularity::Rack,
        TimeGranularity::Daily,
        output.config.start,
        output.config.end,
    );
    let mu = metrics::mu(
        &tickets,
        SpatialGranularity::Rack,
        TimeGranularity::Daily,
        output.config.start,
        output.config.end,
    );
    let mut means = HashMap::new();
    let mut peaks = HashMap::new();
    for rack in &output.fleet.racks {
        let key = SpatialGranularity::Rack.key(&rack.server_location(0));
        let active_days = (output.config.end.days() as i64
            - rack.commissioned_day.max(output.config.start.days() as i64))
        .max(0) as f64;
        if active_days == 0.0 {
            continue;
        }
        let mean = lambda.get(&key).map(|s| s.total() as f64 / active_days).unwrap_or(0.0);
        let peak = mu.get(&key).map(|s| s.max() as f64).unwrap_or(0.0);
        means.insert(rack.id, mean);
        peaks.insert(rack.id, peak);
    }
    (means, peaks)
}

/// Single-factor comparison (Fig. 14): raw per-SKU average and peak failure
/// rates with across-rack standard deviations.
///
/// # Errors
///
/// Returns [`AnalysisError::NoData`] if none of `skus` has racks.
pub fn sf_comparison(output: &SimulationOutput, skus: &[Sku]) -> Result<Vec<SkuReliability>> {
    let (means, peaks) = per_rack_stats(output);
    let mut out = Vec::new();
    for &sku in skus {
        let rack_ids: Vec<RackId> = output
            .fleet
            .racks
            .iter()
            .filter(|r| r.sku == sku && means.contains_key(&r.id))
            .map(|r| r.id)
            .collect();
        if rack_ids.is_empty() {
            continue;
        }
        let m: Vec<f64> = rack_ids.iter().map(|id| means[id]).collect();
        let p: Vec<f64> = rack_ids.iter().map(|id| peaks[id]).collect();
        let ms = rainshine_stats::describe::Summary::from_slice(&m)?;
        let ps = rainshine_stats::describe::Summary::from_slice(&p)?;
        out.push(SkuReliability {
            sku: sku.to_string(),
            avg_rate: ms.mean(),
            avg_sd: ms.sample_stddev(),
            peak_rate: ps.mean(),
            peak_sd: ps.sample_stddev(),
            racks: rack_ids.len(),
        });
    }
    if out.is_empty() {
        return Err(AnalysisError::NoData { what: "no racks for requested SKUs".into() });
    }
    Ok(out)
}

/// Multi-factor comparison (Fig. 15): stratified effects of SKU on the
/// average rate (rack-day table) and on the per-rack peak (rack table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MfSkuComparison {
    /// Effect on the mean failure rate (`relative` ≈ intrinsic multiplier).
    pub avg: StratifiedEffect,
    /// Effect on the per-rack peak μ.
    pub peak: StratifiedEffect,
}

/// Runs the MF comparison on a prepared rack-day table (`table` must be a
/// rack-day analysis table; pass `day_stride > 1` upstream for speed).
///
/// # Errors
///
/// Propagates table/tree errors.
pub fn mf_comparison(
    output: &SimulationOutput,
    rack_day: &Table,
    cart: &CartParams,
) -> Result<MfSkuComparison> {
    let avg = stratified_effect_nominal(
        rack_day,
        columns::FAILURE_RATE,
        columns::SKU,
        MF_CONTROLS,
        cart,
    )?;
    let (_, peaks) = per_rack_stats(output);
    let peak_table = rack_table(output, &peaks)?;
    let peak = stratified_effect_nominal(
        &peak_table,
        columns::FAILURE_RATE,
        columns::SKU,
        MF_CONTROLS,
        cart,
    )?;
    Ok(MfSkuComparison { avg, peak })
}

impl MfSkuComparison {
    /// MF-estimated ratio of average failure rates between two SKUs:
    /// the direct within-stratum contrast where the SKUs co-occur, falling
    /// back to the ratio of fitted level effects.
    pub fn avg_ratio(&self, a: &str, b: &str) -> Option<f64> {
        if let Some(r) = self.avg.direct_ratio(a, b) {
            return Some(r);
        }
        let get =
            |label: &str| self.avg.levels.iter().find(|l| l.level == label).map(|l| l.relative);
        match (get(a), get(b)) {
            (Some(x), Some(y)) if y > 0.0 => Some(x / y),
            _ => None,
        }
    }
}

/// One procurement scenario of the paper's Q2 TCO analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcurementScenario {
    /// Price of the reliable SKU relative to the baseline SKU.
    pub price_ratio: f64,
    /// TCO savings of buying the reliable SKU, per the SF estimate.
    pub sf_savings: f64,
    /// TCO savings per the MF estimate.
    pub mf_savings: f64,
}

/// Evaluates the S4-vs-S2 procurement decision under SF and MF failure-rate
/// estimates for each price ratio.
///
/// Both estimates anchor S4's failure rate at its raw value (S4 runs in a
/// benign environment, so its raw rate ≈ its intrinsic rate); they differ
/// in what they believe S2's rate would be — the raw 10×-ish ratio (SF) vs
/// the de-confounded ~4× ratio (MF).
pub fn procurement_scenarios(
    sf: &[SkuReliability],
    mf: &MfSkuComparison,
    tco: &TcoModel,
    price_ratios: &[f64],
    span_days: f64,
) -> Result<Vec<ProcurementScenario>> {
    let find = |label: &str| sf.iter().find(|r| r.sku == label);
    let (s2, s4) = match (find("S2"), find("S4")) {
        (Some(a), Some(b)) => (a, b),
        _ => return Err(AnalysisError::NoData { what: "need S2 and S4 in SF results".into() }),
    };
    // Failures per server over the horizon. Rates are per rack-day; divide
    // by a nominal compute rack size.
    let servers_per_rack = 43.0;
    let s4_per_server = s4.avg_rate * span_days / servers_per_rack;
    let sf_ratio = if s4.avg_rate > 0.0 { s2.avg_rate / s4.avg_rate } else { 1.0 };
    let mf_ratio = mf.avg_ratio("S2", "S4").unwrap_or(sf_ratio);
    // Spare fractions from peaks (per rack of ~43 servers).
    let s4_spare = s4.peak_rate / servers_per_rack;
    let sf_s2_spare = s2.peak_rate / servers_per_rack;
    let mf_peak_ratio = {
        let get =
            |label: &str| mf.peak.levels.iter().find(|l| l.level == label).map(|l| l.relative);
        match (get("S2"), get("S4")) {
            (Some(a), Some(b)) if b > 0.0 => a / b,
            _ => sf_ratio,
        }
    };
    let mf_s2_spare = (s4_spare * mf_peak_ratio).min(1.0);
    let mut out = Vec::new();
    for &ratio in price_ratios {
        let s2_price = 100.0;
        let s4_price = 100.0 * ratio;
        let sf_tco_s2 = tco.sku_tco(s2_price, sf_s2_spare, s4_per_server * sf_ratio);
        let mf_tco_s2 = tco.sku_tco(s2_price, mf_s2_spare, s4_per_server * mf_ratio);
        let tco_s4 = tco.sku_tco(s4_price, s4_spare, s4_per_server);
        out.push(ProcurementScenario {
            price_ratio: ratio,
            sf_savings: tco.sku_savings(tco_s4, sf_tco_s2),
            mf_savings: tco.sku_savings(tco_s4, mf_tco_s2),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{rack_day_table, FaultFilter};
    use rainshine_dcsim::{FleetConfig, Simulation};

    fn sim() -> SimulationOutput {
        Simulation::new(FleetConfig::medium(), 23).run()
    }

    #[test]
    fn sf_sees_inflated_s2_s4_gap() {
        let out = sim();
        let rows = sf_comparison(&out, &[Sku::S1, Sku::S2, Sku::S3, Sku::S4]).unwrap();
        let get = |l: &str| rows.iter().find(|r| r.sku == l).unwrap();
        let ratio = get("S2").avg_rate / get("S4").avg_rate;
        // Ground-truth intrinsic ratio is 4; confounding should inflate the
        // raw ratio well beyond it.
        assert!(ratio > 5.5, "raw SF ratio {ratio}");
        assert!(get("S2").peak_rate >= get("S4").peak_rate);
    }

    #[test]
    fn mf_recovers_intrinsic_ratio() {
        let out = sim();
        // Fine-grained control tree: at coarser settings (stride 3,
        // cp 0.003) the strata are too wide to absorb the workload/age
        // confounding and the recovered ratio swings 5–8 across seeds.
        let table = rack_day_table(&out, FaultFilter::AllHardware, 2).unwrap();
        let cart = CartParams::default().with_min_sizes(100, 50).with_cp(0.0005);
        let mf = mf_comparison(&out, &table, &cart).unwrap();
        let ratio = mf.avg_ratio("S2", "S4").expect("both SKUs present");
        assert!((2.8..5.5).contains(&ratio), "MF ratio {ratio} should be near the intrinsic 4x");
        // MF variance contraction vs SF (the paper's ~50% drop) is checked
        // at paper scale in the integration tests.
    }

    #[test]
    fn procurement_scenarios_flip_with_price() {
        let out = sim();
        let sf = sf_comparison(&out, &[Sku::S2, Sku::S4]).unwrap();
        let table = rack_day_table(&out, FaultFilter::AllHardware, 3).unwrap();
        let cart = CartParams::default().with_min_sizes(200, 100).with_cp(0.003);
        let mf = mf_comparison(&out, &table, &cart).unwrap();
        let scenarios = procurement_scenarios(
            &sf,
            &mf,
            &TcoModel::default(),
            &[1.0, 1.5],
            out.config.span_days() as f64,
        )
        .unwrap();
        assert_eq!(scenarios.len(), 2);
        // Equal price: both approaches favour S4.
        assert!(scenarios[0].sf_savings > 0.0);
        assert!(scenarios[0].mf_savings > 0.0);
        // SF always estimates larger savings than MF (it believes S2 is
        // worse than it is).
        for s in &scenarios {
            assert!(s.sf_savings > s.mf_savings, "{s:?}");
        }
        // Premium price: savings shrink for both.
        assert!(scenarios[1].sf_savings < scenarios[0].sf_savings);
        assert!(scenarios[1].mf_savings < scenarios[0].mf_savings);
    }

    #[test]
    fn missing_skus_error() {
        let out = sim();
        let sf = sf_comparison(&out, &[Sku::S1]).unwrap();
        let table = rack_day_table(&out, FaultFilter::AllHardware, 10).unwrap();
        let cart = CartParams::default();
        let mf = mf_comparison(&out, &table, &cart).unwrap();
        assert!(matches!(
            procurement_scenarios(&sf, &mf, &TcoModel::default(), &[1.0], 365.0),
            Err(AnalysisError::NoData { .. })
        ));
    }
}
