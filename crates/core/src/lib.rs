//! The paper's multi-factor failure-analysis framework.
//!
//! This crate is the primary contribution of the reproduced paper
//! (*"Rain or Shine? — Making Sense of Cloudy Reliability Data"*,
//! ICDCS 2017): a systematic way to answer datacenter provisioning and
//! operations questions from multi-factor failure data, contrasted against
//! conventional single-factor (SF) analyses.
//!
//! * [`dataset`] — assembles analysis tables (rack-day and rack-level rows
//!   with the Table III feature schema) from a simulation run;
//! * [`evidence`] — the Section V-B "evidence of multi-factor influence"
//!   series (failure rate by region / day-of-week / month / humidity /
//!   workload / SKU / power / age — Figs. 2–9);
//! * [`q1`] — spare provisioning (Figs. 10–13): lower-bound vs
//!   single-factor vs multi-factor, server-level and component-level,
//!   daily and hourly multiplexing;
//! * [`q2`] — SKU reliability ranking (Figs. 14–15): SF histogramming vs
//!   MF partial-dependence normalization;
//! * [`q3`] — environmental operating ranges (Figs. 16–18): temperature /
//!   relative-humidity threshold discovery per DC;
//! * [`tco`] — the total-cost-of-ownership model used for Table IV and the
//!   Q2 procurement scenarios;
//! * [`predict`] — the paper's flagged future-work extension: failure
//!   prediction with class balancing and a time-ordered train/test split.
//!
//! # Example
//!
//! ```
//! use rainshine_dcsim::{FleetConfig, Simulation};
//! use rainshine_core::dataset::{rack_day_table, FaultFilter};
//!
//! let output = Simulation::new(FleetConfig::small(), 7).run();
//! let table = rack_day_table(&output, FaultFilter::AllHardware, 4)?;
//! assert!(table.rows() > 0);
//! # Ok::<(), rainshine_core::AnalysisError>(())
//! ```

pub mod dataset;
pub mod evidence;
pub mod predict;
pub mod q1;
pub mod q2;
pub mod q3;
pub mod tco;

mod error;

pub use error::AnalysisError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AnalysisError>;

/// Default feature list for CART models: every Table III candidate except
/// the identity columns (`rack`, `row`), which would let a tree memorize
/// individual racks instead of explaining them.
pub const DEFAULT_FEATURES: &[&str] = &[
    rainshine_telemetry::schema::columns::SKU,
    rainshine_telemetry::schema::columns::AGE_MONTHS,
    rainshine_telemetry::schema::columns::RATED_POWER_KW,
    rainshine_telemetry::schema::columns::WORKLOAD,
    rainshine_telemetry::schema::columns::TEMPERATURE_F,
    rainshine_telemetry::schema::columns::RELATIVE_HUMIDITY,
    rainshine_telemetry::schema::columns::DATACENTER,
    rainshine_telemetry::schema::columns::REGION,
    rainshine_telemetry::schema::columns::DAY_OF_WEEK,
    rainshine_telemetry::schema::columns::WEEK,
    rainshine_telemetry::schema::columns::MONTH,
    rainshine_telemetry::schema::columns::YEAR,
];
