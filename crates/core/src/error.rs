use std::error::Error;
use std::fmt;

/// Error type for the analysis framework.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// An underlying telemetry (table/schema) error.
    Telemetry(rainshine_telemetry::TelemetryError),
    /// An underlying CART error.
    Cart(rainshine_cart::CartError),
    /// An underlying statistics error.
    Stats(rainshine_stats::StatsError),
    /// The requested analysis had no observations to work with.
    NoData {
        /// What was empty.
        what: String,
    },
    /// An analysis parameter was out of range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Telemetry(e) => write!(f, "telemetry error: {e}"),
            AnalysisError::Cart(e) => write!(f, "cart error: {e}"),
            AnalysisError::Stats(e) => write!(f, "statistics error: {e}"),
            AnalysisError::NoData { what } => write!(f, "no data: {what}"),
            AnalysisError::InvalidParameter { name, value } => {
                write!(f, "parameter `{name}` has invalid value {value}")
            }
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::Telemetry(e) => Some(e),
            AnalysisError::Cart(e) => Some(e),
            AnalysisError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rainshine_telemetry::TelemetryError> for AnalysisError {
    fn from(e: rainshine_telemetry::TelemetryError) -> Self {
        AnalysisError::Telemetry(e)
    }
}

impl From<rainshine_cart::CartError> for AnalysisError {
    fn from(e: rainshine_cart::CartError) -> Self {
        AnalysisError::Cart(e)
    }
}

impl From<rainshine_stats::StatsError> for AnalysisError {
    fn from(e: rainshine_stats::StatsError) -> Self {
        AnalysisError::Stats(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: AnalysisError = rainshine_stats::StatsError::EmptyInput.into();
        assert!(Error::source(&e).is_some());
        let e: AnalysisError = rainshine_cart::CartError::EmptyDataset.into();
        assert!(e.to_string().contains("cart"));
        let e = AnalysisError::NoData { what: "W1 racks".into() };
        assert!(e.to_string().contains("W1"));
    }
}
