//! Q1 — spare provisioning (Figs. 10–13, Table IV).
//!
//! Three approaches, as in Section VI:
//!
//! * **Lower bound (LB)** — per-rack spares computed from that rack's own
//!   (future) μ data: unachievable in practice, the floor for comparison;
//! * **Single factor (SF)** — one spare *fraction* for every rack of a
//!   workload, from the pooled CDF of μ across all its racks;
//! * **Multi factor (MF)** — CART clusters racks by the Table III features,
//!   then provisions each cluster from its own pooled CDF.
//!
//! A rack with `N` servers under availability SLA `a` may have at most
//! `floor((1−a)·N)` servers down before spares are consumed; the *deficit*
//! of a window is the device count μ beyond that allowance. Spares must
//! cover the `coverage`-quantile of each window's deficit ("at all times" →
//! coverage = 1.0, the default).

use std::collections::{BTreeMap, HashMap};

use rainshine_cart::dataset::CartDataset;
use rainshine_cart::params::CartParams;
use rainshine_cart::tree::Tree;
use rainshine_dcsim::sku::{DIMM_COST, DISK_COST};
use rainshine_dcsim::SimulationOutput;
use rainshine_telemetry::ids::{RackId, Workload};
use rainshine_telemetry::metrics::{self, SpatialGranularity};
use rainshine_telemetry::rma::{HardwareFault, RmaTicket};
use rainshine_telemetry::schema::columns;
use rainshine_telemetry::time::TimeGranularity;
use serde::{Deserialize, Serialize};

use crate::dataset::{rack_table, FaultFilter};
use crate::tco::TcoModel;
use crate::{AnalysisError, Result};

/// Features used to cluster racks for MF provisioning. Unlike
/// [`crate::DEFAULT_FEATURES`], the calendar ordinals are excluded: a
/// rack-level summary row has no meaningful day-of-week/month, only the
/// rack's static attributes and mean environment.
pub const CLUSTER_FEATURES: &[&str] = &[
    columns::SKU,
    columns::AGE_MONTHS,
    columns::RATED_POWER_KW,
    columns::TEMPERATURE_F,
    columns::RELATIVE_HUMIDITY,
    columns::DATACENTER,
    columns::REGION,
];

/// Parameters of a provisioning study.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisionParams {
    /// Availability SLA: fraction of a rack's servers that must be
    /// available at all times (0.90, 0.95, 1.00 in the paper).
    pub sla: f64,
    /// Window granularity for μ (daily in Fig. 10, hourly in Fig. 12).
    pub granularity: TimeGranularity,
    /// Quantile of windows whose deficit must be covered (1.0 = every
    /// observed window).
    pub coverage: f64,
    /// CART parameters for the MF clustering.
    pub cart: CartParams,
}

impl ProvisionParams {
    /// Standard parameters for an SLA at a granularity.
    pub fn new(sla: f64, granularity: TimeGranularity) -> Self {
        ProvisionParams {
            sla,
            granularity,
            coverage: 1.0,
            cart: CartParams::default().with_min_sizes(8, 4).with_cp(0.01),
        }
    }

    fn validate(&self) -> Result<()> {
        if !(0.0..=1.0).contains(&self.sla) {
            return Err(AnalysisError::InvalidParameter { name: "sla", value: self.sla });
        }
        if !(0.0..=1.0).contains(&self.coverage) {
            return Err(AnalysisError::InvalidParameter { name: "coverage", value: self.coverage });
        }
        Ok(())
    }
}

/// Per-rack deficit distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct RackDeficits {
    /// The rack.
    pub rack: RackId,
    /// Servers in the rack.
    pub servers: u32,
    /// Windows during which the rack was in service.
    pub active_windows: u64,
    /// Non-zero window deficits (device count beyond the SLA allowance).
    pub deficits: Vec<u64>,
}

impl RackDeficits {
    /// The `coverage`-quantile of the window deficit (zeros included).
    pub fn quantile(&self, coverage: f64) -> u64 {
        quantile_with_zeros(&self.deficits, self.active_windows, coverage)
    }

    /// Per-rack required spare fraction at `coverage`.
    pub fn fraction(&self, coverage: f64) -> f64 {
        self.quantile(coverage) as f64 / self.servers as f64
    }
}

/// Quantile of a distribution given its non-zero values and the total
/// observation count (the remainder are zeros). Delegates to the shared
/// zero-mass-aware helper in `rainshine-stats`.
fn quantile_with_zeros(nonzero: &[u64], total: u64, q: f64) -> u64 {
    let mut sorted = nonzero.to_vec();
    sorted.sort_unstable();
    rainshine_stats::ecdf::quantile_with_zeros(&sorted, total, q)
}

/// Fractional-deficit quantile pooled across racks (SF / per-cluster MF).
fn pooled_fraction_quantile(racks: &[&RackDeficits], q: f64) -> f64 {
    let mut fractions: Vec<f64> = Vec::new();
    let mut total: u64 = 0;
    for r in racks {
        total += r.active_windows;
        fractions.extend(r.deficits.iter().map(|&d| d as f64 / r.servers as f64));
    }
    fractions.sort_by(f64::total_cmp);
    rainshine_stats::ecdf::quantile_with_zeros(&fractions, total, q)
}

/// Computes per-rack deficits for the racks of one workload under `filter`.
pub fn rack_deficits(
    output: &SimulationOutput,
    workload: Workload,
    filter: FaultFilter,
    params: &ProvisionParams,
) -> Result<Vec<RackDeficits>> {
    params.validate()?;
    let racks: Vec<&rainshine_dcsim::topology::RackInfo> = output
        .fleet
        .racks_hosting(workload)
        .filter(|r| r.commissioned_day < output.config.end.days() as i64)
        .collect();
    if racks.is_empty() {
        return Err(AnalysisError::NoData { what: format!("no racks host {workload}") });
    }
    let tickets: Vec<&RmaTicket> =
        output.hardware_tickets().into_iter().filter(|t| filter.matches(t.fault)).collect();
    let mu = metrics::mu(
        &tickets,
        SpatialGranularity::Rack,
        params.granularity,
        output.config.start,
        output.config.end,
    );
    let total_windows = params.granularity.window_count(output.config.start, output.config.end);
    let start_window = params.granularity.window_of(output.config.start);
    let mut out = Vec::with_capacity(racks.len());
    for rack in racks {
        let allowed = ((1.0 - params.sla) * rack.servers as f64).floor() as u64;
        let commission_window = if rack.commissioned_day <= output.config.start.days() as i64 {
            0
        } else {
            params
                .granularity
                .window_of(rainshine_telemetry::time::SimTime::from_days(
                    rack.commissioned_day as u64,
                ))
                .saturating_sub(start_window)
        };
        let active_windows = total_windows.saturating_sub(commission_window);
        let key = SpatialGranularity::Rack.key(&rack.server_location(0));
        let deficits: Vec<u64> = mu
            .get(&key)
            .map(|series| {
                series
                    .nonzero
                    .values()
                    .filter_map(|&v| v.checked_sub(allowed).filter(|&d| d > 0))
                    .collect()
            })
            .unwrap_or_default();
        out.push(RackDeficits { rack: rack.id, servers: rack.servers, active_windows, deficits });
    }
    Ok(out)
}

/// One provisioning approach's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproachResult {
    /// Total spare servers (fractional: per-rack fractions summed).
    pub spares: f64,
    /// Over-provisioned capacity as a percentage of the workload's servers.
    pub overprovision_pct: f64,
}

/// One MF cluster (a CART leaf).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterInfo {
    /// Cluster index (ordered by spare fraction).
    pub id: usize,
    /// Racks in the cluster.
    pub racks: Vec<RackId>,
    /// Spare fraction provisioned for every rack of the cluster.
    pub spare_fraction: f64,
    /// Root-to-leaf split descriptions (the paper's cluster insights).
    pub path: Vec<String>,
    /// CDF points `(overprovision %, proportion ≤ x)` over the cluster's
    /// racks (Fig. 11 curves).
    pub cdf: Vec<(f64, f64)>,
}

/// Result of a server-level provisioning study (Figs. 10–12).
#[derive(Debug, Clone, PartialEq)]
pub struct ServerProvisioning {
    /// Workload studied.
    pub workload: Workload,
    /// Total servers across the workload's racks.
    pub servers: f64,
    /// Lower bound.
    pub lb: ApproachResult,
    /// Single factor.
    pub sf: ApproachResult,
    /// Multi factor.
    pub mf: ApproachResult,
    /// MF clusters, ordered by spare fraction.
    pub clusters: Vec<ClusterInfo>,
    /// CDF of per-rack LB overprovision % over all racks (Fig. 11's "SF"
    /// context curve).
    pub all_racks_cdf: Vec<(f64, f64)>,
    /// Ranked variable importance of the MF clustering tree.
    pub importance: Vec<(String, f64)>,
}

fn approach(spares: f64, servers: f64) -> ApproachResult {
    ApproachResult { spares, overprovision_pct: 100.0 * spares / servers.max(1.0) }
}

fn cdf_points(values: &[f64]) -> Vec<(f64, f64)> {
    match rainshine_stats::ecdf::Ecdf::new(values.to_vec()) {
        Ok(e) => e.steps(),
        Err(_) => Vec::new(),
    }
}

/// Runs the full LB / SF / MF server-level provisioning comparison for one
/// workload.
///
/// # Errors
///
/// Returns [`AnalysisError::NoData`] if the workload has no racks, or any
/// underlying table/tree error.
pub fn provision_servers(
    output: &SimulationOutput,
    workload: Workload,
    params: &ProvisionParams,
) -> Result<ServerProvisioning> {
    let deficits = rack_deficits(output, workload, FaultFilter::AllHardware, params)?;
    let servers: f64 = deficits.iter().map(|r| r.servers as f64).sum();

    // LB: per-rack spares from each rack's own data.
    let lb_spares: f64 = deficits.iter().map(|r| r.quantile(params.coverage) as f64).sum();

    // SF: one pooled fraction for every rack.
    let all: Vec<&RackDeficits> = deficits.iter().collect();
    let sf_fraction = pooled_fraction_quantile(&all, params.coverage);
    let sf_spares = sf_fraction * servers;

    // MF: cluster racks with CART on per-rack required fraction.
    let response: HashMap<RackId, f64> =
        deficits.iter().map(|r| (r.rack, r.fraction(params.coverage))).collect();
    let table = rack_table(output, &response)?;
    let ds = CartDataset::regression(&table, columns::FAILURE_RATE, CLUSTER_FEATURES)?;
    let tree = Tree::fit(&ds, &params.cart)?;
    let leaves = tree.leaf_assignments(&table)?;
    let rack_col = table.categories(columns::RACK)?;
    let rack_codes = table.nominal_codes(columns::RACK)?;
    let by_id: HashMap<RackId, &RackDeficits> = deficits.iter().map(|r| (r.rack, r)).collect();

    // BTreeMap: iterated below, and the float accumulation plus cluster
    // listing are order-sensitive — keys must come out sorted.
    let mut cluster_map: BTreeMap<usize, Vec<&RackDeficits>> = BTreeMap::new();
    for row in 0..table.rows() {
        let label = &rack_col[rack_codes[row] as usize];
        let rack_id = RackId(label.trim_start_matches('R').parse().expect("rack label"));
        cluster_map.entry(leaves[row]).or_default().push(by_id[&rack_id]);
    }
    let mut mf_spares = 0.0;
    let mut clusters = Vec::new();
    for (leaf, members) in &cluster_map {
        let fraction = pooled_fraction_quantile(members, params.coverage);
        let cluster_servers: f64 = members.iter().map(|r| r.servers as f64).sum();
        mf_spares += fraction * cluster_servers;
        let per_rack_pct: Vec<f64> =
            members.iter().map(|r| 100.0 * r.fraction(params.coverage)).collect();
        clusters.push(ClusterInfo {
            id: 0,
            racks: members.iter().map(|r| r.rack).collect(),
            spare_fraction: fraction,
            path: tree.path_to(*leaf),
            cdf: cdf_points(&per_rack_pct),
        });
    }
    clusters
        .sort_by(|a, b| a.spare_fraction.partial_cmp(&b.spare_fraction).expect("finite fractions"));
    for (i, c) in clusters.iter_mut().enumerate() {
        c.id = i + 1;
    }

    let all_pct: Vec<f64> = deficits.iter().map(|r| 100.0 * r.fraction(params.coverage)).collect();

    Ok(ServerProvisioning {
        workload,
        servers,
        lb: approach(lb_spares, servers),
        sf: approach(sf_spares, servers),
        mf: approach(mf_spares, servers),
        clusters,
        all_racks_cdf: cdf_points(&all_pct),
        importance: tree.variable_importance(),
    })
}

/// Table IV: relative TCO savings of MF over SF.
pub fn tco_savings(result: &ServerProvisioning, tco: &TcoModel) -> f64 {
    tco.relative_savings(result.servers, result.mf.spares, result.sf.spares)
}

/// Outcome of a spare-pool sharing comparison (one of Section II's open
/// CapEx questions: "Should spares be maintained for each class of
/// applications separately, or is it better to have a shared pool?").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolingComparison {
    /// Spares when every rack holds its own (Σ per-rack requirements).
    pub dedicated_spares: f64,
    /// Spares when one pool serves the whole scope (covering the
    /// `coverage`-quantile of the *summed* per-window deficit).
    pub shared_spares: f64,
    /// Servers in scope.
    pub servers: f64,
}

impl PoolingComparison {
    /// Relative spare reduction from sharing (0.3 = 30 % fewer spares).
    pub fn sharing_savings(&self) -> f64 {
        if self.dedicated_spares <= 0.0 {
            return 0.0;
        }
        1.0 - self.shared_spares / self.dedicated_spares
    }
}

/// Compares dedicated (per-rack) vs shared (per-workload pool) spare
/// requirements. Because failures across racks rarely peak in the same
/// window, the pooled deficit quantile is at most — and usually far below —
/// the sum of per-rack quantiles (statistical multiplexing). The paper's
/// rack-affinity caveat (relocating VMs across racks costs network
/// performance) is the price of these savings.
///
/// # Errors
///
/// Returns [`AnalysisError::NoData`] if the workload has no racks.
pub fn pooling_comparison(
    output: &SimulationOutput,
    workload: Workload,
    params: &ProvisionParams,
) -> Result<PoolingComparison> {
    let deficits = rack_deficits(output, workload, FaultFilter::AllHardware, params)?;
    let servers: f64 = deficits.iter().map(|r| r.servers as f64).sum();
    let dedicated: f64 = deficits.iter().map(|r| r.quantile(params.coverage) as f64).sum();

    // Re-derive per-window deficits (window-aligned across racks) and sum.
    let tickets: Vec<&RmaTicket> = output.hardware_tickets();
    let mu = metrics::mu(
        &tickets,
        SpatialGranularity::Rack,
        params.granularity,
        output.config.start,
        output.config.end,
    );
    let windows = params.granularity.window_count(output.config.start, output.config.end);
    let mut total_by_window: HashMap<u64, u64> = HashMap::new();
    let rack_ids: std::collections::HashSet<RackId> = deficits.iter().map(|r| r.rack).collect();
    for rack in output.fleet.racks.iter().filter(|r| rack_ids.contains(&r.id)) {
        let allowed = ((1.0 - params.sla) * rack.servers as f64).floor() as u64;
        let key = SpatialGranularity::Rack.key(&rack.server_location(0));
        if let Some(series) = mu.get(&key) {
            for (&w, &v) in &series.nonzero {
                if v > allowed {
                    *total_by_window.entry(w).or_insert(0) += v - allowed;
                }
            }
        }
    }
    let pooled: Vec<u64> = total_by_window.values().copied().collect();
    let shared = quantile_with_zeros(&pooled, windows, params.coverage) as f64;
    Ok(PoolingComparison { dedicated_spares: dedicated, shared_spares: shared, servers })
}

/// Cost (in relative units) of one provisioning level under the three
/// approaches (Fig. 13 bars).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostTriple {
    /// Lower bound cost.
    pub lb: f64,
    /// Single-factor cost.
    pub sf: f64,
    /// Multi-factor cost.
    pub mf: f64,
}

/// Result of the component- vs server-level comparison (Q1-B, Fig. 13).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentProvisioning {
    /// Workload studied.
    pub workload: Workload,
    /// Total servers across the workload's racks.
    pub servers: f64,
    /// Cost of provisioning whole-server spares for all hardware failures.
    pub server_level: CostTriple,
    /// Cost of disk + DIMM spares for disk/memory failures plus server
    /// spares for the remaining hardware failures.
    pub component_level: CostTriple,
}

impl ComponentProvisioning {
    /// Costs as a percentage of the workload's base server cost
    /// (`servers × 100`), the normalization of Fig. 13.
    pub fn as_pct_of_fleet_cost(&self, cost: f64) -> f64 {
        100.0 * cost / (self.servers * 100.0)
    }
}

/// LB/SF/MF spare *counts* for one fault filter.
fn spares_triple(
    output: &SimulationOutput,
    workload: Workload,
    filter: FaultFilter,
    params: &ProvisionParams,
) -> Result<(f64, f64, f64, f64)> {
    let deficits = rack_deficits(output, workload, filter, params)?;
    let servers: f64 = deficits.iter().map(|r| r.servers as f64).sum();
    let lb: f64 = deficits.iter().map(|r| r.quantile(params.coverage) as f64).sum();
    let all: Vec<&RackDeficits> = deficits.iter().collect();
    let sf = pooled_fraction_quantile(&all, params.coverage) * servers;
    // MF clustering on this filter's per-rack fractions.
    let response: HashMap<RackId, f64> =
        deficits.iter().map(|r| (r.rack, r.fraction(params.coverage))).collect();
    let table = rack_table(output, &response)?;
    let ds = CartDataset::regression(&table, columns::FAILURE_RATE, CLUSTER_FEATURES)?;
    let tree = Tree::fit(&ds, &params.cart)?;
    let leaves = tree.leaf_assignments(&table)?;
    let rack_col = table.categories(columns::RACK)?;
    let rack_codes = table.nominal_codes(columns::RACK)?;
    let by_id: HashMap<RackId, &RackDeficits> = deficits.iter().map(|r| (r.rack, r)).collect();
    // BTreeMap: values() feeds an order-sensitive float sum below.
    let mut cluster_map: BTreeMap<usize, Vec<&RackDeficits>> = BTreeMap::new();
    for row in 0..table.rows() {
        let label = &rack_col[rack_codes[row] as usize];
        let rack_id = RackId(label.trim_start_matches('R').parse().expect("rack label"));
        cluster_map.entry(leaves[row]).or_default().push(by_id[&rack_id]);
    }
    let mut mf = 0.0;
    for members in cluster_map.values() {
        let fraction = pooled_fraction_quantile(members, params.coverage);
        let cluster_servers: f64 = members.iter().map(|r| r.servers as f64).sum();
        mf += fraction * cluster_servers;
    }
    Ok((lb, sf, mf, servers))
}

/// Runs the component- vs server-level spare cost comparison.
///
/// # Errors
///
/// Returns [`AnalysisError::NoData`] if the workload has no racks.
pub fn provision_components(
    output: &SimulationOutput,
    workload: Workload,
    params: &ProvisionParams,
) -> Result<ComponentProvisioning> {
    let server_price = 100.0;
    // Server-level: whole-server spares for all hardware failures.
    let (lb_all, sf_all, mf_all, servers) =
        spares_triple(output, workload, FaultFilter::AllHardware, params)?;
    let server_level = CostTriple {
        lb: lb_all * server_price,
        sf: sf_all * server_price,
        mf: mf_all * server_price,
    };
    // Component-level: disks and DIMMs get their own (cheap) spares; the
    // rest still needs server spares.
    let (lb_d, sf_d, mf_d, _) =
        spares_triple(output, workload, FaultFilter::Component(HardwareFault::Disk), params)?;
    let (lb_m, sf_m, mf_m, _) =
        spares_triple(output, workload, FaultFilter::Component(HardwareFault::Memory), params)?;
    // Remaining hardware faults share one server-spare pool: a power,
    // board, or NIC failure downs the server either way.
    let (lb_o, sf_o, mf_o, _) =
        spares_triple(output, workload, FaultFilter::OtherHardware, params)?;
    let component_level = CostTriple {
        lb: lb_d * DISK_COST + lb_m * DIMM_COST + lb_o * server_price,
        sf: sf_d * DISK_COST + sf_m * DIMM_COST + sf_o * server_price,
        mf: mf_d * DISK_COST + mf_m * DIMM_COST + mf_o * server_price,
    };
    Ok(ComponentProvisioning { workload, servers, server_level, component_level })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rainshine_dcsim::{FleetConfig, Simulation};

    fn sim() -> SimulationOutput {
        Simulation::new(FleetConfig::medium(), 17).run()
    }

    #[test]
    fn quantile_with_zeros_behaviour() {
        assert_eq!(quantile_with_zeros(&[], 100, 1.0), 0);
        assert_eq!(quantile_with_zeros(&[3, 1, 2], 10, 1.0), 3);
        assert_eq!(quantile_with_zeros(&[3, 1, 2], 10, 0.7), 0);
        assert_eq!(quantile_with_zeros(&[3, 1, 2], 10, 0.8), 1);
        assert_eq!(quantile_with_zeros(&[5], 0, 1.0), 0);
    }

    #[test]
    fn lb_below_mf_below_sf() {
        let out = sim();
        let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
        let r = provision_servers(&out, Workload::W1, &params).unwrap();
        assert!(r.lb.spares > 0.0, "some spares needed at 100% SLA");
        assert!(r.lb.spares <= r.mf.spares + 1e-9, "LB {} <= MF {}", r.lb.spares, r.mf.spares);
        assert!(r.mf.spares <= r.sf.spares + 1e-9, "MF {} <= SF {}", r.mf.spares, r.sf.spares);
        assert!(!r.clusters.is_empty());
        let cluster_racks: usize = r.clusters.iter().map(|c| c.racks.len()).sum();
        assert_eq!(
            cluster_racks as f64,
            r.all_racks_cdf.last().map(|_| cluster_racks as f64).unwrap()
        );
    }

    #[test]
    fn looser_sla_needs_fewer_spares() {
        let out = sim();
        let tight = provision_servers(
            &out,
            Workload::W6,
            &ProvisionParams::new(1.0, TimeGranularity::Daily),
        )
        .unwrap();
        let loose = provision_servers(
            &out,
            Workload::W6,
            &ProvisionParams::new(0.90, TimeGranularity::Daily),
        )
        .unwrap();
        assert!(loose.sf.spares <= tight.sf.spares);
        assert!(loose.lb.spares <= tight.lb.spares);
    }

    #[test]
    fn hourly_multiplexing_reduces_mf() {
        let out = sim();
        let daily = provision_servers(
            &out,
            Workload::W1,
            &ProvisionParams::new(1.0, TimeGranularity::Daily),
        )
        .unwrap();
        let hourly = provision_servers(
            &out,
            Workload::W1,
            &ProvisionParams::new(1.0, TimeGranularity::Hourly),
        )
        .unwrap();
        assert!(
            hourly.mf.spares < daily.mf.spares,
            "hourly {} < daily {}",
            hourly.mf.spares,
            daily.mf.spares
        );
        assert!(hourly.lb.spares <= daily.lb.spares);
    }

    #[test]
    fn component_level_cheaper_than_server_level_under_mf() {
        let out = sim();
        let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
        let r = provision_components(&out, Workload::W1, &params).unwrap();
        assert!(
            r.component_level.mf < r.server_level.mf,
            "component {} < server {}",
            r.component_level.mf,
            r.server_level.mf
        );
        // Normalization helper.
        let pct = r.as_pct_of_fleet_cost(r.server_level.sf);
        assert!(pct > 0.0 && pct < 100.0, "pct {pct}");
    }

    #[test]
    fn tco_savings_positive_when_mf_beats_sf() {
        let out = sim();
        let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
        let r = provision_servers(&out, Workload::W6, &params).unwrap();
        let savings = tco_savings(&r, &TcoModel::default());
        assert!(savings >= 0.0, "savings {savings}");
    }

    #[test]
    fn shared_pool_never_needs_more_than_dedicated() {
        let out = sim();
        for (sla, granularity) in [(1.0, TimeGranularity::Daily), (0.95, TimeGranularity::Hourly)] {
            let params = ProvisionParams::new(sla, granularity);
            let p = pooling_comparison(&out, Workload::W6, &params).unwrap();
            assert!(
                p.shared_spares <= p.dedicated_spares,
                "shared {} > dedicated {}",
                p.shared_spares,
                p.dedicated_spares
            );
            assert!(p.sharing_savings() >= 0.0);
            assert!(p.servers > 0.0);
        }
        // At 100% SLA daily, sharing should save something real: rack peaks
        // rarely coincide.
        let p = pooling_comparison(
            &out,
            Workload::W6,
            &ProvisionParams::new(1.0, TimeGranularity::Daily),
        )
        .unwrap();
        assert!(p.sharing_savings() > 0.1, "savings {}", p.sharing_savings());
    }

    #[test]
    fn unknown_workload_racks_error() {
        let out = sim();
        let params = ProvisionParams::new(2.0, TimeGranularity::Daily);
        assert!(matches!(
            provision_servers(&out, Workload::W1, &params),
            Err(AnalysisError::InvalidParameter { .. })
        ));
    }
}
