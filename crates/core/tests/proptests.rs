//! Property-based tests for the analysis framework.

use proptest::prelude::*;
use rainshine_core::predict::Confusion;
use rainshine_core::q1::{pooling_comparison, provision_servers, ProvisionParams, RackDeficits};
use rainshine_core::tco::TcoModel;
use rainshine_dcsim::{FleetConfig, Simulation};
use rainshine_telemetry::ids::{RackId, Workload};
use rainshine_telemetry::time::{SimTime, TimeGranularity};

fn deficits_strategy() -> impl Strategy<Value = RackDeficits> {
    (1u32..50, 10u64..500, prop::collection::vec(1u64..20, 0..30)).prop_map(
        |(servers, windows, deficits)| RackDeficits {
            rack: RackId(1),
            servers,
            active_windows: windows.max(deficits.len() as u64),
            deficits,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rack_deficit_quantile_monotone_in_coverage(
        d in deficits_strategy(),
        a in 0.0f64..=1.0,
        b in 0.0f64..=1.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(d.quantile(lo) <= d.quantile(hi));
        // Max coverage returns the max deficit; zero coverage returns zero
        // (there is always at least one window).
        let max = d.deficits.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(d.quantile(1.0), max);
        prop_assert!(d.fraction(1.0) <= max as f64 / d.servers as f64 + 1e-12);
    }

    #[test]
    fn tco_deployment_monotone_in_spares(
        base in 1.0f64..1e4,
        s1 in 0.0f64..1e3,
        extra in 0.0f64..1e3,
    ) {
        let m = TcoModel::default();
        prop_assert!(m.deployment_tco(base, s1) <= m.deployment_tco(base, s1 + extra));
        // Savings sign convention.
        let savings = m.relative_savings(base, s1, s1 + extra);
        prop_assert!(savings >= 0.0);
        prop_assert!(m.relative_savings(base, s1 + extra, s1) <= 0.0);
        prop_assert!(savings < 1.0);
    }

    #[test]
    fn confusion_metrics_bounded(
        tp in 0u64..1000,
        fp in 0u64..1000,
        tn in 0u64..1000,
        r#fn in 0u64..1000,
    ) {
        let c = Confusion {
            true_positives: tp,
            false_positives: fp,
            true_negatives: tn,
            false_negatives: r#fn,
        };
        for v in [c.precision(), c.recall(), c.f1(), c.accuracy(), c.base_rate()] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        // F1 is a mean of precision and recall: it lies between them.
        let (p, r) = (c.precision(), c.recall());
        if p > 0.0 && r > 0.0 {
            prop_assert!(c.f1() >= p.min(r) - 1e-12);
            prop_assert!(c.f1() <= p.max(r) + 1e-12);
        }
    }
}

// Simulation-backed properties use few cases: each case runs a small fleet.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn provisioning_invariants_across_seeds(seed in 0u64..1000) {
        let config = FleetConfig {
            end: SimTime::from_days(120),
            ..FleetConfig::small()
        };
        let out = Simulation::new(config, seed).run();
        for workload in [Workload::W1, Workload::W6] {
            let params = ProvisionParams::new(1.0, TimeGranularity::Daily);
            let Ok(r) = provision_servers(&out, workload, &params) else {
                continue; // workload absent in a tiny fleet is fine
            };
            prop_assert!(r.lb.spares >= 0.0);
            prop_assert!(r.lb.spares <= r.sf.spares + 1e-9);
            prop_assert!(r.mf.spares <= r.sf.spares + 1e-9);
            prop_assert!(r.sf.spares <= r.servers);
            let cluster_racks: usize = r.clusters.iter().map(|c| c.racks.len()).sum();
            prop_assert!(cluster_racks > 0);

            let p = pooling_comparison(&out, workload, &params).unwrap();
            prop_assert!(p.shared_spares <= p.dedicated_spares + 1e-9);
        }
    }
}
