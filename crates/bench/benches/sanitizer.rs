//! Ingestion-sanitizer throughput: the cost of running the full quality
//! pipeline (dedup, interval repair, location repair, censor imputation)
//! over a medium fleet's year of tickets — clean, and with the documented
//! dirty-data profile injected.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rainshine_dcsim::{CorruptionConfig, FleetConfig, Simulation, SimulationOutput};
use rainshine_telemetry::quality::{Sanitizer, SanitizerConfig};

fn sim(corruption: CorruptionConfig) -> SimulationOutput {
    let mut config = FleetConfig::medium();
    config.corruption = corruption;
    Simulation::new(config, 42).run()
}

fn bench_sanitizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("sanitizer");
    for (name, corruption) in [
        ("clean", CorruptionConfig::default()),
        ("dirty_default", CorruptionConfig::dirty_default()),
    ] {
        let out = sim(corruption);
        let sanitizer = Sanitizer::new(
            out.fleet.manifest(),
            SanitizerConfig::for_span(out.config.start, out.config.end),
        );
        group.bench_with_input(BenchmarkId::from_parameter(name), &out, |b, out| {
            b.iter(|| sanitizer.sanitize(&out.tickets))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sanitizer);
criterion_main!(benches);
