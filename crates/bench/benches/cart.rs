//! CART benchmarks and the nominal-split-search ablation (DESIGN.md §5):
//! ordered-by-response vs exhaustive subset search, fit cost vs dataset
//! size, and the pruning / cross-validation machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rainshine_cart::dataset::CartDataset;
use rainshine_cart::forest::{Forest, ForestParams};
use rainshine_cart::params::{CartParams, NominalSearch};
use rainshine_cart::prune::{cp_sequence, cross_validate, pruned};
use rainshine_cart::tree::Tree;
use rainshine_parallel::Parallelism;
use rainshine_telemetry::table::{FeatureKind, Field, Schema, Table, TableBuilder, Value};

/// Synthetic regression table: two continuous features, one 8-way nominal,
/// response with planted structure plus deterministic pseudo-noise.
fn synthetic_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("x", FeatureKind::Continuous),
        Field::new("z", FeatureKind::Continuous),
        Field::new("k", FeatureKind::Nominal),
        Field::new("y", FeatureKind::Continuous),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..rows {
        let x = (i % 100) as f64;
        let z = ((i * 7) % 50) as f64;
        let k = format!("c{}", i % 8);
        let noise = ((i.wrapping_mul(2_654_435_761)) % 1000) as f64 / 1000.0 - 0.5;
        let y = if x < 40.0 { 1.0 } else { 3.0 }
            + if i % 8 >= 5 { 2.0 } else { 0.0 }
            + 0.02 * z
            + 0.3 * noise;
        b.push_row(vec![
            Value::Continuous(x),
            Value::Continuous(z),
            Value::Nominal(k),
            Value::Continuous(y),
        ])
        .unwrap();
    }
    b.build()
}

fn bench_fit_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("cart_fit");
    for rows in [1_000usize, 10_000, 50_000] {
        let table = synthetic_table(rows);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &table, |b, table| {
            let ds = CartDataset::regression(table, "y", &["x", "z", "k"]).unwrap();
            let params = CartParams::default().with_min_sizes(rows / 100, rows / 200);
            b.iter(|| Tree::fit(&ds, &params).unwrap());
        });
    }
    group.finish();
}

fn bench_nominal_search_ablation(c: &mut Criterion) {
    let table = synthetic_table(10_000);
    let ds = CartDataset::regression(&table, "y", &["k"]).unwrap();
    let mut group = c.benchmark_group("nominal_search");
    for (name, search) in
        [("ordered", NominalSearch::OrderedByResponse), ("exhaustive", NominalSearch::Exhaustive)]
    {
        let mut params = CartParams::default().with_min_sizes(100, 50);
        params.nominal_search = search;
        group.bench_function(name, |b| b.iter(|| Tree::fit(&ds, &params).unwrap()));
    }
    group.finish();
}

fn bench_prune_and_cv(c: &mut Criterion) {
    let table = synthetic_table(10_000);
    let ds = CartDataset::regression(&table, "y", &["x", "z", "k"]).unwrap();
    let params = CartParams::default().with_min_sizes(100, 50).with_cp(0.0001);
    let tree = Tree::fit(&ds, &params).unwrap();
    c.bench_function("cp_sequence", |b| b.iter(|| cp_sequence(&tree)));
    c.bench_function("prune_at_cp", |b| b.iter(|| pruned(&tree, 0.01)));
    c.bench_function("cross_validate_5fold", |b| {
        b.iter(|| cross_validate(&ds, &params, 5, 42).unwrap())
    });
}

fn bench_predict(c: &mut Criterion) {
    let table = synthetic_table(50_000);
    let ds = CartDataset::regression(&table, "y", &["x", "z", "k"]).unwrap();
    let params = CartParams::default().with_min_sizes(500, 250);
    let tree = Tree::fit(&ds, &params).unwrap();
    c.bench_function("predict_50k_rows", |b| b.iter(|| tree.predict(&table).unwrap()));
}

/// Forest fitting at 1 / 2 / 8 worker threads. The fitted forest is
/// bit-identical across the variants (each tree owns a derived seed);
/// only wall-clock time should move. On a single-core host the three
/// variants measure roughly the same, plus thread-spawn overhead.
fn bench_forest_threads(c: &mut Criterion) {
    let table = synthetic_table(10_000);
    let ds = CartDataset::regression(&table, "y", &["x", "z", "k"]).unwrap();
    let mut group = c.benchmark_group("forest_fit_threads");
    for (name, parallelism) in [
        ("1", Parallelism::Sequential),
        ("2", Parallelism::Threads(2)),
        ("8", Parallelism::Threads(8)),
    ] {
        let params = ForestParams {
            trees: 16,
            parallelism,
            tree_params: CartParams::default().with_min_sizes(100, 50),
            ..ForestParams::default()
        };
        group.bench_function(name, |b| b.iter(|| Forest::fit(&ds, &params).unwrap()));
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fit_scaling,
    bench_nominal_search_ablation,
    bench_prune_and_cv,
    bench_predict,
    bench_forest_threads
);
criterion_main!(benches);
