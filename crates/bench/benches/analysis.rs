//! Analysis-stage benchmarks: Q1 provisioning, the Q2 stratified effect,
//! Q3 environmental discovery, and the PDP ablation (grid partial
//! dependence vs the paper's stratified `N(·)` normalization).

use criterion::{criterion_group, criterion_main, Criterion};
use rainshine_cart::dataset::CartDataset;
use rainshine_cart::params::CartParams;
use rainshine_cart::pdp::{
    grid_over_column, partial_dependence_continuous, stratified_effect_nominal,
};
use rainshine_cart::tree::Tree;
use rainshine_core::dataset::{rack_day_table, FaultFilter};
use rainshine_core::q1::{provision_servers, ProvisionParams};
use rainshine_core::q3::{dc_subset, env_analysis};
use rainshine_dcsim::{FleetConfig, Simulation, SimulationOutput};
use rainshine_telemetry::ids::Workload;
use rainshine_telemetry::rma::HardwareFault;
use rainshine_telemetry::schema::columns;
use rainshine_telemetry::time::TimeGranularity;

fn sim() -> SimulationOutput {
    Simulation::new(FleetConfig::medium(), 42).run()
}

fn bench_q1(c: &mut Criterion) {
    let out = sim();
    let mut group = c.benchmark_group("q1_provision");
    group.sample_size(20);
    for (name, granularity) in
        [("daily", TimeGranularity::Daily), ("hourly", TimeGranularity::Hourly)]
    {
        group.bench_function(name, |b| {
            b.iter(|| {
                provision_servers(&out, Workload::W6, &ProvisionParams::new(1.0, granularity))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_q2_stratified(c: &mut Criterion) {
    let out = sim();
    let table = rack_day_table(&out, FaultFilter::AllHardware, 2).unwrap();
    let cart = CartParams::default().with_min_sizes(200, 100).with_cp(0.002);
    let mut group = c.benchmark_group("q2");
    group.sample_size(10);
    group.bench_function("stratified_effect", |b| {
        b.iter(|| {
            stratified_effect_nominal(
                &table,
                columns::FAILURE_RATE,
                columns::SKU,
                rainshine_core::q2::MF_CONTROLS,
                &cart,
            )
            .unwrap()
        })
    });
    group.finish();
}

/// Ablation (DESIGN.md §5): grid PDP vs stratified normalization — the two
/// ways to ask "what does temperature do, holding everything else fixed".
fn bench_pdp_ablation(c: &mut Criterion) {
    let out = sim();
    let table = rack_day_table(&out, FaultFilter::AllHardware, 4).unwrap();
    let cart = CartParams::default().with_min_sizes(200, 100).with_cp(0.002);
    let ds = CartDataset::regression(
        &table,
        columns::FAILURE_RATE,
        &[
            columns::TEMPERATURE_F,
            columns::RELATIVE_HUMIDITY,
            columns::SKU,
            columns::WORKLOAD,
            columns::AGE_MONTHS,
        ],
    )
    .unwrap();
    let tree = Tree::fit(&ds, &cart).unwrap();
    let grid = grid_over_column(&table, columns::TEMPERATURE_F, 10).unwrap();
    let mut group = c.benchmark_group("pdp_ablation");
    group.sample_size(10);
    group.bench_function("grid_pdp", |b| {
        b.iter(|| {
            partial_dependence_continuous(&tree, &table, columns::TEMPERATURE_F, &grid).unwrap()
        })
    });
    group.bench_function("stratified", |b| {
        b.iter(|| {
            stratified_effect_nominal(
                &table,
                columns::FAILURE_RATE,
                columns::SKU,
                &[columns::TEMPERATURE_F, columns::WORKLOAD, columns::AGE_MONTHS],
                &cart,
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_q3(c: &mut Criterion) {
    let out = sim();
    let disk = rack_day_table(&out, FaultFilter::Component(HardwareFault::Disk), 2).unwrap();
    let dc1 = dc_subset(&disk, "DC1").unwrap();
    let cart = CartParams::default().with_min_sizes(400, 200).with_cp(0.002);
    let mut group = c.benchmark_group("q3");
    group.sample_size(10);
    group.bench_function("env_analysis_dc1", |b| {
        b.iter(|| env_analysis("DC1", &dc1, &cart).unwrap())
    });
    group.finish();
}

fn bench_dataset_assembly(c: &mut Criterion) {
    let out = sim();
    let mut group = c.benchmark_group("dataset");
    group.sample_size(10);
    group.bench_function("rack_day_table", |b| {
        b.iter(|| rack_day_table(&out, FaultFilter::AllHardware, 1).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_q1,
    bench_q2_stratified,
    bench_pdp_ablation,
    bench_q3,
    bench_dataset_assembly
);
criterion_main!(benches);
