//! Microbench for the sort-once/partition-many CART fitter (DESIGN.md
//! §10.2): the presort fitter (`Tree::fit`) against the per-node-sort
//! reference (`Tree::fit_on_rows_per_node_sort`) on tables dominated by
//! large ordered-feature scans. Both produce bit-identical trees — see
//! `tests/presort_regression.rs` — so the ratio is pure sort savings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rainshine_cart::dataset::CartDataset;
use rainshine_cart::params::CartParams;
use rainshine_cart::tree::Tree;
use rainshine_telemetry::table::{FeatureKind, Field, Schema, Table, TableBuilder, Value};

/// Synthetic regression table: three continuous features (many distinct
/// values, so ordered scans dominate), one 8-way nominal, planted
/// structure plus deterministic pseudo-noise.
fn synthetic_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("x", FeatureKind::Continuous),
        Field::new("z", FeatureKind::Continuous),
        Field::new("w", FeatureKind::Continuous),
        Field::new("k", FeatureKind::Nominal),
        Field::new("y", FeatureKind::Continuous),
    ]);
    let mut b = TableBuilder::new(schema);
    for i in 0..rows {
        let hash = i.wrapping_mul(2_654_435_761) % 1_000_000;
        let x = hash as f64 / 1000.0;
        let z = ((i * 7) % 5000) as f64 / 10.0;
        let w = ((i * 13) % 977) as f64;
        let k = format!("c{}", i % 8);
        let noise = (hash % 1000) as f64 / 1000.0 - 0.5;
        let y = if x < 400.0 { 1.0 } else { 3.0 }
            + if i % 8 >= 5 { 2.0 } else { 0.0 }
            + 0.01 * z
            + 0.3 * noise;
        b.push_row(vec![
            Value::Continuous(x),
            Value::Continuous(z),
            Value::Continuous(w),
            Value::Nominal(k),
            Value::Continuous(y),
        ])
        .unwrap();
    }
    b.build()
}

fn bench_split_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("split_scan");
    for rows in [10_000usize, 50_000] {
        let table = synthetic_table(rows);
        let ds = CartDataset::regression(&table, "y", &["x", "z", "w", "k"]).unwrap();
        let params = CartParams::default().with_min_sizes(rows / 100, rows / 200).with_cp(0.0005);
        let all_rows: Vec<usize> = (0..ds.len()).collect();
        group.bench_with_input(BenchmarkId::new("presort", rows), &rows, |b, _| {
            b.iter(|| Tree::fit(&ds, &params).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("per_node_sort", rows), &rows, |b, _| {
            b.iter(|| Tree::fit_on_rows_per_node_sort(&ds, &params, &all_rows).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_split_scan);
criterion_main!(benches);
