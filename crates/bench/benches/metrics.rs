//! Failure-metric aggregation cost: λ and μ at the spatial × temporal
//! granularities the analyses use, including the daily-vs-hourly ablation
//! (finer windows are what Fig. 12's multiplexing costs to compute).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rainshine_dcsim::{FleetConfig, Simulation, SimulationOutput};
use rainshine_telemetry::metrics::{lambda, mu, peak_concurrency, SpatialGranularity};
use rainshine_telemetry::time::TimeGranularity;

fn sim() -> SimulationOutput {
    Simulation::new(FleetConfig::medium(), 42).run()
}

fn bench_lambda(c: &mut Criterion) {
    let out = sim();
    let tickets = out.hardware_tickets();
    let mut group = c.benchmark_group("lambda");
    for (name, granularity) in
        [("daily", TimeGranularity::Daily), ("hourly", TimeGranularity::Hourly)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &granularity, |b, &g| {
            b.iter(|| {
                lambda(&tickets, SpatialGranularity::Rack, g, out.config.start, out.config.end)
            })
        });
    }
    group.finish();
}

fn bench_mu_granularity_ablation(c: &mut Criterion) {
    let out = sim();
    let tickets = out.hardware_tickets();
    let mut group = c.benchmark_group("mu");
    for (name, granularity) in [
        ("daily", TimeGranularity::Daily),
        ("hourly", TimeGranularity::Hourly),
        ("weekly", TimeGranularity::Weekly),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &granularity, |b, &g| {
            b.iter(|| mu(&tickets, SpatialGranularity::Rack, g, out.config.start, out.config.end))
        });
    }
    group.finish();
}

fn bench_peak_concurrency(c: &mut Criterion) {
    let out = sim();
    let tickets = out.hardware_tickets();
    c.bench_function("peak_concurrency_daily", |b| {
        b.iter(|| {
            peak_concurrency(
                &tickets,
                SpatialGranularity::Rack,
                TimeGranularity::Daily,
                out.config.start,
                out.config.end,
            )
        })
    });
}

fn bench_spatial_granularities(c: &mut Criterion) {
    let out = sim();
    let tickets = out.hardware_tickets();
    let mut group = c.benchmark_group("lambda_spatial");
    for (name, spatial) in [
        ("datacenter", SpatialGranularity::Datacenter),
        ("rack", SpatialGranularity::Rack),
        ("server", SpatialGranularity::Server),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spatial, |b, &s| {
            b.iter(|| lambda(&tickets, s, TimeGranularity::Daily, out.config.start, out.config.end))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lambda,
    bench_mu_granularity_ablation,
    bench_peak_concurrency,
    bench_spatial_granularities
);
criterion_main!(benches);
