//! Simulator throughput: fleet construction, hazard evaluation, ticket
//! generation, and whole runs at each scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rainshine_dcsim::environment::EnvModel;
use rainshine_dcsim::hazard::ComponentClass;
use rainshine_dcsim::topology::Fleet;
use rainshine_dcsim::{FleetConfig, Simulation};
use rainshine_parallel::Parallelism;
use rainshine_telemetry::time::SimTime;

fn bench_fleet_build(c: &mut Criterion) {
    let config = FleetConfig::paper_scale();
    c.bench_function("fleet_build_paper", |b| b.iter(|| Fleet::build(&config)));
}

fn bench_env_sampling(c: &mut Criterion) {
    let env = EnvModel::paper_layout(1);
    c.bench_function("env_daily_mean_x1000", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for day in 0..1000 {
                acc += env
                    .daily_mean(
                        rainshine_telemetry::ids::DcId(1),
                        rainshine_telemetry::ids::RegionId(2),
                        day,
                    )
                    .temp_f;
            }
            acc
        })
    });
}

fn bench_hazard_eval(c: &mut Criterion) {
    let config = FleetConfig::paper_scale();
    let fleet = Fleet::build(&config);
    let env = EnvModel::paper_layout(1);
    let day = SimTime::from_date(2012, 7, 1, 0);
    c.bench_function("hazard_full_fleet_day", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for rack in &fleet.racks {
                let conditions = env.daily_mean(rack.dc, rack.region, day.days());
                for class in ComponentClass::ALL {
                    total += config.hazard.rack_day_rate(rack, class, conditions, day);
                }
            }
            total
        })
    });
}

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_run");
    group.sample_size(10);
    for (name, config) in [("small", FleetConfig::small()), ("medium", FleetConfig::medium())] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| Simulation::new(config.clone(), 42).run())
        });
    }
    // Instrumented variant: the obs overhead budget is <= 5% over the
    // uninstrumented medium run above.
    let config = FleetConfig::medium();
    group.bench_with_input(BenchmarkId::from_parameter("medium_obs"), &config, |b, config| {
        b.iter(|| {
            let obs = rainshine_obs::Obs::enabled();
            Simulation::new(config.clone(), 42).run_with_obs(&obs)
        })
    });
    group.finish();
}

/// A medium run at 1 / 2 / 8 worker threads for the per-rack generation
/// loops. The ticket stream is identical across variants.
fn bench_run_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulation_run_threads");
    group.sample_size(10);
    for (name, parallelism) in [
        ("1", Parallelism::Sequential),
        ("2", Parallelism::Threads(2)),
        ("8", Parallelism::Threads(8)),
    ] {
        let mut config = FleetConfig::medium();
        config.parallelism = parallelism;
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| Simulation::new(config.clone(), 42).run())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fleet_build,
    bench_env_sampling,
    bench_hazard_eval,
    bench_full_run,
    bench_run_threads
);
criterion_main!(benches);
