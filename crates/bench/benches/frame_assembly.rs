//! Frame-assembly bench (DESIGN.md §10.1): columnar assembly through
//! split-borrowed `ColumnBuilder`s (intern once per group, then
//! `push_code`/`push_f64`) against the row-oriented
//! `TableBuilder::push_row` path, which allocates a `Vec<Value>` — and a
//! `String` per nominal cell — for every row. Both produce identical
//! frames; the ratio is the zero-copy emission win measured by the
//! dataset stages of `--report`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rainshine_telemetry::frame::FrameBuilder;
use rainshine_telemetry::table::{FeatureKind, Field, Schema, Table, TableBuilder, Value};

/// The shape of one synthetic rack-day-like record.
const SKUS: [&str; 7] = ["S1", "S2", "S3", "S4", "S5", "S6", "S7"];

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("sku", FeatureKind::Nominal),
        Field::new("age", FeatureKind::Continuous),
        Field::new("temp", FeatureKind::Continuous),
        Field::new("dow", FeatureKind::Ordinal),
        Field::new("y", FeatureKind::Continuous),
    ])
}

/// Row-oriented assembly: one `Vec<Value>` (with a fresh label `String`)
/// per row.
fn assemble_rows(rows: usize) -> Table {
    let mut b = TableBuilder::new(schema());
    for i in 0..rows {
        b.push_row(vec![
            Value::Nominal(SKUS[i % SKUS.len()].to_owned()),
            Value::Continuous((i % 60) as f64),
            Value::Continuous(55.0 + (i % 400) as f64 / 10.0),
            Value::Ordinal((i % 7) as i64),
            Value::Continuous((i % 5) as f64),
        ])
        .unwrap();
    }
    b.build()
}

/// Columnar assembly: codes interned once, then straight buffer appends.
fn assemble_columns(rows: usize) -> Table {
    let mut b = FrameBuilder::new(schema());
    b.reserve(rows);
    {
        let [sku, age, temp, dow, y] = b.columns_mut() else {
            unreachable!("schema above has 5 columns")
        };
        let codes: Vec<u32> = SKUS.iter().map(|label| sku.intern(label)).collect();
        for i in 0..rows {
            sku.push_code(codes[i % codes.len()]);
            age.push_f64((i % 60) as f64);
            temp.push_f64(55.0 + (i % 400) as f64 / 10.0);
            dow.push_i64((i % 7) as i64);
            y.push_f64((i % 5) as f64);
        }
    }
    Table::from_frame(b.build().unwrap())
}

fn bench_assembly(c: &mut Criterion) {
    // The two paths must agree before the timings mean anything.
    assert_eq!(assemble_rows(1000).frame(), assemble_columns(1000).frame());
    let mut group = c.benchmark_group("frame_assembly");
    for rows in [10_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_row", rows), &rows, |b, &rows| {
            b.iter(|| assemble_rows(rows))
        });
        group.bench_with_input(BenchmarkId::new("columnar", rows), &rows, |b, &rows| {
            b.iter(|| assemble_columns(rows))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_assembly);
criterion_main!(benches);
