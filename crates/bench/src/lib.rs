//! Experiment harness: regenerates every table and figure of the paper.
//!
//! Each experiment id (`t1`–`t4`, `f1`–`f18`) maps to one artifact of the
//! paper's evaluation (see `DESIGN.md` §4). [`run_experiment`] computes the
//! artifact from a simulation run, writes a CSV under the output directory,
//! and returns a printable preview. The `experiments` binary drives all of
//! them; the Criterion benches reuse the same context for performance
//! measurements.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use rainshine_cart::params::CartParams;
use rainshine_core::dataset::{rack_day_table, FaultFilter};
use rainshine_core::evidence::{self, SeriesRow};
use rainshine_core::tco::TcoModel;
use rainshine_core::{q1, q2, q3};
use rainshine_dcsim::{FleetConfig, Simulation, SimulationOutput};
use rainshine_telemetry::ids::{DcId, Sku, Workload};
use rainshine_telemetry::rma::{category_breakdown, HardwareFault};
use rainshine_telemetry::schema::candidate_features;
use rainshine_telemetry::table::Table;
use rainshine_telemetry::time::TimeGranularity;

/// All experiment ids: the paper's artifacts in paper order, followed by
/// the extensions — `p1` (failure prediction, the paper's future work) and
/// the negative-control ablations `a1`–`a3` (disable one planted effect,
/// verify the analysis stops finding it).
pub const ALL_EXPERIMENTS: &[&str] = &[
    "t1", "t2", "t3", "t4", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11",
    "f12", "f13", "f14", "f15", "f16", "f17", "f18", "p1", "p2", "a1", "a2", "a3",
];

/// Fleet scale for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 24 + 20 racks, 6 months (smoke tests).
    Small,
    /// 90 + 80 racks, 1 year (CI).
    Medium,
    /// 331 + 290 racks, 2.5 years (the paper's fleet).
    Paper,
}

impl Scale {
    /// Parses `small` / `medium` / `paper`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    fn config(self) -> FleetConfig {
        match self {
            Scale::Small => FleetConfig::small(),
            Scale::Medium => FleetConfig::medium(),
            Scale::Paper => FleetConfig::paper_scale(),
        }
    }

    /// The flag spelling (`small` / `medium` / `paper`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Paper => "paper",
        }
    }
}

/// Builds the run report for a finished (or in-progress) run: the obs
/// snapshot plus run metadata and the sanitizer's data-quality payload.
///
/// The thread count is deliberately *not* recorded: the deterministic
/// section must stay byte-identical at every `Parallelism` setting.
pub fn run_report(
    obs: &rainshine_obs::Obs,
    output: &SimulationOutput,
    scale: Scale,
    seed: u64,
) -> rainshine_obs::RunReport {
    let mut report = rainshine_obs::RunReport::from_collector(&obs.snapshot());
    report.set_meta("scale", serde::Value::Str(scale.name().to_string()));
    report.set_meta("seed", serde::Value::U64(seed));
    report.set_meta("corruption", serde::Serialize::to_value(&output.config.corruption));
    report.set_quality(serde::Serialize::to_value(&output.quality));
    report
}

/// Shared state across experiments: one simulation run plus cached tables.
pub struct ExperimentContext {
    /// The simulation output all experiments read.
    pub output: SimulationOutput,
    /// The observability handle the simulation recorded into; experiments
    /// keep recording into it as they run. Disabled unless the context was
    /// built with [`ExperimentContext::new_with_obs`].
    pub obs: rainshine_obs::Obs,
    scale: Scale,
    all_hw: Option<Table>,
    disk: Option<Table>,
}

impl ExperimentContext {
    /// Runs the simulation for `scale` with `seed`.
    pub fn new(scale: Scale, seed: u64) -> Self {
        Self::new_with_parallelism(scale, seed, rainshine_parallel::Parallelism::Auto)
    }

    /// Runs the simulation for `scale` with `seed` and an explicit thread
    /// policy for the simulation's per-rack generation loops. The ticket
    /// stream is the same for every policy; only wall-clock time changes.
    pub fn new_with_parallelism(
        scale: Scale,
        seed: u64,
        parallelism: rainshine_parallel::Parallelism,
    ) -> Self {
        Self::new_with_corruption(
            scale,
            seed,
            parallelism,
            rainshine_dcsim::CorruptionConfig::default(),
        )
    }

    /// Runs the simulation with a dirty-data injection profile. The injected
    /// defects are sanitized by the ingestion pipeline before any experiment
    /// sees the tickets; `output.quality` reports what was repaired or
    /// quarantined.
    pub fn new_with_corruption(
        scale: Scale,
        seed: u64,
        parallelism: rainshine_parallel::Parallelism,
        corruption: rainshine_dcsim::CorruptionConfig,
    ) -> Self {
        Self::new_with_obs(scale, seed, parallelism, corruption, rainshine_obs::Obs::disabled())
    }

    /// [`ExperimentContext::new_with_corruption`] with an instrumentation
    /// handle: the simulation and every subsequent [`run_experiment`] call
    /// record stage counts and timings into `obs`. The deterministic
    /// section of the resulting report is byte-identical for a fixed
    /// (scale, seed, corruption) at every `parallelism` setting.
    pub fn new_with_obs(
        scale: Scale,
        seed: u64,
        parallelism: rainshine_parallel::Parallelism,
        corruption: rainshine_dcsim::CorruptionConfig,
        obs: rainshine_obs::Obs,
    ) -> Self {
        let mut config = scale.config();
        config.parallelism = parallelism;
        config.corruption = corruption;
        ExperimentContext {
            output: Simulation::new(config, seed).run_with_obs(&obs),
            obs,
            scale,
            all_hw: None,
            disk: None,
        }
    }

    fn day_stride(&self) -> usize {
        match self.scale {
            Scale::Small | Scale::Medium => 1,
            Scale::Paper => 2,
        }
    }

    /// CART parameters scaled to the rack-day table size.
    pub fn rack_day_cart(&self) -> CartParams {
        let rows = self.output.fleet.racks.len() as u64 * self.output.config.span_days()
            / self.day_stride() as u64;
        let min_leaf = (rows / 1500).max(30) as usize;
        CartParams::default().with_min_sizes(min_leaf * 2, min_leaf).with_cp(0.0005)
    }

    /// The all-hardware rack-day table (cached).
    pub fn all_hw_table(&mut self) -> &Table {
        if self.all_hw.is_none() {
            self.all_hw = Some(
                rack_day_table(&self.output, FaultFilter::AllHardware, self.day_stride())
                    .expect("simulation produced rack-days"),
            );
        }
        self.all_hw.as_ref().expect("populated above")
    }

    /// The disk-only rack-day table (cached).
    pub fn disk_table(&mut self) -> &Table {
        if self.disk.is_none() {
            self.disk = Some(
                rack_day_table(
                    &self.output,
                    FaultFilter::Component(HardwareFault::Disk),
                    self.day_stride(),
                )
                .expect("simulation produced rack-days"),
            );
        }
        self.disk.as_ref().expect("populated above")
    }
}

fn write_csv(dir: &Path, id: &str, header: &str, rows: &[String]) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    let mut content = String::with_capacity(rows.len() * 32 + header.len() + 1);
    content.push_str(header);
    content.push('\n');
    for r in rows {
        content.push_str(r);
        content.push('\n');
    }
    fs::write(dir.join(format!("{id}.csv")), content)
}

fn series_csv(rows: &[SeriesRow]) -> Vec<String> {
    rows.iter().map(|r| format!("{},{:.6},{:.6},{}", r.label, r.mean, r.sd, r.n)).collect()
}

fn series_preview(title: &str, rows: &[SeriesRow]) -> String {
    let mut s = format!("{title}\n");
    for r in rows {
        let _ = writeln!(s, "  {:>10}  mean={:.4}  sd={:.4}  n={}", r.label, r.mean, r.sd, r.n);
    }
    s
}

/// Errors an experiment run can produce.
pub type ExperimentError = Box<dyn std::error::Error + Send + Sync + 'static>;

/// Runs one experiment, writes its CSV to `out_dir`, and returns a preview.
///
/// # Errors
///
/// Returns an error for unknown ids, analysis failures, or I/O failures.
pub fn run_experiment(
    id: &str,
    ctx: &mut ExperimentContext,
    out_dir: &Path,
) -> Result<String, ExperimentError> {
    let obs = ctx.obs.clone();
    let _span = obs.span_owned(format!("experiment.{id}"));
    let result = dispatch(id, ctx, out_dir);
    obs.incr(if result.is_ok() { "experiments.ok" } else { "experiments.failed" }, 1);
    result
}

fn dispatch(
    id: &str,
    ctx: &mut ExperimentContext,
    out_dir: &Path,
) -> Result<String, ExperimentError> {
    match id {
        "t1" => t1(ctx, out_dir),
        "t2" => t2(ctx, out_dir),
        "t3" => t3(out_dir),
        "t4" => t4(ctx, out_dir),
        "f1" | "f11" => f11(ctx, out_dir, id),
        "f2" => evidence_fig(ctx, out_dir, id, "region"),
        "f3" => evidence_fig(ctx, out_dir, id, "dow"),
        "f4" => evidence_fig(ctx, out_dir, id, "month"),
        "f5" => evidence_fig(ctx, out_dir, id, "rh"),
        "f6" => evidence_fig(ctx, out_dir, id, "workload"),
        "f7" => evidence_fig(ctx, out_dir, id, "sku"),
        "f8" => evidence_fig(ctx, out_dir, id, "power"),
        "f9" => evidence_fig(ctx, out_dir, id, "age"),
        "f10" => f10(ctx, out_dir, TimeGranularity::Daily, "f10"),
        "f12" => f10(ctx, out_dir, TimeGranularity::Hourly, "f12"),
        "f13" => f13(ctx, out_dir),
        "f14" => f14(ctx, out_dir),
        "f15" => f15(ctx, out_dir),
        "f16" => f16(ctx, out_dir),
        "f17" => f17(ctx, out_dir),
        "f18" => f18(ctx, out_dir),
        "p1" => p1(ctx, out_dir),
        "p2" => p2(ctx, out_dir),
        "a1" => ablation(out_dir, "a1", AblationKind::EnvironmentOff),
        "a2" => ablation(out_dir, "a2", AblationKind::BurstsOff),
        "a3" => ablation(out_dir, "a3", AblationKind::CalendarOff),
        other => Err(format!("unknown experiment id `{other}`").into()),
    }
}

fn t1(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    let rows: Vec<String> = ctx
        .output
        .fleet
        .datacenters
        .iter()
        .map(|d| {
            format!("{},{},{} nines,{}", d.id, d.packaging, d.availability_nines, d.cooling.name())
        })
        .collect();
    write_csv(dir, "t1", "facility,packaging,design_availability,cooling", &rows)?;
    Ok(format!("Table I — DC properties\n  {}\n", rows.join("\n  ")))
}

fn t2(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    let tp = ctx.output.true_positives();
    let mut rows = Vec::new();
    let mut preview = String::from("Table II — RMA classification (percent of DC tickets)\n");
    for dc in [DcId(1), DcId(2)] {
        let dc_tickets: Vec<_> = tp.iter().copied().filter(|t| t.location.dc == dc).collect();
        for (kind, count, pct) in category_breakdown(&dc_tickets) {
            rows.push(format!("{dc},{},{kind},{count},{pct:.2}", kind.category()));
            let _ = writeln!(preview, "  {dc} {:>9} {kind:<20} {pct:5.2}%", kind.category());
        }
    }
    write_csv(dir, "t2", "dc,category,fault,count,percent", &rows)?;
    Ok(preview)
}

fn t3(dir: &Path) -> Result<String, ExperimentError> {
    let rows: Vec<String> = candidate_features()
        .iter()
        .map(|f| format!("{},{},{},{}", f.category, f.name, f.kind, f.range))
        .collect();
    write_csv(dir, "t3", "category,feature,type,range", &rows)?;
    Ok(format!("Table III — {} candidate features\n", rows.len()))
}

fn provisioning_for(
    ctx: &mut ExperimentContext,
    workload: Workload,
    sla: f64,
    granularity: TimeGranularity,
) -> Result<q1::ServerProvisioning, ExperimentError> {
    let params = q1::ProvisionParams::new(sla, granularity);
    Ok(q1::provision_servers(&ctx.output, workload, &params)?)
}

fn t4(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    let tco = TcoModel::default();
    let mut rows = Vec::new();
    let mut preview = String::from("Table IV — TCO savings of MF over SF (percent)\n");
    for granularity in [TimeGranularity::Daily, TimeGranularity::Hourly] {
        for workload in [Workload::W1, Workload::W6] {
            for sla in [0.90, 0.95, 1.00] {
                let r = provisioning_for(ctx, workload, sla, granularity)?;
                let savings = 100.0 * q1::tco_savings(&r, &tco);
                let g = if granularity == TimeGranularity::Daily { "daily" } else { "hourly" };
                rows.push(format!("{g},{workload},{:.0},{savings:.2}", sla * 100.0));
                let _ = writeln!(
                    preview,
                    "  {g:>6} {workload} SLA {:>3.0}%: {savings:6.2}%",
                    sla * 100.0
                );
            }
        }
    }
    write_csv(dir, "t4", "granularity,workload,sla_pct,tco_savings_pct", &rows)?;
    Ok(preview)
}

fn evidence_fig(
    ctx: &mut ExperimentContext,
    dir: &Path,
    id: &str,
    which: &str,
) -> Result<String, ExperimentError> {
    let table = ctx.all_hw_table();
    let (title, mut rows) = match which {
        "region" => ("Fig 2 — λ by DC region", evidence::by_region(table)?),
        "dow" => ("Fig 3 — λ by day of week (2012)", evidence::by_day_of_week(table, 0)?),
        "month" => ("Fig 4 — λ by month (2012)", evidence::by_month(table, 0)?),
        "rh" => ("Fig 5 — λ by relative humidity", evidence::by_rh_bin(table)?),
        "workload" => ("Fig 6 — λ by workload", evidence::by_workload(table)?),
        "sku" => ("Fig 7 — λ by SKU", evidence::by_sku(table)?),
        "power" => ("Fig 8 — λ by rack power rating", evidence::by_power(table)?),
        "age" => ("Fig 9 — λ by equipment age (months)", evidence::by_age(table)?),
        _ => return Err(format!("unknown evidence figure `{which}`").into()),
    };
    evidence::normalize(&mut rows);
    write_csv(dir, id, "label,mean,sd,n", &series_csv(&rows))?;
    Ok(series_preview(title, &rows))
}

fn f10(
    ctx: &mut ExperimentContext,
    dir: &Path,
    granularity: TimeGranularity,
    id: &str,
) -> Result<String, ExperimentError> {
    let mut rows = Vec::new();
    let g = if granularity == TimeGranularity::Daily { "daily" } else { "hourly" };
    let mut preview = format!("Fig {} — over-provisioning %, {g} granularity\n", &id[1..]);
    for workload in [Workload::W1, Workload::W6] {
        for sla in [0.90, 0.95, 1.00] {
            let r = provisioning_for(ctx, workload, sla, granularity)?;
            rows.push(format!(
                "{workload},{:.0},{:.2},{:.2},{:.2}",
                sla * 100.0,
                r.lb.overprovision_pct,
                r.mf.overprovision_pct,
                r.sf.overprovision_pct
            ));
            let _ = writeln!(
                preview,
                "  {workload} SLA {:>3.0}%: LB {:5.2}%  MF {:5.2}%  SF {:5.2}%",
                sla * 100.0,
                r.lb.overprovision_pct,
                r.mf.overprovision_pct,
                r.sf.overprovision_pct
            );
        }
    }
    write_csv(dir, id, "workload,sla_pct,lb_pct,mf_pct,sf_pct", &rows)?;
    Ok(preview)
}

fn f11(ctx: &mut ExperimentContext, dir: &Path, id: &str) -> Result<String, ExperimentError> {
    let mut rows = Vec::new();
    let mut preview =
        String::from("Fig 1/11 — per-cluster over-provision CDFs (100% SLA, daily)\n");
    for workload in [Workload::W1, Workload::W6] {
        let r = provisioning_for(ctx, workload, 1.0, TimeGranularity::Daily)?;
        let _ = writeln!(
            preview,
            "  {workload}: {} clusters, spare fractions {:.1}%..{:.1}%",
            r.clusters.len(),
            100.0 * r.clusters.first().map(|c| c.spare_fraction).unwrap_or(0.0),
            100.0 * r.clusters.last().map(|c| c.spare_fraction).unwrap_or(0.0),
        );
        for (x, p) in &r.all_racks_cdf {
            rows.push(format!("{workload},all,{x:.3},{p:.4}"));
        }
        for c in &r.clusters {
            for (x, p) in &c.cdf {
                rows.push(format!("{workload},cluster{},{x:.3},{p:.4}", c.id));
            }
            let _ = writeln!(
                preview,
                "    cluster {} ({} racks, {:.1}% spares): {}",
                c.id,
                c.racks.len(),
                100.0 * c.spare_fraction,
                if c.path.is_empty() { "(root)".to_string() } else { c.path.join(" & ") }
            );
        }
    }
    write_csv(dir, id, "workload,curve,overprovision_pct,proportion", &rows)?;
    Ok(preview)
}

fn f13(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    let params = q1::ProvisionParams::new(1.0, TimeGranularity::Daily);
    let mut rows = Vec::new();
    let mut preview =
        String::from("Fig 13 — spare cost, % of fleet server cost (100% SLA, daily)\n");
    for workload in [Workload::W1, Workload::W6] {
        let r = q1::provision_components(&ctx.output, workload, &params)?;
        for (level, triple) in [("component", &r.component_level), ("server", &r.server_level)] {
            let lb = r.as_pct_of_fleet_cost(triple.lb);
            let mf = r.as_pct_of_fleet_cost(triple.mf);
            let sf = r.as_pct_of_fleet_cost(triple.sf);
            rows.push(format!("{workload},{level},{lb:.3},{mf:.3},{sf:.3}"));
            let _ = writeln!(
                preview,
                "  {workload} {level:>9}-level: LB {lb:6.3}%  MF {mf:6.3}%  SF {sf:6.3}%"
            );
        }
    }
    write_csv(dir, "f13", "workload,level,lb_cost_pct,mf_cost_pct,sf_cost_pct", &rows)?;
    Ok(preview)
}

fn f14(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    let sf = q2::sf_comparison(&ctx.output, &[Sku::S1, Sku::S2, Sku::S3, Sku::S4])?;
    let peak_max = sf.iter().map(|r| r.peak_rate).fold(0.0, f64::max).max(1e-12);
    let avg_max = sf.iter().map(|r| r.avg_rate).fold(0.0, f64::max).max(1e-12);
    let mut rows = Vec::new();
    let mut preview = String::from("Fig 14 — SKU comparison, SF (normalized to max)\n");
    for r in &sf {
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4},{}",
            r.sku,
            r.peak_rate / peak_max,
            r.peak_sd / peak_max,
            r.avg_rate / avg_max,
            r.avg_sd / avg_max,
            r.racks
        ));
        let _ = writeln!(
            preview,
            "  {}: peak {:.3} (sd {:.3})  avg {:.3} (sd {:.3})  [{} racks]",
            r.sku,
            r.peak_rate / peak_max,
            r.peak_sd / peak_max,
            r.avg_rate / avg_max,
            r.avg_sd / avg_max,
            r.racks
        );
    }
    let get = |l: &str| sf.iter().find(|r| r.sku == l);
    if let (Some(s2), Some(s4)) = (get("S2"), get("S4")) {
        let _ = writeln!(
            preview,
            "  SF avg ratio S2/S4 = {:.2}x, peak ratio = {:.2}x",
            s2.avg_rate / s4.avg_rate,
            s2.peak_rate / s4.peak_rate
        );
    }
    write_csv(dir, "f14", "sku,peak_norm,peak_sd,avg_norm,avg_sd,racks", &rows)?;
    Ok(preview)
}

fn f15(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    let cart = ctx.rack_day_cart();
    let table = ctx.all_hw_table().clone();
    let mf = q2::mf_comparison(&ctx.output, &table, &cart)?;
    let sf = q2::sf_comparison(&ctx.output, &[Sku::S2, Sku::S4])?;
    let mut rows = Vec::new();
    let mut preview = String::from("Fig 15 — SKU comparison, MF (normalized effects)\n");
    for label in ["S2", "S4"] {
        let avg = mf.avg.levels.iter().find(|l| l.level == label);
        let peak = mf.peak.levels.iter().find(|l| l.level == label);
        if let (Some(a), Some(p)) = (avg, peak) {
            rows.push(format!(
                "{label},{:.4},{:.4},{:.4},{:.4}",
                p.relative, p.stddev, a.relative, a.stddev
            ));
            let _ = writeln!(
                preview,
                "  {label}: peak rel {:.3} (sd {:.3})  avg rel {:.3} (sd {:.3})",
                p.relative, p.stddev, a.relative, a.stddev
            );
        }
    }
    if let Some(ratio) = mf.avg_ratio("S2", "S4") {
        let _ = writeln!(preview, "  MF avg ratio S2/S4 = {ratio:.2}x (ground truth 4x)");
    }
    // Q2 TCO procurement scenarios (paper text: 1.0x and 1.5x prices).
    let scenarios = q2::procurement_scenarios(
        &sf,
        &mf,
        &TcoModel::default(),
        &[1.0, 1.5],
        ctx.output.config.span_days() as f64,
    )?;
    for s in &scenarios {
        rows.push(format!(
            "tco_ratio_{:.1},{:.4},{:.4},,",
            s.price_ratio,
            100.0 * s.sf_savings,
            100.0 * s.mf_savings
        ));
        let _ = writeln!(
            preview,
            "  S4 at {:.1}x price: SF estimates {:+.1}% savings, MF {:+.1}%",
            s.price_ratio,
            100.0 * s.sf_savings,
            100.0 * s.mf_savings
        );
    }
    write_csv(dir, "f15", "sku,peak_rel,peak_sd,avg_rel,avg_sd", &rows)?;
    Ok(preview)
}

fn f16(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    let table = ctx.all_hw_table();
    let mut rows = q3::rate_by_temperature(table)?;
    evidence::normalize(&mut rows);
    write_csv(dir, "f16", "label,mean,sd,n", &series_csv(&rows))?;
    Ok(series_preview("Fig 16 — temperature vs all hardware failures (SF)", &rows))
}

fn f17(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    let mut rows = q3::disk_rate_by_temperature(&ctx.output, ctx.day_stride())?;
    evidence::normalize(&mut rows);
    write_csv(dir, "f17", "label,mean,sd,n", &series_csv(&rows))?;
    Ok(series_preview("Fig 17 — temperature vs per-disk failure rate", &rows))
}

fn f18(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    let cart = ctx.rack_day_cart();
    let disk = ctx.disk_table().clone();
    let mut rows = Vec::new();
    let mut preview = String::from("Fig 18 — HDD failures vs temperature and RH (MF)\n");
    // Normalization anchor: DC1's hot+dry subgroup mean (the paper's note).
    let mut anchor = None;
    let mut analyses = Vec::new();
    for dc in ["DC1", "DC2"] {
        let subset = q3::dc_subset(&disk, dc)?;
        let r = q3::env_analysis(dc, &subset, &cart)?;
        if dc == "DC1" && r.hot_dry.n > 0 {
            anchor = Some(r.hot_dry.mean);
        }
        analyses.push(r);
    }
    let anchor = anchor.unwrap_or(1.0).max(1e-12);
    for r in &analyses {
        let _ = writeln!(
            preview,
            "  {}: T* = {:.1}F, RH* = {:.1}%  (discovered {} env rules)",
            r.dc,
            r.temp_threshold,
            r.rh_threshold,
            r.discovered.len()
        );
        for (group, g) in
            [("T<=T*", &r.cool), ("T>T*", &r.hot), ("T>T*+RH<RH*", &r.hot_dry), ("All", &r.all)]
        {
            let norm = g.mean / anchor;
            rows.push(format!("{},{group},{:.4},{:.4},{}", r.dc, norm, g.sd / anchor, g.n));
            let _ = writeln!(preview, "    {group:<14} {norm:6.3} (n={})", g.n);
        }
    }
    write_csv(dir, "f18", "dc,group,mean_norm,sd_norm,n", &rows)?;
    Ok(preview)
}

impl ExperimentContext {
    /// Day stride used for cached tables (public for experiments that build
    /// their own series).
    pub fn day_stride_pub(&self) -> usize {
        self.day_stride()
    }
}

fn p1(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    use rainshine_core::predict::{predict_failures, PredictionConfig};
    let config = PredictionConfig::default();
    let r = predict_failures(&ctx.output, &config)?;
    let c = &r.confusion;
    let rows = vec![format!(
        "balanced,{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
        c.true_positives,
        c.false_positives,
        c.true_negatives,
        c.false_negatives,
        c.precision(),
        c.recall(),
        c.f1(),
        c.base_rate(),
        c.lift()
    )];
    let mut preview = format!(
        "P1 — failure prediction (horizon {}d, balanced training)
  precision {:.3}           recall {:.3}  F1 {:.3}  base rate {:.3}  lift {:.2}x
  top factors: {}
",
        config.horizon_days,
        c.precision(),
        c.recall(),
        c.f1(),
        c.base_rate(),
        c.lift(),
        r.importance
            .iter()
            .take(4)
            .map(|(n, v)| format!("{n} ({v:.0})"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    // Unbalanced ablation in the same artifact (the paper's warning).
    let unbalanced =
        predict_failures(&ctx.output, &PredictionConfig { downsample_ratio: None, ..config })?;
    let u = &unbalanced.confusion;
    let mut rows = rows;
    rows.push(format!(
        "unbalanced,{},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
        u.true_positives,
        u.false_positives,
        u.true_negatives,
        u.false_negatives,
        u.precision(),
        u.recall(),
        u.f1(),
        u.base_rate(),
        u.lift()
    ));
    let _ = writeln!(
        preview,
        "  without balancing: recall drops {:.3} -> {:.3} (the Section V caveat)",
        c.recall(),
        u.recall()
    );
    write_csv(dir, "p1", "variant,tp,fp,tn,fn,precision,recall,f1,base_rate,lift", &rows)?;
    Ok(preview)
}

fn p2(ctx: &mut ExperimentContext, dir: &Path) -> Result<String, ExperimentError> {
    use rainshine_core::q3::{dc_subset, setpoint_tradeoff, SetpointModel};
    let cart = ctx.rack_day_cart();
    let disk = ctx.disk_table().clone();
    let dc1 = dc_subset(&disk, "DC1")?;
    let model = SetpointModel::default();
    let caps = [72.0, 74.0, 76.0, 78.0, 80.0, 82.0, f64::INFINITY];
    let rows_data = setpoint_tradeoff(&dc1, &caps, &model, &cart)?;
    let mut rows = Vec::new();
    let mut preview =
        String::from("P2 — DC1 temperature set-point trade-off (cooling OpEx vs disk failures)\n");
    for r in &rows_data {
        let cap = if r.cap_f.is_finite() { format!("{:.0}", r.cap_f) } else { "none".into() };
        rows.push(format!(
            "{cap},{:.1},{:.1},{:.1},{:.1}",
            r.failures, r.cooling_cost, r.maintenance_cost, r.total_cost
        ));
        let _ = writeln!(
            preview,
            "  cap {cap:>5} F: {:.0} failures, cooling {:.0}, maintenance {:.0}, total {:.0}",
            r.failures, r.cooling_cost, r.maintenance_cost, r.total_cost
        );
    }
    let _ = writeln!(
        preview,
        "  cheapest: cap {} (the paper's 'more extensive analysis considering cost of \
         environment control')",
        if rows_data[0].cap_f.is_finite() {
            format!("{:.0} F", rows_data[0].cap_f)
        } else {
            "none".into()
        }
    );
    write_csv(dir, "p2", "cap_f,failures,cooling_cost,maintenance_cost,total_cost", &rows)?;
    Ok(preview)
}

/// Which planted effect a negative-control ablation disables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationKind {
    /// Zero out every environmental hazard effect.
    EnvironmentOff,
    /// Remove the correlated-burst channel.
    BurstsOff,
    /// Flatten the weekday and seasonal cycles.
    CalendarOff,
}

/// Builds the medium-scale config with one effect disabled, via the
/// [`rainshine_dcsim::hazard::HazardConfig`] ablation hooks.
pub fn ablated_config(kind: AblationKind) -> FleetConfig {
    let mut config = FleetConfig::medium();
    match kind {
        AblationKind::EnvironmentOff => config.hazard.ablate_environment(),
        AblationKind::BurstsOff => config.hazard.ablate_bursts(),
        AblationKind::CalendarOff => config.hazard.ablate_calendar(),
    }
    config
}

fn ablation(dir: &Path, id: &str, kind: AblationKind) -> Result<String, ExperimentError> {
    let output = Simulation::new(ablated_config(kind), 42).run();
    match kind {
        AblationKind::EnvironmentOff => {
            let disk = rack_day_table(&output, FaultFilter::Component(HardwareFault::Disk), 1)?;
            let cart = CartParams::default().with_min_sizes(400, 200).with_cp(0.002);
            let dc1 = q3::dc_subset(&disk, "DC1")?;
            let r = q3::env_analysis("DC1", &dc1, &cart)?;
            let ratio = if r.hot.n > 0 { r.hot.mean / r.cool.mean.max(1e-12) } else { 1.0 };
            let rows = vec![format!("env_off,{},{:.4},{}", r.discovered.len(), ratio, r.hot.n)];
            write_csv(dir, id, "ablation,env_rules_found,hot_cool_ratio,hot_n", &rows)?;
            Ok(format!(
                "A1 — environment effects disabled (negative control)
  DC1 env rules                  discovered: {} (expect 0), hot/cool ratio {:.2} (expect ~1)
",
                r.discovered.len(),
                ratio
            ))
        }
        AblationKind::BurstsOff => {
            let params = q1::ProvisionParams::new(1.0, TimeGranularity::Daily);
            let r = q1::provision_servers(&output, Workload::W6, &params)?;
            let rows = vec![format!(
                "bursts_off,{:.3},{:.3},{:.3}",
                r.lb.overprovision_pct, r.mf.overprovision_pct, r.sf.overprovision_pct
            )];
            write_csv(dir, id, "ablation,lb_pct,mf_pct,sf_pct", &rows)?;
            Ok(format!(
                "A2 — bursts disabled (negative control)
  W6 100% SLA daily: LB {:.2}%                   MF {:.2}%  SF {:.2}%  (SF collapses without the correlated tail)
",
                r.lb.overprovision_pct, r.mf.overprovision_pct, r.sf.overprovision_pct
            ))
        }
        AblationKind::CalendarOff => {
            let table = rack_day_table(&output, FaultFilter::AllHardware, 1)?;
            let dow = evidence::by_day_of_week(&table, 0)?;
            let max = dow.iter().map(|r| r.mean).fold(0.0f64, f64::max);
            let min = dow.iter().map(|r| r.mean).fold(f64::INFINITY, f64::min);
            let spread = if min > 0.0 { max / min } else { f64::NAN };
            let rows = vec![format!("calendar_off,{spread:.4}")];
            write_csv(dir, id, "ablation,dow_max_over_min", &rows)?;
            Ok(format!(
                "A3 — calendar effects disabled (negative control)
  day-of-week max/min                  ratio: {spread:.3} (expect ~1; with effects on it is ~1.4)
"
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_experiments_run_at_small_scale() {
        let dir = std::env::temp_dir().join("rainshine-exp-test");
        let mut ctx = ExperimentContext::new(Scale::Small, 5);
        for id in ALL_EXPERIMENTS {
            let preview = run_experiment(id, &mut ctx, &dir)
                .unwrap_or_else(|e| panic!("experiment {id} failed: {e}"));
            assert!(!preview.is_empty(), "{id} produced empty preview");
            assert!(dir.join(format!("{id}.csv")).exists(), "{id} wrote no csv");
        }
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn ablated_configs_disable_exactly_one_channel() {
        let base = FleetConfig::medium();
        let env = ablated_config(AblationKind::EnvironmentOff);
        assert_eq!(env.hazard.disk_hot_factor, 1.0);
        assert_eq!(env.hazard.burst_base, base.hazard.burst_base, "bursts untouched");

        let bursts = ablated_config(AblationKind::BurstsOff);
        assert_eq!(bursts.hazard.burst_base, 0.0);
        assert_eq!(bursts.hazard.disk_hot_factor, base.hazard.disk_hot_factor);

        let cal = ablated_config(AblationKind::CalendarOff);
        assert_eq!(cal.hazard.weekday_factor, 1.0);
        assert_eq!(cal.hazard.season_amplitude, 0.0);
        assert!(cal.validate().is_ok());
    }

    #[test]
    fn unknown_experiment_errors() {
        let dir = std::env::temp_dir().join("rainshine-exp-test2");
        let mut ctx = ExperimentContext::new(Scale::Small, 5);
        assert!(run_experiment("zz", &mut ctx, &dir).is_err());
    }
}
