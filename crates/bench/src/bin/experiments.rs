//! Regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--scale small|medium|paper] [--seed N] [--out DIR] [--only ID[,ID...]]
//!             [--threads N|auto] [--corrupt RATE] [--corrupt-spec k=v,...]
//!             [--report PATH]
//! ```
//!
//! `--threads` controls the worker-thread count of the parallel stages
//! (simulation ticket generation; `auto`/`0` = one per core, `1` =
//! sequential). Results are bit-identical for every setting.
//!
//! `--corrupt RATE` / `--corrupt-spec k=v,...` inject dirty data before the
//! ingestion pipeline runs; the data-quality report is printed to stderr so
//! corruption scenarios are reproducible from the CLI.
//!
//! `--report PATH` writes the deterministic section of the run report
//! (stage call/item counts, counters, histograms, the data-quality payload)
//! as JSON. Those bytes are identical for a fixed (scale, seed, corruption)
//! at any `--threads` setting; wall-clock timings go only to the stderr
//! summary printed at the end of every run.
//!
//! Writes one CSV per artifact into the output directory (default
//! `results/`) and prints a preview of each.

use std::path::PathBuf;
use std::process::ExitCode;

use rainshine_bench::{run_experiment, run_report, ExperimentContext, Scale, ALL_EXPERIMENTS};
use rainshine_dcsim::CorruptionConfig;
use rainshine_obs::Obs;
use rainshine_parallel::Parallelism;

struct Args {
    scale: Scale,
    seed: u64,
    out: PathBuf,
    only: Option<Vec<String>>,
    threads: Parallelism,
    corruption: CorruptionConfig,
    report: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Paper,
        seed: 42,
        out: PathBuf::from("results"),
        only: None,
        threads: Parallelism::Auto,
        corruption: CorruptionConfig::default(),
        report: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--scale" => {
                let v = value("--scale")?;
                args.scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale `{v}`"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?.parse().map_err(|e| format!("bad seed: {e}"))?;
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--only" => {
                args.only =
                    Some(value("--only")?.split(',').map(|s| s.trim().to_owned()).collect());
            }
            "--threads" => args.threads = Parallelism::from_flag(&value("--threads")?)?,
            "--corrupt" => {
                let rate: f64 =
                    value("--corrupt")?.parse().map_err(|e| format!("bad corruption rate: {e}"))?;
                args.corruption = CorruptionConfig::with_total_rate(rate);
            }
            "--corrupt-spec" => {
                args.corruption = CorruptionConfig::parse_spec(&value("--corrupt-spec")?)?;
            }
            "--report" => args.report = Some(PathBuf::from(value("--report")?)),
            "--help" | "-h" => {
                return Err("usage: experiments [--scale small|medium|paper] [--seed N] \
                     [--out DIR] [--only ID[,ID...]] [--threads N|auto] \
                     [--corrupt RATE] [--corrupt-spec k=v,...] [--report PATH]"
                    .to_owned());
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let ids: Vec<String> = match &args.only {
        Some(list) => list.clone(),
        None => ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect(),
    };
    eprintln!(
        "simulating fleet ({:?} scale, seed {}, {:?}) ...",
        args.scale, args.seed, args.threads
    );
    // The obs handle replaces ad-hoc Instant timing: the simulation and
    // every experiment record stage spans, and the wall times surface in
    // the stderr summary below.
    let obs = Obs::enabled();
    let mut ctx = ExperimentContext::new_with_obs(
        args.scale,
        args.seed,
        args.threads,
        args.corruption,
        obs.clone(),
    );
    eprintln!(
        "simulated {} racks, {} tickets\n",
        ctx.output.fleet.racks.len(),
        ctx.output.tickets.len(),
    );
    if ctx.output.config.corruption.is_enabled() {
        eprintln!("{}\n", ctx.output.quality);
    }
    let mut failures = 0;
    for id in &ids {
        match run_experiment(id, &mut ctx, &args.out) {
            Ok(preview) => {
                println!("=== {id} ===\n{preview}");
            }
            Err(e) => {
                eprintln!("experiment {id} FAILED: {e}");
                failures += 1;
            }
        }
    }
    let report = run_report(&obs, &ctx.output, args.scale, args.seed);
    eprintln!("{}", report.human_summary());
    let mut report_failed = false;
    if let Some(path) = &args.report {
        if let Err(e) = std::fs::write(path, report.deterministic_json() + "\n") {
            eprintln!("failed to write report {}: {e}", path.display());
            report_failed = true;
        } else {
            eprintln!("report written to {}", path.display());
        }
    }
    eprintln!(
        "done: {}/{} experiments, artifacts in {}",
        ids.len() - failures,
        ids.len(),
        args.out.display()
    );
    if failures > 0 || report_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
