//! Dumps a full synthetic dataset — the stand-in for the paper's
//! production data — as CSVs for downstream analysis in any toolchain.
//!
//! ```text
//! simulate [--scale small|medium|paper] [--seed N] [--out DIR] [--threads N|auto]
//!          [--corrupt RATE] [--corrupt-spec k=v,...] [--report PATH]
//! ```
//!
//! `--threads` controls how many worker threads the simulator's per-rack
//! generation loops use (`auto`/`0` = one per core, `1` = sequential).
//! The output is bit-identical for every setting.
//!
//! `--corrupt RATE` injects dirty data at the given total ticket-defect
//! rate (see [`rainshine_dcsim::CorruptionConfig::with_total_rate`]);
//! `--corrupt-spec` sets per-class rates explicitly
//! (`duplicate=0.02,blackout_windows=1,...`). With corruption enabled the
//! data-quality report is printed to stderr and written to the manifest.
//!
//! `--report PATH` instruments the run and writes the deterministic
//! section of the run report (stage call/item counts, counters, quality
//! payload) as JSON; the bytes are identical at any `--threads` setting
//! for a fixed (scale, seed, corruption). The human-readable summary with
//! wall-clock times goes to stderr.
//!
//! Writes `fleet.csv` (rack inventory), `tickets.csv` (the sanitized RMA
//! stream, false positives flagged), `environment.csv` (daily ingested
//! inlet conditions per DC-region; blacked-out cells are `nan`), and
//! `manifest.json` (config + counts + quality report).

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use rainshine_bench::Scale;
use rainshine_dcsim::{CorruptionConfig, Simulation};
use rainshine_obs::Obs;
use rainshine_parallel::Parallelism;
use rainshine_telemetry::ids::{DcId, RegionId};

fn main() -> ExitCode {
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut out = PathBuf::from("dataset");
    let mut threads = Parallelism::Auto;
    let mut corruption = CorruptionConfig::default();
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("missing value for {name}"));
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--scale" => {
                    let v = value("--scale")?;
                    scale = Scale::parse(&v).ok_or_else(|| format!("unknown scale `{v}`"))?;
                }
                "--seed" => seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
                "--out" => out = PathBuf::from(value("--out")?),
                "--threads" => threads = Parallelism::from_flag(&value("--threads")?)?,
                "--corrupt" => {
                    let rate: f64 = value("--corrupt")?.parse().map_err(|e| format!("{e}"))?;
                    corruption = CorruptionConfig::with_total_rate(rate);
                }
                "--corrupt-spec" => {
                    corruption = CorruptionConfig::parse_spec(&value("--corrupt-spec")?)?;
                }
                "--report" => report_path = Some(PathBuf::from(value("--report")?)),
                "--help" | "-h" => {
                    return Err("usage: simulate [--scale small|medium|paper] [--seed N] \
                                [--out DIR] [--threads N|auto] [--corrupt RATE] \
                                [--corrupt-spec k=v,...] [--report PATH]"
                        .into())
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
            Ok(())
        })();
        if let Err(msg) = result {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    }

    let mut config = match scale {
        Scale::Small => rainshine_dcsim::FleetConfig::small(),
        Scale::Medium => rainshine_dcsim::FleetConfig::medium(),
        Scale::Paper => rainshine_dcsim::FleetConfig::paper_scale(),
    };
    config.parallelism = threads;
    config.corruption = corruption;
    eprintln!("simulating ({scale:?}, seed {seed}, {threads:?}) ...");
    let obs = if report_path.is_some() { Obs::enabled() } else { Obs::disabled() };
    let output = Simulation::new(config, seed).run_with_obs(&obs);
    if output.config.corruption.is_enabled() {
        eprintln!("{}", output.quality);
    }
    if let Some(path) = &report_path {
        let report = rainshine_bench::run_report(&obs, &output, scale, seed);
        eprintln!("{}", report.human_summary());
        if let Err(e) = fs::write(path, report.deterministic_json() + "\n") {
            eprintln!("failed to write report {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("report written to {}", path.display());
    }
    if let Err(e) = write_dataset(&output, &out) {
        eprintln!("failed to write dataset: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "wrote {} racks, {} tickets to {}",
        output.fleet.racks.len(),
        output.tickets.len(),
        out.display()
    );
    ExitCode::SUCCESS
}

fn write_dataset(output: &rainshine_dcsim::SimulationOutput, dir: &PathBuf) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;

    // Rack inventory.
    let mut fleet = String::from(
        "rack,dc,region,row,sku,workload,power_kw,commissioned_day,servers,disks_per_server,dimms_per_server\n",
    );
    for r in &output.fleet.racks {
        let spec = r.sku_spec();
        fleet.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            r.id,
            r.dc,
            r.region.0,
            r.row.0,
            r.sku,
            r.workload,
            r.power_kw,
            r.commissioned_day,
            r.servers,
            spec.disks_per_server,
            spec.dimms_per_server
        ));
    }
    fs::write(dir.join("fleet.csv"), fleet)?;

    // Ticket stream.
    let mut tickets = String::from(
        "device,dc,region,row,rack,server,category,fault,opened_hour,resolved_hour,repeat_count,false_positive\n",
    );
    for t in &output.tickets {
        tickets.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}\n",
            t.device,
            t.location.dc,
            t.location.region.0,
            t.location.row.0,
            t.location.rack,
            t.location.server,
            t.fault.category(),
            t.fault,
            t.opened.hours(),
            t.resolved.hours(),
            t.repeat_count,
            t.false_positive
        ));
    }
    fs::write(dir.join("tickets.csv"), tickets)?;

    // Daily ingested environment per DC-region (winsorized spikes, NaN
    // blackouts); identical to the raw sensor stream on clean runs.
    let mut env = String::from("dc,region,day,temp_f,rh\n");
    for dc_env in output.env.datacenters() {
        let regions = dc_env.region_temp_offsets.len() as u8;
        for region in 1..=regions {
            for day in output.config.start.days()..output.config.end.days() {
                let c = output.ingested_daily_env(DcId(dc_env.dc.0), RegionId(region), day);
                env.push_str(&format!(
                    "{},{},{},{:.2},{:.2}\n",
                    dc_env.dc, region, day, c.temp_f, c.rh
                ));
            }
        }
    }
    fs::write(dir.join("environment.csv"), env)?;

    // Manifest.
    let manifest = serde_json::json!({
        "seed": output.seed,
        "start_day": output.config.start.days(),
        "end_day": output.config.end.days(),
        "racks": output.fleet.racks.len(),
        "servers": output.fleet.total_servers(),
        "tickets": output.tickets.len(),
        "true_positives": output.true_positives().len(),
        "hardware_tickets": output.hardware_tickets().len(),
        "hazard": output.config.hazard,
        "corruption": output.config.corruption,
        "quality": output.quality,
    });
    fs::write(dir.join("manifest.json"), serde_json::to_string_pretty(&manifest)?)?;
    Ok(())
}
