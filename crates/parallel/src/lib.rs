//! Deterministic data-parallel execution for the analysis hot paths.
//!
//! Every parallel stage in this workspace (forest fitting, PDP grids,
//! bootstrap resampling, per-rack ticket generation) follows the same
//! recipe:
//!
//! 1. each work item is *independent* and carries its own derived RNG
//!    seed (see [`derive_seed`]), so no item observes another item's
//!    random stream;
//! 2. results are merged back **in item-index order**, never in thread
//!    completion order.
//!
//! Together these make the output of [`par_map`] a pure function of the
//! input — bit-identical for `Sequential`, `Threads(n)` for any `n`,
//! and `Auto`. Thread count only changes wall-clock time.
//!
//! The layer is built on `std::thread::scope` rather than an external
//! thread-pool crate because the build environment is offline; the
//! contiguous-chunk split below is the same static partitioning a
//! rayon `par_iter().with_min_len(...)` would settle into for uniform
//! workloads.

use serde::{Deserialize, Serialize};

/// How a parallelizable stage should execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Parallelism {
    /// Run on the calling thread, one item at a time.
    Sequential,
    /// Use exactly this many worker threads (clamped to ≥ 1).
    Threads(usize),
    /// Use one worker per available CPU core.
    #[default]
    Auto,
}

impl Parallelism {
    /// Resolves to a concrete worker count (always ≥ 1).
    pub fn resolve_threads(self) -> usize {
        match self {
            Parallelism::Sequential => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => {
                std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
            }
        }
    }

    /// Parses a `--threads` style argument: `0`/`auto` mean [`Auto`],
    /// `1` means [`Sequential`], anything else is [`Threads`].
    ///
    /// [`Auto`]: Parallelism::Auto
    /// [`Sequential`]: Parallelism::Sequential
    /// [`Threads`]: Parallelism::Threads
    pub fn from_flag(value: &str) -> Result<Self, String> {
        if value.eq_ignore_ascii_case("auto") {
            return Ok(Parallelism::Auto);
        }
        match value.parse::<usize>() {
            Ok(0) => Ok(Parallelism::Auto),
            Ok(1) => Ok(Parallelism::Sequential),
            Ok(n) => Ok(Parallelism::Threads(n)),
            Err(_) => Err(format!("invalid thread count `{value}` (expected a number or `auto`)")),
        }
    }
}

/// Derives an independent RNG seed for work item `index` of a stage.
///
/// The mix is SplitMix64's finalizer over the stage seed combined with
/// the item index, so per-item streams are decorrelated even for
/// adjacent indices and small seeds. Stages that need several distinct
/// streams per item (e.g. a simulator's hardware vs. burst phases) call
/// this with distinct `stream` tags.
pub fn derive_seed(stage_seed: u64, stream: u64, index: u64) -> u64 {
    let mut z = stage_seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps `f` over `0..len`, producing results in index order.
///
/// `f` must be a pure function of its index (plus captured immutable
/// state): the contract that makes thread count invisible in the
/// output. With one thread (or short inputs) this runs inline on the
/// caller's thread with no spawn overhead.
pub fn par_map_range<T, F>(parallelism: Parallelism, len: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = parallelism.resolve_threads().min(len.max(1));
    if threads <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }

    // Static contiguous chunks: chunk boundaries depend only on
    // (len, threads), and the final concat is in chunk order, so the
    // output order is deterministic regardless of scheduling.
    let base = len / threads;
    let extra = len % threads;
    let mut bounds = Vec::with_capacity(threads + 1);
    let mut at = 0;
    bounds.push(0);
    for worker in 0..threads {
        at += base + usize::from(worker < extra);
        bounds.push(at);
    }

    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .windows(2)
            .map(|w| {
                let (lo, hi) = (w[0], w[1]);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
            })
            .collect();
        let mut out = Vec::with_capacity(len);
        for handle in handles {
            out.extend(handle.join().expect("parallel worker panicked"));
        }
        out
    })
}

/// Maps `f` over a slice, producing results in input order.
pub fn par_map<'a, I, T, F>(parallelism: Parallelism, items: &'a [I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&'a I) -> T + Sync,
{
    par_map_range(parallelism, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_threads_is_positive() {
        assert_eq!(Parallelism::Sequential.resolve_threads(), 1);
        assert_eq!(Parallelism::Threads(0).resolve_threads(), 1);
        assert_eq!(Parallelism::Threads(6).resolve_threads(), 6);
        assert!(Parallelism::Auto.resolve_threads() >= 1);
    }

    #[test]
    fn from_flag_parses() {
        assert_eq!(Parallelism::from_flag("auto").unwrap(), Parallelism::Auto);
        assert_eq!(Parallelism::from_flag("0").unwrap(), Parallelism::Auto);
        assert_eq!(Parallelism::from_flag("1").unwrap(), Parallelism::Sequential);
        assert_eq!(Parallelism::from_flag("8").unwrap(), Parallelism::Threads(8));
        assert!(Parallelism::from_flag("eight").is_err());
    }

    #[test]
    fn par_map_preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for par in [
            Parallelism::Sequential,
            Parallelism::Threads(2),
            Parallelism::Threads(4),
            Parallelism::Threads(13),
            Parallelism::Threads(1000),
            Parallelism::Auto,
        ] {
            assert_eq!(par_map(par, &items, |x| x * 3 + 1), expected, "{par:?}");
        }
    }

    #[test]
    fn par_map_range_handles_degenerate_sizes() {
        assert!(par_map_range(Parallelism::Threads(4), 0, |i| i).is_empty());
        assert_eq!(par_map_range(Parallelism::Threads(4), 1, |i| i), vec![0]);
    }

    #[test]
    fn derived_seeds_are_decorrelated() {
        let a = derive_seed(42, 0, 0);
        let b = derive_seed(42, 0, 1);
        let c = derive_seed(42, 1, 0);
        let d = derive_seed(43, 0, 0);
        assert!(a != b && a != c && a != d && b != c);
        // Stable across calls.
        assert_eq!(a, derive_seed(42, 0, 0));
    }

    #[test]
    fn parallelism_serializes() {
        let v = serde::Serialize::to_value(&Parallelism::Threads(4));
        let back: Parallelism = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, Parallelism::Threads(4));
        let v = serde::Serialize::to_value(&Parallelism::Auto);
        let back: Parallelism = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, Parallelism::Auto);
    }
}
