//! Fleet explorer: poke at the simulated fleet and its telemetry directly —
//! topology, environment time series, failure metrics at several spatial
//! and temporal granularities.
//!
//! ```text
//! cargo run --release --example fleet_explorer
//! ```

use rainshine::dcsim::{FleetConfig, Simulation};
use rainshine::telemetry::ids::DcId;
use rainshine::telemetry::metrics::{self, SpatialGranularity};
use rainshine::telemetry::time::{SimTime, TimeGranularity};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let output = Simulation::new(FleetConfig::medium(), 3).run();

    // Topology.
    println!("datacenters:");
    for dc in &output.fleet.datacenters {
        let racks = output.fleet.racks_in(dc.id).count();
        let servers: u64 = output.fleet.racks_in(dc.id).map(|r| r.servers as u64).sum();
        println!(
            "  {}: {} ({} nines, {}) — {racks} racks, {servers} servers",
            dc.id,
            dc.packaging,
            dc.availability_nines,
            dc.cooling.name()
        );
    }

    // A midsummer day's environment in both DCs.
    let july_noon = SimTime::from_date(2012, 7, 15, 15);
    println!("\nenvironment on {july_noon}:");
    for rack in [output.fleet.racks_in(DcId(1)).next(), output.fleet.racks_in(DcId(2)).next()]
        .into_iter()
        .flatten()
    {
        let env = output.env.sample(rack.dc, rack.region, july_noon);
        println!(
            "  {} {} rack {}: inlet {:.1} F, RH {:.0}%",
            rack.dc, rack.region, rack.id, env.temp_f, env.rh
        );
    }

    // Failure metrics: λ per DC per month, and the worst rack by peak μ.
    let hardware = output.hardware_tickets();
    let monthly = metrics::lambda(
        &hardware,
        SpatialGranularity::Datacenter,
        TimeGranularity::Monthly,
        output.config.start,
        output.config.end,
    );
    println!("\nhardware failures per month:");
    for (key, series) in &monthly {
        let per_month: Vec<u64> =
            (0..series.windows).map(|w| series.nonzero.get(&w).copied().unwrap_or(0)).collect();
        println!("  DC{}: {per_month:?}", key.dc);
    }

    let per_rack_mu = metrics::mu(
        &hardware,
        SpatialGranularity::Rack,
        TimeGranularity::Daily,
        output.config.start,
        output.config.end,
    );
    let worst = per_rack_mu.iter().max_by_key(|(_, s)| s.max()).expect("fleet has tickets");
    let rack =
        output.fleet.rack(rainshine::telemetry::ids::RackId(worst.0.rack)).expect("rack exists");
    println!(
        "\nworst rack by concurrent failures: {} ({} {} {}, {} servers) — \
         {} devices down in its worst day",
        rack.id,
        rack.dc,
        rack.sku,
        rack.workload,
        rack.servers,
        worst.1.max()
    );
    Ok(())
}
