//! Q3 walkthrough: how far can we relax the environmental set-points?
//!
//! Reproduces the paper's Figs. 16–18 reasoning: the pooled
//! temperature-vs-failures view is muddy; normalizing the non-environmental
//! factors and letting CART search the (temperature, humidity) plane
//! discovers the operating region that actually hurts — hot **and** dry in
//! the adiabatically cooled DC1, and nothing at all in the chilled-water
//! DC2.
//!
//! ```text
//! cargo run --release --example climate_control
//! ```

use rainshine::analysis::dataset::{rack_day_table, FaultFilter};
use rainshine::analysis::q3::{
    dc_subset, disk_rate_by_temperature, env_analysis, rate_by_temperature,
};
use rainshine::cart::params::CartParams;
use rainshine::dcsim::{FleetConfig, Simulation};
use rainshine::telemetry::rma::HardwareFault;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let output = Simulation::new(FleetConfig::medium(), 31).run();

    // Single-factor: all failures vs temperature — the muddy view.
    let all_table = rack_day_table(&output, FaultFilter::AllHardware, 1)?;
    println!("all hardware failures by temperature bin (note the within-bin spread):");
    for row in rate_by_temperature(&all_table)? {
        println!("  {:>8}: mean {:.4}  sd {:.4}  (n={})", row.label, row.mean, row.sd, row.n);
    }

    // Per-disk rates make the trend visible (Fig. 17).
    println!("\nper-disk failure rate by temperature bin:");
    for row in disk_rate_by_temperature(&output, 1)? {
        println!("  {:>8}: {:.4} per 1000 disk-days", row.label, row.mean);
    }

    // Multi-factor: threshold discovery per DC (Fig. 18).
    let disk_table = rack_day_table(&output, FaultFilter::Component(HardwareFault::Disk), 1)?;
    let cart = CartParams::default().with_min_sizes(400, 200).with_cp(0.002);
    println!();
    for dc in ["DC1", "DC2"] {
        let subset = dc_subset(&disk_table, dc)?;
        let r = env_analysis(dc, &subset, &cart)?;
        println!(
            "{dc}: discovered T* = {:.1} F, RH* = {:.1}% ({} environmental splits)",
            r.temp_threshold,
            r.rh_threshold,
            r.discovered.len()
        );
        let base = r.cool.mean.max(1e-12);
        println!("  T <= T*            : 1.00x  (n={})", r.cool.n);
        if r.hot.n > 0 {
            println!("  T  > T*            : {:.2}x  (n={})", r.hot.mean / base, r.hot.n);
        }
        if r.hot_dry.n > 0 {
            println!("  T  > T*, RH < RH*  : {:.2}x  (n={})", r.hot_dry.mean / base, r.hot_dry.n);
        }
    }
    // The paper's closing remark made concrete: what does the cheapest
    // set-point actually look like once cooling OpEx is priced in?
    use rainshine::analysis::q3::{setpoint_tradeoff, SetpointModel};
    let dc1 = dc_subset(&disk_table, "DC1")?;
    let options = setpoint_tradeoff(
        &dc1,
        &[72.0, 76.0, 78.0, 82.0, f64::INFINITY],
        &SetpointModel::default(),
        &cart,
    )?;
    println!("\nDC1 set-point trade-off (cheapest first):");
    for o in &options {
        let cap = if o.cap_f.is_finite() { format!("{:.0} F", o.cap_f) } else { "none ".into() };
        println!(
            "  cap {cap}: {:.0} failures, cooling {:.0} + maintenance {:.0} = {:.0}",
            o.failures, o.cooling_cost, o.maintenance_cost, o.total_cost
        );
    }
    println!(
        "\noperational takeaway: DC1 should cap inlet temperature just below the \
         discovered threshold while the air is dry; DC2's knobs have slack."
    );
    Ok(())
}
