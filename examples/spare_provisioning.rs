//! Q1 walkthrough: how many spare servers does a workload need?
//!
//! Compares the paper's three approaches (lower bound, single-factor,
//! multi-factor) for a compute and a storage workload, at daily and hourly
//! provisioning granularity, and prices the difference with the TCO model
//! (the paper's Figs. 10–12 and Table IV).
//!
//! ```text
//! cargo run --release --example spare_provisioning
//! ```

use rainshine::analysis::q1::{provision_servers, tco_savings, ProvisionParams};
use rainshine::analysis::tco::TcoModel;
use rainshine::dcsim::{FleetConfig, Simulation};
use rainshine::telemetry::ids::Workload;
use rainshine::telemetry::time::TimeGranularity;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let output = Simulation::new(FleetConfig::medium(), 11).run();
    let tco = TcoModel::default();

    for workload in [Workload::W1, Workload::W6] {
        println!("=== workload {workload} ===");
        for granularity in [TimeGranularity::Daily, TimeGranularity::Hourly] {
            for sla in [0.90, 0.95, 1.00] {
                let params = ProvisionParams::new(sla, granularity);
                let r = provision_servers(&output, workload, &params)?;
                println!(
                    "  {:?} SLA {:>5.1}%: LB {:5.2}%  MF {:5.2}%  SF {:5.2}%  \
                     (TCO savings MF vs SF: {:4.1}%)",
                    granularity,
                    sla * 100.0,
                    r.lb.overprovision_pct,
                    r.mf.overprovision_pct,
                    r.sf.overprovision_pct,
                    100.0 * tco_savings(&r, &tco),
                );
            }
        }
        // Show what the MF clusters look like at the strictest setting.
        let r = provision_servers(
            &output,
            workload,
            &ProvisionParams::new(1.0, TimeGranularity::Daily),
        )?;
        println!("  clusters at 100% SLA (daily):");
        for c in &r.clusters {
            println!(
                "    #{}: {} racks, {:.1}% spares — {}",
                c.id,
                c.racks.len(),
                100.0 * c.spare_fraction,
                if c.path.is_empty() { "(whole population)".into() } else { c.path.join(" & ") }
            );
        }
        println!(
            "  top factors: {}",
            r.importance
                .iter()
                .take(3)
                .map(|(n, s)| format!("{n} ({s:.0})"))
                .collect::<Vec<_>>()
                .join(", ")
        );
        println!();
    }
    Ok(())
}
