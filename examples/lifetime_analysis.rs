//! Survival analysis of rack lifetimes: Kaplan–Meier, life-table hazards,
//! and a Weibull fit to time-to-first-hardware-failure — the classic
//! reliability-engineering companions to the paper's bathtub observations
//! (its Fig. 9 and refs. [41], [46]).
//!
//! ```text
//! cargo run --release --example lifetime_analysis
//! ```

use std::collections::HashMap;

use rainshine::dcsim::{FleetConfig, Simulation};
use rainshine::stats::survival::{hazard_by_age, weibull_mle, KaplanMeier, Lifetime};
use rainshine::telemetry::ids::RackId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let output = Simulation::new(FleetConfig::medium(), 19).run();
    let end_day = output.config.end.days() as i64;

    // Time (days) from commissioning to the rack's first hardware failure;
    // racks with no failure are right-censored at the window end.
    //
    // Caveat kept simple for the demo: racks commissioned before the
    // observation window are *left-truncated* (their pre-window failures
    // are unobservable), which biases the early part of the curve upward;
    // a production analysis would condition on entry age.
    let mut first_failure: HashMap<RackId, i64> = HashMap::new();
    for t in output.hardware_tickets() {
        let day = t.opened.days() as i64;
        first_failure.entry(t.location.rack).and_modify(|d| *d = (*d).min(day)).or_insert(day);
    }
    let mut lifetimes = Vec::new();
    for rack in &output.fleet.racks {
        if rack.commissioned_day >= end_day {
            continue;
        }
        match first_failure.get(&rack.id) {
            Some(&fail_day) => {
                let t = (fail_day - rack.commissioned_day).max(1) as f64;
                lifetimes.push(Lifetime::failure(t));
            }
            None => {
                let t = (end_day - rack.commissioned_day).max(1) as f64;
                lifetimes.push(Lifetime::censored(t));
            }
        }
    }
    let failures = lifetimes.iter().filter(|l| l.failed).count();
    println!(
        "{} racks: {} saw a hardware failure, {} censored",
        lifetimes.len(),
        failures,
        lifetimes.len() - failures
    );

    // Kaplan–Meier survival curve at a few horizons.
    let km = KaplanMeier::fit(&lifetimes)?;
    println!("\nKaplan–Meier: P(no hardware failure by day t)");
    for t in [7.0, 30.0, 90.0, 180.0, 365.0] {
        println!("  t = {t:>5.0} d: S = {:.3}", km.survival_at(t));
    }
    match km.median() {
        Some(m) => println!("  median time to first failure: {m:.0} days"),
        None => println!("  median not reached (heavy censoring)"),
    }

    // Life-table hazard over age bins: the bathtub's infant side.
    println!("\nhazard rate by age bin (first-failure hazard per rack-day):");
    for (label, h) in hazard_by_age(&lifetimes, &[30.0, 90.0, 180.0, 365.0, 540.0])? {
        println!("  {label:>9} d: {h:.5}");
    }

    // Weibull MLE: shape < 1 means decreasing hazard (infant mortality).
    let fit = weibull_mle(&lifetimes)?;
    println!(
        "\nWeibull fit: shape k = {:.3} ({}), scale λ = {:.1} days",
        fit.shape,
        if fit.shape < 1.0 {
            "decreasing hazard — infant mortality dominates"
        } else {
            "increasing hazard"
        },
        fit.scale
    );
    Ok(())
}
