//! Quickstart: simulate a small fleet, look at its failure data, and fit a
//! CART model to explain rack-day failure rates.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rainshine::analysis::dataset::{rack_day_table, FaultFilter};
use rainshine::cart::dataset::CartDataset;
use rainshine::cart::params::CartParams;
use rainshine::cart::tree::Tree;
use rainshine::dcsim::{FleetConfig, Simulation};
use rainshine::telemetry::rma::category_breakdown;
use rainshine::telemetry::schema::columns;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Simulate six months of a small two-DC fleet, deterministically.
    let output = Simulation::new(FleetConfig::small(), 7).run();
    println!(
        "fleet: {} racks / {} servers; tickets: {}",
        output.fleet.racks.len(),
        output.fleet.total_servers(),
        output.tickets.len()
    );

    // 2. The ticket mix (the paper's Table II shape).
    let tp = output.true_positives();
    println!("\nticket mix (true positives):");
    for (fault, count, pct) in category_breakdown(&tp).into_iter().take(6) {
        println!("  {fault:<22} {count:>6}  {pct:5.2}%");
    }

    // 3. Build the rack-day analysis table (Table III features + λ).
    let table = rack_day_table(&output, FaultFilter::AllHardware, 1)?;
    println!("\nanalysis table: {} rows × {} columns", table.rows(), table.schema().len());

    // 4. Fit a regression tree on hardware failure rate and rank factors.
    let ds = CartDataset::regression(
        &table,
        columns::FAILURE_RATE,
        &[
            columns::SKU,
            columns::WORKLOAD,
            columns::DATACENTER,
            columns::AGE_MONTHS,
            columns::TEMPERATURE_F,
            columns::RATED_POWER_KW,
        ],
    )?;
    let tree = Tree::fit(&ds, &CartParams::default().with_min_sizes(200, 100))?;
    println!("\nCART: {} leaves, depth {}", tree.leaf_count(), tree.depth());
    println!("variable importance:");
    for (name, score) in tree.variable_importance().into_iter().take(6) {
        println!("  {name:<16} {score:5.1}");
    }
    Ok(())
}
