//! Q2 walkthrough: which vendor's SKU should we buy?
//!
//! Shows how the raw (single-factor) failure histograms exaggerate the
//! reliability gap between two SKUs that happen to be deployed in very
//! different conditions, how the multi-factor normalization recovers the
//! intrinsic gap, and what that does to the procurement decision
//! (the paper's Figs. 14–15 and the Section VI TCO scenarios).
//!
//! ```text
//! cargo run --release --example vendor_selection
//! ```

use rainshine::analysis::dataset::{rack_day_table, FaultFilter};
use rainshine::analysis::q2::{mf_comparison, procurement_scenarios, sf_comparison};
use rainshine::analysis::tco::TcoModel;
use rainshine::cart::params::CartParams;
use rainshine::dcsim::{FleetConfig, Simulation};
use rainshine::telemetry::ids::Sku;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let output = Simulation::new(FleetConfig::medium(), 23).run();

    // Single-factor view: raw failure rates per SKU.
    let sf = sf_comparison(&output, &[Sku::S1, Sku::S2, Sku::S3, Sku::S4])?;
    println!("single-factor view (raw rates):");
    for r in &sf {
        println!(
            "  {}: avg {:.4}/rack-day (sd {:.4}), peak μ {:.2} (sd {:.2}), {} racks",
            r.sku, r.avg_rate, r.avg_sd, r.peak_rate, r.peak_sd, r.racks
        );
    }
    let get = |l: &str| sf.iter().find(|r| r.sku == l).expect("sku present");
    let raw_ratio = get("S2").avg_rate / get("S4").avg_rate;
    println!("  raw S2:S4 average-rate ratio = {raw_ratio:.1}x");

    // Multi-factor view: normalize DC, region, power, workload, age, temp.
    let table = rack_day_table(&output, FaultFilter::AllHardware, 2)?;
    let cart = CartParams::default().with_min_sizes(120, 60).with_cp(0.001);
    let mf = mf_comparison(&output, &table, &cart)?;
    let mf_ratio = mf.avg_ratio("S2", "S4").expect("both SKUs present");
    println!("\nmulti-factor view (confounders normalized):");
    println!("  S2:S4 ratio = {mf_ratio:.1}x  (ground truth planted in the simulator: 4.0x)");
    println!("  -> the single-factor view overstates the gap by {:.1}x", raw_ratio / mf_ratio);

    // Procurement decision at two price points.
    let scenarios = procurement_scenarios(
        &sf,
        &mf,
        &TcoModel::default(),
        &[1.0, 1.5],
        output.config.span_days() as f64,
    )?;
    println!("\nprocurement: buy the reliable S4 instead of S2?");
    for s in &scenarios {
        println!(
            "  S4 at {:.1}x price: SF says {:+.1}% TCO, MF says {:+.1}% — {}",
            s.price_ratio,
            100.0 * s.sf_savings,
            100.0 * s.mf_savings,
            if s.sf_savings > 0.0 && s.mf_savings < 0.0 {
                "SF would overpay!"
            } else if s.mf_savings > 0.0 {
                "both say buy"
            } else {
                "both say skip"
            }
        );
    }
    Ok(())
}
