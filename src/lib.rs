//! # rainshine
//!
//! A Rust reproduction of *"Rain or Shine? — Making Sense of Cloudy
//! Reliability Data"* (ICDCS 2017): a multi-factor failure-analysis framework
//! for cloud datacenters, together with the generative datacenter simulator
//! and statistics/CART substrates it needs.
//!
//! This meta-crate re-exports the workspace crates under stable module names:
//!
//! * [`parallel`] — deterministic parallel-execution layer ([`parallel::Parallelism`])
//! * [`obs`] — offline structured observability: spans, counters, run reports ([`obs::Obs`])
//! * [`stats`] — statistics substrate (ECDF, distributions, tests, …)
//! * [`telemetry`] — data model: columnar tables, calendar, RMA tickets, λ/μ metrics
//! * [`dcsim`] — generative fleet simulator (topology, climate, hazards, tickets)
//! * [`cart`] — classification and regression trees + partial dependence
//! * [`analysis`] — the paper's framework: Q1 spares, Q2 SKUs, Q3 environment, TCO
//!
//! # Quickstart
//!
//! ```
//! use rainshine::dcsim::{FleetConfig, Simulation};
//!
//! // A small deterministic fleet: simulate six months and count tickets.
//! let config = FleetConfig::small();
//! let output = Simulation::new(config, 42).run();
//! assert!(!output.tickets.is_empty());
//! ```

pub use rainshine_cart as cart;
pub use rainshine_core as analysis;
pub use rainshine_dcsim as dcsim;
pub use rainshine_obs as obs;
pub use rainshine_parallel as parallel;
pub use rainshine_stats as stats;
pub use rainshine_telemetry as telemetry;
