//! Offline stand-in for `serde_json`, rendering the vendored serde
//! shim's [`Value`] tree as JSON and parsing JSON text back into it.
//!
//! Output conventions match real `serde_json`: struct fields in
//! declaration order, `None` and non-finite floats as `null`, unit enum
//! variants as strings, data-carrying variants as single-key objects.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error for JSON parsing or value conversion.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] when the tree's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

/// Builds a [`Value`] literal with JSON syntax.
///
/// Supports the subset used here: object literals with string-literal
/// keys and serializable expression values, array literals, `null`, and
/// bare serializable expressions. Nest objects by nesting `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$item) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Match serde_json: whole floats print with a trailing `.0`.
        out.push_str(&format!("{f:.1}"));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::new)?,
                                16,
                            )
                            .map_err(Error::new)?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_match_serde_json_shapes() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::Str("dc1".into())),
            ("racks".to_string(), Value::U64(331)),
            ("rate".to_string(), Value::F64(0.5)),
            ("tags".to_string(), Value::Array(vec![Value::I64(1), Value::I64(2)])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"name":"dc1","racks":331,"rate":0.5,"tags":[1,2]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"dc1\""));
    }

    #[test]
    fn whole_floats_keep_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn parse_round_trips() {
        let text =
            r#"{"a": [1, -2, 3.5, null, true], "b": "x\ny", "c": {"d": 18446744073709551615}}"#;
        let v: Value = from_str(text).unwrap();
        let back = to_string(&v).unwrap();
        let v2: Value = from_str(&back).unwrap();
        assert_eq!(v, v2);
        assert_eq!(v.field("c").field("d"), &Value::U64(u64::MAX));
    }

    #[test]
    fn typed_round_trip() {
        let data = vec![(1.0f64, 2.5f64), (3.0, 4.0)];
        let s = to_string(&data).unwrap();
        let back: Vec<(f64, f64)> = from_str(&s).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn json_macro_builds_objects() {
        let racks = 42u64;
        let v = json!({
            "racks": racks,
            "nested": json!({ "ok": true }),
            "list": json!([1, 2]),
            "none": json!(null),
        });
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"racks":42,"nested":{"ok":true},"list":[1,2],"none":null}"#
        );
    }

    #[test]
    fn errors_report_position() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        let io: std::io::Error = from_str::<Value>("nope").unwrap_err().into();
        assert_eq!(io.kind(), std::io::ErrorKind::InvalidData);
    }
}
