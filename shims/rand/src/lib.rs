//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the slice of the `rand 0.8` API the workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range}`, and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 generator upstream uses — so absolute streams differ from
//! upstream `rand`, but every consumer in this workspace only relies on
//! *reproducibility for a fixed seed*, which this crate guarantees.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generator constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from an `RngCore` (the shim's
/// equivalent of sampling from rand's `Standard` distribution).
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    ///
    /// Panics when the range is empty, matching upstream `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Debiased uniform draw in `[0, span)` (Lemire-style rejection).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone keeps the draw exactly uniform.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level sampling helpers, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// with SplitMix64 seed expansion.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Slice sampling helpers.

    use super::{Rng, RngCore};

    /// Random operations over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn works_through_dyn_like_unsized_bounds() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!(v < 10);
    }
}
