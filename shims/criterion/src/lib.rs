//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`bench_with_input`, `black_box`,
//! and `BenchmarkId` — backed by a simple wall-clock timer. Each
//! benchmark reports mean / best / worst per-iteration time on stdout;
//! there is no statistical analysis, HTML report, or warm-up modeling.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name plus a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{name}/{parameter}") }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing collector handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed call to warm caches and page in code.
        black_box(routine());
        // Calibrate how many iterations fit a reasonable sample.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(1));
        let budget = Duration::from_millis(300);
        let per_sample = ((budget.as_nanos() / self.sample_size as u128) / probe.as_nanos())
            .clamp(1, 10_000) as u32;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_sample);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label}: no samples");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let best = self.samples.iter().min().copied().unwrap_or_default();
        let worst = self.samples.iter().max().copied().unwrap_or_default();
        println!(
            "{label}: mean {mean:?} / iter (best {best:?}, worst {worst:?}, {} samples)",
            self.samples.len()
        );
    }
}

/// Top-level harness, one per bench binary.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.default_sample_size };
        f(&mut b);
        b.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timing samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Runs a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles bench functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("counting", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }
}
