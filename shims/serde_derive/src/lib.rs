//! Derive macros for the vendored `serde` shim.
//!
//! Implemented without `syn`/`quote` (unavailable offline): the item is
//! parsed directly from the raw `TokenStream` and the impl is emitted as
//! a source string. Supports the shapes this workspace derives on:
//! named structs, tuple/newtype structs, unit structs, and enums with
//! unit / newtype / tuple / struct variants. Generic types, lifetimes,
//! and `#[serde(...)]` attributes are intentionally unsupported.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

/// Derives `serde::Serialize` (shim flavour: `fn to_value(&self) -> Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl should parse")
}

/// Derives `serde::Deserialize` (shim flavour: `fn from_value(&Value) -> Result<Self, Error>`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl should parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (type `{name}`)");
    }

    match keyword.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde shim derive: unexpected struct body {other:?}"),
            };
            Item { name, kind: ItemKind::Struct(fields) }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde shim derive: expected enum body, got {other:?}"),
            };
            Item { name, kind: ItemKind::Enum(parse_variants(body)) }
        }
        other => panic!("serde shim derive: cannot derive for `{other}` items"),
    }
}

/// Advances past outer attributes (`#[...]`, including expanded doc
/// comments) and visibility modifiers (`pub`, `pub(crate)`, ...).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // `#`
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1; // `[...]`
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1; // `(crate)` etc.
                }
            }
            _ => return,
        }
    }
}

/// Consumes a type expression: everything until a top-level `,`,
/// tracking `<`/`>` nesting so generic argument commas don't terminate
/// the field early. Leaves the cursor *after* the comma (if any).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(name);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break; // trailing comma
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde shim derive: expected variant name, got {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant, then the separating comma.
        while let Some(tok) = tokens.get(i) {
            i += 1;
            if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
        }
        ItemKind::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        ItemKind::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => \
                         ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), {inner})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let pairs: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                             ::serde::Value::Object(::std::vec![{}]))]),",
                            fs.join(", "),
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\"))?,"))
                .collect();
            format!(
                "if __v.as_object().is_none() {{\n\
                 return ::std::result::Result::Err(::serde::Error::expected(\"object\", __v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?,"))
                .collect();
            format!(
                "let __items = __v.as_array()\
                 .ok_or_else(|| ::serde::Error::expected(\"array\", __v))?;\n\
                 if __items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::custom(\
                 \"wrong tuple arity for {name}\"));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(" ")
            )
        }
        ItemKind::Struct(Fields::Unit) => {
            format!("::std::result::Result::Ok({name})")
        }
        ItemKind::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok(\
                         {name}::{v}(::serde::Deserialize::from_value(__inner)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?,"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                             let __items = __inner.as_array()\
                             .ok_or_else(|| ::serde::Error::expected(\"array\", __inner))?;\n\
                             if __items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                             \"wrong tuple arity for {name}::{v}\"));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{v}({}))\n\
                             }}",
                            inits.join(" ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let inits: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(__inner.field(\"{f}\"))?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {} }}),",
                            inits.join(" ")
                        ))
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                 return match __s.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }};\n\
                 }}\n\
                 if let ::serde::Value::Object(__pairs) = __v {{\n\
                 if __pairs.len() == 1 {{\n\
                 let (__tag, __inner) = &__pairs[0];\n\
                 let _ = __inner;\n\
                 return match __tag.as_str() {{\n\
                 {}\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                 }};\n\
                 }}\n\
                 }}\n\
                 ::std::result::Result::Err(::serde::Error::expected(\"enum {name}\", __v))",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}
